//! Hybrid analog–digital multigrid (paper §IV-A).
//!
//! A digital geometric-multigrid V-cycle delegates its coarse-grid solves to
//! the analog accelerator. Because multigrid only needs *approximate* coarse
//! solutions, the accelerator's limited precision costs at most a few extra
//! cycles — while every coarse solve is a single analog settle instead of a
//! digital iteration.
//!
//! Run with: `cargo run --release --example multigrid_hybrid`

use analog_accel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let l = 31;
    let problem = Poisson2d::new(l, |x, y| 20.0 * ((3.0 * x - 1.0) * (2.0 - 3.0 * y)).tanh())?;
    let mg = MultigridSolver::new(l)?;
    println!("== hybrid analog/digital multigrid ==");
    println!(
        "fine grid {l}x{l} ({} unknowns), {} levels, coarsest {}x{}",
        problem.grid_points(),
        mg.depth(),
        mg.coarsest_side(),
        mg.coarsest_side()
    );

    // All-digital baseline.
    let mut digital = CgCoarseSolver::default();
    let d = mg.solve(problem.rhs(), &mut digital, 1e-9, 60)?;
    println!("\nall-digital V-cycles (CG coarse solver):");
    println!("  cycles: {}, converged: {}", d.cycles, d.converged);

    // Analog coarse solver, ideal 12-bit hardware.
    let mut analog = AnalogCoarseSolver::new(SolverConfig::ideal());
    let a = mg.solve(problem.rhs(), &mut analog, 1e-9, 60)?;
    println!("\nhybrid V-cycles (analog coarse solver, 12-bit ideal):");
    println!("  cycles: {}, converged: {}", a.cycles, a.converged);
    println!(
        "  analog coarse solves: {}, total analog time: {:.3} ms",
        analog.solves(),
        analog.analog_time_s() * 1e3
    );

    // Analog coarse solver on the noisy calibrated 8-bit prototype.
    let mut proto = AnalogCoarseSolver::new(SolverConfig::prototype());
    let p = mg.solve(problem.rhs(), &mut proto, 1e-9, 60)?;
    println!("\nhybrid V-cycles (calibrated 8-bit prototype):");
    println!("  cycles: {}, converged: {}", p.cycles, p.converged);

    let err: f64 = a
        .solution
        .iter()
        .zip(&d.solution)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    println!("\nhybrid vs digital solution max difference: {err:.2e}");
    println!("(paper §IV-A: overall accuracy is guaranteed by repeating the cycle)");
    Ok(())
}

//! Runtime faults and supervised recovery.
//!
//! A deterministic fault schedule is injected into the chip model, and the
//! `SupervisedSolver` reacts the way the paper's host processor is designed
//! to (§III-B): validate every analog result digitally, classify the
//! failure, and escalate — retry after an idle cool-down, recalibrate,
//! remap, and finally degrade to a digital CG solve.
//!
//! Run with: `cargo run --release --example fault_recovery`

use analog_accel::analog::units::UnitId;
use analog_accel::prelude::*;

fn describe(report: &analog_accel::solver::SupervisedSolveReport) {
    for a in &report.recovery.attempts {
        let outcome = match a.residual {
            Some(r) => format!("residual {r:.3e}"),
            None => a.error.clone().unwrap_or_default(),
        };
        let class = a
            .classification
            .map(|c| format!("{c:?}"))
            .unwrap_or_else(|| "ok".into());
        println!(
            "  attempt {}: {class:<18} -> {:?}  ({outcome})",
            a.attempt, a.action
        );
    }
    println!(
        "  path: {:?}, recalibrations: {}, remaps: {}, cooldown: {:.2} ms, analog time: {:.3} ms",
        report.recovery.final_path,
        report.recovery.recalibrations,
        report.recovery.remaps,
        report.recovery.total_cooldown_s * 1e3,
        report.recovery.analog_time_s() * 1e3,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0)?;
    let b = vec![1.0, 0.0, 1.0];
    let cfg = SolverConfig {
        engine: EngineOptions {
            stop_on_exception: true,
            max_tau: 300.0,
            ..EngineOptions::default()
        },
        ..SolverConfig::ideal()
    };

    println!("== transient noise burst (first 2.5 ms of chip lifetime) ==");
    let mut solver = SupervisedSolver::new(&a, &cfg, &RecoveryConfig::default())?;
    solver.inject_faults(FaultPlan::new(77).with_event(FaultEvent::transient(
        FaultKind::NoiseBurst {
            unit: UnitId::Integrator(1),
            amplitude: 0.05,
        },
        0.0,
        2.5e-3,
    )));
    let report = solver.solve(&b)?;
    describe(&report);
    println!("  solution: {:?}\n", report.solution);

    println!("== persistent stuck-at-rail integrator ==");
    let mut solver = SupervisedSolver::new(
        &a,
        &cfg,
        &RecoveryConfig {
            max_attempts: 3,
            ..RecoveryConfig::default()
        },
    )?;
    solver.inject_faults(FaultPlan::new(0).with_event(FaultEvent::persistent(
        FaultKind::StuckAtRail {
            integrator: 0,
            rail: Rail::Positive,
        },
        0.0,
    )));
    let report = solver.solve(&b)?;
    describe(&report);
    println!("  solution: {:?}\n", report.solution);

    println!("== multiplier gain drift, cured by recalibration ==");
    let mut solver = SupervisedSolver::new(&a, &cfg, &RecoveryConfig::default())?;
    solver.inject_faults(FaultPlan::new(5).with_event(FaultEvent::persistent(
        FaultKind::GainDrift {
            unit: UnitId::Multiplier(0),
            magnitude: 0.1,
            ramp_s: 1e-4,
        },
        0.0,
    )));
    let report = solver.solve(&b)?;
    describe(&report);
    println!("  solution: {:?}", report.solution);
    Ok(())
}

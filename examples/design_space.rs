//! Design-space exploration: the paper's §V-B sweep over analog bandwidth.
//!
//! For each of the four accelerator designs (20 kHz prototype, 80 kHz,
//! 320 kHz, 1.3 MHz projections) prints solve time, area, power, and
//! energy for 2D Poisson problems of growing size, with the die-area cap
//! that truncates the high-bandwidth designs — a text rendering of
//! Figures 9–12.
//!
//! Run with: `cargo run --example design_space`

use analog_accel::hwmodel::energy::{analog_solution_energy_j, gpu_solution_energy_j};
use analog_accel::hwmodel::timing::{analog_solve_time_s, PoissonProblem};
use analog_accel::hwmodel::GPU_DIE_AREA_MM2;
use analog_accel::prelude::*;

fn main() {
    let designs = AcceleratorDesign::paper_designs();
    let gpu = GpuModel::default();
    let cpu = CpuModel::default();

    println!("== analog accelerator design space (2D Poisson, paper §V-B) ==\n");

    println!("die budget: {GPU_DIE_AREA_MM2} mm² (the largest GPU dies)");
    println!(
        "\n{:<16} {:>8} {:>12} {:>14} {:>12}",
        "design", "alpha", "mm²/point", "max points", "W/point"
    );
    for d in &designs {
        println!(
            "{:<16} {:>8.0} {:>12.4} {:>14} {:>12.6}",
            d.label,
            d.alpha(),
            d.area_mm2(1),
            d.max_grid_points(GPU_DIE_AREA_MM2),
            d.power_w(1),
        );
    }

    println!("\nsolve time / energy vs problem size:");
    println!(
        "{:<8} {:<16} {:>14} {:>12} {:>12} {:>14}",
        "N", "design", "time", "area mm²", "power W", "energy J"
    );
    for &l in &[8usize, 16, 24, 32] {
        let problem = PoissonProblem::new_2d(l);
        let n = problem.grid_points();
        for d in &designs {
            if n > d.max_grid_points(GPU_DIE_AREA_MM2) {
                println!(
                    "{:<8} {:<16} {:>14} {:>12} {:>12} {:>14}",
                    n, d.label, "—", "over die", "—", "—"
                );
                continue;
            }
            let t = analog_solve_time_s(d, &problem);
            let e = analog_solution_energy_j(d, &problem);
            println!(
                "{:<8} {:<16} {:>14} {:>12.1} {:>12.4} {:>14.3e}",
                n,
                d.label,
                format_time(t),
                d.area_mm2(n),
                d.power_w(n),
                e
            );
        }
        // Digital comparisons at matching precision.
        let iters = analog_accel::hwmodel::digital::cg_iterations_estimate(l, 12);
        let cpu_t = cpu.solve_time_s(iters, n);
        let gpu_e = gpu_solution_energy_j(&gpu, &problem, 12);
        println!(
            "{:<8} {:<16} {:>14} {:>12} {:>12} {:>14.3e}",
            n,
            "digital CG",
            format_time(cpu_t),
            "-",
            "-",
            gpu_e
        );
        println!();
    }

    println!("headline (paper abstract): with high analog bandwidth, analog may be");
    println!("~10x faster and ~1/3 lower energy than digital — within the window");
    println!("where the problem still fits on the die.");
}

fn format_time(t: f64) -> String {
    if t < 1e-6 {
        format!("{:.1} ns", t * 1e9)
    } else if t < 1e-3 {
        format!("{:.1} µs", t * 1e6)
    } else if t < 1.0 {
        format!("{:.2} ms", t * 1e3)
    } else {
        format!("{t:.2} s")
    }
}

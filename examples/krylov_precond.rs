//! The accelerator as a *preconditioner* instead of a primary solver:
//! flexible CG where every z ≈ M⁻¹·r application is one supervised analog
//! solve. Compares iteration counts against plain digital CG, then injects
//! a hard fault to show the loop demoting gracefully to a digital Jacobi
//! application instead of diverging.
//!
//! ```bash
//! cargo run --release --example krylov_precond
//! ```

use analog_accel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 8;
    let n = side * side;
    let a = CsrMatrix::from_row_access(&PoissonStencil::new_2d(side)?);
    let b: Vec<f64> = (0..n).map(|i| 0.5 + ((i % 7) as f64) * 0.25).collect();

    // Baseline: unpreconditioned digital CG to 1e-8.
    let config = KrylovConfig::default();
    let plain = cg(
        &a,
        &b,
        &IterativeConfig::with_stopping(StoppingCriterion::RelativeResidual(config.tolerance)),
    )?;
    println!("plain CG:               {:>3} iterations", plain.iterations);

    // Analog-preconditioned flexible CG: each application reuses the chip's
    // committed structure, plan cache, and calibration.
    let mut sup = SupervisedSolver::new(&a, &SolverConfig::ideal(), &RecoveryConfig::default())?;
    let mut precond = AnalogPreconditioner::new(&mut sup);
    let fcg = fcg_solve(&mut precond, &b, &config)?;
    println!(
        "analog-preconditioned:  {:>3} iterations  ({} analog applications, {:.1} simulated µs)",
        fcg.iterations,
        fcg.precond.analog_applications,
        fcg.precond.analog_time_s * 1e6
    );
    assert!(fcg.converged && fcg.iterations < plain.iterations);

    // Independent digital residual check — never trust the inner loop.
    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    let rel = a.residual_norm(&fcg.solution, &b) / b_norm;
    println!("relative residual:      {rel:.2e}");

    // Now break the chip: an integrator stuck at the positive rail from
    // t = 0 means no analog application can ever validate. The
    // preconditioner demotes itself to digital Jacobi — iteration counts
    // degrade toward plain CG, but the loop still converges.
    let mut broken = SupervisedSolver::new(&a, &SolverConfig::ideal(), &RecoveryConfig::default())?;
    broken.inject_faults(FaultPlan::new(1).with_event(FaultEvent::persistent(
        FaultKind::StuckAtRail {
            integrator: 0,
            rail: Rail::Positive,
        },
        0.0,
    )));
    let mut demoted = AnalogPreconditioner::new(&mut broken);
    let report = fcg_solve(&mut demoted, &b, &config)?;
    println!(
        "stuck-at-rail chip:     {:>3} iterations  (converged={}, {} fallback applications)",
        report.iterations, report.converged, report.precond.fallback_applications
    );
    assert!(report.converged);
    assert_eq!(report.precond.final_path(), FinalPath::DigitalFallback);

    // The same mode is servable from a fleet: `with_krylov()` requests get
    // their own deadline profile priced from the FCG cost model.
    let mut fleet = FleetService::new(FleetConfig::new(2).with_seed(7), vec![a])?;
    let ticket = fleet.submit(SolveRequest::new(0, b).with_krylov())?;
    fleet.run_until_idle();
    let done = fleet.completion(ticket).expect("accepted => answered");
    println!(
        "fleet krylov request:   served on chip {:?} via {:?}",
        done.chip, done.path
    );
    Ok(())
}

//! An elliptic PDE end to end on the analog accelerator (paper §IV-B,
//! Figure 6): discretize a 2D Poisson equation, decompose it into 1D strips
//! that fit a small integrator array, solve the strips on the accelerator
//! with precision refinement, and iterate to global convergence.
//!
//! Run with: `cargo run --release --example poisson2d`

use analog_accel::prelude::*;
use analog_accel::solver::OuterMethod;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let l = 8; // 8×8 interior grid: 64 unknowns
    let problem = Poisson2d::new(l, |x, y| {
        // A smooth, non-eigenmode forcing field (a pure sin·sin forcing is
        // the operator's fundamental eigenvector — CG would finish in one
        // iteration and make the digital baseline look trivial).
        8.0 * (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin()
            + 6.0 * x * x * (1.0 - y)
    })?;
    let a = problem.assemble();
    let b = problem.rhs().to_vec();
    println!("== 2D Poisson on the analog accelerator ==");
    println!(
        "grid: {l}x{l} interior points, N = {} unknowns",
        problem.grid_points()
    );
    {
        use analog_accel::linalg::RowAccess;
        println!("matrix: {} non-zeros, pentadiagonal", RowAccess::nnz(&a));
    }

    // Digital reference.
    let exact = problem.solve_reference(1e-12)?;

    // --- Whole-problem analog solve (needs N integrators).
    let mut direct = AnalogSystemSolver::new(&a, &SolverConfig::ideal())?;
    let whole = solve_refined(
        &mut direct,
        &b,
        &RefineConfig {
            tolerance: 1e-8,
            ..Default::default()
        },
    )?;
    println!("\nwhole-problem analog solve (64-integrator accelerator):");
    println!("  refinement rounds: {}", whole.rounds);
    println!("  analog time: {:.3} ms", whole.analog_time_s * 1e3);
    println!("  max error: {:.2e}", max_err(&whole.solution, &exact));

    // --- Decomposed solve: strips of one grid row each (8 integrators),
    // the paper's "set of independent 1D subproblems" with an outer
    // iteration carrying the 2D couplings.
    let config = DecomposeConfig {
        block_size: l,
        outer: OuterMethod::BlockGaussSeidel,
        tolerance: 1e-6,
        max_sweeps: 200,
        ..DecomposeConfig::default()
    };
    let decomposed = solve_decomposed(&a, &b, &config)?;
    println!(
        "\ndecomposed analog solve ({}-integrator accelerator, {} strip blocks):",
        l, decomposed.blocks
    );
    println!("  outer sweeps: {}", decomposed.sweeps);
    println!(
        "  total analog time: {:.3} ms",
        decomposed.analog_time_s * 1e3
    );
    println!("  max error: {:.2e}", max_err(&decomposed.solution, &exact));

    // --- Digital CG at the paper's equal-accuracy stopping rule.
    let cg_report = cg(
        problem.operator(),
        &b,
        &IterativeConfig::with_stopping(StoppingCriterion::adc_equivalent(12)),
    )?;
    println!("\ndigital CG (stop at 12-bit equivalent change):");
    println!("  iterations: {}", cg_report.iterations);
    println!("  max error: {:.2e}", max_err(&cg_report.solution, &exact));

    println!("\nsolution field (center row):");
    let row = l / 2;
    let slice: Vec<String> = (0..l)
        .map(|i| format!("{:+.3}", decomposed.solution[row * l + i]))
        .collect();
    println!("  [{}]", slice.join(", "));

    Ok(())
}

fn max_err(x: &[f64], reference: &[f64]) -> f64 {
    x.iter()
        .zip(reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

//! Sharded dispatch: scaling the fleet without scaling the dispatcher.
//!
//! Splits a four-chip fleet into two dispatcher shards, then walks through
//! what the sharded scheduler does: structure-affinity routing (one
//! structure's traffic always warms the same shard's plan caches),
//! deterministic spill when a home shard saturates, per-tenant weighted
//! fair-share admission, independent per-shard schedule logs, and a v2
//! checkpoint that freezes every shard section.
//!
//! Run with: `cargo run --release --example sharded_fleet`

use analog_accel::prelude::*;
use analog_accel::sched::ScheduleEvent;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four structures: with two shards, even structures home to shard 0
    // and odd structures to shard 1 (`home = structure % shards`).
    let structures: Vec<CsrMatrix> = (4..8)
        .map(|n| CsrMatrix::tridiagonal(n, -1.0, 2.0, -1.0))
        .collect::<Result<_, _>>()?;

    let config = FleetConfig::new(4)
        .with_seed(11)
        .with_shards(2)
        .with_queue_capacity(6)
        // A shard admits foreign (spilled) traffic only below this queue
        // depth; its own home traffic may fill it to capacity.
        .with_spill_watermark(3)
        // Tenant 1 is a paying batch customer with three times the weight
        // of the anonymous default bucket every unconfigured tenant
        // shares. Quotas cap queue occupancy, not throughput.
        .with_tenant_weight(1, 3);
    println!("== topology ==");
    for (shard, (offset, count)) in config.shard_chip_ranges().iter().enumerate() {
        println!("  shard {shard}: chips {offset}..{}", offset + count);
    }
    for s in 0..structures.len() {
        println!("  structure {s} homes to shard {}", config.home_shard(s));
    }

    let mut fleet = FleetService::new(config, structures)?;

    // A burst of same-structure traffic saturates the home shard and
    // spills deterministically to the cyclic next one; tenant 0 then runs
    // into its fair-share quota while tenant 1 still has headroom.
    println!("\n== admission ==");
    for i in 0..14 {
        let tenant = (i % 2) as u32;
        let request = SolveRequest::new(0, vec![1.0 + 0.05 * i as f64; 4]).with_tenant(tenant);
        match fleet.submit(request) {
            Ok(ticket) => println!(
                "  request {i:>2} (tenant {tenant}): ticket {} -> shard queues {}/{}",
                ticket.0,
                fleet.shard_queue_depth(0),
                fleet.shard_queue_depth(1),
            ),
            Err(rejection) => println!("  request {i:>2} (tenant {tenant}): {rejection}"),
        }
    }

    let served = fleet.run_until_idle();
    println!("\n== {served} requests served ==");
    for shard in 0..fleet.shard_count() {
        let log = fleet.shard_log(shard);
        println!(
            "  shard {shard}: {} rounds, {} completed",
            fleet.shard_rounds(shard),
            log.completed()
        );
        for event in &log.events {
            if let ScheduleEvent::Spilled {
                ticket,
                from_shard,
                to_shard,
            } = event
            {
                println!("    ticket {ticket} spilled shard {from_shard} -> shard {to_shard}");
            }
        }
    }

    // The checkpoint freezes each dispatcher group in its own section
    // (format v2); a restore rejects any topology it was not taken under.
    let checkpoint = fleet.checkpoint();
    println!("\n== checkpoint (format v{}) ==", checkpoint.version);
    for section in &checkpoint.shards {
        println!(
            "  shard {}: {} chips, queue depth {}, round {}",
            section.shard,
            section.chips,
            section.queue.len(),
            section.round
        );
    }
    Ok(())
}

//! The accelerator in its native role: a continuous-time ODE solver for
//! embedded systems (paper §II), including a nonlinear lookup-table
//! function — the use-case the chip was actually designed for.
//!
//! Programs two circuits through the Table I ISA:
//! 1. the paper's Figure 1 first-order ODE `du/dt = a·u + b`;
//! 2. a van-der-Pol-flavoured relaxation oscillator using the SRAM lookup
//!    table to shape a nonlinear damping term.
//!
//! Run with: `cargo run --example ode_dynamics`

use analog_accel::analog::netlist::{InputPort, OutputPort};
use analog_accel::analog::units::UnitId;
use analog_accel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    figure1_decay()?;
    nonlinear_oscillator()?;
    Ok(())
}

/// The Figure 1 circuit, driven through the ISA exactly as a host would.
fn figure1_decay() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figure 1: du/dt = a*u + b on the prototype chip ==");
    let mut host = Host::new(AnalogChip::new(ChipConfig::prototype()));

    let (int0, fan0, mul0, adc0) = (
        UnitId::Integrator(0),
        UnitId::Fanout(0),
        UnitId::Multiplier(0),
        UnitId::Adc(0),
    );
    let program = [
        Instruction::Init, // calibrate first (binary-search trim codes)
        Instruction::SetConn {
            from: OutputPort::of(int0),
            to: InputPort::of(fan0),
        },
        Instruction::SetConn {
            from: OutputPort {
                unit: fan0,
                port: 0,
            },
            to: InputPort::of(adc0),
        },
        Instruction::SetConn {
            from: OutputPort {
                unit: fan0,
                port: 1,
            },
            to: InputPort::of(mul0),
        },
        Instruction::SetConn {
            from: OutputPort::of(mul0),
            to: InputPort::of(int0),
        },
        Instruction::SetMulGain {
            multiplier: 0,
            gain: -1.0,
        }, // a = -1
        Instruction::SetDacConstant { dac: 0, value: 0.5 }, // b = 0.5
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Dac(0)),
            to: InputPort::of(int0),
        },
        Instruction::SetIntInitial {
            integrator: 0,
            value: -0.8,
        },
        Instruction::CfgCommit,
        Instruction::ExecStart,
        Instruction::ReadSerial,
        Instruction::ReadExp,
    ];
    for (instr, response) in program.iter().zip(host.run_program(&program)?) {
        match response {
            Response::Ran(report) => println!(
                "  {instr}: settled in {:.1} µs ({} RK4 steps)",
                report.duration_s * 1e6,
                report.steps
            ),
            Response::Codes(codes) => {
                let value = host.chip().value_of(codes[0]);
                println!(
                    "  {instr}: ADC code {} -> u = {value:+.4} (expect +0.5)",
                    codes[0]
                );
            }
            Response::Exceptions(bytes) => {
                let any = bytes.iter().any(|b| *b != 0);
                println!(
                    "  {instr}: exceptions = {}",
                    if any { "SET" } else { "none" }
                );
            }
            Response::Calibrated(report) => println!(
                "  {instr}: calibrated, worst residual offset {:.2e}",
                report.worst_offset()
            ),
            _ => {}
        }
    }
    println!();
    Ok(())
}

/// A nonlinear oscillator: ẍ − µ·g(x)·ẋ + x = 0 with g shaped by the SRAM
/// lookup table — van der Pol damping g(x) = 1 − (x/a)², value-scaled so the
/// limit cycle (amplitude ≈ 2a) stays inside the hardware dynamic range.
fn nonlinear_oscillator() -> Result<(), Box<dyn std::error::Error>> {
    println!("== nonlinear relaxation oscillator with SRAM lookup table ==");
    let mut chip = AnalogChip::new(ChipConfig::ideal());

    // State: x = int0, v = int1.
    // dx/dt = v
    // dv/dt = µ·g(x)·v − x, with g from the LUT.
    let (x, v) = (UnitId::Integrator(0), UnitId::Integrator(1));
    let (fan_x, fan_v) = (UnitId::Fanout(0), UnitId::Fanout(1));
    let (fan_g, fan_gv) = (UnitId::Fanout(2), UnitId::Fanout(3));
    let lut = UnitId::Lut(0);
    let mul_gv = UnitId::Multiplier(0); // variable-variable: g(x)·v
    let mul_mu = UnitId::Multiplier(1); // gain µ
    let mul_negx = UnitId::Multiplier(2); // gain −1 on x
    let aout = UnitId::AnalogOutput(0);

    // x fans out to: LUT, the −x feedback, and the scope output.
    chip.set_conn(OutputPort::of(x), InputPort::of(fan_x))?;
    chip.set_conn(
        OutputPort {
            unit: fan_x,
            port: 0,
        },
        InputPort::of(lut),
    )?;
    chip.set_conn(
        OutputPort {
            unit: fan_x,
            port: 1,
        },
        InputPort::of(fan_g),
    )?;
    chip.set_conn(
        OutputPort {
            unit: fan_g,
            port: 0,
        },
        InputPort::of(mul_negx),
    )?;
    chip.set_conn(
        OutputPort {
            unit: fan_g,
            port: 1,
        },
        InputPort::of(aout),
    )?;
    // v fans out to: dx/dt input and the multiplier.
    chip.set_conn(OutputPort::of(v), InputPort::of(fan_v))?;
    chip.set_conn(
        OutputPort {
            unit: fan_v,
            port: 0,
        },
        InputPort::of(x),
    )?;
    chip.set_conn(
        OutputPort {
            unit: fan_v,
            port: 1,
        },
        InputPort {
            unit: mul_gv,
            port: 1,
        },
    )?;
    // g(x) = 1 − (x/0.3)² via the lookup table, then g·v, then ×µ.
    chip.set_function(0, |xv| 1.0 - 11.1 * xv * xv)?;
    chip.set_conn(OutputPort::of(lut), InputPort::of(fan_gv))?;
    chip.set_conn(
        OutputPort {
            unit: fan_gv,
            port: 0,
        },
        InputPort {
            unit: mul_gv,
            port: 0,
        },
    )?;
    chip.set_conn(OutputPort::of(mul_gv), InputPort::of(mul_mu))?;
    chip.set_mul_gain(1, 0.5)?; // µ
    chip.set_conn(OutputPort::of(mul_mu), InputPort::of(v))?;
    // −x into dv/dt.
    chip.set_mul_gain(2, -1.0)?;
    chip.set_conn(OutputPort::of(mul_negx), InputPort::of(v))?;

    chip.set_int_initial(0, 0.3)?;
    chip.set_int_initial(1, 0.0)?;
    // Run for 0.5 ms: ~10 oscillation periods at the 20 kHz time base.
    chip.set_timeout(500);
    chip.cfg_commit()?;

    let report = chip.exec(&EngineOptions {
        steady_tol: None, // an oscillator never settles
        waveform_samples: 80,
        ..EngineOptions::default()
    })?;

    println!(
        "  simulated {:.2} ms of continuous-time dynamics ({} RK4 steps)",
        report.duration_s * 1e3,
        report.steps
    );
    println!("  x(t) waveform at the analog output (80 samples):");
    let wave = &report.output_waveforms[&0];
    let line: Vec<String> = wave.iter().map(|(_, v)| render(*v)).collect();
    println!("  {}", line.join(""));
    let peak = wave.iter().map(|(_, v)| v.abs()).fold(0.0, f64::max);
    println!("  limit-cycle amplitude ≈ {peak:.2} (van der Pol: 2a = 0.6 of unit scale)");
    println!("  exceptions: {}", report.exceptions);
    Ok(())
}

/// One-character amplitude bar for terminal waveform display.
fn render(v: f64) -> String {
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let idx = (((v + 1.0) / 2.0) * (glyphs.len() as f64 - 1.0))
        .round()
        .clamp(0.0, glyphs.len() as f64 - 1.0) as usize;
    glyphs[idx].to_string()
}

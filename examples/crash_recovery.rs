//! Crash recovery and chaos injection on the chip fleet.
//!
//! Builds a three-chip fleet, serves part of a workload, takes a
//! [`FleetCheckpoint`], keeps serving (with one chip killed mid-run by a
//! chaos injection), then simulates a crash: the service is dropped and
//! rebuilt from the checkpoint plus the admission WAL recorded after it.
//! The restored fleet finishes the workload and its schedule log is shown
//! to be identical to one from a fleet that never crashed — the
//! exactly-once, bit-identical recovery contract.
//!
//! Run with: `cargo run --release --example crash_recovery`

use analog_accel::prelude::*;
use analog_accel::sched::{ChipFailure, FleetService, ScheduleLog, SolveRequest, SolveTicket};

fn fleet_config() -> FleetConfig {
    FleetConfig::new(3)
        .with_seed(0xC4A5)
        .with_queue_capacity(16)
}

fn structures() -> Result<Vec<CsrMatrix>, Box<dyn std::error::Error>> {
    Ok(vec![
        CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0)?,
        CsrMatrix::tridiagonal(6, -1.0, 2.0, -1.0)?,
    ])
}

fn submit_wave(
    fleet: &mut FleetService,
    wave: usize,
    tickets: &mut Vec<SolveTicket>,
) -> Result<(), Box<dyn std::error::Error>> {
    for i in 0..4usize {
        let structure = (wave + i) % 2;
        let dim = fleet.structures()[structure].dim();
        let rhs = vec![1.0 + 0.2 * (wave * 4 + i) as f64; dim];
        tickets.push(fleet.submit(SolveRequest::new(structure, rhs))?);
    }
    Ok(())
}

/// One scripted serving timeline: three waves of requests with a chip
/// killed before the second wave; a checkpoint is taken after wave one.
/// When `crash` is set, the service is dropped after wave two and
/// restored from checkpoint + WAL before wave three.
fn run(crash: bool) -> Result<(ScheduleLog, usize), Box<dyn std::error::Error>> {
    let mut fleet = FleetService::new(fleet_config(), structures()?)?;
    let mut tickets = Vec::new();

    submit_wave(&mut fleet, 0, &mut tickets)?;
    fleet.run_round();

    // Snapshot between rounds: chips, health, queue, completions, log.
    let checkpoint = fleet.checkpoint();

    // Chaos: chip 0 dies for good. The injection is WAL-recorded, as is
    // every submit and round after the checkpoint.
    fleet.inject_chaos(0, Some(ChipFailure::Dead))?;
    submit_wave(&mut fleet, 1, &mut tickets)?;
    fleet.run_round();
    fleet.run_round();

    if crash {
        let wal = fleet.wal().clone();
        println!(
            "  !! crash: dropping the service ({} WAL ops since checkpoint)",
            wal.len()
        );
        drop(fleet);
        fleet = FleetService::restore(fleet_config(), structures()?, &checkpoint, &wal)?;
        println!(
            "  .. restored: round {}, queue depth {}, {} completions recovered",
            fleet.rounds(),
            fleet.queue_depth(),
            fleet.completions().count()
        );
    }

    submit_wave(&mut fleet, 2, &mut tickets)?;
    let answered = fleet.run_until_idle();
    println!("  == wave three served ({answered} in the final drain)");

    // Exactly-once: every accepted ticket has exactly one completion.
    for t in &tickets {
        fleet
            .completion(*t)
            .ok_or_else(|| format!("ticket {} lost", t.0))?;
    }
    Ok((fleet.into_log(), tickets.len()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== uninterrupted run ==");
    let (baseline, accepted) = run(false)?;

    println!("\n== crashed + restored run ==");
    let (recovered, _) = run(true)?;

    println!("\n== verdict ==");
    println!("  accepted requests : {accepted}");
    println!("  baseline events   : {}", baseline.events.len());
    println!("  recovered events  : {}", recovered.events.len());
    assert_eq!(
        baseline, recovered,
        "checkpoint + WAL replay must reproduce the schedule log bit for bit"
    );
    println!("  schedule logs are bit-identical — recovery lost nothing.");
    Ok(())
}

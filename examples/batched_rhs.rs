//! Batched multi-RHS execution, bottom to top.
//!
//! One RK4 sweep can advance K right-hand sides in lockstep through the
//! same compiled plan — per-chip noise, variation, and fault draws are
//! shared across lanes, so each column's answer is bit-identical to the
//! solve it would have gotten sequentially. This example walks the three
//! layers of that machinery:
//!
//! 1. the chip ISA: `exec_batch` over per-lane DAC bindings, checked
//!    against sequential `exec` runs;
//! 2. the solver: `solve_batch` under one shared solution scale γ, with
//!    per-column fallbacks for right-hand sides the shared γ cannot serve;
//! 3. the fleet: `FleetConfig::with_max_batch_rhs` coalescing a queued
//!    request stream into multi-lane sweeps, timed against the same
//!    stream served one sweep per request.
//!
//! Run with: `cargo run --release --example batched_rhs`

use std::collections::BTreeMap;
use std::time::Instant;

use analog_accel::analog::netlist::{InputPort, OutputPort};
use analog_accel::analog::units::UnitId;
use analog_accel::analog::LaneBindings;
use analog_accel::prelude::*;
use analog_accel::solver::BatchColumn;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Chip level: one sweep, four lanes, bit-identical lanes. ----
    // A single integrator fed by a DAC; each lane programs a different
    // constant, like four solves differing only in their right-hand side.
    let build = || -> Result<AnalogChip, Box<dyn std::error::Error>> {
        let mut chip = AnalogChip::new(ChipConfig::ideal());
        chip.set_conn(
            OutputPort::of(UnitId::Dac(0)),
            InputPort::of(UnitId::Integrator(0)),
        )?;
        chip.set_int_initial(0, 0.0)?;
        chip.set_dac_constant(0, 0.1)?;
        chip.set_timeout(50);
        chip.cfg_commit()?;
        Ok(chip)
    };

    let mut chip = build()?;
    let lanes: Vec<LaneBindings> = (0..4)
        .map(|lane| LaneBindings {
            dac_values: Some(BTreeMap::from([(
                0,
                chip.quantize_dac(0.1 + 0.05 * lane as f64),
            )])),
            int_initial: None,
        })
        .collect();
    let batch = chip.exec_batch(&lanes, &EngineOptions::default())?;
    println!("chip: one sweep, {} lanes", batch.reports.len());
    for (lane, report) in batch.reports.iter().enumerate() {
        // The same chip state replayed sequentially gives the same bits.
        let mut twin = build()?;
        twin.set_dac_constant(0, 0.1 + 0.05 * lane as f64)?;
        twin.cfg_commit()?;
        let sequential = twin.exec(&EngineOptions::default())?;
        assert_eq!(*report, sequential);
        println!(
            "  lane {lane}: integrator at {:+.4} after {} steps (bit-identical to sequential)",
            report.integrator_values[&0], report.steps
        );
    }
    chip.finish_batch(&batch);

    // --- 2. Solver level: shared γ, per-column verdicts. ---------------
    let a = CsrMatrix::from_row_access(&PoissonStencil::new_2d(4)?);
    let n = a.dim();
    let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal())?;
    let mut bs: Vec<Vec<f64>> = (0..3)
        .map(|i| (0..n).map(|j| 0.5 + 0.01 * ((i + j) % 5) as f64).collect())
        .collect();
    // Far beyond full scale at any reasonable γ: this column must fall
    // back to its own sequential rescale walk instead of perturbing the
    // scale the other columns share.
    bs.push(vec![75.0; n]);
    println!("\nsolver: {} columns through solve_batch", bs.len());
    for (j, column) in solver.solve_batch(&bs)?.iter().enumerate() {
        match column {
            BatchColumn::Solved(report) => println!(
                "  column {j}: solved, {} run(s), peak range use {:.2}",
                report.runs, report.peak_range_usage
            ),
            BatchColumn::Fallback(reason) => {
                println!("  column {j}: fallback ({reason}) — resolve sequentially")
            }
        }
    }

    // --- 3. Fleet level: coalescing a request stream. ------------------
    let requests = 48;
    let serve = |batch: usize| -> Result<f64, Box<dyn std::error::Error>> {
        let config = FleetConfig::new(4)
            .with_seed(0xBE7C)
            .with_workers(1)
            .with_queue_capacity(requests)
            .with_max_batch_rhs(batch);
        let mut fleet = FleetService::new(config, vec![a.clone()])?;
        let start = Instant::now();
        for i in 0..requests {
            let rhs: Vec<f64> = (0..n).map(|j| 0.5 + 0.01 * ((i + j) % 5) as f64).collect();
            fleet.submit(SolveRequest::new(0, rhs))?;
        }
        let served = fleet.run_until_idle();
        assert_eq!(served, requests);
        Ok(start.elapsed().as_secs_f64())
    };
    let coalesced = serve(4)?;
    let sequential = serve(1)?;
    println!(
        "\nfleet: {requests} requests on 4 chips — coalesced (batch=4) {:.1} req/s, \
         uncoalesced {:.1} req/s ({:.2}x)",
        requests as f64 / coalesced,
        requests as f64 / sequential,
        sequential / coalesced
    );
    Ok(())
}

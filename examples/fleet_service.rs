//! Serving `A·u = b` traffic from a chip fleet.
//!
//! Builds a three-chip fleet (one chip carrying a persistent stuck-at-rail
//! fault), submits a mixed-priority request stream, and walks through what
//! the scheduler did: admission backpressure, same-structure batching,
//! quarantine of the faulty chip, and per-class energy accounting from the
//! hardware power model.
//!
//! Run with: `cargo run --release --example fleet_service`

use analog_accel::analog::EngineOptions;
use analog_accel::prelude::*;
use analog_accel::sched::ScheduleEvent;
use analog_accel::solver::RecoveryConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0)?;
    let large = CsrMatrix::tridiagonal(8, -1.0, 2.0, -1.0)?;

    let mut config = FleetConfig::new(3).with_seed(7).with_queue_capacity(16);
    config.solver.engine = EngineOptions {
        stop_on_exception: true,
        max_tau: 300.0,
        ..EngineOptions::default()
    };
    config.recovery = RecoveryConfig {
        max_attempts: 2,
        ..RecoveryConfig::default()
    };
    // Chip 1 ships broken: its integrator 0 is pinned at the positive rail.
    config = config.with_fault_plan(
        1,
        FaultPlan::new(99).with_event(FaultEvent::persistent(
            FaultKind::StuckAtRail {
                integrator: 0,
                rail: Rail::Positive,
            },
            0.0,
        )),
    );
    let mut fleet = FleetService::new(config, vec![small, large])?;

    println!("== submitting a mixed request stream ==");
    let mut tickets = Vec::new();
    for i in 0..14 {
        let structure = i % 2;
        let dim = fleet.structures()[structure].dim();
        let priority = if i % 5 == 0 {
            Priority::High
        } else {
            Priority::Normal
        };
        let request =
            SolveRequest::new(structure, vec![1.0 + 0.1 * i as f64; dim]).with_priority(priority);
        match fleet.submit(request) {
            Ok(t) => tickets.push(t),
            Err(rejection) => println!("  request {i}: rejected ({rejection})"),
        }
    }
    // Push past the queue bound to show typed backpressure.
    for _ in 0..4 {
        if let Err(rejection) = fleet.submit(SolveRequest::new(0, vec![1.0; 4])) {
            println!("  backpressure: {rejection}");
            break;
        }
    }

    let served = fleet.run_until_idle();
    println!(
        "\n== {} requests served in {} rounds ==",
        served,
        fleet.rounds()
    );
    for event in &fleet.log().events {
        match event {
            ScheduleEvent::Dispatched {
                round,
                chip,
                tickets,
            } => {
                println!("  round {round}: chip {chip} <- batch of {}", tickets.len())
            }
            ScheduleEvent::Quarantined { chip, round } => {
                println!("  round {round}: chip {chip} QUARANTINED")
            }
            ScheduleEvent::Probation { chip, round } => {
                println!("  round {round}: chip {chip} probation probe")
            }
            ScheduleEvent::Readmitted { chip, round } => {
                println!("  round {round}: chip {chip} readmitted")
            }
            _ => {}
        }
    }

    println!("\n== per-chip health ==");
    for (i, h) in fleet.health().iter().enumerate() {
        println!(
            "  chip {i}: {:?}, score {:.2}, {} solves, {} quarantines",
            h.state, h.score, h.solves, h.quarantines
        );
    }

    println!("\n== outcomes ==");
    for ticket in &tickets {
        let done = fleet.completion(*ticket).expect("accepted => answered");
        println!(
            "  ticket {:>2}: chip {:>8} path {:<22} residual {:.2e}  energy {:.2e} J",
            done.ticket.0,
            done.chip.map_or("digital".into(), |c| format!("{c}")),
            done.path.label(),
            done.residual,
            done.energy_j,
        );
    }

    println!("\n== energy per request class (paper Fig. 9 metric) ==");
    for class in [Priority::High, Priority::Normal, Priority::Low] {
        if let Some(j) = fleet.log().energy_per_request_j(class) {
            println!("  {:<7} {:.3e} J/request", class.label(), j);
        }
    }
    Ok(())
}

//! Quickstart: solve a system of linear equations on the analog accelerator.
//!
//! Builds the paper's Figure 5 circuit for a small SPD system, runs the
//! gradient flow `du/dt = b − A·u` to steady state, and compares the ADC
//! readout against a digital direct solve.
//!
//! Run with: `cargo run --example quickstart`

use analog_accel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A·u = b: the 1D Poisson matrix on six points.
    let a = CsrMatrix::tridiagonal(6, -1.0, 2.0, -1.0)?;
    let b = vec![1.0, 0.0, 0.5, 0.5, 0.0, 1.0];

    println!("== analog-accel quickstart ==");
    println!("system: 6x6 tridiagonal [-1, 2, -1] (1D Poisson)");

    // --- Digital reference (Cholesky).
    let exact = analog_accel::linalg::direct::solve(&a.to_dense(), &b)?;
    println!("\ndigital direct solve:");
    print_vec("  u*", &exact);

    // --- Analog solve: ideal hardware, 12-bit converters, 20 kHz.
    let config = SolverConfig::ideal();
    let mut solver = AnalogSystemSolver::new(&a, &config)?;
    let report = solver.solve(&b)?;
    println!(
        "\nanalog accelerator ({} Hz bandwidth, {}-bit ADC):",
        config.bandwidth_hz, config.adc_bits
    );
    print_vec("  u ", &report.solution);
    println!(
        "  analog compute time: {:.3} ms (simulated)",
        report.analog_time_s * 1e3
    );
    println!(
        "  runs: {}, overflow retries: {}",
        report.runs, report.overflow_retries
    );
    println!("  peak dynamic-range usage: {:.2}", report.peak_range_usage);

    let err = max_err(&report.solution, &exact);
    println!("  max error vs digital: {err:.2e}");

    // --- Precision refinement (the paper's Algorithm 2).
    let refined = solve_refined(
        &mut solver,
        &b,
        &RefineConfig {
            tolerance: 1e-9,
            ..RefineConfig::default()
        },
    )?;
    println!("\nwith Algorithm 2 precision refinement:");
    println!(
        "  rounds: {}, converged: {}",
        refined.rounds, refined.converged
    );
    println!(
        "  residual history: {:?}",
        refined
            .residual_history
            .iter()
            .map(|r| format!("{r:.1e}"))
            .collect::<Vec<_>>()
    );
    let err = max_err(&refined.solution, &exact);
    println!("  max error vs digital: {err:.2e}");

    // --- The same solve on a realistic calibrated prototype chip.
    let mut proto = AnalogSystemSolver::new(&a, &SolverConfig::prototype())?;
    let report = proto.solve(&b)?;
    let err = max_err(&report.solution, &exact);
    println!("\ncalibrated 8-bit prototype chip:");
    println!("  max error vs digital: {err:.2e} (8-bit ADC limits a single run)");

    Ok(())
}

fn print_vec(label: &str, v: &[f64]) {
    let formatted: Vec<String> = v.iter().map(|x| format!("{x:+.4}")).collect();
    println!("{label} = [{}]", formatted.join(", "));
}

fn max_err(x: &[f64], reference: &[f64]) -> f64 {
    x.iter()
        .zip(reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

//! `analog-accel`: a full reproduction of *Evaluation of an Analog
//! Accelerator for Linear Algebra* (Huang, Guo, Seok, Tsividis,
//! Sethumadhavan — ISCA 2016) as a Rust workspace.
//!
//! This umbrella crate re-exports the subsystem crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`linalg`] | `aa-linalg` | dense/sparse matrices, stencils, direct & iterative solvers |
//! | [`ode`] | `aa-ode` | explicit/implicit/adaptive ODE integrators |
//! | [`analog`] | `aa-analog` | the behavioural chip model + Table I ISA |
//! | [`hwmodel`] | `aa-hwmodel` | Table II costs, bandwidth scaling, digital baselines |
//! | [`solver`] | `aa-solver` | the analog linear-algebra solver (the paper's contribution) |
//! | [`pde`] | `aa-pde` | Poisson problems, multigrid, heat/wave demos |
//! | [`obs`] | `aa-obs` | structured tracing/metrics with a deterministic replay journal |
//! | [`sched`] | `aa-sched` | chip-fleet scheduler: batched solve service with admission control |
//!
//! # The headline flow
//!
//! ```
//! use analog_accel::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. An elliptic PDE, discretized (paper §IV-B).
//! let problem = Poisson2d::new(4, |x, y| x * y)?;
//! let a = problem.assemble();
//!
//! // 2. Compile it onto an analog accelerator and solve by gradient flow.
//! let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal())?;
//! let analog = solver.solve(problem.rhs())?;
//!
//! // 3. Compare against the digital gold standard.
//! let digital = problem.solve_reference(1e-12)?;
//! for (x, e) in analog.solution.iter().zip(&digital) {
//!     assert!((x - e).abs() < 1e-3);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aa_analog as analog;
pub use aa_hwmodel as hwmodel;
pub use aa_linalg as linalg;
pub use aa_obs as obs;
pub use aa_ode as ode;
pub use aa_pde as pde;
pub use aa_sched as sched;
pub use aa_solver as solver;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use aa_analog::{
        AnalogChip, ChipConfig, EngineOptions, FaultEvent, FaultKind, FaultPlan, Host, Instruction,
        Rail, Response,
    };
    pub use aa_hwmodel::{AcceleratorDesign, CpuModel, GpuModel};
    pub use aa_linalg::iterative::{cg, IterativeConfig, StoppingCriterion};
    pub use aa_linalg::stencil::PoissonStencil;
    pub use aa_linalg::{CsrMatrix, DenseMatrix, LinearOperator, RowAccess, Triplet};
    pub use aa_obs::{MemoryRecorder, Recorder, TraceSnapshot};
    pub use aa_ode::{integrate_fixed, integrate_to_steady_state, FixedMethod, GradientFlow};
    pub use aa_pde::poisson::{Poisson2d, Poisson3d};
    pub use aa_pde::{CgCoarseSolver, MultigridSolver};
    pub use aa_sched::{
        AdmissionWal, Backoff, ChipFailure, CompletionPath, FleetCheckpoint, FleetConfig,
        FleetService, Priority, Rejected, ScheduleLog, SolveMode, SolveRequest, SolveTicket,
    };
    pub use aa_solver::refine::solve_refined;
    pub use aa_solver::{
        fcg_solve, solve_decomposed, AnalogCoarseSolver, AnalogPreconditioner, AnalogSystemSolver,
        DecomposeConfig, FailureClass, FinalPath, KrylovConfig, KrylovReport, RecoveryConfig,
        RefineConfig, SolverConfig, SupervisedSolver,
    };
}

//! Failure-injection tests: the architecture's error paths under hostile
//! conditions — bad dies, overflowing problems, indefinite matrices,
//! resource exhaustion, protocol misuse.

use analog_accel::analog::netlist::{InputPort, OutputPort};
use analog_accel::analog::units::UnitId;
use analog_accel::obs;
use analog_accel::prelude::*;
use analog_accel::solver::SolverError;

/// A die whose process variation exceeds the trim range fails calibration —
/// and the solver surfaces it rather than silently computing garbage.
#[test]
fn bad_die_fails_calibration() {
    let bad = analog_accel::analog::NonIdealityConfig {
        offset_std: 0.5, // far beyond the ±0.08 trim range
        gain_error_std: 0.0,
        readout_noise_std: 0.0,
        seed: 9,
    };
    let cfg = SolverConfig {
        nonideal: bad,
        calibrate: true,
        ..SolverConfig::ideal()
    };
    let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).unwrap();
    let result = AnalogSystemSolver::new(&a, &cfg);
    assert!(
        matches!(result, Err(SolverError::Analog(_))),
        "expected a calibration failure, got {result:?}"
    );
}

/// An indefinite matrix makes the gradient flow diverge: the exception /
/// no-steady-state machinery reports it instead of hanging.
#[test]
fn indefinite_system_is_reported() {
    let a = CsrMatrix::from_triplets(
        2,
        &[
            Triplet::new(0, 0, 1.0),
            Triplet::new(0, 1, 0.9),
            Triplet::new(1, 0, 0.9),
            Triplet::new(1, 1, -1.0),
        ],
    )
    .unwrap();
    let cfg = SolverConfig {
        max_rescale_attempts: 3,
        ..SolverConfig::ideal()
    };
    let mut solver = AnalogSystemSolver::new(&a, &cfg).unwrap();
    let result = solver.solve(&[0.2, 0.2]);
    assert!(
        matches!(
            result,
            Err(SolverError::NoSteadyState { .. }) | Err(SolverError::RescaleExhausted { .. })
        ),
        "got {result:?}"
    );
}

/// Exhausting the prototype's four integrators is a structured error.
#[test]
fn prototype_resource_exhaustion() {
    let mut chip = AnalogChip::new(ChipConfig::prototype());
    // The prototype has 4 integrators; int4 does not exist.
    let err = chip
        .set_conn(
            OutputPort::of(UnitId::Integrator(4)),
            InputPort::of(UnitId::Fanout(0)),
        )
        .unwrap_err();
    assert!(err.to_string().contains("int4"), "{err}");
    // And only 8 multipliers.
    assert!(chip.set_mul_gain(8, 0.5).is_err());
}

/// Protocol misuse: running before committing, and committing an algebraic
/// loop, both fail loudly.
#[test]
fn protocol_violations_are_loud() {
    let mut chip = AnalogChip::new(ChipConfig::ideal());
    assert!(chip.exec(&Default::default()).is_err());

    // A memoryless cycle: mul0 → mul1 → mul0.
    chip.set_conn(
        OutputPort::of(UnitId::Multiplier(0)),
        InputPort::of(UnitId::Multiplier(1)),
    )
    .unwrap();
    chip.set_conn(
        OutputPort::of(UnitId::Multiplier(1)),
        InputPort::of(UnitId::Multiplier(0)),
    )
    .unwrap();
    let err = chip.cfg_commit().unwrap_err();
    assert!(err.to_string().contains("algebraic loop"), "{err}");
}

/// Overflow exceptions are visible to the host through `readExp` after a
/// run that drives an integrator into the rails.
#[test]
fn overflow_is_latched_and_readable() {
    let mut host = Host::new(AnalogChip::new(ChipConfig::ideal()));
    // Positive feedback: du/dt = +u from 0.5 → slams into the +1 rail.
    let program = vec![
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Integrator(0)),
            to: InputPort::of(UnitId::Multiplier(0)),
        },
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Multiplier(0)),
            to: InputPort::of(UnitId::Integrator(0)),
        },
        Instruction::SetMulGain {
            multiplier: 0,
            gain: 1.0,
        },
        Instruction::SetIntInitial {
            integrator: 0,
            value: 0.5,
        },
        Instruction::SetTimeout { cycles: 2_000 },
        Instruction::CfgCommit,
        Instruction::ExecStart,
        Instruction::ReadExp,
    ];
    let responses = host.run_program(&program).unwrap();
    let Response::Exceptions(bytes) = responses.last().unwrap() else {
        panic!("expected exception vector");
    };
    assert!(
        bytes.iter().any(|b| *b != 0),
        "overflow must set a latch bit"
    );
    assert!(host.chip().exceptions().is_latched(UnitId::Integrator(0)));
}

/// A pathological rhs (max f64) cannot crash the solver: scaling absorbs it
/// or a structured error is returned.
#[test]
fn extreme_magnitudes_are_handled() {
    let a = CsrMatrix::tridiagonal(3, -1e12, 3e12, -1e12).unwrap();
    let b = vec![5e11, -2e11, 7e11];
    let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
    let report = solver.solve(&b).unwrap();
    let exact = analog_accel::linalg::direct::solve(&a.to_dense(), &b).unwrap();
    let scale = exact.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
    for (x, e) in report.solution.iter().zip(&exact) {
        assert!((x - e).abs() / scale < 0.01, "{x} vs {e}");
    }
    // Value scaling absorbed the 1e12 coefficients.
    assert!(report.value_factor > 1e11);
}

/// Zero-length and mismatched inputs never panic across the public API.
#[test]
fn shape_errors_are_structured_everywhere() {
    let a = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
    let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
    assert!(solver.solve(&[]).is_err());
    assert!(solver.solve(&[1.0; 5]).is_err());
    assert!(solve_refined(&mut solver, &[1.0; 2], &RefineConfig::default()).is_err());
    assert!(solve_decomposed(&a, &[1.0; 3], &DecomposeConfig::default()).is_err());
}

/// A solver config whose settle cap is short enough that faulted runs fail
/// fast instead of integrating for hundreds of thousands of time constants.
fn faultable_config() -> SolverConfig {
    SolverConfig {
        engine: EngineOptions {
            stop_on_exception: true,
            max_tau: 300.0,
            ..EngineOptions::default()
        },
        ..SolverConfig::ideal()
    }
}

/// End-to-end acceptance: a transient noise burst hits mid-run, the
/// supervisor retries with an idle cool-down until the window expires, and
/// the returned solution passes an independent digital residual check.
#[test]
fn mid_run_transient_fault_is_recovered_end_to_end() {
    let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).unwrap();
    let b = vec![1.0, 0.0, 1.0];
    let mut solver =
        SupervisedSolver::new(&a, &faultable_config(), &RecoveryConfig::default()).unwrap();
    solver.inject_faults(FaultPlan::new(77).with_event(FaultEvent::transient(
        FaultKind::NoiseBurst {
            unit: UnitId::Integrator(1),
            amplitude: 0.05,
        },
        0.0,
        2.5e-3,
    )));
    let report = solver.solve(&b).unwrap();
    assert_eq!(report.recovery.final_path, FinalPath::AnalogAfterRecovery);
    assert!(
        report.recovery.rejected_attempts() >= 1,
        "the burst must cost at least one attempt"
    );
    // Independent check, not the supervisor's own bookkeeping.
    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(a.residual_norm(&report.solution, &b) / b_norm < 1e-2);
}

/// Replay determinism end to end: the same seed and fault plan produce
/// bit-identical recovery reports and solutions (report equality ignores
/// host wall-clock timings).
#[test]
fn recovery_reports_replay_bit_identically() {
    let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).unwrap();
    let b = vec![0.5, 1.0, -0.25];
    let plan = FaultPlan::new(1234)
        .with_event(FaultEvent::transient(
            FaultKind::NoiseBurst {
                unit: UnitId::Integrator(0),
                amplitude: 0.04,
            },
            0.0,
            2.5e-3,
        ))
        .with_event(FaultEvent::transient(
            FaultKind::OffsetDrift {
                unit: UnitId::Integrator(2),
                magnitude: 0.03,
                ramp_s: 1e-4,
            },
            3e-3,
            4e-3,
        ));
    let run = || {
        let mut solver =
            SupervisedSolver::new(&a, &faultable_config(), &RecoveryConfig::default()).unwrap();
        solver.inject_faults(plan.clone());
        solver.solve(&b).unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first.recovery, second.recovery);
    assert_eq!(first.solution, second.solution);
    assert_eq!(first.analog, second.analog);
}

/// The full fault matrix on a 3×3 Poisson system: every fault kind is either
/// recovered from (analog or digital path) or surfaced as a structured
/// error — never a panic, never a silently wrong answer.
#[test]
fn every_fault_kind_is_recovered_or_reported() {
    let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).unwrap();
    let b = vec![1.0, 0.5, 1.0];
    let b_norm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    let events = vec![
        FaultEvent::transient(
            FaultKind::OffsetDrift {
                unit: UnitId::Integrator(1),
                magnitude: 0.05,
                ramp_s: 1e-4,
            },
            0.0,
            5e-3,
        ),
        FaultEvent::transient(
            FaultKind::GainDrift {
                unit: UnitId::Multiplier(0),
                magnitude: 0.1,
                ramp_s: 1e-4,
            },
            0.0,
            5e-3,
        ),
        FaultEvent::transient(
            FaultKind::NoiseBurst {
                unit: UnitId::Integrator(0),
                amplitude: 0.05,
            },
            0.0,
            2.5e-3,
        ),
        FaultEvent::persistent(
            FaultKind::StuckAtRail {
                integrator: 0,
                rail: Rail::Positive,
            },
            0.0,
        ),
        FaultEvent::transient(FaultKind::AdcBitFlip { adc: 0, bit: 11 }, 0.0, 4e-3),
        FaultEvent::persistent(FaultKind::SpiBitFlip { byte: 2, bit: 5 }, 0.0),
        FaultEvent::persistent(
            FaultKind::LutCorruption {
                lut: 0,
                entry: 10,
                value: 0.9,
            },
            0.0,
        ),
    ];
    for event in events {
        let label = format!("{event:?}");
        let mut solver =
            SupervisedSolver::new(&a, &faultable_config(), &RecoveryConfig::default()).unwrap();
        solver.inject_faults(FaultPlan::new(5).with_event(event));
        match solver.solve(&b) {
            Ok(report) => {
                // Whatever path was taken, the answer must actually be good.
                let residual = a.residual_norm(&report.solution, &b) / b_norm;
                assert!(residual < 1e-2, "{label}: residual {residual:.3e}");
            }
            Err(e) => {
                // Acceptable only as a structured solver error.
                assert!(
                    matches!(
                        e,
                        SolverError::RecoveryExhausted { .. }
                            | SolverError::NoSteadyState { .. }
                            | SolverError::RescaleExhausted { .. }
                            | SolverError::Analog(_)
                    ),
                    "{label}: unexpected error {e:?}"
                );
            }
        }
    }
}

/// The `action=` field of every `solver.recovery.attempt` event, in order.
fn recovery_actions(snapshot: &TraceSnapshot) -> Vec<String> {
    snapshot
        .events()
        .filter(|e| e.kind == "solver.recovery.attempt")
        .map(|e| {
            e.field("action")
                .expect("attempt event carries an action")
                .to_string()
        })
        .collect()
}

/// The `path=` field of the single `solver.recovery.final` event.
fn final_recovery_path(snapshot: &TraceSnapshot) -> String {
    let finals: Vec<_> = snapshot
        .events()
        .filter(|e| e.kind == "solver.recovery.final")
        .collect();
    assert_eq!(finals.len(), 1, "exactly one final event per solve");
    finals[0]
        .field("path")
        .expect("final event carries a path")
        .to_string()
}

/// Golden escalation ladder: a persistent offset drift far beyond the ±0.08
/// trim range defeats every analog recovery rung in the documented order —
/// cool-down retry, recalibration, remap onto a fresh instance, one last
/// retry — before the supervisor hands the problem to digital CG. The
/// structured event journal records exactly that ladder, and a replay of
/// the same fault plan reproduces it line for line.
#[test]
fn recovery_ladder_journal_matches_golden_sequence() {
    if !obs::ENABLED {
        return;
    }
    let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).unwrap();
    let b = [1.0, 0.5, 1.0];
    let run = || {
        let rec = MemoryRecorder::shared();
        let report = obs::with_recorder(rec.clone(), || {
            let mut solver =
                SupervisedSolver::new(&a, &faultable_config(), &RecoveryConfig::default()).unwrap();
            solver.inject_faults(FaultPlan::new(3).with_event(FaultEvent::persistent(
                FaultKind::OffsetDrift {
                    unit: UnitId::Multiplier(0),
                    magnitude: 0.3,
                    ramp_s: 0.0,
                },
                0.0,
            )));
            solver.solve(&b).unwrap()
        });
        (report, rec.snapshot())
    };
    let (report, snapshot) = run();
    assert_eq!(report.recovery.final_path, FinalPath::DigitalFallback);
    assert_eq!(
        recovery_actions(&snapshot),
        [
            "retry",
            "recalibrate",
            "remap",
            "retry",
            "digital_fallback",
            "cg_fallback"
        ],
        "journal:\n{}",
        snapshot.deterministic_lines().join("\n")
    );
    assert_eq!(final_recovery_path(&snapshot), "digital_fallback");
    assert_eq!(snapshot.counter("solver.recovery.recalibrations"), 1);
    assert_eq!(snapshot.counter("solver.recovery.remaps"), 1);
    assert_eq!(snapshot.counter("solver.recovery.rejected_attempts"), 5);
    // Replay: same fault plan, bit-identical journal.
    let (_, replay) = run();
    assert_eq!(snapshot.deterministic_lines(), replay.deterministic_lines());
}

/// The happy half of the ladder: a drift *within* the trim range costs one
/// cool-down retry, is trimmed out by the recalibration rung, and the next
/// attempt is accepted — the journal stops at `recalibrate → accept` with
/// no remap and no fallback.
#[test]
fn recalibration_rung_cures_trimmable_drift() {
    if !obs::ENABLED {
        return;
    }
    let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).unwrap();
    let b = [1.0, 0.5, 1.0];
    let rec = MemoryRecorder::shared();
    let report = obs::with_recorder(rec.clone(), || {
        let mut solver =
            SupervisedSolver::new(&a, &faultable_config(), &RecoveryConfig::default()).unwrap();
        solver.inject_faults(FaultPlan::new(3).with_event(FaultEvent::persistent(
            FaultKind::OffsetDrift {
                unit: UnitId::Multiplier(0),
                magnitude: 0.05,
                ramp_s: 0.0,
            },
            0.0,
        )));
        solver.solve(&b).unwrap()
    });
    let snapshot = rec.snapshot();
    assert_eq!(report.recovery.final_path, FinalPath::AnalogAfterRecovery);
    assert_eq!(
        recovery_actions(&snapshot),
        ["retry", "recalibrate", "accept"],
        "journal:\n{}",
        snapshot.deterministic_lines().join("\n")
    );
    assert_eq!(final_recovery_path(&snapshot), "analog_after_recovery");
    assert_eq!(snapshot.counter("solver.recovery.recalibrations"), 1);
    assert_eq!(snapshot.counter("solver.recovery.remaps"), 0);
}

/// A persistent stuck-at-rail integrator cannot be retried away: the
/// supervisor remaps once, then degrades gracefully to the digital fallback.
#[test]
fn persistent_fault_degrades_to_digital_fallback() {
    let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).unwrap();
    let recovery = RecoveryConfig {
        max_attempts: 3,
        ..RecoveryConfig::default()
    };
    let mut solver = SupervisedSolver::new(&a, &faultable_config(), &recovery).unwrap();
    solver.inject_faults(FaultPlan::new(0).with_event(FaultEvent::persistent(
        FaultKind::StuckAtRail {
            integrator: 1,
            rail: Rail::Negative,
        },
        0.0,
    )));
    let b = vec![1.0, 1.0, 1.0];
    let report = solver.solve(&b).unwrap();
    assert_eq!(report.recovery.final_path, FinalPath::DigitalFallback);
    assert!(report.recovery.remaps >= 1);
    assert!(report
        .recovery
        .attempts
        .iter()
        .any(|attempt| attempt.classification.is_some()));
    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(a.residual_norm(&report.solution, &b) / b_norm < 1e-6);
}

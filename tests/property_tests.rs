//! Property-style tests on core invariants, spanning crates.
//!
//! Cases are drawn from seeded deterministic streams, so every run sweeps
//! the same parameter sets and any failure reproduces immediately.

use analog_accel::linalg::rng::Rng64;
use analog_accel::prelude::*;

/// Builds a random SPD, diagonally dominant matrix of dimension `n` from a
/// seed (strict dominance guarantees positive definiteness).
fn spd_matrix(n: usize, seed: u64) -> CsrMatrix {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 // in [0, 1)
    };
    let mut triplets = Vec::new();
    let mut row_sums = vec![0.0; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if next() < 0.4 {
                let v = next() - 0.5;
                triplets.push(Triplet::new(i, j, v));
                triplets.push(Triplet::new(j, i, v));
                row_sums[i] += v.abs();
                row_sums[j] += v.abs();
            }
        }
    }
    for (i, s) in row_sums.iter().enumerate() {
        triplets.push(Triplet::new(i, i, s + 0.5 + next()));
    }
    CsrMatrix::from_triplets(n, &triplets).unwrap()
}

/// The analog gradient-flow steady state solves the system: for any SPD
/// diagonally-dominant matrix and bounded rhs, the accelerator's answer
/// matches the direct solve within ADC-limited tolerance.
#[test]
fn analog_steady_state_solves_spd_systems() {
    let mut rng = Rng64::seed_from_u64(10);
    for _ in 0..16 {
        let n = 2 + rng.below(4);
        let seed = 1 + rng.next_u64() % 499;
        let a = spd_matrix(n, seed);
        let mut state = 1 + rng.next_u64() % 499;
        let b: Vec<f64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
            })
            .collect();

        let exact = analog_accel::linalg::direct::solve(&a.to_dense(), &b).unwrap();
        let umax = exact.iter().fold(0.1f64, |m, v| m.max(v.abs()));

        let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
        let report = solver.solve(&b).unwrap();
        for (x, e) in report.solution.iter().zip(&exact) {
            assert!((x - e).abs() < 0.02 * umax, "{} vs {}", x, e);
        }
    }
}

/// Value/time scaling invariance: scaling A and b by the same factor leaves
/// the recovered solution unchanged (the §VI inset).
#[test]
fn scaling_invariance() {
    let mut rng = Rng64::seed_from_u64(11);
    for _ in 0..16 {
        let n = 2 + rng.below(4);
        let seed = 1 + rng.next_u64() % 499;
        let scale_exp = rng.below(9) as i32 - 3;
        let a = spd_matrix(n, seed);
        let s = 10f64.powi(scale_exp);
        let a_scaled = a.scaled(s);
        let b: Vec<f64> = (0..n).map(|i| 0.3 + 0.1 * i as f64).collect();
        let b_scaled: Vec<f64> = b.iter().map(|v| v * s).collect();

        let mut solver1 = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
        let mut solver2 = AnalogSystemSolver::new(&a_scaled, &SolverConfig::ideal()).unwrap();
        let u1 = solver1.solve(&b).unwrap().solution;
        let u2 = solver2.solve(&b_scaled).unwrap().solution;
        for (x, y) in u1.iter().zip(&u2) {
            assert!((x - y).abs() < 0.02 * x.abs().max(0.1), "{} vs {}", x, y);
        }
    }
}

/// Refinement monotonicity: Algorithm 2 never increases the residual.
#[test]
fn refinement_never_regresses() {
    let mut rng = Rng64::seed_from_u64(12);
    for _ in 0..16 {
        let n = 2 + rng.below(4);
        let seed = 1 + rng.next_u64() % 199;
        let a = spd_matrix(n, seed);
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) - 1.0) / 3.0).collect();
        let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
        let refined = solve_refined(
            &mut solver,
            &b,
            &RefineConfig {
                tolerance: 1e-9,
                max_rounds: 10,
                min_progress: 1.0,
                compensated: false,
            },
        )
        .unwrap();
        for pair in refined.residual_history.windows(2) {
            assert!(pair[1] <= pair[0] * 1.0 + 1e-12);
        }
    }
}

/// CG and the analog path agree on Poisson problems of any small size.
#[test]
fn cg_and_analog_agree_on_poisson() {
    for l in 2usize..7 {
        let problem = Poisson2d::new(l, |x, y| x - y + 0.5).unwrap();
        let a = problem.assemble();
        let digital = cg(
            problem.operator(),
            problem.rhs(),
            &IterativeConfig::with_stopping(StoppingCriterion::RelativeResidual(1e-12)),
        )
        .unwrap();
        let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
        let refined = solve_refined(
            &mut solver,
            problem.rhs(),
            &RefineConfig {
                tolerance: 1e-8,
                ..RefineConfig::default()
            },
        )
        .unwrap();
        let scale = digital.solution.iter().fold(0.01f64, |m, v| m.max(v.abs()));
        for (x, e) in refined.solution.iter().zip(&digital.solution) {
            assert!((x - e).abs() < 1e-5 * scale.max(1.0), "{} vs {}", x, e);
        }
    }
}

/// Trajectory sampling is exact at knots and bounded between them.
#[test]
fn trajectory_interpolation_bounds() {
    let mut rng = Rng64::seed_from_u64(13);
    for _ in 0..32 {
        let len = 2 + rng.below(18);
        let points: Vec<f64> = (0..len).map(|_| rng.range(-1.0, 1.0)).collect();
        let mut traj = analog_accel::ode::Trajectory::new(0.0, vec![points[0]]);
        for (k, v) in points.iter().enumerate().skip(1) {
            traj.push(k as f64, vec![*v]);
        }
        // Exact at knots.
        for (k, v) in points.iter().enumerate() {
            let s = traj.sample(k as f64).unwrap();
            assert!((s[0] - v).abs() < 1e-12);
        }
        // Bounded between knots.
        for k in 0..points.len() - 1 {
            let mid = traj.sample(k as f64 + 0.5).unwrap()[0];
            let lo = points[k].min(points[k + 1]);
            let hi = points[k].max(points[k + 1]);
            assert!(mid >= lo - 1e-12 && mid <= hi + 1e-12);
        }
    }
}

/// ADC round trip: every code survives value_of → (re)conversion.
#[test]
fn adc_code_round_trip() {
    let mut rng = Rng64::seed_from_u64(14);
    for _ in 0..32 {
        let bits = 4 + rng.below(10) as u32;
        let code_frac = rng.uniform();
        let chip = AnalogChip::new(ChipConfig::ideal().with_adc_bits(bits));
        let levels = 2u32.pow(bits);
        let code = ((code_frac * levels as f64) as u32).min(levels - 1);
        let v = chip.value_of(code);
        assert!(v.abs() <= 1.0);
        // Quantization error of any in-range value is at most one LSB.
        let lsb = 2.0 / levels as f64;
        assert!((chip.value_of(code) - v).abs() < lsb);
    }
}

// ---------------------------------------------------------------------------
// Differential fuzzing of the plan-optimization pipeline (DESIGN.md §13):
// seeded random netlists × random process variation × random fault plans,
// checked against the reference evaluator and the unoptimized tape.
// ---------------------------------------------------------------------------

use analog_accel::analog::netlist::{InputPort, OutputPort};
use analog_accel::analog::units::UnitId;
use analog_accel::analog::{
    EvalStrategy, LaneBindings, NonIdealityConfig, PassConfig, Rail, RunReport,
};

/// What a random case needs to replay itself: the committed chip plus the
/// indices it actually wired (for generating in-range lane bindings).
struct RandomCircuit {
    chip: AnalogChip,
    n_int: usize,
    dacs: Vec<usize>,
}

/// Builds a random committed netlist from `seed` — same seed, same chip,
/// including the process-variation draw.
///
/// Every integrator's output runs through a fanout whose first branch
/// closes a strictly negative self-feedback loop (gain magnitude ≥ 0.3,
/// sometimes through a two-multiplier chain for the fusion pass to find);
/// the second branch randomly taps an ADC, couples weakly (|g| ≤ 0.2,
/// below every self gain, preserving diagonal dominance) into the next
/// integrator, drives a dangling multiplier (DCE fodder), or floats (a
/// sink op). DACs add constant drives. Dominance makes every draw settle,
/// so the differential checks compare steady states, not timeouts.
fn random_circuit(seed: u64) -> RandomCircuit {
    let mut rng = Rng64::seed_from_u64(seed);
    let n_int = 1 + rng.below(3);
    let mut config = ChipConfig::ideal();
    config.nonideal = NonIdealityConfig {
        offset_std: rng.range(0.0, 2e-3),
        gain_error_std: rng.range(0.0, 5e-3),
        readout_noise_std: 0.0,
        seed: rng.next_u64(),
    };
    let mut chip = AnalogChip::new(config);
    let mut mul = 0usize; // next free multiplier (8 on the prototype)
    let mut adc = 0usize; // next free ADC (2)
    let mut dacs = Vec::new();
    for i in 0..n_int {
        // One self-loop multiplier must stay free per pending integrator.
        let reserved = n_int - i - 1;
        let fan = UnitId::Fanout(i);
        chip.set_conn(OutputPort::of(UnitId::Integrator(i)), InputPort::of(fan))
            .unwrap();
        // Branch 0: the stabilizing self-loop. |g| ≥ 0.5 with DAC drives
        // ≤ 0.2 and couplings ≤ 0.1 keeps every steady state inside the
        // ±1 rails, so no draw clips-and-spins until the τ cap.
        let g = -rng.range(0.5, 0.95);
        let m0 = mul;
        mul += 1;
        chip.set_conn(
            OutputPort { unit: fan, port: 0 },
            InputPort::of(UnitId::Multiplier(m0)),
        )
        .unwrap();
        let loop_tail = if mul + reserved < 8 && rng.below(2) == 0 {
            // Two-multiplier chain with the same net gain: fusion fodder.
            // g1 ≥ |g| keeps both factors inside the ±1 gain limit.
            let g1 = rng.range(g.abs().max(0.5), 1.0);
            let m1 = mul;
            mul += 1;
            chip.set_mul_gain(m0, g1).unwrap();
            chip.set_mul_gain(m1, g / g1).unwrap();
            chip.set_conn(
                OutputPort::of(UnitId::Multiplier(m0)),
                InputPort::of(UnitId::Multiplier(m1)),
            )
            .unwrap();
            m1
        } else {
            chip.set_mul_gain(m0, g).unwrap();
            m0
        };
        chip.set_conn(
            OutputPort::of(UnitId::Multiplier(loop_tail)),
            InputPort::of(UnitId::Integrator(i)),
        )
        .unwrap();
        // Branch 1: observation, weak coupling, dead code, or nothing.
        let b1 = OutputPort { unit: fan, port: 1 };
        match rng.below(4) {
            0 if adc < 2 => {
                chip.set_conn(b1, InputPort::of(UnitId::Adc(adc))).unwrap();
                adc += 1;
            }
            1 if n_int > 1 && mul + reserved < 8 => {
                let m = mul;
                mul += 1;
                let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
                chip.set_mul_gain(m, sign * rng.range(0.05, 0.1)).unwrap();
                chip.set_conn(b1, InputPort::of(UnitId::Multiplier(m)))
                    .unwrap();
                chip.set_conn(
                    OutputPort::of(UnitId::Multiplier(m)),
                    InputPort::of(UnitId::Integrator((i + 1) % n_int)),
                )
                .unwrap();
            }
            2 if mul + reserved < 8 => {
                let m = mul;
                mul += 1;
                chip.set_mul_gain(m, rng.range(-1.0, 1.0)).unwrap();
                chip.set_conn(b1, InputPort::of(UnitId::Multiplier(m)))
                    .unwrap();
            }
            _ => {} // floats: lowers to a sink op
        }
        if dacs.len() < 2 && rng.below(2) == 0 {
            let d = dacs.len();
            chip.set_dac_constant(d, rng.range(-0.2, 0.2)).unwrap();
            chip.set_conn(
                OutputPort::of(UnitId::Dac(d)),
                InputPort::of(UnitId::Integrator(i)),
            )
            .unwrap();
            dacs.push(d);
        }
        chip.set_int_initial(i, rng.range(-0.5, 0.5)).unwrap();
    }
    chip.cfg_commit().unwrap();
    RandomCircuit { chip, n_int, dacs }
}

/// Fuzz-harness engine options: `max_tau` capped so a pathological draw
/// times out in milliseconds instead of spinning through the default 10⁶ τ
/// (a timed-out run still compares fine — every leg runs the same span).
fn base() -> EngineOptions {
    EngineOptions {
        max_tau: 2_000.0,
        ..EngineOptions::default()
    }
}

fn engine(passes: PassConfig) -> EngineOptions {
    EngineOptions { passes, ..base() }
}

/// Asserts `opt` is inside the documented tolerance contract of `reference`
/// (`|opt − ref| ≤ 1e-5·(1 + |ref|)` on integrator values and ADC inputs).
fn assert_within_contract(opt: &RunReport, reference: &RunReport, label: &str) {
    for (idx, r) in &reference.integrator_values {
        let o = opt.integrator_values[idx];
        assert!(
            (o - r).abs() <= 1e-5 * (1.0 + r.abs()),
            "{label} integrator {idx}: optimized {o} vs reference {r}"
        );
    }
    for (idx, r) in &reference.adc_inputs {
        let o = opt.adc_inputs[idx];
        assert!(
            (o - r).abs() <= 1e-5 * (1.0 + r.abs()),
            "{label} adc {idx}: optimized {o} vs reference {r}"
        );
    }
}

/// Fully-optimized plans on 64 random netlists stay inside the tolerance
/// contract against the reference evaluator (and every case actually
/// lowers an optimized plan). Exception-latching draws are exempt per the
/// contract — but the generator's diagonal dominance keeps those rare.
#[test]
fn optimized_plans_match_reference_on_random_netlists() {
    let mut skipped = 0usize;
    for case in 0..64u64 {
        let seed = 0xD1FF_0000 + case;
        let mut reference = random_circuit(seed);
        let reference = reference
            .chip
            .exec(&EngineOptions {
                eval_strategy: EvalStrategy::Reference,
                ..base()
            })
            .unwrap();
        let mut optimized = random_circuit(seed);
        let report = optimized.chip.exec(&engine(PassConfig::full())).unwrap();
        assert_eq!(optimized.chip.plan_stats().optimized_lowered, 1);
        if reference.exceptions.any() {
            skipped += 1;
            continue;
        }
        assert_within_contract(&report, &reference, &format!("case {case}"));
    }
    assert!(skipped <= 8, "{skipped} of 64 draws latched exceptions");
}

/// `PassConfig::none()` is bit-identical to the default options on every
/// random netlist — whole-`RunReport` equality, sequential and through
/// `exec_batch` lanes — and optimized batch lanes obey the same tolerance
/// contract lane by lane.
#[test]
fn none_config_stays_bit_identical_on_random_netlists() {
    for case in 0..64u64 {
        let seed = 0xB17E_0000 + case;
        let mut rng = Rng64::seed_from_u64(!seed);
        let mut a = random_circuit(seed);
        let baseline = a.chip.exec(&base()).unwrap();
        let mut b = random_circuit(seed);
        let via_none = b.chip.exec(&engine(PassConfig::none())).unwrap();
        assert_eq!(baseline, via_none, "case {case}: sequential");

        let shape = random_circuit(seed);
        let lanes: Vec<LaneBindings> = (0..2 + rng.below(3))
            .map(|_| {
                let mut lane = LaneBindings::default();
                if !shape.dacs.is_empty() && rng.below(2) == 0 {
                    lane.dac_values = Some(
                        shape
                            .dacs
                            .iter()
                            .map(|&d| (d, rng.range(-0.4, 0.4)))
                            .collect(),
                    );
                }
                if rng.below(2) == 0 {
                    lane.int_initial = Some(
                        (0..shape.n_int)
                            .map(|i| (i, rng.range(-0.5, 0.5)))
                            .collect(),
                    );
                }
                lane
            })
            .collect();
        let mut a = random_circuit(seed);
        let batch_default = a.chip.exec_batch(&lanes, &base()).unwrap();
        let mut b = random_circuit(seed);
        let batch_none = b
            .chip
            .exec_batch(&lanes, &engine(PassConfig::none()))
            .unwrap();
        assert_eq!(batch_default, batch_none, "case {case}: batched");

        let mut o = random_circuit(seed);
        let batch_opt = o
            .chip
            .exec_batch(&lanes, &engine(PassConfig::full()))
            .unwrap();
        for (lane, (ro, rr)) in batch_opt
            .reports
            .iter()
            .zip(&batch_default.reports)
            .enumerate()
        {
            if rr.exceptions.any() {
                continue;
            }
            assert_within_contract(ro, rr, &format!("case {case} lane {lane}"));
        }
    }
}

/// An armed fault plan always routes through the bit-exact unoptimized
/// tape, whatever passes were requested: whole-report equality against a
/// `PassConfig::none()` run, and no optimized lowering, on 64 random
/// netlist × fault-plan draws.
#[test]
fn fault_plans_stay_bit_exact_on_random_netlists() {
    for case in 0..64u64 {
        let seed = 0xFA17_0000 + case;
        let mut rng = Rng64::seed_from_u64(seed ^ 0x5EED_CAFE);
        let kind = match rng.below(3) {
            0 => FaultKind::GainDrift {
                unit: UnitId::Multiplier(rng.below(2)),
                magnitude: rng.range(0.01, 0.1),
                ramp_s: 0.0,
            },
            1 => FaultKind::NoiseBurst {
                unit: UnitId::Integrator(0),
                amplitude: rng.range(0.005, 0.02),
            },
            _ => FaultKind::StuckAtRail {
                integrator: 0,
                rail: Rail::Positive,
            },
        };
        let plan = FaultPlan::new(rng.next_u64()).with_event(FaultEvent {
            kind,
            start_s: 0.0,
            duration_s: Some(rng.range(1e-4, 2e-3)),
        });
        let run = |passes: PassConfig| {
            let mut circuit = random_circuit(seed);
            circuit.chip.inject_fault_plan(plan.clone());
            let report = circuit.chip.exec(&engine(passes)).unwrap();
            (report, circuit.chip.plan_stats().optimized_lowered)
        };
        let (with_passes, lowered) = run(PassConfig::full());
        let (without, _) = run(PassConfig::none());
        assert_eq!(
            with_passes, without,
            "case {case}: armed faults must use the bit-exact tape"
        );
        assert_eq!(
            lowered, 0,
            "case {case}: no optimized lowering under faults"
        );
    }
}

/// Gershgorin bounds always enclose the power-iteration estimate.
#[test]
fn gershgorin_encloses_dominant_eigenvalue() {
    let mut rng = Rng64::seed_from_u64(15);
    for _ in 0..32 {
        let n = 2 + rng.below(6);
        let seed = 1 + rng.next_u64() % 299;
        let a = spd_matrix(n, seed);
        let (lo, hi) = analog_accel::linalg::eigen::gershgorin_bounds(&a);
        let est = analog_accel::linalg::eigen::power_iteration(&a, 20_000, 1e-10).unwrap();
        assert!(est.value <= hi + 1e-9);
        assert!(est.value >= lo - 1e-9);
    }
}

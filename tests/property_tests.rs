//! Property-style tests on core invariants, spanning crates.
//!
//! Cases are drawn from seeded deterministic streams, so every run sweeps
//! the same parameter sets and any failure reproduces immediately.

use analog_accel::linalg::rng::Rng64;
use analog_accel::prelude::*;

/// Builds a random SPD, diagonally dominant matrix of dimension `n` from a
/// seed (strict dominance guarantees positive definiteness).
fn spd_matrix(n: usize, seed: u64) -> CsrMatrix {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 // in [0, 1)
    };
    let mut triplets = Vec::new();
    let mut row_sums = vec![0.0; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if next() < 0.4 {
                let v = next() - 0.5;
                triplets.push(Triplet::new(i, j, v));
                triplets.push(Triplet::new(j, i, v));
                row_sums[i] += v.abs();
                row_sums[j] += v.abs();
            }
        }
    }
    for (i, s) in row_sums.iter().enumerate() {
        triplets.push(Triplet::new(i, i, s + 0.5 + next()));
    }
    CsrMatrix::from_triplets(n, &triplets).unwrap()
}

/// The analog gradient-flow steady state solves the system: for any SPD
/// diagonally-dominant matrix and bounded rhs, the accelerator's answer
/// matches the direct solve within ADC-limited tolerance.
#[test]
fn analog_steady_state_solves_spd_systems() {
    let mut rng = Rng64::seed_from_u64(10);
    for _ in 0..16 {
        let n = 2 + rng.below(4);
        let seed = 1 + rng.next_u64() % 499;
        let a = spd_matrix(n, seed);
        let mut state = 1 + rng.next_u64() % 499;
        let b: Vec<f64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
            })
            .collect();

        let exact = analog_accel::linalg::direct::solve(&a.to_dense(), &b).unwrap();
        let umax = exact.iter().fold(0.1f64, |m, v| m.max(v.abs()));

        let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
        let report = solver.solve(&b).unwrap();
        for (x, e) in report.solution.iter().zip(&exact) {
            assert!((x - e).abs() < 0.02 * umax, "{} vs {}", x, e);
        }
    }
}

/// Value/time scaling invariance: scaling A and b by the same factor leaves
/// the recovered solution unchanged (the §VI inset).
#[test]
fn scaling_invariance() {
    let mut rng = Rng64::seed_from_u64(11);
    for _ in 0..16 {
        let n = 2 + rng.below(4);
        let seed = 1 + rng.next_u64() % 499;
        let scale_exp = rng.below(9) as i32 - 3;
        let a = spd_matrix(n, seed);
        let s = 10f64.powi(scale_exp);
        let a_scaled = a.scaled(s);
        let b: Vec<f64> = (0..n).map(|i| 0.3 + 0.1 * i as f64).collect();
        let b_scaled: Vec<f64> = b.iter().map(|v| v * s).collect();

        let mut solver1 = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
        let mut solver2 = AnalogSystemSolver::new(&a_scaled, &SolverConfig::ideal()).unwrap();
        let u1 = solver1.solve(&b).unwrap().solution;
        let u2 = solver2.solve(&b_scaled).unwrap().solution;
        for (x, y) in u1.iter().zip(&u2) {
            assert!((x - y).abs() < 0.02 * x.abs().max(0.1), "{} vs {}", x, y);
        }
    }
}

/// Refinement monotonicity: Algorithm 2 never increases the residual.
#[test]
fn refinement_never_regresses() {
    let mut rng = Rng64::seed_from_u64(12);
    for _ in 0..16 {
        let n = 2 + rng.below(4);
        let seed = 1 + rng.next_u64() % 199;
        let a = spd_matrix(n, seed);
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) - 1.0) / 3.0).collect();
        let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
        let refined = solve_refined(
            &mut solver,
            &b,
            &RefineConfig {
                tolerance: 1e-9,
                max_rounds: 10,
                min_progress: 1.0,
            },
        )
        .unwrap();
        for pair in refined.residual_history.windows(2) {
            assert!(pair[1] <= pair[0] * 1.0 + 1e-12);
        }
    }
}

/// CG and the analog path agree on Poisson problems of any small size.
#[test]
fn cg_and_analog_agree_on_poisson() {
    for l in 2usize..7 {
        let problem = Poisson2d::new(l, |x, y| x - y + 0.5).unwrap();
        let a = problem.assemble();
        let digital = cg(
            problem.operator(),
            problem.rhs(),
            &IterativeConfig::with_stopping(StoppingCriterion::RelativeResidual(1e-12)),
        )
        .unwrap();
        let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
        let refined = solve_refined(
            &mut solver,
            problem.rhs(),
            &RefineConfig {
                tolerance: 1e-8,
                ..RefineConfig::default()
            },
        )
        .unwrap();
        let scale = digital.solution.iter().fold(0.01f64, |m, v| m.max(v.abs()));
        for (x, e) in refined.solution.iter().zip(&digital.solution) {
            assert!((x - e).abs() < 1e-5 * scale.max(1.0), "{} vs {}", x, e);
        }
    }
}

/// Trajectory sampling is exact at knots and bounded between them.
#[test]
fn trajectory_interpolation_bounds() {
    let mut rng = Rng64::seed_from_u64(13);
    for _ in 0..32 {
        let len = 2 + rng.below(18);
        let points: Vec<f64> = (0..len).map(|_| rng.range(-1.0, 1.0)).collect();
        let mut traj = analog_accel::ode::Trajectory::new(0.0, vec![points[0]]);
        for (k, v) in points.iter().enumerate().skip(1) {
            traj.push(k as f64, vec![*v]);
        }
        // Exact at knots.
        for (k, v) in points.iter().enumerate() {
            let s = traj.sample(k as f64).unwrap();
            assert!((s[0] - v).abs() < 1e-12);
        }
        // Bounded between knots.
        for k in 0..points.len() - 1 {
            let mid = traj.sample(k as f64 + 0.5).unwrap()[0];
            let lo = points[k].min(points[k + 1]);
            let hi = points[k].max(points[k + 1]);
            assert!(mid >= lo - 1e-12 && mid <= hi + 1e-12);
        }
    }
}

/// ADC round trip: every code survives value_of → (re)conversion.
#[test]
fn adc_code_round_trip() {
    let mut rng = Rng64::seed_from_u64(14);
    for _ in 0..32 {
        let bits = 4 + rng.below(10) as u32;
        let code_frac = rng.uniform();
        let chip = AnalogChip::new(ChipConfig::ideal().with_adc_bits(bits));
        let levels = 2u32.pow(bits);
        let code = ((code_frac * levels as f64) as u32).min(levels - 1);
        let v = chip.value_of(code);
        assert!(v.abs() <= 1.0);
        // Quantization error of any in-range value is at most one LSB.
        let lsb = 2.0 / levels as f64;
        assert!((chip.value_of(code) - v).abs() < lsb);
    }
}

/// Gershgorin bounds always enclose the power-iteration estimate.
#[test]
fn gershgorin_encloses_dominant_eigenvalue() {
    let mut rng = Rng64::seed_from_u64(15);
    for _ in 0..32 {
        let n = 2 + rng.below(6);
        let seed = 1 + rng.next_u64() % 299;
        let a = spd_matrix(n, seed);
        let (lo, hi) = analog_accel::linalg::eigen::gershgorin_bounds(&a);
        let est = analog_accel::linalg::eigen::power_iteration(&a, 20_000, 1e-10).unwrap();
        assert!(est.value <= hi + 1e-9);
        assert!(est.value >= lo - 1e-9);
    }
}

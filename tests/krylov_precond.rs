//! Integration tests for the analog-preconditioned Krylov subsystem: the
//! compensated kernels against a wide-integer oracle, the flexible-CG loop
//! under every runtime fault kind, and replay determinism of the FCG path
//! through the fleet at any worker count.

use analog_accel::analog::units::UnitId;
use analog_accel::linalg::compensated::{self, TwoFloat};
use analog_accel::linalg::rng::mix64;
use analog_accel::linalg::vector;
use analog_accel::obs;
use analog_accel::prelude::*;
use analog_accel::solver::PrecondKind;

/// A deterministic dyadic value in `[-2^10, 2^10)` on the `2^-10` grid:
/// exactly representable in f64 AND as an i128 scaled by `2^10`, so products
/// and sums of pairs are exact in i128 fixed point scaled by `2^20`.
fn dyadic(seed: u64, i: u64) -> f64 {
    let bits = mix64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i);
    // 21-bit signed integer / 2^10.
    let q = (bits % (1 << 21)) as i64 - (1 << 20);
    q as f64 / 1024.0
}

/// The same value as its exact scaled-integer representation (`value·2^10`).
fn dyadic_scaled(v: f64) -> i128 {
    let scaled = v * 1024.0;
    assert_eq!(scaled, scaled.trunc(), "value is off the dyadic grid");
    scaled as i128
}

/// `dot2` against an exact 128-bit fixed-point oracle on seeded random
/// vectors, differentially with the plain f64 dot: the compensated result
/// must match the oracle to a few roundings and never be further from it
/// than the naive accumulation.
#[test]
fn compensated_dot_matches_wide_integer_oracle() {
    let n = 4096;
    let mut comp_strictly_better = 0;
    for seed in 1u64..=8 {
        let x: Vec<f64> = (0..n).map(|i| dyadic(seed, i)).collect();
        // An exponent ladder spreads the product magnitudes over ~24 binary
        // orders: partial sums then need more than 53 mantissa bits, which
        // is exactly where naive f64 accumulation starts rounding. Each
        // value keeps its 21-bit mantissa, so products stay exact in i128.
        let y: Vec<f64> = (0..n)
            .map(|i| dyadic(seed ^ 0xabcd, i) * f64::powi(2.0, (i % 24) as i32))
            .collect();
        // Exact: products are multiples of 2^-20 with |p| ≤ 2^64, so the
        // sum of 4096 of them fits an i128 scaled by 2^20 with room to spare.
        let exact_scaled: i128 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| dyadic_scaled(*a) * dyadic_scaled(*b))
            .sum();
        let exact = exact_scaled as f64 / (1u64 << 20) as f64;

        let comp = compensated::dot2(&x, &y).value();
        let naive = vector::dot(&x, &y);
        let comp_err = (comp - exact).abs();
        let naive_err = (naive - exact).abs();
        // Dot2 is as accurate as twice the working precision rounded once;
        // the oracle's own i128→f64 conversion costs up to half an ulp, so
        // allow a few ulp of the result.
        let ulp = exact.abs().max(1.0) * f64::EPSILON;
        assert!(
            comp_err <= 4.0 * ulp,
            "seed {seed}: dot2 off by {comp_err:.3e} (> {:.3e})",
            4.0 * ulp
        );
        assert!(
            comp_err <= naive_err,
            "seed {seed}: dot2 err {comp_err:.3e} worse than naive {naive_err:.3e}"
        );
        if comp_err < naive_err {
            comp_strictly_better += 1;
        }
    }
    assert!(
        comp_strictly_better >= 6,
        "wide-range dots must actually exercise the compensation \
         (only {comp_strictly_better}/8 seeds showed a naive error)"
    );
}

/// `axpy2` against the same oracle: repeatedly adding increments far below
/// one ulp of the accumulator must survive exactly in the two-float pair,
/// while the plain f64 loop provably drops them.
#[test]
fn compensated_axpy_matches_wide_integer_oracle() {
    let n = 64usize;
    let steps = 500;
    // Increments on the 2^-60 grid, |a·x| < 2^-38: the running total
    // `1 + k·a·x` needs 61 mantissa bits, so the plain f64 loop must round
    // while the two-float pair carries it exactly — checkable bit for bit
    // in i128 fixed point scaled by 2^60 (both pair members land on the
    // same grid).
    let a = 3.0 / (1u128 << 50) as f64;
    let to_scaled = |v: f64| -> i128 {
        let s = v * (1u128 << 60) as f64;
        assert_eq!(s, s.trunc(), "value off the 2^-60 grid");
        s as i128
    };
    for seed in 1u64..=4 {
        let x: Vec<f64> = (0..n)
            .map(|i| (mix64(seed ^ i as u64) % 1024) as f64 / (1u64 << 10) as f64)
            .collect();
        let mut y = vec![TwoFloat::new(1.0); n];
        let mut y_naive = vec![1.0f64; n];
        for _ in 0..steps {
            compensated::axpy2(a, &x, &mut y);
            vector::axpy(a, &x, &mut y_naive);
        }
        let mut naive_rounded = 0;
        for (i, xi) in x.iter().enumerate() {
            // Exact in i128 scaled by 2^60: 1 + steps·a·x_i, where
            // a·x_i·2^60 = 3·(x_i·2^10).
            let exact_scaled = (1i128 << 60) + steps as i128 * 3 * dyadic_scaled(*xi);
            let pair_scaled = to_scaled(y[i].hi) + to_scaled(y[i].lo);
            assert_eq!(
                pair_scaled, exact_scaled,
                "seed {seed} i={i}: two-float accumulator must be bit-exact"
            );
            let naive_err = (to_scaled(y_naive[i]) - exact_scaled).unsigned_abs();
            if naive_err > 0 {
                naive_rounded += 1;
            }
        }
        // The increments are real: most lanes must show the plain f64 loop
        // actually losing bits the pair kept.
        assert!(
            naive_rounded > n / 2,
            "seed {seed}: naive loop rounded in only {naive_rounded}/{n} lanes"
        );
    }
}

/// A solver config whose settle cap is short enough that faulted runs fail
/// fast instead of integrating for hundreds of thousands of time constants.
fn faultable_config() -> SolverConfig {
    SolverConfig {
        engine: EngineOptions {
            stop_on_exception: true,
            max_tau: 300.0,
            ..EngineOptions::default()
        },
        ..SolverConfig::ideal()
    }
}

/// The tentpole's robustness acceptance: under every injectable fault kind,
/// the flexible-CG loop still converges to tolerance — at worst degrading
/// to the demoted (Jacobi) preconditioner's plain-CG-like iteration count —
/// and never diverges or panics.
#[test]
fn fcg_converges_under_every_fault_kind() {
    let a = CsrMatrix::from_row_access(&PoissonStencil::new_2d(4).unwrap());
    let n = a.dim();
    let b: Vec<f64> = (0..n).map(|i| 0.5 + ((i % 7) as f64) * 0.25).collect();
    let b_norm = vector::norm2(&b);
    let config = KrylovConfig::default();
    let plain = cg(
        &a,
        &b,
        &IterativeConfig::with_stopping(StoppingCriterion::RelativeResidual(config.tolerance)),
    )
    .unwrap();
    assert!(plain.converged);

    let events = vec![
        FaultEvent::transient(
            FaultKind::OffsetDrift {
                unit: UnitId::Integrator(1),
                magnitude: 0.05,
                ramp_s: 1e-4,
            },
            0.0,
            5e-3,
        ),
        FaultEvent::transient(
            FaultKind::GainDrift {
                unit: UnitId::Multiplier(0),
                magnitude: 0.1,
                ramp_s: 1e-4,
            },
            0.0,
            5e-3,
        ),
        FaultEvent::transient(
            FaultKind::NoiseBurst {
                unit: UnitId::Integrator(0),
                amplitude: 0.05,
            },
            0.0,
            2.5e-3,
        ),
        FaultEvent::persistent(
            FaultKind::StuckAtRail {
                integrator: 0,
                rail: Rail::Positive,
            },
            0.0,
        ),
        FaultEvent::transient(FaultKind::AdcBitFlip { adc: 0, bit: 11 }, 0.0, 4e-3),
        FaultEvent::persistent(FaultKind::SpiBitFlip { byte: 2, bit: 5 }, 0.0),
        FaultEvent::persistent(
            FaultKind::LutCorruption {
                lut: 0,
                entry: 10,
                value: 0.9,
            },
            0.0,
        ),
    ];
    for event in events {
        let label = format!("{event:?}");
        let mut sup =
            SupervisedSolver::new(&a, &faultable_config(), &RecoveryConfig::default()).unwrap();
        sup.inject_faults(FaultPlan::new(5).with_event(event));
        let mut precond = AnalogPreconditioner::new(&mut sup);
        let report = fcg_solve(&mut precond, &b, &config)
            .unwrap_or_else(|e| panic!("{label}: fcg errored: {e:?}"));
        assert!(
            report.converged,
            "{label}: did not converge, history {:?}",
            report.residual_history
        );
        // Never diverges: every recorded residual is finite, and the
        // independent digital check agrees the answer is good.
        assert!(report.residual_history.iter().all(|r| r.is_finite()));
        let rel = a.residual_norm(&report.solution, &b) / b_norm;
        assert!(
            rel <= config.tolerance * 10.0,
            "{label}: residual {rel:.3e}"
        );
        // Worst case is demotion to the digital Jacobi application, whose
        // iteration count is plain-CG-like on this constant-diagonal system
        // — a hard fault must not inflate the count beyond that.
        assert!(
            report.iterations <= plain.iterations + 2,
            "{label}: {} iters exceeds plain CG {} + slack",
            report.iterations,
            plain.iterations
        );
        // Accounting stays coherent whichever path served the requests.
        let stats = report.precond;
        assert_eq!(
            stats.applications,
            stats.analog_applications + stats.fallback_applications,
            "{label}"
        );
        if stats.fallback_applications > 0 {
            assert_ne!(precond.kind(), PrecondKind::Analog, "{label}");
            assert_eq!(stats.final_path(), FinalPath::DigitalFallback, "{label}");
        }
    }
}

/// Same-seed FCG replays are bit-identical — solutions, iteration counts,
/// and the full obs event journal (wall-clock fields masked).
#[test]
fn fcg_journal_replays_bit_identically() {
    let a = CsrMatrix::from_row_access(&PoissonStencil::new_2d(4).unwrap());
    let b: Vec<f64> = (0..a.dim()).map(|i| 1.0 - 0.1 * (i % 3) as f64).collect();
    let run = || {
        let rec = MemoryRecorder::shared();
        let report = obs::with_recorder(rec.clone(), || {
            let mut sup =
                SupervisedSolver::new(&a, &faultable_config(), &RecoveryConfig::default()).unwrap();
            sup.inject_faults(FaultPlan::new(7).with_event(FaultEvent::transient(
                FaultKind::NoiseBurst {
                    unit: UnitId::Integrator(2),
                    amplitude: 0.04,
                },
                0.0,
                2.5e-3,
            )));
            let mut precond = AnalogPreconditioner::new(&mut sup);
            fcg_solve(&mut precond, &b, &KrylovConfig::default()).unwrap()
        });
        (report, rec.snapshot())
    };
    let (first, snap1) = run();
    let (second, snap2) = run();
    assert_eq!(first.solution, second.solution);
    assert_eq!(first.iterations, second.iterations);
    assert_eq!(first.precond, second.precond);
    if obs::ENABLED {
        assert!(snap1
            .deterministic_lines()
            .iter()
            .any(|l| l.contains("solver.krylov.iter")));
        assert_eq!(snap1.deterministic_lines(), snap2.deterministic_lines());
        assert_eq!(snap1.to_json_masked(), snap2.to_json_masked());
    }
}

/// Krylov-mode fleet requests replay bit-identically across 1/2/4 worker
/// threads: the schedule log, solutions, and masked obs journal are all
/// invariant, exactly like the direct-solve path.
#[test]
fn krylov_fleet_replay_is_worker_count_invariant() {
    let run = |workers: usize| {
        let a4 = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
        let a5 = CsrMatrix::tridiagonal(5, -1.0, 2.0, -1.0).unwrap();
        let rec = MemoryRecorder::shared();
        let (log, solutions) = obs::with_recorder(rec.clone(), || {
            let config = FleetConfig::new(3).with_seed(42).with_workers(workers);
            let mut fleet = FleetService::new(config, vec![a4, a5]).unwrap();
            let mut tickets = Vec::new();
            for i in 0..8 {
                let s = i % 2;
                let rhs = vec![1.0 + i as f64 * 0.25; 4 + s];
                let mut req = SolveRequest::new(s, rhs);
                if i % 2 == 0 {
                    req = req.with_krylov();
                }
                tickets.push(fleet.submit(req).unwrap());
            }
            fleet.run_until_idle();
            let solutions: Vec<Vec<f64>> = tickets
                .iter()
                .map(|t| fleet.completion(*t).unwrap().solution.clone())
                .collect();
            (fleet.into_log(), solutions)
        });
        (log, solutions, rec.snapshot())
    };
    let (log1, sols1, snap1) = run(1);
    assert_eq!(log1.completed(), 8);
    if obs::ENABLED {
        assert!(
            snap1.counter("solver.krylov.iterations") > 0,
            "krylov requests actually took the FCG path"
        );
    }
    for workers in [2usize, 4] {
        let (log, sols, snap) = run(workers);
        assert_eq!(log1, log, "workers={workers}");
        assert_eq!(sols1, sols, "workers={workers}");
        if obs::ENABLED {
            assert_eq!(
                snap1.deterministic_lines(),
                snap.deterministic_lines(),
                "workers={workers}"
            );
            assert_eq!(snap1.counters, snap.counters, "workers={workers}");
            assert_eq!(
                snap1.to_json_masked(),
                snap.to_json_masked(),
                "workers={workers}"
            );
        }
    }
}

//! Full chaos soak as an integration test: the standard configuration
//! (500+ requests, chip deaths, mid-batch hangs, dispatcher stalls,
//! overload bursts, deadline storms, crash/restore cycles) must complete
//! with every invariant intact — no accepted request unanswered, no
//! double answers, quarantine convergence, digital-lane engagement —
//! and the whole run must be reproducible from its seed.

use analog_accel::sched::chaos::{run_soak, ChaosConfig};

#[test]
fn standard_chaos_soak_passes_all_invariants() {
    let config = ChaosConfig::standard(0x5EED_50A4);
    assert!(config.requests >= 500, "the standard soak is a real soak");
    let report = run_soak(&config).expect("harness runs");
    assert!(report.passed(), "soak violations: {:?}", report.violations);

    // Volume: the target workload was accepted and fully answered.
    assert!(report.accepted >= 500, "accepted {}", report.accepted);
    assert!(
        report.completed >= report.accepted,
        "completed {} of {} accepted",
        report.completed,
        report.accepted
    );

    // Every injector fired.
    assert!(report.injected_deaths >= 4, "all chip kills ran");
    assert!(report.injected_hangs > 0, "mid-batch hangs ran");
    assert!(report.stalls > 0, "dispatcher stalls ran");
    assert!(report.crashes > 0, "crash/restore cycles ran");
    assert!(report.rejected_queue_full > 0, "overload bursts bit");
    assert!(report.rejected_brownout > 0, "brownout shed low traffic");
    assert!(report.rejected_deadline > 0, "deadline storms bit");

    // The failure machinery engaged end to end: bounced batches were
    // requeued, killed chips converged out of rotation, and with the
    // whole fleet dead the digital lane answered.
    assert!(report.requeues > 0, "failed batches requeue");
    assert!(report.quarantines > 0, "killed chips quarantine");
    assert!(report.retirements > 0, "repeat offenders retire");
    assert!(report.digital_only > 0, "digital-only lane engaged");

    // Deterministic: the same seed reproduces the identical report.
    let replay = run_soak(&config).expect("harness replays");
    assert_eq!(report, replay, "same-seed soak replays bit-identically");
}

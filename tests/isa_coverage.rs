//! Table I coverage: every instruction of the accelerator ISA executed
//! end-to-end through the host, including the SPI wire format.

use analog_accel::analog::host::ParallelTarget;
use analog_accel::analog::isa::NonlinearFunction;
use analog_accel::analog::netlist::{InputPort, OutputPort};
use analog_accel::analog::units::UnitId;
use analog_accel::analog::{decode_program, encode_program, LaneBindings};
use analog_accel::prelude::*;

/// Executes every Table I instruction at least once and checks each
/// response type.
#[test]
fn every_table1_instruction_executes() {
    let mut host = Host::new(AnalogChip::new(ChipConfig::prototype()));
    host.select_parallel_target(ParallelTarget::Dac(1));

    let program = vec![
        // Control: init.
        Instruction::Init,
        // Config: setConn (the Figure 1 loop).
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Integrator(0)),
            to: InputPort::of(UnitId::Fanout(0)),
        },
        Instruction::SetConn {
            from: OutputPort {
                unit: UnitId::Fanout(0),
                port: 0,
            },
            to: InputPort::of(UnitId::Adc(0)),
        },
        Instruction::SetConn {
            from: OutputPort {
                unit: UnitId::Fanout(0),
                port: 1,
            },
            to: InputPort::of(UnitId::Multiplier(0)),
        },
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Multiplier(0)),
            to: InputPort::of(UnitId::Integrator(0)),
        },
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Dac(0)),
            to: InputPort::of(UnitId::Integrator(0)),
        },
        // Config: gains, initial conditions, functions, constants, timeout.
        Instruction::SetMulGain {
            multiplier: 0,
            gain: -1.0,
        },
        Instruction::SetIntInitial {
            integrator: 0,
            value: 0.1,
        },
        Instruction::SetFunction {
            lut: 0,
            function: NonlinearFunction::Sine,
        },
        Instruction::SetDacConstant { dac: 0, value: 0.5 },
        Instruction::SetTimeout { cycles: 5_000 },
        // Data input: channel enable + parallel write (to DAC 1).
        Instruction::SetAnaInputEn {
            channel: 0,
            enabled: false,
        },
        Instruction::WriteParallel { data: 200 },
        // Commit + run.
        Instruction::CfgCommit,
        Instruction::ExecStart,
        Instruction::ExecStop,
        // Control: one batched run (two DAC drives), lane readout, close.
        Instruction::ExecBatch {
            lanes: vec![
                LaneBindings {
                    dac_values: Some(std::collections::BTreeMap::from([(0, 0.25)])),
                    int_initial: None,
                },
                LaneBindings::default(),
            ],
        },
        Instruction::SelectLane { lane: 1 },
        Instruction::FinishBatch,
        // Data output + exceptions.
        Instruction::ReadSerial,
        Instruction::AnalogAvg {
            adc: 0,
            samples: 32,
        },
        Instruction::ReadExp,
    ];

    let responses = host.run_program(&program).unwrap();
    assert_eq!(responses.len(), program.len());

    let mut saw_calibrated = false;
    let mut saw_ran = false;
    let mut saw_ran_batch = false;
    let mut saw_codes = false;
    let mut saw_analog = false;
    let mut saw_exceptions = false;
    for r in &responses {
        match r {
            Response::Calibrated(rep) => {
                saw_calibrated = true;
                assert!(rep.worst_offset() < 1e-3);
            }
            Response::Ran(rep) => {
                saw_ran = true;
                // Timeout was 5 ms; the decay settles first.
                assert!(rep.reached_steady_state || rep.timed_out);
            }
            Response::RanBatch(batch) => {
                saw_ran_batch = true;
                assert_eq!(batch.reports.len(), 2);
            }
            Response::Codes(codes) => {
                saw_codes = true;
                assert_eq!(codes.len(), host.chip().config().inventory.adcs);
            }
            Response::Analog(v) => {
                saw_analog = true;
                assert!((v - 0.5).abs() < 0.02, "averaged read {v}");
            }
            Response::Exceptions(bytes) => {
                saw_exceptions = true;
                assert!(bytes.iter().all(|b| *b == 0));
            }
            Response::Ack => {}
            _ => {}
        }
    }
    assert!(
        saw_calibrated && saw_ran && saw_ran_batch && saw_codes && saw_analog && saw_exceptions
    );

    // Each instruction has a distinct mnemonic and a category: the fifteen
    // Table I rows plus the three batch-execution extensions.
    let mut mnemonics: Vec<&str> = program.iter().map(|i| i.mnemonic()).collect();
    mnemonics.sort_unstable();
    mnemonics.dedup();
    assert_eq!(
        mnemonics.len(),
        18,
        "all fifteen Table I rows plus execBatch/selectLane/finishBatch covered"
    );
}

/// The batch-execution instructions survive the SPI wire format — encode,
/// decode, and a malformed-frame rejection for each failure class.
#[test]
fn batch_instructions_round_trip_the_wire() {
    use analog_accel::analog::decode_program_checked;

    let program = vec![
        Instruction::ExecBatch {
            lanes: vec![
                LaneBindings {
                    dac_values: Some(std::collections::BTreeMap::from([(0, 0.25), (2, -0.75)])),
                    int_initial: Some(std::collections::BTreeMap::from([(0, 0.5)])),
                },
                LaneBindings::default(),
            ],
        },
        Instruction::SelectLane { lane: 1 },
        Instruction::FinishBatch,
    ];
    let wire = encode_program(&program);
    assert_eq!(decode_program(&wire).unwrap(), program);

    // Truncating anywhere inside the execBatch frame is rejected.
    let batch_frame_len = encode_program(&program[..1]).len();
    for cut in 1..batch_frame_len {
        assert!(
            decode_program(&wire[..cut]).is_err(),
            "cut at {cut} should be rejected"
        );
    }
    // A checked stream with one corrupted lane-flag byte is rejected too.
    let mut checked = analog_accel::analog::encode_program_checked(&program);
    checked[3] ^= 0x80;
    assert!(decode_program_checked(&checked).is_err());
}

/// The same program survives a round trip through the SPI bitstream.
#[test]
fn spi_bitstream_round_trip_drives_identical_run() {
    let program = vec![
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Integrator(0)),
            to: InputPort::of(UnitId::Multiplier(0)),
        },
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Multiplier(0)),
            to: InputPort::of(UnitId::Integrator(0)),
        },
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Dac(0)),
            to: InputPort::of(UnitId::Integrator(0)),
        },
        Instruction::SetMulGain {
            multiplier: 0,
            gain: -0.5,
        },
        Instruction::SetDacConstant { dac: 0, value: 0.3 },
        Instruction::CfgCommit,
        Instruction::ExecStart,
    ];
    let wire = encode_program(&program);
    let decoded = decode_program(&wire).unwrap();
    assert_eq!(decoded, program);

    let run = |prog: &[Instruction]| {
        let mut host = Host::new(AnalogChip::new(ChipConfig::ideal()));
        let r = host.run_program(prog).unwrap();
        let Response::Ran(report) = r.last().unwrap().clone() else {
            panic!("expected run");
        };
        report.integrator_values[&0]
    };
    let direct = run(&program);
    let via_wire = run(&decoded);
    assert_eq!(direct, via_wire);
    // du/dt = 0.3 − 0.5u settles at 0.6, up to the ideal chip's 8-bit DAC
    // quantization of the 0.3 constant (±½ LSB / 0.5 gain = ±0.008).
    assert!((direct - 0.6).abs() < 0.02, "{direct}");
}

//! Per-pass snapshot tests for the plan IR pipeline: each optimization
//! pass gets at least one pinned before/after tape dump through the
//! deterministic `AnalogChip::dump_plan` format (DESIGN.md §13), plus
//! pass-statistics plumbing checks (`pass_stats`, `PlanStats` counters)
//! and checkpoint/restore of the optimized-plan cache.
//!
//! The snapshots are exact-string pins on an ideal chip (no process
//! variation), so every float prints tidily and any change to lowering,
//! pass behaviour, scheduling, or the dump format shows up as a readable
//! text diff.

use analog_accel::analog::netlist::{InputPort, OutputPort};
use analog_accel::analog::units::UnitId;
use analog_accel::analog::{EvalStrategy, PassConfig};
use analog_accel::prelude::*;

fn conn(chip: &mut AnalogChip, from: OutputPort, to: InputPort) {
    chip.set_conn(from, to).unwrap();
}

fn out(unit: UnitId, port: usize) -> OutputPort {
    OutputPort { unit, port }
}

/// The paper's Figure 1 circuit: `du/dt = a·u + b` with the drive on a
/// DAC. Exercises every source kind the constant folder cares about.
fn driven_chip() -> AnalogChip {
    let mut chip = AnalogChip::new(ChipConfig::ideal());
    let (int0, fan0, mul0, adc0, dac0) = (
        UnitId::Integrator(0),
        UnitId::Fanout(0),
        UnitId::Multiplier(0),
        UnitId::Adc(0),
        UnitId::Dac(0),
    );
    conn(&mut chip, OutputPort::of(int0), InputPort::of(fan0));
    conn(&mut chip, out(fan0, 0), InputPort::of(adc0));
    conn(&mut chip, out(fan0, 1), InputPort::of(mul0));
    conn(&mut chip, OutputPort::of(mul0), InputPort::of(int0));
    conn(&mut chip, OutputPort::of(dac0), InputPort::of(int0));
    chip.set_mul_gain(0, -1.0).unwrap();
    chip.set_dac_constant(0, 0.3).unwrap();
    chip.set_int_initial(0, 0.0).unwrap();
    chip.cfg_commit().unwrap();
    chip
}

/// A two-multiplier gain chain `int0 → mul0(×0.8) → mul1(×-0.5) → int0`:
/// the fusion pass's bread and butter (`du/dt = -0.4·u` once fused).
fn chain_chip() -> AnalogChip {
    let mut chip = AnalogChip::new(ChipConfig::ideal());
    let (int0, mul0, mul1) = (
        UnitId::Integrator(0),
        UnitId::Multiplier(0),
        UnitId::Multiplier(1),
    );
    conn(&mut chip, OutputPort::of(int0), InputPort::of(mul0));
    conn(&mut chip, OutputPort::of(mul0), InputPort::of(mul1));
    conn(&mut chip, OutputPort::of(mul1), InputPort::of(int0));
    chip.set_mul_gain(0, 0.8).unwrap();
    chip.set_mul_gain(1, -0.5).unwrap();
    chip.set_int_initial(0, 0.5).unwrap();
    chip.cfg_commit().unwrap();
    chip
}

/// Two structurally identical feedback paths through one fanout:
/// `int0 → fan0`, each branch through its own gain-(-1) multiplier back
/// into `int0`. CSE first collapses the fanout branches (both carry the
/// same current), which makes the two multipliers identical, so one dies
/// and the integrator's driver list sums the survivor twice.
fn twin_chip() -> AnalogChip {
    let mut chip = AnalogChip::new(ChipConfig::ideal());
    let (int0, fan0, mul0, mul1) = (
        UnitId::Integrator(0),
        UnitId::Fanout(0),
        UnitId::Multiplier(0),
        UnitId::Multiplier(1),
    );
    conn(&mut chip, OutputPort::of(int0), InputPort::of(fan0));
    conn(&mut chip, out(fan0, 0), InputPort::of(mul0));
    conn(&mut chip, out(fan0, 1), InputPort::of(mul1));
    conn(&mut chip, OutputPort::of(mul0), InputPort::of(int0));
    conn(&mut chip, OutputPort::of(mul1), InputPort::of(int0));
    chip.set_mul_gain(0, -1.0).unwrap();
    chip.set_mul_gain(1, -1.0).unwrap();
    chip.set_int_initial(0, 0.5).unwrap();
    chip.cfg_commit().unwrap();
    chip
}

/// The driven circuit plus a dangling side computation: `dac1 → mul1`,
/// whose output drives nothing observable. DCE's job.
fn dangling_chip() -> AnalogChip {
    let mut chip = driven_chip();
    conn(
        &mut chip,
        OutputPort::of(UnitId::Dac(1)),
        InputPort::of(UnitId::Multiplier(1)),
    );
    chip.set_mul_gain(1, 0.5).unwrap();
    chip.set_dac_constant(1, 0.25).unwrap();
    chip.cfg_commit().unwrap();
    chip
}

fn opts(passes: PassConfig) -> EngineOptions {
    EngineOptions {
        passes,
        ..EngineOptions::default()
    }
}

/// The unoptimized tape dump: the `PassConfig::none()` baseline every
/// optimized snapshot below diffs against. No `seg` markers, no `pass`
/// statistics lines — a plain linear tape.
#[test]
fn unoptimized_tape_snapshot() {
    assert_eq!(
        driven_chip().dump_plan(&PassConfig::none()).unwrap(),
        "plan fs=1 states=1 stores=6\n\
         src int u=int0 -> s0\n\
         src dac u=dac0 -> s5\n\
         op fanout u=fan0 in=[s0] -> s2..s3 (2)\n\
         op mul.gain u=mul0 g=-1 in=[s3] -> s1\n\
         op sink in=[s2] -> s4\n\
         deriv state0 in=[s1 s5]\n"
    );
}

/// `fold_constants` reclassifies the DAC source as `dac.const` (computed
/// once at run bind, not once per RK4 stage), dropping one store per eval.
#[test]
fn fold_constants_snapshot() {
    assert_eq!(
        driven_chip()
            .dump_plan(&PassConfig {
                fold_constants: true,
                ..PassConfig::none()
            })
            .unwrap(),
        "plan fs=1 states=1 stores=5\n\
         src int u=int0 -> s0\n\
         src dac.const u=dac0 -> s5\n\
         seg fanout (1)\n\
         op fanout u=fan0 in=[s0] -> s2..s3 (2)\n\
         seg mul.gain (1)\n\
         op mul.gain u=mul0 g=-1 in=[s3] -> s1\n\
         seg sink (1)\n\
         op sink in=[s2] -> s4\n\
         deriv state0 in=[s1 s5]\n\
         pass fold_constants: 6 -> 5\n"
    );
}

/// `cse` first collapses the fanout's identical branches to one store,
/// which exposes the two gain multipliers as structurally identical: one
/// dies and the integrator sums the survivor's slot twice (`[s2 s2]`) —
/// the same value the two branches carried.
#[test]
fn cse_snapshot() {
    assert_eq!(
        twin_chip()
            .dump_plan(&PassConfig {
                cse: true,
                ..PassConfig::none()
            })
            .unwrap(),
        "plan fs=1 states=1 stores=3\n\
         src int u=int0 -> s0\n\
         seg fanout (1)\n\
         op fanout u=fan0 in=[s0] -> s3..s3 (1)\n\
         seg mul.gain (1)\n\
         op mul.gain u=mul1 g=-1 in=[s3] -> s2\n\
         deriv state0 in=[s2 s2]\n\
         pass cse: 5 -> 3\n"
    );
}

/// `fuse_gain_chains` folds the two-multiplier chain into one
/// multiply-accumulate with the product coefficient (`a = 0.8·-0.5`),
/// eliding the intermediate store and clip.
#[test]
fn fuse_gain_chains_snapshot() {
    let chip = chain_chip();
    assert_eq!(
        chip.dump_plan(&PassConfig::none()).unwrap(),
        "plan fs=1 states=1 stores=3\n\
         src int u=int0 -> s0\n\
         op mul.gain u=mul0 g=0.8 in=[s0] -> s1\n\
         op mul.gain u=mul1 g=-0.5 in=[s1] -> s2\n\
         deriv state0 in=[s2]\n"
    );
    assert_eq!(
        chip.dump_plan(&PassConfig {
            fuse_gain_chains: true,
            ..PassConfig::none()
        })
        .unwrap(),
        "plan fs=1 states=1 stores=2\n\
         src int u=int0 -> s0\n\
         seg mac (1)\n\
         op mac u=mul1 a=-0.4 b=0 in=[s0] -> s2\n\
         deriv state0 in=[s2]\n\
         pass fuse_gain_chains: 3 -> 2\n"
    );
}

/// A gain chain `int0 → mul0(×1.8) → mul1(×-1.5) → int0` on a chip whose
/// hardware gain limit is 2: both stages are individually programmable,
/// but fusion multiplies them into an unrealizable `a = -2.7`.
fn hot_chain_chip() -> AnalogChip {
    let mut chip = AnalogChip::new(ChipConfig {
        max_gain: 2.0,
        ..ChipConfig::ideal()
    });
    let (int0, mul0, mul1) = (
        UnitId::Integrator(0),
        UnitId::Multiplier(0),
        UnitId::Multiplier(1),
    );
    conn(&mut chip, OutputPort::of(int0), InputPort::of(mul0));
    conn(&mut chip, OutputPort::of(mul0), InputPort::of(mul1));
    conn(&mut chip, OutputPort::of(mul1), InputPort::of(int0));
    chip.set_mul_gain(0, 1.8).unwrap();
    chip.set_mul_gain(1, -1.5).unwrap();
    // Small enough that no multiplier output (peak |-1.5·1.8·u| = 0.675)
    // reaches full scale: the tolerance contract only binds clip-free runs.
    chip.set_int_initial(0, 0.25).unwrap();
    chip.cfg_commit().unwrap();
    chip
}

/// `normalize_gains` peels a fused MAC whose coefficient exceeds the
/// hardware gain limit back into chained stages inside the limit: fusion
/// alone leaves the unrealizable `a = -2.7` on a `max_gain = 2` chip;
/// normalization splits it into a `×2` prefix stage (fresh scratch slot
/// `s3`) and a programmable `×-1.35` residual — the one pass that raises
/// the op count (`2 -> 3`).
#[test]
fn normalize_gains_snapshot() {
    let chip = hot_chain_chip();
    assert_eq!(
        chip.dump_plan(&PassConfig {
            fuse_gain_chains: true,
            ..PassConfig::none()
        })
        .unwrap(),
        "plan fs=1 states=1 stores=2\n\
         src int u=int0 -> s0\n\
         seg mac (1)\n\
         op mac u=mul1 a=-2.7 b=0 in=[s0] -> s2\n\
         deriv state0 in=[s2]\n\
         pass fuse_gain_chains: 3 -> 2\n"
    );
    assert_eq!(
        chip.dump_plan(&PassConfig {
            fuse_gain_chains: true,
            normalize_gains: true,
            ..PassConfig::none()
        })
        .unwrap(),
        "plan fs=1 states=1 stores=3\n\
         src int u=int0 -> s0\n\
         seg mac (2)\n\
         op mac u=mul1 a=2 b=0 in=[s0] -> s3\n\
         op mac u=mul1 a=-1.35 b=0 in=[s3] -> s2\n\
         deriv state0 in=[s2]\n\
         pass fuse_gain_chains: 3 -> 2\n\
         pass normalize_gains: 2 -> 3\n"
    );
}

/// The peeled chain computes the same dynamics as the reference evaluator
/// (`du/dt = -2.7·u` decaying from 0.25) within the documented pass
/// tolerance, even though its tape writes a scratch slot beyond the
/// structure's slot count.
#[test]
fn normalized_exec_matches_reference() {
    let mut chip = hot_chain_chip();
    let reference = chip
        .exec(&EngineOptions {
            eval_strategy: EvalStrategy::Reference,
            ..EngineOptions::default()
        })
        .unwrap();
    let optimized = chip.exec(&opts(PassConfig::full())).unwrap();
    assert!(!reference.exceptions.any());
    for (idx, r) in &reference.integrator_values {
        let o = optimized.integrator_values[idx];
        assert!(
            (o - r).abs() <= 1e-5 * (1.0 + r.abs()),
            "integrator {idx}: optimized {o} vs reference {r}"
        );
    }
    let log = chip.pass_stats();
    let norm = log
        .iter()
        .find(|s| s.pass == "normalize_gains")
        .expect("normalize_gains ran");
    assert_eq!((norm.ops_before, norm.ops_after), (2, 3), "{log:?}");
}

/// `dce` removes the dangling multiplier (its output reaches neither an
/// integrator nor a sink); the now-unread DAC source survives as a source
/// line but feeds nothing.
#[test]
fn dce_snapshot() {
    assert_eq!(
        dangling_chip()
            .dump_plan(&PassConfig {
                dce: true,
                ..PassConfig::none()
            })
            .unwrap(),
        "plan fs=1 states=1 stores=7\n\
         src int u=int0 -> s0\n\
         src dac u=dac0 -> s6\n\
         src dac u=dac1 -> s7\n\
         seg fanout (1)\n\
         op fanout u=fan0 in=[s0] -> s3..s4 (2)\n\
         seg mul.gain (1)\n\
         op mul.gain u=mul0 g=-1 in=[s4] -> s1\n\
         seg sink (1)\n\
         op sink in=[s3] -> s5\n\
         deriv state0 in=[s1 s6]\n\
         pass dce: 8 -> 7\n"
    );
}

/// The whole pipeline composing on one circuit, with the per-pass
/// statistics trail showing which pass claimed which op: folding claims
/// the two DACs, CSE the redundant fanout branch and then the dangling
/// multiplier's input chain shrinks until DCE removes the multiplier.
#[test]
fn full_pipeline_snapshot() {
    assert_eq!(
        dangling_chip().dump_plan(&PassConfig::full()).unwrap(),
        "plan fs=1 states=1 stores=4\n\
         src int u=int0 -> s0\n\
         src dac.const u=dac0 -> s6\n\
         src dac.const u=dac1 -> s7\n\
         seg fanout (1)\n\
         op fanout u=fan0 in=[s0] -> s3..s3 (1)\n\
         seg mul.gain (1)\n\
         op mul.gain u=mul0 g=-1 in=[s3] -> s1\n\
         seg sink (1)\n\
         op sink in=[s3] -> s5\n\
         deriv state0 in=[s1 s6]\n\
         pass fold_constants: 8 -> 6\n\
         pass cse: 6 -> 5\n\
         pass fuse_gain_chains: 5 -> 5\n\
         pass normalize_gains: 5 -> 5\n\
         pass dce: 5 -> 4\n"
    );
}

/// Optimized execution honours the documented tolerance contract against
/// the reference evaluator, and the pass/plan statistics plumbing reports
/// the lowering: one optimized lowering, cache hits afterwards, per-pass
/// before/after counts visible through `pass_stats`.
#[test]
fn optimized_exec_matches_reference_and_reports_stats() {
    let mut chip = dangling_chip();
    let reference = chip
        .exec(&EngineOptions {
            eval_strategy: EvalStrategy::Reference,
            ..EngineOptions::default()
        })
        .unwrap();
    let optimized = chip.exec(&opts(PassConfig::full())).unwrap();
    assert!(!reference.exceptions.any());
    for (idx, r) in &reference.integrator_values {
        let o = optimized.integrator_values[idx];
        assert!(
            (o - r).abs() <= 1e-5 * (1.0 + r.abs()),
            "integrator {idx}: optimized {o} vs reference {r}"
        );
    }
    for (idx, r) in &reference.adc_inputs {
        let o = optimized.adc_inputs[idx];
        assert!(
            (o - r).abs() <= 1e-5 * (1.0 + r.abs()),
            "adc {idx}: optimized {o} vs reference {r}"
        );
    }

    let stats = chip.plan_stats();
    assert_eq!(stats.optimized_lowered, 1, "{stats:?}");
    assert_eq!(stats.ops_before, 8, "{stats:?}");
    assert_eq!(stats.ops_after, 4, "{stats:?}");
    let log = chip.pass_stats();
    let names: Vec<&str> = log.iter().map(|s| s.pass).collect();
    assert_eq!(
        names,
        [
            "fold_constants",
            "cse",
            "fuse_gain_chains",
            "normalize_gains",
            "dce"
        ]
    );
    assert!(log.iter().all(|s| s.ops_after <= s.ops_before), "{log:?}");

    // Re-running with the same config is a cache hit, not a re-lowering;
    // a *different* pass config re-lowers.
    chip.exec(&opts(PassConfig::full())).unwrap();
    assert_eq!(chip.plan_stats().optimized_lowered, 1);
    chip.exec(&opts(PassConfig {
        dce: true,
        ..PassConfig::none()
    }))
    .unwrap();
    assert_eq!(chip.plan_stats().optimized_lowered, 2);
}

/// `PassConfig::none()` never touches the optimized path: the run is
/// bit-identical (whole-report `assert_eq`) to a default-options run and
/// lowers no optimized plan.
#[test]
fn none_config_is_bit_identical_to_default() {
    let mut chip = driven_chip();
    let baseline = chip.exec(&EngineOptions::default()).unwrap();
    let none = chip.exec(&opts(PassConfig::none())).unwrap();
    assert_eq!(baseline, none);
    assert_eq!(chip.plan_stats().optimized_lowered, 0);
    assert!(chip.pass_stats().is_empty());
}

/// An armed fault plan forces the unoptimized tape (fault semantics stay
/// bit-exact), even when passes are requested.
#[test]
fn fault_plans_bypass_the_optimized_path() {
    let mut chip = driven_chip();
    chip.inject_fault_plan(FaultPlan::new(7).with_event(FaultEvent {
        kind: FaultKind::GainDrift {
            unit: UnitId::Multiplier(0),
            magnitude: 0.05,
            ramp_s: 0.0,
        },
        start_s: 0.0,
        duration_s: None,
    }));
    chip.exec(&opts(PassConfig::full())).unwrap();
    let stats = chip.plan_stats();
    assert_eq!(stats.optimized_lowered, 0, "{stats:?}");
}

/// Checkpoint/restore round-trips the optimized-plan cache: the restored
/// chip's first optimized run is a cache *hit* (no re-lowering beyond the
/// silent re-prime), so `PlanStats` continue exactly where the
/// uninterrupted chip's would.
#[test]
fn checkpoint_restores_the_optimized_plan_cache() {
    let mut original = driven_chip();
    original.exec(&opts(PassConfig::full())).unwrap();
    let snap = original.export_state();
    assert_eq!(snap.optimized_passes, Some(PassConfig::full()));

    let mut restored = driven_chip();
    restored.import_state(&snap).unwrap();
    restored.exec(&opts(PassConfig::full())).unwrap();
    original.exec(&opts(PassConfig::full())).unwrap();
    assert_eq!(original.plan_stats(), restored.plan_stats());
    assert_eq!(original.pass_stats(), restored.pass_stats());
}

//! Per-column bit-identity of batched multi-RHS execution.
//!
//! The batched engine path advances K right-hand sides in one lockstep RK4
//! sweep. Its contract is differential: every lane's [`RunReport`] must be
//! **bit-identical** to a sequential `exec` of that lane from the same chip
//! instant — across random netlists, process-variation draws, fault plans,
//! and both evaluator strategies. These tests draw many cases from seeded
//! streams, so every failure reproduces from the fixed seed.
//!
//! [`RunReport`]: analog_accel::analog::RunReport

use std::collections::BTreeMap;

use analog_accel::analog::netlist::{InputPort, OutputPort};
use analog_accel::analog::units::UnitId;
use analog_accel::analog::{
    AnalogChip, ChipConfig, EngineOptions, EvalStrategy, FaultEvent, FaultKind, FaultPlan,
    LaneBindings, NonIdealityConfig,
};
use analog_accel::linalg::rng::Rng64;

fn arbitrary_unit(rng: &mut Rng64, max_index: usize) -> UnitId {
    let i = rng.below(max_index);
    match rng.below(8) {
        0 => UnitId::Integrator(i),
        1 => UnitId::Multiplier(i),
        2 => UnitId::Fanout(i),
        3 => UnitId::Adc(i),
        4 => UnitId::Dac(i),
        5 => UnitId::Lut(i),
        6 => UnitId::AnalogInput(i),
        _ => UnitId::AnalogOutput(i),
    }
}

/// Configures an arbitrary committed chip from a seeded stream: random
/// topology (invalid connections skipped), gains, DAC constants, initial
/// conditions, LUT programs, input stimuli, and optionally a drawn process
/// variation. Returns `None` when the random netlist fails commit.
fn arbitrary_chip(rng: &mut Rng64) -> Option<AnalogChip> {
    let nonideal = if rng.flip() {
        NonIdealityConfig::default().with_seed(rng.next_u64())
    } else {
        NonIdealityConfig::none()
    };
    let mut chip = AnalogChip::new(ChipConfig::ideal().with_nonideal(nonideal));
    for _ in 0..(8 + rng.below(25)) {
        let from = OutputPort {
            unit: arbitrary_unit(rng, 4),
            port: rng.below(3),
        };
        let to = InputPort {
            unit: arbitrary_unit(rng, 4),
            port: rng.below(3),
        };
        let _ = chip.set_conn(from, to);
    }
    for i in 0..4 {
        if rng.flip() {
            let _ = chip.set_mul_gain(i, rng.range(-1.0, 1.0));
        } else {
            let _ = chip.set_mul_variable(i);
        }
        let _ = chip.set_dac_constant(i, rng.range(-0.5, 0.5));
        let _ = chip.set_int_initial(i, rng.range(-0.5, 0.5));
    }
    if rng.flip() {
        let steepness = rng.range(2.0, 10.0);
        let _ = chip.set_function(0, move |x| (steepness * x).tanh());
    }
    if rng.flip() {
        let amplitude = rng.range(0.0, 0.4);
        let _ = chip.set_ana_input_en(0, true);
        let _ = chip.attach_input_signal(0, Box::new(move |t| (3.0e4 * t).sin() * amplitude));
    }
    chip.set_timeout(20 + rng.below(480) as u64);
    chip.cfg_commit().ok()?;
    Some(chip)
}

/// Draws a small schedule of mixed transient fault events.
fn arbitrary_plan(rng: &mut Rng64) -> FaultPlan {
    let mut plan = FaultPlan::new(rng.next_u64());
    for _ in 0..(1 + rng.below(3)) {
        let start = rng.range(0.0, 1e-3);
        let duration = rng.range(1e-5, 1e-3);
        let kind = match rng.below(5) {
            0 => FaultKind::NoiseBurst {
                unit: UnitId::Integrator(0),
                amplitude: rng.range(0.0, 0.02),
            },
            1 => FaultKind::OffsetDrift {
                unit: UnitId::Integrator(0),
                magnitude: rng.range(-0.02, 0.02),
                ramp_s: 5e-4,
            },
            2 => FaultKind::GainDrift {
                unit: UnitId::Multiplier(0),
                magnitude: rng.range(-0.05, 0.05),
                ramp_s: 5e-4,
            },
            3 => FaultKind::AdcBitFlip {
                adc: 0,
                bit: rng.below(12) as u32,
            },
            _ => FaultKind::LutCorruption {
                lut: 0,
                entry: rng.below(64),
                value: rng.range(-1.0, 1.0),
            },
        };
        plan.push(FaultEvent::transient(kind, start, duration));
    }
    plan
}

/// Per-lane RHS material: raw (unquantized) DAC constants for the two DACs
/// the ideal inventory provides, plus initial conditions for all four
/// integrators.
type RawLane = (BTreeMap<usize, f64>, BTreeMap<usize, f64>);

fn lane_values(rng: &mut Rng64) -> RawLane {
    let dacs = (0..2).map(|i| (i, rng.range(-0.5, 0.5))).collect();
    let ints = (0..4).map(|i| (i, rng.range(-0.5, 0.5))).collect();
    (dacs, ints)
}

/// Builds lane bindings from raw values the way the solver does: DAC
/// constants pre-quantized through the chip's own DAC model, initial
/// conditions verbatim.
fn bindings_for(chip: &AnalogChip, raw: &[RawLane]) -> Vec<LaneBindings> {
    raw.iter()
        .map(|(dacs, ints)| LaneBindings {
            dac_values: Some(
                dacs.iter()
                    .map(|(&i, &v)| (i, chip.quantize_dac(v)))
                    .collect(),
            ),
            int_initial: Some(ints.clone()),
        })
        .collect()
}

/// The tentpole's differential guarantee: every column of a batched run is
/// bit-identical to a sequential run of that lane — reports, exception
/// latches, ADC inputs, waveforms, everything — under both evaluator
/// strategies, with and without active fault plans.
#[test]
fn batched_exec_is_bit_identical_per_column() {
    let mut rng = Rng64::seed_from_u64(0xba7c4);
    let mut compared = 0;
    let mut attempts = 0;
    while compared < 12 {
        attempts += 1;
        assert!(attempts < 200, "too few valid random netlists");
        let case_seed = rng.next_u64();
        let with_faults = rng.flip();
        let k = 2 + rng.below(3);
        let strategy = if rng.flip() {
            EvalStrategy::Compiled
        } else {
            EvalStrategy::Reference
        };
        let mut lane_rng = Rng64::seed_from_u64(case_seed ^ 0x1a9e);
        let lane_raw: Vec<_> = (0..k).map(|_| lane_values(&mut lane_rng)).collect();

        // Replaying the case seed configures identical chips, so the only
        // difference between the two paths is batched vs sequential.
        let build = || {
            let mut case_rng = Rng64::seed_from_u64(case_seed);
            let mut chip = arbitrary_chip(&mut case_rng)?;
            if with_faults {
                chip.inject_fault_plan(arbitrary_plan(&mut case_rng));
            }
            Some(chip)
        };
        let options = EngineOptions {
            steady_tol: Some(1e-6),
            max_tau: 100.0,
            eval_strategy: strategy,
            ..EngineOptions::default()
        };

        let Some(mut batch_chip) = build() else {
            continue; // random netlist failed commit — not a comparison case
        };
        let lanes = bindings_for(&batch_chip, &lane_raw);
        let batch = batch_chip
            .exec_batch(&lanes, &options)
            .unwrap_or_else(|e| panic!("batch failed (case seed {case_seed:#x}): {e}"));
        assert_eq!(batch.reports.len(), k);

        let noise_start = batch_chip.noise_rng_state();
        for (j, (dacs, ints)) in lane_raw.iter().enumerate() {
            let mut seq_chip = build().expect("same seed committed once already");
            for (&i, &v) in dacs {
                seq_chip.set_dac_constant(i, v).unwrap();
            }
            for (&i, &v) in ints {
                seq_chip.set_int_initial(i, v).unwrap();
            }
            seq_chip.cfg_commit().unwrap();
            let seq = seq_chip.exec(&options).unwrap_or_else(|e| {
                panic!("sequential lane {j} failed (case {case_seed:#x}): {e}")
            });
            assert_eq!(
                batch.reports[j], seq,
                "batched lane diverged from sequential (case seed {case_seed:#x}, lane {j}/{k})"
            );

            // Readout equality: staging the lane and matching the noise
            // stream makes every ADC conversion identical too.
            batch_chip.select_lane(&batch, j).unwrap();
            batch_chip.set_noise_rng_state(noise_start);
            let batched_read = batch_chip.analog_avg(0, 4).unwrap();
            let sequential_read = seq_chip.analog_avg(0, 4).unwrap();
            assert_eq!(
                batched_read, sequential_read,
                "lane readout diverged (case seed {case_seed:#x}, lane {j})"
            );
            assert_eq!(batch_chip.read_exp(), seq_chip.read_exp());
        }
        batch_chip.finish_batch(&batch);
        compared += 1;
    }
}

/// Batching from a warm chip: a prior run has advanced the lifetime clock,
/// so fault windows sit mid-schedule. Every lane must still match a
/// sequential run issued from the same instant.
#[test]
fn batched_exec_matches_sequential_from_advanced_lifetime() {
    let mut rng = Rng64::seed_from_u64(0x11f37);
    let options = EngineOptions {
        steady_tol: Some(1e-6),
        max_tau: 100.0,
        ..EngineOptions::default()
    };
    let mut compared = 0;
    let mut attempts = 0;
    while compared < 6 {
        attempts += 1;
        assert!(attempts < 120, "too few valid random netlists");
        let case_seed = rng.next_u64();
        let mut lane_rng = Rng64::seed_from_u64(case_seed ^ 0x77);
        let lane_raw: Vec<_> = (0..3).map(|_| lane_values(&mut lane_rng)).collect();
        let build = || {
            let mut case_rng = Rng64::seed_from_u64(case_seed);
            let mut chip = arbitrary_chip(&mut case_rng)?;
            chip.inject_fault_plan(arbitrary_plan(&mut case_rng));
            Some(chip)
        };

        let Some(mut batch_chip) = build() else {
            continue;
        };
        // Warm up: one sequential run advances the fault-plan clock.
        if batch_chip.exec(&options).is_err() {
            continue;
        }
        let lanes = bindings_for(&batch_chip, &lane_raw);
        let batch = batch_chip.exec_batch(&lanes, &options).unwrap();

        for (j, (dacs, ints)) in lane_raw.iter().enumerate() {
            let mut seq_chip = build().expect("same seed committed once already");
            seq_chip.exec(&options).unwrap();
            for (&i, &v) in dacs {
                seq_chip.set_dac_constant(i, v).unwrap();
            }
            for (&i, &v) in ints {
                seq_chip.set_int_initial(i, v).unwrap();
            }
            seq_chip.cfg_commit().unwrap();
            let seq = seq_chip.exec(&options).unwrap();
            assert_eq!(
                batch.reports[j], seq,
                "warm-chip batch lane diverged (case seed {case_seed:#x}, lane {j})"
            );
        }
        compared += 1;
    }
}

/// Degenerate and error cases: an empty batch is a no-op, lane values are
/// range-checked up front, and staging a lane that does not exist is a
/// protocol violation.
#[test]
fn batch_edge_cases() {
    let mut chip = AnalogChip::new(ChipConfig::ideal());
    let int0 = UnitId::Integrator(0);
    let dac0 = UnitId::Dac(0);
    chip.set_conn(OutputPort::of(dac0), InputPort::of(int0))
        .unwrap();
    chip.set_int_initial(0, 0.0).unwrap();
    chip.set_dac_constant(0, 0.25).unwrap();
    chip.set_timeout(50);
    chip.cfg_commit().unwrap();

    let empty = chip.exec_batch(&[], &EngineOptions::default()).unwrap();
    assert!(empty.reports.is_empty());
    assert_eq!(empty.duration_s(), 0.0);
    assert!(chip.select_lane(&empty, 0).is_err());

    let out_of_range = LaneBindings {
        dac_values: Some([(0usize, 7.5f64)].into_iter().collect()),
        int_initial: None,
    };
    assert!(chip
        .exec_batch(
            std::slice::from_ref(&out_of_range),
            &EngineOptions::default()
        )
        .is_err());

    // A lane with no overrides at all replays the committed registers.
    let passthrough = chip
        .exec_batch(&[LaneBindings::default()], &EngineOptions::default())
        .unwrap();
    let mut twin = AnalogChip::new(ChipConfig::ideal());
    twin.set_conn(OutputPort::of(dac0), InputPort::of(int0))
        .unwrap();
    twin.set_int_initial(0, 0.0).unwrap();
    twin.set_dac_constant(0, 0.25).unwrap();
    twin.set_timeout(50);
    twin.cfg_commit().unwrap();
    let sequential = twin.exec(&EngineOptions::default()).unwrap();
    assert_eq!(passthrough.reports[0], sequential);
}

/// The solver's batched entry: a shared-γ batch solves in-range columns in
/// one sweep (`runs == 1`, no rescale walks) and routes columns its shared
/// scaling cannot serve to a typed `Fallback` instead of perturbing γ.
#[test]
fn solver_batch_solves_columns_and_routes_overflow_to_fallback() {
    use analog_accel::linalg::{vector, CsrMatrix, LinearOperator};
    use analog_accel::solver::{AnalogSystemSolver, BatchColumn, SolverConfig};

    let a = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
    let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
    let bs = vec![
        vec![1.0, 0.0, 0.0, 1.0],
        // Far beyond the DAC full scale at the entry γ: the batch must not
        // grow headroom mid-sweep, so this column falls back.
        vec![40.0, -25.0, 10.0, 55.0],
        vec![0.8, -0.2, 0.4, 1.0],
    ];
    let columns = solver.solve_batch(&bs).unwrap();
    assert_eq!(columns.len(), 3);
    match &columns[1] {
        BatchColumn::Fallback(reason) => assert_eq!(*reason, "rhs_overflow"),
        other => panic!("expected rhs_overflow fallback, got {other:?}"),
    }
    for idx in [0usize, 2] {
        match &columns[idx] {
            BatchColumn::Solved(report) => {
                assert_eq!(report.runs, 1, "column {idx} solved in the one sweep");
                assert_eq!(report.overflow_retries, 0);
                let rel = vector::norm2(&a.residual(&report.solution, &bs[idx]))
                    / vector::norm2(&bs[idx]);
                assert!(rel < 1e-2, "column {idx}: rel residual {rel}");
            }
            other => panic!("column {idx}: expected Solved, got {other:?}"),
        }
    }

    // Structural misuse is a batch-level error, not a per-column verdict.
    assert!(solver.solve_batch(&[vec![1.0; 3]]).is_err());
    assert!(solver.solve_batch(&[]).unwrap().is_empty());
}

/// The supervised batched entry answers *every* column: batch-certified
/// columns come back as single-attempt analog reports, and columns the
/// batch could not serve are re-solved through the full recovery ladder.
#[test]
fn supervised_batch_answers_every_column() {
    use analog_accel::linalg::CsrMatrix;
    use analog_accel::solver::{FinalPath, RecoveryConfig, SolverConfig, SupervisedSolver};

    let a = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
    let mut solver =
        SupervisedSolver::new(&a, &SolverConfig::ideal(), &RecoveryConfig::default()).unwrap();
    let bs = vec![
        vec![1.0, 0.0, 0.0, 1.0],
        vec![40.0, -25.0, 10.0, 55.0], // overflows the batch's shared γ
        vec![0.8, -0.2, 0.4, 1.0],
    ];
    let results = solver.solve_batch(&bs);
    assert_eq!(results.len(), 3);
    for (idx, result) in results.iter().enumerate() {
        let report = result.as_ref().expect("every column answered");
        assert!(
            report.recovery.final_residual <= RecoveryConfig::default().residual_tolerance,
            "column {idx}: residual {}",
            report.recovery.final_residual
        );
        assert_eq!(
            report.recovery.final_path,
            FinalPath::Analog,
            "column {idx}"
        );
    }
    // Batch-certified columns took exactly one (accepted) attempt.
    for idx in [0usize, 2] {
        let report = results[idx].as_ref().unwrap();
        assert_eq!(report.recovery.attempts.len(), 1, "column {idx}");
    }
}

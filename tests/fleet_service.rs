//! End-to-end fleet serving tests: a three-chip fleet where one chip
//! carries a persistent stuck-at-rail fault must quarantine that chip,
//! redistribute its traffic, and still answer every accepted request
//! within the residual tolerance — plus typed admission backpressure.

use analog_accel::analog::units::UnitId;
use analog_accel::analog::EngineOptions;
use analog_accel::prelude::*;
use analog_accel::sched::{ChipState, ScheduleEvent};
use analog_accel::solver::RecoveryConfig;

/// A fleet solver template that latches stuck-at-rail faults as exceptions
/// quickly and keeps per-solve recovery short.
fn faultable_fleet(chips: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(chips).with_seed(0xF1EE7);
    cfg.solver.engine = EngineOptions {
        stop_on_exception: true,
        max_tau: 300.0,
        ..EngineOptions::default()
    };
    cfg.recovery = RecoveryConfig {
        max_attempts: 2,
        ..RecoveryConfig::default()
    };
    cfg.batch_size = 2;
    cfg
}

fn stuck_at_rail() -> FaultPlan {
    FaultPlan::new(99).with_event(FaultEvent::persistent(
        FaultKind::StuckAtRail {
            integrator: 0,
            rail: Rail::Positive,
        },
        0.0,
    ))
}

#[test]
fn faulty_chip_is_quarantined_and_traffic_redistributes() {
    let a = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
    let config = faultable_fleet(3).with_fault_plan(1, stuck_at_rail());
    let tolerance = config.recovery.residual_tolerance;
    let mut fleet = FleetService::new(config, vec![a]).unwrap();

    let mut tickets = Vec::new();
    for i in 0..18 {
        let rhs = vec![1.0 + 0.1 * i as f64, -0.5, 0.25, 1.0];
        tickets.push(fleet.submit(SolveRequest::new(0, rhs)).unwrap());
    }
    let completed = fleet.run_until_idle();
    assert_eq!(completed, 18, "every admitted request is answered");

    // The faulty chip was quarantined; the healthy chips were not.
    let quarantine_round = fleet
        .log()
        .events
        .iter()
        .find_map(|e| match e {
            ScheduleEvent::Quarantined { chip: 1, round } => Some(*round),
            _ => None,
        })
        .expect("chip 1 must be quarantined");
    assert!(
        matches!(fleet.health()[1].state, ChipState::Quarantined { .. })
            || fleet.health()[1].quarantines > 0,
        "chip 1 left rotation: {:?}",
        fleet.health()[1]
    );
    assert_eq!(fleet.health()[0].quarantines, 0);
    assert_eq!(fleet.health()[2].quarantines, 0);

    // Traffic redistributes: chip 1 gets no regular batches after the
    // quarantine round (a single probation probe is the only exception),
    // while the healthy chips keep serving.
    let mut chip1_after = 0;
    let mut healthy_after = 0;
    let mut probes = 0;
    for e in &fleet.log().events {
        match e {
            ScheduleEvent::Dispatched {
                round,
                chip,
                tickets,
            } if *round > quarantine_round => {
                if *chip == 1 {
                    chip1_after += 1;
                    assert_eq!(tickets.len(), 1, "probation probes carry one request");
                    probes += 1;
                } else {
                    healthy_after += tickets.len();
                }
            }
            _ => {}
        }
    }
    assert!(healthy_after > 0, "healthy chips keep serving");
    assert!(
        chip1_after == probes,
        "chip 1 sees only probation probes after quarantine"
    );

    // Zero failed-but-accepted requests: every ticket resolved within the
    // supervisor's residual tolerance.
    for ticket in tickets {
        let done = fleet.completion(ticket).expect("accepted ⇒ answered");
        assert!(
            done.residual <= tolerance,
            "ticket {:?} residual {} exceeds {}",
            ticket,
            done.residual,
            tolerance
        );
    }

    // The faulty chip's solves all degraded to a fallback path; the
    // healthy chips served analog.
    let faulty: Vec<_> = fleet
        .log()
        .events
        .iter()
        .filter_map(|e| match e {
            ScheduleEvent::Completed {
                chip: Some(1),
                path,
                ..
            } => Some(*path),
            _ => None,
        })
        .collect();
    assert!(!faulty.is_empty());
    assert!(
        faulty.iter().all(|p| !p.is_analog()),
        "stuck-at-rail can never pass validation: {faulty:?}"
    );
    let analog_served = fleet
        .log()
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                ScheduleEvent::Completed { chip: Some(c), path, .. }
                if *c != 1 && path.is_analog()
            )
        })
        .count();
    assert!(analog_served > 0, "healthy chips answer on the analog path");

    // Energy was accounted for the served class.
    assert!(fleet.log().energy_per_request_j(Priority::Normal).unwrap() > 0.0);
}

#[test]
fn queue_full_backpressure_is_typed_and_recoverable() {
    let a = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
    let mut fleet = FleetService::new(FleetConfig::new(1).with_queue_capacity(3), vec![a]).unwrap();
    for _ in 0..3 {
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
    }
    // The 4th is rejected — typed, not a panic — and nothing is lost.
    match fleet.submit(SolveRequest::new(0, vec![1.0; 4])) {
        Err(Rejected::QueueFull {
            capacity,
            retry_after_s,
        }) => {
            assert_eq!(capacity, 3);
            assert!(
                retry_after_s > 0.0,
                "a full queue predicts a positive drain time"
            );
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(fleet.queue_depth(), 3);
    // After the fleet drains, submission works again.
    fleet.run_until_idle();
    assert_eq!(fleet.queue_depth(), 0);
    fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
    fleet.run_until_idle();
    assert_eq!(fleet.log().completed(), 4);
    assert_eq!(fleet.log().rejected, 1);
}

#[test]
fn all_chips_quarantined_still_serves_digitally() {
    let a = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
    let config = faultable_fleet(1).with_fault_plan(0, stuck_at_rail());
    let mut fleet = FleetService::new(config, vec![a]).unwrap();
    let mut tickets = Vec::new();
    for _ in 0..10 {
        tickets.push(fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap());
    }
    fleet.run_until_idle();
    // The lone chip is quarantined mid-stream; the dispatcher's digital
    // lane keeps the service live.
    assert!(fleet.health()[0].quarantines > 0);
    let digital_only = tickets
        .iter()
        .filter(|t| fleet.completion(**t).unwrap().path == CompletionPath::DigitalOnly)
        .count();
    assert!(digital_only > 0, "digital lane served the tail");
    for t in &tickets {
        assert!(fleet.completion(*t).is_some());
    }
}

#[test]
fn probation_readmits_a_recovered_chip() {
    // A noise burst that outlives the quarantine decision but expires on
    // the chip's lifetime clock (~5.8 ms burn per failed solve): the chip
    // fails early requests, gets quarantined, probes dirty while the
    // window is still open, then probes clean and rejoins the rotation.
    let a = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
    let transient = FaultPlan::new(5).with_event(FaultEvent::transient(
        FaultKind::NoiseBurst {
            unit: UnitId::Integrator(0),
            amplitude: 0.2,
        },
        0.0,
        0.03,
    ));
    let mut config = faultable_fleet(2).with_fault_plan(0, transient);
    config.health.readmit_after_rounds = 1;
    let mut fleet = FleetService::new(config, vec![a]).unwrap();
    for _ in 0..40 {
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
    }
    fleet.run_until_idle();
    let quarantined = fleet
        .log()
        .events
        .iter()
        .any(|e| matches!(e, ScheduleEvent::Quarantined { chip: 0, .. }));
    let readmitted = fleet
        .log()
        .events
        .iter()
        .any(|e| matches!(e, ScheduleEvent::Readmitted { chip: 0, .. }));
    assert!(quarantined, "chip 0 fails while the fault window is open");
    assert!(
        readmitted,
        "chip 0 rejoins once its fault window expired: {:?}",
        fleet.log().lines()
    );
    assert_eq!(fleet.log().completed(), 40);
}

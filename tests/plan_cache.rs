//! Integration tests of the committed-netlist plan cache: the lowered
//! evaluation plan is keyed on the netlist's structural generation, so DAC
//! reprogramming between runs reuses it, structural recommits invalidate
//! it, and the compiled strategy stays bit-identical to the tree-walking
//! reference evaluator through every transition.

use analog_accel::analog::netlist::{InputPort, OutputPort};
use analog_accel::analog::units::UnitId;
use analog_accel::analog::EvalStrategy;
use analog_accel::prelude::*;

/// The paper's Figure 1 circuit: `du/dt = a·u + b` with the drive `b` on a
/// DAC — settles at `u = −b/a`, which makes plan reuse observable from the
/// outside (stale DAC values in a cached plan would freeze the answer).
fn driven_chip() -> AnalogChip {
    let mut chip = AnalogChip::new(ChipConfig::ideal());
    let (int0, fan0, mul0, adc0, dac0) = (
        UnitId::Integrator(0),
        UnitId::Fanout(0),
        UnitId::Multiplier(0),
        UnitId::Adc(0),
        UnitId::Dac(0),
    );
    chip.set_conn(OutputPort::of(int0), InputPort::of(fan0))
        .unwrap();
    chip.set_conn(
        OutputPort {
            unit: fan0,
            port: 0,
        },
        InputPort::of(adc0),
    )
    .unwrap();
    chip.set_conn(
        OutputPort {
            unit: fan0,
            port: 1,
        },
        InputPort::of(mul0),
    )
    .unwrap();
    chip.set_conn(OutputPort::of(mul0), InputPort::of(int0))
        .unwrap();
    chip.set_conn(OutputPort::of(dac0), InputPort::of(int0))
        .unwrap();
    chip.set_mul_gain(0, -1.0).unwrap();
    chip.set_dac_constant(0, 0.3).unwrap();
    chip.set_int_initial(0, 0.0).unwrap();
    chip.cfg_commit().unwrap();
    chip
}

fn options(strategy: EvalStrategy) -> EngineOptions {
    EngineOptions {
        eval_strategy: strategy,
        ..EngineOptions::default()
    }
}

/// The tentpole's differential guarantee: compiled and reference reports
/// are bit-identical before a reconfigure, the structural recommit
/// invalidates the cached plan, and they are bit-identical again after.
#[test]
fn compiled_matches_reference_through_a_reconfigure() {
    let mut chip = driven_chip();
    let before_compiled = chip.exec(&options(EvalStrategy::Compiled)).unwrap();
    let before_reference = chip.exec(&options(EvalStrategy::Reference)).unwrap();
    assert_eq!(before_compiled, before_reference);
    let settled = before_compiled.integrator_values[&0];
    assert!((settled - 0.3).abs() < 0.02 * 0.3, "settled at {settled}");

    // Halve the decay gain: a structural change that must invalidate the
    // cached plan (the new settling point is 0.3 / 0.5 = 0.6).
    chip.set_mul_gain(0, -0.5).unwrap();
    chip.cfg_commit().unwrap();
    let after_compiled = chip.exec(&options(EvalStrategy::Compiled)).unwrap();
    let after_reference = chip.exec(&options(EvalStrategy::Reference)).unwrap();
    assert_eq!(after_compiled, after_reference);
    let settled = after_compiled.integrator_values[&0];
    assert!((settled - 0.6).abs() < 0.02 * 0.6, "settled at {settled}");

    let stats = chip.plan_stats();
    assert_eq!(stats.structures_built, 2, "one per committed structure");
    assert_eq!(
        stats.plans_lowered, 2,
        "one lowering per committed structure"
    );
}

/// Reprogramming DACs and initial conditions (the solver's per-run
/// pattern, including the `cfg_commit` it performs each time) must reuse
/// the cached plan — and the answers must track the fresh DAC values,
/// proving the cache snapshots per-run state instead of baking it in.
#[test]
fn dac_reprogramming_reuses_the_cached_plan() {
    let mut chip = driven_chip();
    for k in 0..12usize {
        let drive = 0.1 + 0.05 * k as f64;
        chip.set_dac_constant(0, drive).unwrap();
        chip.set_int_initial(0, 0.0).unwrap();
        chip.cfg_commit().unwrap();
        let report = chip.exec(&EngineOptions::default()).unwrap();
        let settled = report.integrator_values[&0];
        assert!(
            (settled - drive).abs() < 0.02 * drive,
            "run {k} must settle near the freshly programmed drive {drive}, got {settled}"
        );
    }
    let stats = chip.plan_stats();
    assert_eq!(stats.plans_lowered, 1, "{stats:?}");
    assert_eq!(stats.structures_built, 1, "{stats:?}");
    assert!(stats.cache_hits >= 11, "{stats:?}");
}

/// The reference evaluator shares the cached structure but never pays for
/// a lowering it will not use.
#[test]
fn reference_strategy_never_lowers_a_plan() {
    let mut chip = driven_chip();
    for _ in 0..3 {
        chip.exec(&options(EvalStrategy::Reference)).unwrap();
    }
    let stats = chip.plan_stats();
    assert_eq!(stats.plans_lowered, 0);
    assert_eq!(stats.structures_built, 1);
    assert_eq!(stats.cache_hits, 2);
}

/// Solver-level view of the same property: a sequence of `solve` calls
/// against one matrix only reprograms DACs/initial conditions, so the
/// whole sequence lowers exactly one plan.
#[test]
fn repeated_system_solves_lower_one_plan() {
    let a = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
    let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
    for seed in 0..5usize {
        let b: Vec<f64> = (0..4)
            .map(|i| 0.2 + 0.1 * ((seed + i) % 3) as f64)
            .collect();
        solver.solve(&b).unwrap();
    }
    let stats = solver.plan_stats();
    assert_eq!(stats.plans_lowered, 1, "{stats:?}");
    assert_eq!(stats.structures_built, 1, "{stats:?}");
    assert!(stats.cache_hits >= 4, "{stats:?}");
}

//! Cross-crate integration tests: the full paper pipeline from PDE to
//! analog solution and back.

use analog_accel::prelude::*;

/// §IV-B end to end: discretize an elliptic PDE, solve it on the analog
/// accelerator, verify against the digital reference.
#[test]
fn poisson_pde_to_analog_solution() {
    let problem = Poisson2d::new(5, |x, y| 4.0 * x * (1.0 - y)).unwrap();
    let a = problem.assemble();
    let exact = problem.solve_reference(1e-12).unwrap();

    let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
    let refined = solve_refined(
        &mut solver,
        problem.rhs(),
        &RefineConfig {
            tolerance: 1e-8,
            ..RefineConfig::default()
        },
    )
    .unwrap();
    assert!(refined.converged);
    for (x, e) in refined.solution.iter().zip(&exact) {
        assert!((x - e).abs() < 1e-6, "{x} vs {e}");
    }
}

/// The paper's equal-accuracy comparison protocol: digital CG stopped at
/// the 1/256 change criterion vs one analog run through an 8-bit ADC reach
/// comparable error levels.
#[test]
fn equal_accuracy_protocol_8bit() {
    let problem = Poisson2d::new(4, |_, _| 1.0).unwrap();
    let a = problem.assemble();
    let exact = problem.solve_reference(1e-12).unwrap();
    let scale = exact.iter().fold(0.0f64, |m, v| m.max(v.abs()));

    // Digital side, stopped early.
    let digital = cg(
        problem.operator(),
        problem.rhs(),
        &IterativeConfig::with_stopping(StoppingCriterion::adc_equivalent(8)),
    )
    .unwrap();
    let digital_err = max_err(&digital.solution, &exact) / scale;

    // Analog side, one run, ideal hardware, 8-bit converters.
    let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal().adc_bits(8)).unwrap();
    let analog = solver.solve(problem.rhs()).unwrap();
    let analog_err = max_err(&analog.solution, &exact) / scale;

    // Both sides sit within an order of magnitude of the 8-bit floor; the
    // comparison the paper makes is "equal precision", not exact equality.
    assert!(digital_err < 3.0 / 256.0, "digital error {digital_err}");
    assert!(analog_err < 8.0 / 256.0, "analog error {analog_err}");
}

/// Figure 4's taxonomy walk: a time-dependent (parabolic) PDE stepped
/// implicitly generates sparse linear systems; solve one step's system on
/// the accelerator.
#[test]
fn implicit_heat_step_on_accelerator() {
    use analog_accel::linalg::CsrMatrix;
    // (I + dt·A)·u_new = u_old for the 1D heat equation.
    let op = PoissonStencil::new_1d(6).unwrap();
    let dt = 0.01;
    let mut m = CsrMatrix::from_row_access(&op).scaled(dt);
    let mut triplets: Vec<Triplet> = m.iter().map(|(i, j, v)| Triplet::new(i, j, v)).collect();
    for i in 0..6 {
        triplets.push(Triplet::new(i, i, 1.0));
    }
    m = CsrMatrix::from_triplets(6, &triplets).unwrap();

    let u_old = vec![0.0, 0.2, 0.8, 0.8, 0.2, 0.0];
    let exact = analog_accel::linalg::direct::solve(&m.to_dense(), &u_old).unwrap();

    let mut solver = AnalogSystemSolver::new(&m, &SolverConfig::ideal()).unwrap();
    let report = solver.solve(&u_old).unwrap();
    for (x, e) in report.solution.iter().zip(&exact) {
        assert!((x - e).abs() < 1e-3, "{x} vs {e}");
    }
}

/// The ISA exercised end to end through the host, solving a 2-variable
/// system (the paper's Figure 5) and reading out through `readSerial`.
#[test]
fn figure5_two_variable_system_via_isa() {
    use analog_accel::analog::netlist::{InputPort, OutputPort};
    use analog_accel::analog::units::UnitId;

    // A = [[1.0, 0.25], [0.25, 0.75]], b = [0.5, 0.25].
    // Exact solution: A⁻¹b = ([0.5·0.75 − 0.25·0.25]/det, ...).
    let mut host = Host::new(AnalogChip::new(ChipConfig::ideal()));
    let (int0, int1) = (UnitId::Integrator(0), UnitId::Integrator(1));
    let (fan0, fan1) = (UnitId::Fanout(0), UnitId::Fanout(1));
    let program = vec![
        // u0 spine.
        Instruction::SetConn {
            from: OutputPort::of(int0),
            to: InputPort::of(fan0),
        },
        Instruction::SetConn {
            from: OutputPort {
                unit: fan0,
                port: 0,
            },
            to: InputPort::of(UnitId::Multiplier(0)), // -a00 u0
        },
        Instruction::SetConn {
            from: OutputPort {
                unit: fan0,
                port: 1,
            },
            to: InputPort::of(UnitId::Multiplier(2)), // -a10 u0
        },
        // u1 spine.
        Instruction::SetConn {
            from: OutputPort::of(int1),
            to: InputPort::of(fan1),
        },
        Instruction::SetConn {
            from: OutputPort {
                unit: fan1,
                port: 0,
            },
            to: InputPort::of(UnitId::Multiplier(1)), // -a01 u1
        },
        Instruction::SetConn {
            from: OutputPort {
                unit: fan1,
                port: 1,
            },
            to: InputPort::of(UnitId::Multiplier(3)), // -a11 u1
        },
        // Row 0: du0/dt = b0 − a00 u0 − a01 u1.
        Instruction::SetMulGain {
            multiplier: 0,
            gain: -1.0,
        },
        Instruction::SetMulGain {
            multiplier: 1,
            gain: -0.25,
        },
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Multiplier(0)),
            to: InputPort::of(int0),
        },
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Multiplier(1)),
            to: InputPort::of(int0),
        },
        Instruction::SetDacConstant { dac: 0, value: 0.5 },
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Dac(0)),
            to: InputPort::of(int0),
        },
        // Row 1: du1/dt = b1 − a10 u0 − a11 u1.
        Instruction::SetMulGain {
            multiplier: 2,
            gain: -0.25,
        },
        Instruction::SetMulGain {
            multiplier: 3,
            gain: -0.75,
        },
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Multiplier(2)),
            to: InputPort::of(int1),
        },
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Multiplier(3)),
            to: InputPort::of(int1),
        },
        Instruction::SetDacConstant {
            dac: 1,
            value: 0.25,
        },
        Instruction::SetConn {
            from: OutputPort::of(UnitId::Dac(1)),
            to: InputPort::of(int1),
        },
        Instruction::CfgCommit,
        Instruction::ExecStart,
    ];
    let responses = host.run_program(&program).unwrap();
    let Response::Ran(report) = responses.last().unwrap() else {
        panic!("expected run report");
    };
    assert!(report.reached_steady_state);
    // Exact: solve [[1, .25], [.25, .75]] u = [.5, .25].
    let det = 1.0 * 0.75 - 0.25 * 0.25;
    let u0 = (0.5 * 0.75 - 0.25 * 0.25) / det;
    let u1 = (1.0 * 0.25 - 0.25 * 0.5) / det;
    assert!((report.integrator_values[&0] - u0).abs() < 1e-3);
    assert!((report.integrator_values[&1] - u1).abs() < 1e-3);
}

/// Analog timing from the circuit simulator matches the hwmodel design
/// formula used for Figures 8/9, tying the two levels of the reproduction
/// together.
#[test]
fn circuit_and_model_timing_consistency() {
    use analog_accel::hwmodel::timing::{analog_solve_time_s, PoissonProblem};
    use analog_accel::linalg::CsrMatrix;
    let l = 4;
    let a = CsrMatrix::from_row_access(&PoissonStencil::new_2d(l).unwrap());
    let cfg = SolverConfig::ideal();
    let mut solver = AnalogSystemSolver::new(&a, &cfg).unwrap();
    let measured = solver.solve(&[0.05; 16]).unwrap().analog_time_s;

    let design = AcceleratorDesign::new("cmp", cfg.bandwidth_hz, cfg.adc_bits);
    let modeled = analog_solve_time_s(&design, &PoissonProblem::new_2d(l));
    let ratio = measured / modeled;
    assert!(
        ratio > 0.25 && ratio < 4.0,
        "circuit {measured:.3e} vs model {modeled:.3e}"
    );
}

fn max_err(x: &[f64], reference: &[f64]) -> f64 {
    x.iter()
        .zip(reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

//! Crash-recovery tests for the fleet service: a service that crashes and
//! is rebuilt from its last [`FleetCheckpoint`] plus the [`AdmissionWal`]
//! recorded afterwards must drain to a bit-identical [`ScheduleLog`],
//! identical solution vectors, and identical masked obs traces versus a
//! fleet that never crashed — at any worker count, and with no accepted
//! request lost or double-answered (exactly-once).
//!
//! Test frame: both the uninterrupted and the crashed run swap in a fresh
//! recorder at the crash point, so the comparison covers the post-crash
//! segment symmetrically (counters are cumulative per recorder). The
//! restore itself runs outside any recorder — rebuilding the deterministic
//! chip stack is not part of the serving trace.

use analog_accel::obs;
use analog_accel::prelude::*;
use analog_accel::sched::{
    AdmissionWal, ChipFailure, ChipState, Completion, FleetCheckpoint, FleetConfig, FleetService,
    Priority, ScheduleLog, SolveRequest,
};

/// One external input to the service, as a replayable program step.
#[derive(Clone)]
enum Op {
    Submit(SolveRequest),
    Round,
    Inject(usize, Option<ChipFailure>),
}

fn apply(service: &mut FleetService, op: &Op) {
    match op {
        Op::Submit(request) => {
            let _ = service.submit(request.clone());
        }
        Op::Round => {
            service.run_round();
        }
        Op::Inject(chip, failure) => service.inject_chaos(*chip, *failure).unwrap(),
    }
}

fn structures() -> Vec<CsrMatrix> {
    vec![
        CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap(),
        CsrMatrix::tridiagonal(5, -1.0, 2.0, -1.0).unwrap(),
    ]
}

fn fleet_config(workers: usize) -> FleetConfig {
    FleetConfig::new(3)
        .with_seed(0xC4A5_4001)
        .with_workers(workers)
}

/// A deterministic mixed workload program: submits across both structures
/// and all priority classes, interleaved with dispatch rounds.
fn mixed_ops() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..12usize {
        let s = i % 2;
        let priority = match i % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        let rhs = vec![0.5 + 0.25 * i as f64; 4 + s];
        ops.push(Op::Submit(
            SolveRequest::new(s, rhs).with_priority(priority),
        ));
        if i % 3 == 2 {
            ops.push(Op::Round);
        }
    }
    for _ in 0..4 {
        ops.push(Op::Round);
    }
    ops
}

/// What a run leaves behind: the full schedule log, every settled
/// completion in ticket order, and the post-crash-segment trace snapshot.
struct RunResult {
    log: ScheduleLog,
    completions: Vec<Completion>,
    health: Vec<ChipState>,
    tail: obs::TraceSnapshot,
}

/// Drives `ops` through a fresh fleet, taking a checkpoint before the op
/// at `checkpoint_at` and (when `do_crash`) crashing + restoring before
/// the op at `crash_at`. Both variants swap in a fresh recorder at the
/// crash point so their tail traces are comparable.
fn drive(
    config: &FleetConfig,
    ops: &[Op],
    checkpoint_at: usize,
    crash_at: usize,
    do_crash: bool,
) -> RunResult {
    assert!(checkpoint_at <= crash_at && crash_at <= ops.len());
    let head = MemoryRecorder::shared();
    let mut service = FleetService::new(config.clone(), structures()).expect("fleet builds");
    let mut checkpoint: Option<FleetCheckpoint> = None;
    obs::with_recorder(head.clone(), || {
        for (i, op) in ops[..crash_at].iter().enumerate() {
            if i == checkpoint_at {
                checkpoint = Some(service.checkpoint());
            }
            apply(&mut service, op);
        }
        if checkpoint_at == crash_at {
            checkpoint = Some(service.checkpoint());
        }
    });
    if do_crash {
        let checkpoint = checkpoint.expect("checkpoint was taken");
        let wal: AdmissionWal = service.wal().clone();
        drop(service); // the crash
        service = FleetService::restore(config.clone(), structures(), &checkpoint, &wal)
            .expect("restore succeeds");
    }
    let tail = MemoryRecorder::shared();
    obs::with_recorder(tail.clone(), || {
        for op in &ops[crash_at..] {
            apply(&mut service, op);
        }
        service.run_until_idle();
    });
    RunResult {
        completions: service.completions().cloned().collect(),
        health: service.health().iter().map(|h| h.state).collect(),
        log: service.into_log(),
        tail: tail.snapshot(),
    }
}

fn assert_identical(baseline: &RunResult, recovered: &RunResult, label: &str) {
    assert_eq!(baseline.log, recovered.log, "{label}: schedule log");
    assert_eq!(
        baseline.completions, recovered.completions,
        "{label}: completions"
    );
    assert_eq!(baseline.health, recovered.health, "{label}: health states");
    if obs::ENABLED {
        assert_eq!(
            baseline.tail.deterministic_lines(),
            recovered.tail.deterministic_lines(),
            "{label}: tail journal"
        );
        assert_eq!(
            baseline.tail.counters, recovered.tail.counters,
            "{label}: tail counters"
        );
        assert_eq!(
            baseline.tail.to_json_masked(),
            recovered.tail.to_json_masked(),
            "{label}: tail masked trace"
        );
    }
}

/// The headline guarantee: crash at a seeded point, restore from
/// checkpoint + WAL, drain — bit-identical log, solutions, and masked
/// traces versus the uninterrupted run, at 1, 2, and 4 workers.
#[test]
fn crash_restore_is_bit_identical_across_worker_counts() {
    let ops = mixed_ops();
    let (checkpoint_at, crash_at) = (5, 11);
    let baseline = drive(&fleet_config(1), &ops, checkpoint_at, crash_at, false);
    assert!(
        baseline.completions.len() >= 12,
        "every submitted request settled"
    );
    for workers in [1usize, 2, 4] {
        let recovered = drive(&fleet_config(workers), &ops, checkpoint_at, crash_at, true);
        assert_identical(&baseline, &recovered, &format!("workers={workers}"));
        // And the uninterrupted run at this worker count matches too.
        let uninterrupted = drive(&fleet_config(workers), &ops, checkpoint_at, crash_at, false);
        assert_identical(
            &baseline,
            &uninterrupted,
            &format!("workers={workers} uninterrupted"),
        );
    }
}

/// Crashing between admission and dispatch (requests accepted, no round
/// run yet) loses nothing: the WAL re-admits them with the same tickets
/// and they are served exactly once.
#[test]
fn crash_between_admission_and_dispatch_loses_nothing() {
    let mut ops: Vec<Op> = (0..5usize)
        .map(|i| Op::Submit(SolveRequest::new(0, vec![1.0 + i as f64 * 0.5; 4])))
        .collect();
    let submits = ops.len();
    ops.push(Op::Round);
    // Checkpoint after two admissions; crash after all five, pre-dispatch.
    let baseline = drive(&fleet_config(1), &ops, 2, submits, false);
    let recovered = drive(&fleet_config(1), &ops, 2, submits, true);
    assert_eq!(recovered.completions.len(), 5, "no accepted request lost");
    let tickets: Vec<u64> = recovered.completions.iter().map(|c| c.ticket.0).collect();
    let mut deduped = tickets.clone();
    deduped.dedup();
    assert_eq!(tickets, deduped, "no request answered twice");
    assert_identical(&baseline, &recovered, "admission-dispatch gap");
}

/// Restoring while a chip is quarantined — and at later points while it is
/// on probation — reproduces the uninterrupted health trajectory exactly.
#[test]
fn restore_mid_quarantine_and_mid_probation_converges() {
    let mut ops = vec![Op::Inject(0, Some(ChipFailure::Dead))];
    for i in 0..10usize {
        ops.push(Op::Submit(SolveRequest::new(0, vec![1.0 + i as f64; 4])));
        ops.push(Op::Round);
    }
    let baseline = drive(&fleet_config(1), &ops, 0, ops.len(), false);
    assert!(
        baseline.log.events.iter().any(|e| matches!(
            e,
            analog_accel::sched::ScheduleEvent::Quarantined { chip: 0, .. }
        )),
        "the dead chip quarantines in the baseline"
    );
    // Crash at several points: while scores accumulate, right after the
    // quarantine, and mid-probation. Every restore must land on the same
    // final state as an uninterrupted run framed at the same point.
    for crash_at in [4usize, 8, 12, 16] {
        let uninterrupted = drive(&fleet_config(1), &ops, 2, crash_at, false);
        assert_eq!(
            baseline.log, uninterrupted.log,
            "crash_at={crash_at}: framing must not change the run"
        );
        let recovered = drive(&fleet_config(1), &ops, 2, crash_at, true);
        assert_identical(&uninterrupted, &recovered, &format!("crash_at={crash_at}"));
    }
}

/// Crash-restore with multi-RHS coalescing enabled: the checkpoint lands
/// before a round in which a wedged chip bounces a whole batched chunk, so
/// the WAL replay must reproduce the chunk-aligned requeue (and the rest
/// of the batched schedule) bit for bit — at 1, 2, and 4 workers.
#[test]
fn crash_restore_mid_batched_round_is_bit_identical() {
    let batched = |workers: usize| {
        let mut cfg = fleet_config(workers).with_max_batch_rhs(3);
        cfg.batch_size = 6;
        cfg
    };
    // Same-structure-heavy workload so multi-column chunks actually form;
    // the hang lands mid-chunk and bounces every column of the sweep.
    let mut ops: Vec<Op> = (0..6usize)
        .map(|i| Op::Submit(SolveRequest::new(0, vec![0.5 + 0.25 * i as f64; 4])))
        .collect();
    ops.push(Op::Inject(0, Some(ChipFailure::HangAfter { served: 1 })));
    ops.push(Op::Round);
    for i in 0..4usize {
        ops.push(Op::Submit(SolveRequest::new(1, vec![1.0 + i as f64; 5])));
    }
    ops.push(Op::Round);
    ops.push(Op::Round);
    // Checkpoint before the injection; crash right after the wedged round,
    // while the bounced columns sit requeued — recovery rebuilds that
    // state purely from WAL replay.
    let (checkpoint_at, crash_at) = (6, 8);
    let baseline = drive(&batched(1), &ops, checkpoint_at, crash_at, false);
    assert!(
        baseline.log.events.iter().any(|e| matches!(
            e,
            analog_accel::sched::ScheduleEvent::Requeued { columns, .. } if *columns > 1
        )),
        "a batched chunk bounced in the baseline"
    );
    assert!(
        baseline.completions.len() >= 10,
        "every submitted request settled"
    );
    for workers in [1usize, 2, 4] {
        let recovered = drive(&batched(workers), &ops, checkpoint_at, crash_at, true);
        assert_identical(&baseline, &recovered, &format!("batched workers={workers}"));
        let uninterrupted = drive(&batched(workers), &ops, checkpoint_at, crash_at, false);
        assert_identical(
            &baseline,
            &uninterrupted,
            &format!("batched workers={workers} uninterrupted"),
        );
    }
}

/// Crash-restore on a fleet whose solvers run the full optimization pass
/// pipeline: the per-solver checkpoints carry the pass config, the restore
/// re-lowers the optimized plans, and the drained run stays bit-identical
/// to the uninterrupted one.
#[test]
fn crash_restore_on_an_optimized_plan_fleet_is_bit_identical() {
    let optimized = |workers: usize| {
        let mut cfg = fleet_config(workers);
        cfg.solver.engine.passes = analog_accel::analog::PassConfig::full();
        cfg
    };
    let ops = mixed_ops();
    let (checkpoint_at, crash_at) = (5, 11);
    let baseline = drive(&optimized(1), &ops, checkpoint_at, crash_at, false);
    assert!(
        baseline.completions.len() >= 12,
        "every submitted request settled"
    );
    for workers in [1usize, 2] {
        let recovered = drive(&optimized(workers), &ops, checkpoint_at, crash_at, true);
        assert_identical(
            &baseline,
            &recovered,
            &format!("optimized workers={workers}"),
        );
    }
}

/// A checkpoint of an idle fleet (empty queue, empty WAL) restores cleanly
/// and the restored service serves new work identically.
#[test]
fn empty_queue_checkpoint_restores_and_serves_new_work() {
    let mut ops = vec![
        Op::Submit(SolveRequest::new(1, vec![0.5; 5])),
        Op::Round,
        Op::Round,
    ];
    let drained = ops.len();
    ops.push(Op::Submit(
        SolveRequest::new(0, vec![2.0; 4]).with_priority(Priority::High),
    ));
    ops.push(Op::Round);
    // Checkpoint and crash at the same idle point: the WAL between them is
    // empty, so recovery is the snapshot alone.
    let baseline = drive(&fleet_config(1), &ops, drained, drained, false);
    let recovered = drive(&fleet_config(1), &ops, drained, drained, true);
    assert_eq!(recovered.completions.len(), 2);
    assert_identical(&baseline, &recovered, "idle checkpoint");
}

//! Deterministic-replay tests of the structured trace layer: the same
//! seed, netlist, and fault plan must produce an identical event journal —
//! at any thread count, under either engine evaluation strategy, and
//! bit-identically once wall-clock fields are masked.

use analog_accel::analog::netlist::{InputPort, OutputPort};
use analog_accel::analog::units::UnitId;
use analog_accel::analog::EvalStrategy;
use analog_accel::linalg::ParallelConfig;
use analog_accel::obs;
use analog_accel::prelude::*;
use analog_accel::solver::OuterMethod;

/// A small self-decaying circuit: `du/dt = −u` from `u(0) = 0.5`.
fn decay_chip() -> AnalogChip {
    let mut chip = AnalogChip::new(ChipConfig::ideal());
    chip.set_conn(
        OutputPort::of(UnitId::Integrator(0)),
        InputPort::of(UnitId::Multiplier(0)),
    )
    .unwrap();
    chip.set_conn(
        OutputPort::of(UnitId::Multiplier(0)),
        InputPort::of(UnitId::Integrator(0)),
    )
    .unwrap();
    chip.set_mul_gain(0, -1.0).unwrap();
    chip.set_int_initial(0, 0.5).unwrap();
    chip.cfg_commit().unwrap();
    chip
}

fn engine_journal(strategy: EvalStrategy) -> Vec<String> {
    let rec = MemoryRecorder::shared();
    obs::with_recorder(rec.clone(), || {
        let mut chip = decay_chip();
        chip.exec(&EngineOptions {
            eval_strategy: strategy,
            ..EngineOptions::default()
        })
        .unwrap();
    });
    rec.snapshot().deterministic_lines()
}

/// The engine's journal replays identically, and the compiled plan emits
/// the same sequence as the tree-walking reference evaluator — lowering
/// happens inside the `engine.compile` span, so the strategies are
/// indistinguishable in the trace.
#[test]
fn engine_journal_replays_identically_across_strategies() {
    if !obs::ENABLED {
        return;
    }
    let compiled = engine_journal(EvalStrategy::Compiled);
    assert!(!compiled.is_empty());
    assert_eq!(
        compiled,
        engine_journal(EvalStrategy::Compiled),
        "same-strategy replay"
    );
    assert_eq!(
        compiled,
        engine_journal(EvalStrategy::Reference),
        "strategies must share one journal"
    );
    // Spans nest as documented: run wraps compile then execute.
    assert_eq!(compiled.first().unwrap(), ">engine.run");
    assert_eq!(compiled.last().unwrap(), "<engine.run");
    let pos = |line: &str| compiled.iter().position(|l| l == line).unwrap();
    assert!(pos(">engine.compile") < pos("<engine.compile"));
    assert!(pos("<engine.compile") < pos(">engine.execute"));
    assert!(pos(">engine.execute") < pos("<engine.execute"));
}

/// Property test: for every seed, two supervised solves against the same
/// fault plan produce identical journals and bit-identical masked exports.
#[test]
fn supervised_solves_replay_identically_across_seeds() {
    if !obs::ENABLED {
        return;
    }
    let a = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
    let b = [1.0, -0.5, 0.25, 1.0];
    let config = SolverConfig {
        engine: EngineOptions {
            stop_on_exception: true,
            max_tau: 300.0,
            ..EngineOptions::default()
        },
        ..SolverConfig::ideal()
    };
    for seed in [1u64, 7, 42, 1234] {
        let run = || {
            let rec = MemoryRecorder::shared();
            obs::with_recorder(rec.clone(), || {
                let mut solver =
                    SupervisedSolver::new(&a, &config, &RecoveryConfig::default()).unwrap();
                solver.inject_faults(FaultPlan::new(seed).with_event(FaultEvent::transient(
                    FaultKind::NoiseBurst {
                        unit: UnitId::Integrator(seed as usize % 4),
                        amplitude: 0.04,
                    },
                    0.0,
                    2.5e-3,
                )));
                let _ = solver.solve(&b);
            });
            rec.snapshot()
        };
        let first = run();
        let second = run();
        assert!(!first.journal.is_empty(), "seed {seed}");
        assert_eq!(first.counter("solver.supervised_solves"), 1, "seed {seed}");
        assert_eq!(
            first.deterministic_lines(),
            second.deterministic_lines(),
            "seed {seed}"
        );
        assert_eq!(
            first.to_json_masked(),
            second.to_json_masked(),
            "seed {seed}"
        );
    }
}

/// The decomposed solver's journal is invariant under the worker-thread
/// count: one forked child recorder per block solve, joined in input order.
#[test]
fn decomposed_solve_journal_is_thread_count_invariant() {
    if !obs::ENABLED {
        return;
    }
    let l = 6;
    let a = CsrMatrix::from_row_access(&PoissonStencil::new_2d(l).unwrap());
    let b = vec![1.0; l * l];
    let journal = |threads: usize| {
        let rec = MemoryRecorder::shared();
        obs::with_recorder(rec.clone(), || {
            let cfg = DecomposeConfig {
                block_size: l,
                outer: OuterMethod::BlockJacobi,
                tolerance: 1e-6,
                max_sweeps: 600,
                parallel: ParallelConfig::threads(threads),
                ..DecomposeConfig::default()
            };
            solve_decomposed(&a, &b, &cfg).unwrap();
        });
        rec.snapshot()
    };
    let serial = journal(1);
    assert!(serial.counter("engine.runs") > 0, "block solves are traced");
    assert!(serial.counter("parallel.tasks") > 0, "fan-out is traced");
    for threads in [2, 4] {
        let par = journal(threads);
        assert_eq!(
            serial.deterministic_lines(),
            par.deterministic_lines(),
            "threads={threads}"
        );
        assert_eq!(serial.counters, par.counters, "threads={threads}");
        assert_eq!(
            serial.to_json_masked(),
            par.to_json_masked(),
            "threads={threads}"
        );
    }
}

/// The persistent worker pool forks one child recorder per item and joins
/// them in input order, so repeated maps through one pool produce the same
/// results and the same masked trace JSON at any worker count — including
/// the serial pool, which spawns no threads at all.
#[test]
fn worker_pool_replay_is_worker_count_invariant() {
    if !obs::ENABLED {
        return;
    }
    use analog_accel::linalg::WorkerPool;
    let run = |workers: usize| {
        let rec = MemoryRecorder::shared();
        let mut results: Vec<Vec<u64>> = Vec::new();
        obs::with_recorder(rec.clone(), || {
            let mut pool = WorkerPool::new(vec![0u64; workers], |state, i, x: u64| {
                *state += 1; // private per-worker state, never shared
                obs::event(obs::Event::new("pool.task").with("i", i).with("x", x));
                x * 3 + i as u64
            });
            for _ in 0..3 {
                results.push(pool.map((0..10).collect()));
            }
        });
        (results, rec.snapshot())
    };
    let (serial_results, serial) = run(1);
    assert_eq!(serial.counter("parallel.tasks"), 30, "one count per item");
    for workers in [2, 4] {
        let (results, par) = run(workers);
        assert_eq!(serial_results, results, "workers={workers}");
        assert_eq!(
            serial.deterministic_lines(),
            par.deterministic_lines(),
            "workers={workers}"
        );
        assert_eq!(serial.counters, par.counters, "workers={workers}");
        assert_eq!(
            serial.to_json_masked(),
            par.to_json_masked(),
            "workers={workers}"
        );
    }
}

/// A full fleet-service run — admission, priority dispatch, per-chip
/// supervised solves, health scoring — produces one `ScheduleLog` and one
/// obs journal, invariant under both replay (same seed twice) and the
/// worker-thread count: all scheduling decisions happen on the dispatcher
/// thread, and the pool forks/joins per-chip recorders in chip order.
#[test]
fn fleet_schedule_log_replays_identically_across_worker_counts() {
    use analog_accel::sched::{FleetConfig, FleetService, Priority, SolveRequest};

    let run = |workers: usize| {
        let a4 = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
        let a5 = CsrMatrix::tridiagonal(5, -1.0, 2.0, -1.0).unwrap();
        let rec = MemoryRecorder::shared();
        let (log, solutions) = obs::with_recorder(rec.clone(), || {
            let config = FleetConfig::new(3).with_seed(42).with_workers(workers);
            let mut fleet = FleetService::new(config, vec![a4, a5]).unwrap();
            let mut tickets = Vec::new();
            for i in 0..10 {
                let s = i % 2;
                let priority = match i % 3 {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    _ => Priority::Low,
                };
                let rhs = vec![1.0 + i as f64 * 0.25; 4 + s];
                tickets.push(
                    fleet
                        .submit(SolveRequest::new(s, rhs).with_priority(priority))
                        .unwrap(),
                );
            }
            fleet.run_until_idle();
            let solutions: Vec<Vec<f64>> = tickets
                .iter()
                .map(|t| fleet.completion(*t).unwrap().solution.clone())
                .collect();
            (fleet.into_log(), solutions)
        });
        (log, solutions, rec.snapshot())
    };

    let (log1, sols1, snap1) = run(1);
    assert_eq!(log1.completed(), 10);
    // Same-seed replay at the same worker count is identical.
    let (log1b, sols1b, snap1b) = run(1);
    assert_eq!(log1, log1b, "same-seed replay");
    assert_eq!(sols1, sols1b);
    if obs::ENABLED {
        assert_eq!(snap1.deterministic_lines(), snap1b.deterministic_lines());
        assert_eq!(snap1.to_json_masked(), snap1b.to_json_masked());
    }
    // The worker count changes wall-clock only: log, solutions, journal,
    // and counters all match the single-worker run bit for bit.
    for workers in [2usize, 4] {
        let (log, sols, snap) = run(workers);
        assert_eq!(log1, log, "workers={workers}");
        assert_eq!(sols1, sols, "workers={workers}");
        if obs::ENABLED {
            assert_eq!(
                snap1.deterministic_lines(),
                snap.deterministic_lines(),
                "workers={workers}"
            );
            assert_eq!(snap1.counters, snap.counters, "workers={workers}");
            assert_eq!(
                snap1.to_json_masked(),
                snap.to_json_masked(),
                "workers={workers}"
            );
        }
    }
}

/// Multi-RHS coalescing preserves the fleet's replay story: with
/// `max_batch_rhs > 1` the schedule log, solutions, and masked traces are
/// still bit-identical across worker counts — chunking happens per chip in
/// assignment order on the dispatcher's schedule, so the worker count
/// stays invisible.
#[test]
fn batched_fleet_replay_is_worker_count_invariant() {
    use analog_accel::sched::{FleetConfig, FleetService, SolveRequest};

    let run = |workers: usize| {
        let a4 = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
        let a5 = CsrMatrix::tridiagonal(5, -1.0, 2.0, -1.0).unwrap();
        let rec = MemoryRecorder::shared();
        let (log, solutions) = obs::with_recorder(rec.clone(), || {
            let mut config = FleetConfig::new(3)
                .with_seed(77)
                .with_workers(workers)
                .with_max_batch_rhs(4);
            config.batch_size = 6;
            let mut fleet = FleetService::new(config, vec![a4, a5]).unwrap();
            let mut tickets = Vec::new();
            // Runs of one structure, so real multi-column chunks form.
            for i in 0..12 {
                let s = (i / 6) % 2;
                let rhs = vec![0.75 + i as f64 * 0.2; 4 + s];
                tickets.push(fleet.submit(SolveRequest::new(s, rhs)).unwrap());
            }
            fleet.run_until_idle();
            let solutions: Vec<Vec<f64>> = tickets
                .iter()
                .map(|t| fleet.completion(*t).unwrap().solution.clone())
                .collect();
            (fleet.into_log(), solutions)
        });
        (log, solutions, rec.snapshot())
    };

    let (log1, sols1, snap1) = run(1);
    assert_eq!(log1.completed(), 12);
    if obs::ENABLED {
        assert!(
            snap1.counter("sched.chip_batches") > 0,
            "coalescing actually engaged"
        );
    }
    for workers in [2usize, 4] {
        let (log, sols, snap) = run(workers);
        assert_eq!(log1, log, "workers={workers}");
        assert_eq!(sols1, sols, "workers={workers}");
        if obs::ENABLED {
            assert_eq!(
                snap1.deterministic_lines(),
                snap.deterministic_lines(),
                "workers={workers}"
            );
            assert_eq!(snap1.counters, snap.counters, "workers={workers}");
            assert_eq!(
                snap1.to_json_masked(),
                snap.to_json_masked(),
                "workers={workers}"
            );
        }
    }
}

/// The exported trace document is valid JSON carrying the version stamp,
/// and the masked form is bit-identical across two same-seed replays.
#[test]
fn trace_export_is_versioned_json_and_masked_replay_stable() {
    if !obs::ENABLED {
        return;
    }
    let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).unwrap();
    let b = [0.5, 1.0, -0.25];
    let run = || {
        let rec = MemoryRecorder::shared();
        obs::with_recorder(rec.clone(), || {
            let mut solver = AnalogSystemSolver::new(&a, &SolverConfig::ideal()).unwrap();
            solver.solve(&b).unwrap();
        });
        rec.snapshot()
    };
    let first = run();
    let second = run();
    assert_eq!(first.to_json_masked(), second.to_json_masked());

    let parsed = obs::json::Json::parse(&first.to_json()).unwrap();
    assert_eq!(
        parsed.get("format").and_then(|v| v.as_str()),
        Some("aa-obs-trace")
    );
    assert_eq!(
        parsed.get("version").and_then(|v| v.as_f64()),
        Some(f64::from(TraceSnapshot::FORMAT_VERSION))
    );
    let events = parsed
        .get("events")
        .and_then(|v| v.as_array())
        .expect("events array");
    assert!(!events.is_empty());
    assert!(parsed.get("counters").is_some());
    assert!(parsed.get("histograms").is_some());
    assert!(parsed.get("timings").is_some());
}

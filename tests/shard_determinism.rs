//! Determinism tests for the sharded dispatcher: the schedule is decided
//! entirely on the dispatcher thread, shard by shard in shard order, so
//! for any fixed shard count the fleet-wide log, every per-shard
//! [`ScheduleLog`], the completions, and the masked obs traces must be
//! bit-identical at any worker count. Failures and crash-recovery on one
//! shard must leave every other shard's log untouched.

use analog_accel::obs;
use analog_accel::prelude::*;
use analog_accel::sched::{
    AdmissionWal, ChipFailure, FleetCheckpoint, FleetConfig, FleetService, Priority, ScheduleEvent,
    ScheduleLog, SolveRequest,
};

fn structures() -> Vec<CsrMatrix> {
    (4..8usize)
        .map(|n| CsrMatrix::tridiagonal(n, -1.0, 2.0, -1.0).unwrap())
        .collect()
}

fn config(shards: usize, workers: usize) -> FleetConfig {
    FleetConfig::new(4)
        .with_seed(0x5AAD_D37E)
        .with_shards(shards)
        .with_workers(workers)
}

/// A mixed workload spanning every structure (so every shard sees
/// traffic) and every priority class, interleaved with rounds.
fn submit_mixed(service: &mut FleetService) {
    for i in 0..16usize {
        let s = i % 4;
        let dim = 4 + s;
        let rhs = vec![0.4 + 0.15 * i as f64; dim];
        let priority = match i % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        service
            .submit(SolveRequest::new(s, rhs).with_priority(priority))
            .expect("capacity is ample");
        if i % 5 == 4 {
            service.run_round();
        }
    }
}

struct RunResult {
    log: ScheduleLog,
    shard_logs: Vec<ScheduleLog>,
    shard_rounds: Vec<u64>,
    completions: Vec<u64>,
    trace: obs::TraceSnapshot,
}

fn run(shards: usize, workers: usize) -> RunResult {
    let recorder = MemoryRecorder::shared();
    let mut service = FleetService::new(config(shards, workers), structures()).unwrap();
    obs::with_recorder(recorder.clone(), || {
        submit_mixed(&mut service);
        service.run_until_idle();
    });
    RunResult {
        shard_logs: (0..service.shard_count())
            .map(|s| service.shard_log(s).clone())
            .collect(),
        shard_rounds: (0..service.shard_count())
            .map(|s| service.shard_rounds(s))
            .collect(),
        completions: service.completions().map(|c| c.ticket.0).collect(),
        log: service.into_log(),
        trace: recorder.snapshot(),
    }
}

/// For every shard count, the schedule — fleet-wide and per shard — and
/// the masked trace are invariant across 1, 2, and 4 workers.
#[test]
fn per_shard_logs_are_bit_identical_across_worker_counts() {
    for shards in [1usize, 2, 4] {
        let baseline = run(shards, 1);
        assert_eq!(baseline.shard_logs.len(), shards);
        assert_eq!(baseline.completions.len(), 16, "shards={shards}");
        // Every shard saw traffic: four structures spread over the shards.
        for (s, log) in baseline.shard_logs.iter().enumerate() {
            assert!(
                log.completed() > 0,
                "shards={shards}: shard {s} served nothing"
            );
        }
        for workers in [2usize, 4] {
            let other = run(shards, workers);
            let label = format!("shards={shards} workers={workers}");
            assert_eq!(baseline.log, other.log, "{label}: fleet-wide log");
            assert_eq!(
                baseline.shard_logs, other.shard_logs,
                "{label}: per-shard logs"
            );
            assert_eq!(
                baseline.shard_rounds, other.shard_rounds,
                "{label}: per-shard rounds"
            );
            assert_eq!(
                baseline.completions, other.completions,
                "{label}: completions"
            );
            if obs::ENABLED {
                assert_eq!(
                    baseline.trace.deterministic_lines(),
                    other.trace.deterministic_lines(),
                    "{label}: journal"
                );
                assert_eq!(
                    baseline.trace.to_json_masked(),
                    other.trace.to_json_masked(),
                    "{label}: masked trace"
                );
            }
        }
    }
}

/// Changing only the worker split never reassigns work between shards:
/// shard ownership of a ticket is decided at admission, on the
/// dispatcher thread.
#[test]
fn worker_count_never_moves_tickets_between_shards() {
    let admitted_per_shard = |r: &RunResult| -> Vec<Vec<u64>> {
        r.shard_logs
            .iter()
            .map(|log| {
                log.events
                    .iter()
                    .filter_map(|e| match e {
                        ScheduleEvent::Admitted { ticket, .. } => Some(*ticket),
                        _ => None,
                    })
                    .collect()
            })
            .collect()
    };
    let baseline = run(2, 1);
    let wide = run(2, 4);
    assert_eq!(admitted_per_shard(&baseline), admitted_per_shard(&wide));
}

/// A mid-round failure and crash-restore on one shard leaves the other
/// shard's log bit-identical to the undisturbed baseline: shards fail
/// and recover independently.
#[test]
fn crash_restore_on_one_shard_leaves_other_shards_untouched() {
    let drive = |do_crash: bool| -> (Vec<ScheduleLog>, Vec<u64>) {
        let cfg = config(2, 1);
        let mut service = FleetService::new(cfg.clone(), structures()).unwrap();
        // Even structures home to shard 0, odd to shard 1.
        for i in 0..8usize {
            let s = i % 4;
            service
                .submit(SolveRequest::new(s, vec![1.0; 4 + s]))
                .unwrap();
        }
        let checkpoint: FleetCheckpoint = service.checkpoint();
        // Wedge a shard-0 chip mid-batch, then run the round it bounces.
        service
            .inject_chaos(0, Some(ChipFailure::HangAfter { served: 1 }))
            .unwrap();
        service.run_round();
        if do_crash {
            let wal: AdmissionWal = service.wal().clone();
            drop(service);
            service = FleetService::restore(cfg, structures(), &checkpoint, &wal).unwrap();
        }
        service.run_until_idle();
        let logs = (0..2).map(|s| service.shard_log(s).clone()).collect();
        let tickets = service.completions().map(|c| c.ticket.0).collect();
        (logs, tickets)
    };
    let (baseline_logs, baseline_tickets) = drive(false);
    let (recovered_logs, recovered_tickets) = drive(true);
    // The wedge bounced a batch on shard 0 only.
    let bounced = |log: &ScheduleLog| {
        log.events
            .iter()
            .any(|e| matches!(e, ScheduleEvent::Requeued { .. }))
    };
    assert!(bounced(&baseline_logs[0]), "shard 0 saw the failure");
    assert!(!bounced(&baseline_logs[1]), "shard 1 stayed clean");
    // Recovery reproduces both shards bit for bit — in particular the
    // undisturbed shard's log is exactly the baseline's.
    assert_eq!(recovered_logs[1], baseline_logs[1], "shard 1 untouched");
    assert_eq!(recovered_logs[0], baseline_logs[0], "shard 0 replayed");
    assert_eq!(recovered_tickets, baseline_tickets, "exactly-once held");
    assert_eq!(baseline_tickets.len(), 8);
}

//! CI chaos-soak driver: runs the standard deterministic soak against the
//! fleet service and writes the report JSON (stdout, or `--out FILE`).
//! Exits non-zero when an invariant was violated, so the job gates; the
//! report artifact uploads either way.
//!
//! ```text
//! chaos_soak [--seed N] [--requests N] [--out FILE]
//! ```

use std::process::ExitCode;

use aa_sched::chaos::{run_soak, ChaosConfig};

fn main() -> ExitCode {
    let mut seed: u64 = 0x5EED_50A4; // stable default
    let mut requests = 500usize;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => requests = v,
                None => return usage("--requests needs an integer"),
            },
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    let config = ChaosConfig {
        requests,
        ..ChaosConfig::standard(seed)
    };
    let report = match run_soak(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("chaos_soak: harness error: {e}");
            return ExitCode::from(2);
        }
    };
    let json = report.to_json();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("chaos_soak: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            println!("chaos_soak: report written to {path}");
        }
        None => println!("{json}"),
    }
    eprintln!(
        "chaos_soak: seed={} accepted={} completed={} crashes={} requeues={} violations={}",
        report.seed,
        report.accepted,
        report.completed,
        report.crashes,
        report.requeues,
        report.violations.len()
    );
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!("chaos_soak: VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("chaos_soak: {message}");
    eprintln!("usage: chaos_soak [--seed N] [--requests N] [--out FILE]");
    ExitCode::from(2)
}

//! # aa-sched — chip-fleet scheduler for the analog accelerator
//!
//! The paper evaluates a single 20 kHz prototype, but its design-space
//! projections (Table II) describe *fleets* of analog tiles each solving
//! an `A·u = b` instance. This crate turns the repo's single-shot solver
//! stack into that serving shape: a [`FleetService`] owning N
//! independently-seeded chips behind a bounded priority queue.
//!
//! The moving parts:
//!
//! * **Sharded dispatch** — the fleet splits into independent dispatcher
//!   groups ([`FleetConfig::shards`]): each shard owns a disjoint chip
//!   range, its own bounded queue, worker pool, round counter, and
//!   [`ScheduleLog`], so dispatch stops serializing across the fleet.
//!   Submissions route by structure affinity (`structure % shards`) with
//!   a deterministic cyclic spill rule when the home shard saturates
//!   ([`ScheduleEvent::Spilled`]).
//! * **Admission control** — [`FleetService::submit`] validates each
//!   [`SolveRequest`] and applies backpressure with typed [`Rejected`]
//!   verdicts (`QueueFull`, `DeadlineInfeasible`, …) instead of panicking
//!   or queueing unboundedly. Per-tenant weighted fair-share quotas
//!   ([`FleetConfig::tenant_weights`]) refuse a tenant over its share of
//!   the fleet-wide capacity ([`Rejected::QuotaExceeded`]) before any
//!   queue-occupancy check.
//! * **Deadlines** — a request may carry a budget of *simulated analog
//!   seconds*. Budgets below the structure's predicted solve time
//!   ([`aa_solver::estimate`]) are refused up front; budgets exceeded at
//!   solve time are answered by the digital (CG) lane instead
//!   ([`CompletionPath::DeadlineFallback`]) — the paper's hybrid story at
//!   the fleet level.
//! * **Krylov mode** — a request may ask for an analog-preconditioned
//!   flexible-CG solve instead of a direct one
//!   ([`SolveMode::KrylovPrecond`]): the placed chip runs
//!   [`aa_solver::fcg_solve`] around its persistent supervised solver,
//!   the deadline is priced against the request's own profile
//!   ([`aa_solver::estimate::krylov_solve_time_s`] — one analog solve per
//!   preconditioner application), and the assignment is never coalesced
//!   into a shared multi-RHS sweep.
//! * **Health-aware placement** — each chip's supervised recovery
//!   outcomes feed an EWMA failure score; chips crossing the quarantine
//!   threshold leave rotation, sit out, then earn re-admission through a
//!   single probe request ([`ChipState`]).
//! * **Plan-cache-aware batching** — same-structure requests are batched
//!   onto one chip so its compiled-plan cache (PR 4) is hit across the
//!   batch.
//! * **Deterministic replay** — all scheduling decisions run on the
//!   dispatcher thread; worker threads (one pool lane per chip group via
//!   [`aa_linalg::WorkerPool`]) only execute placed batches. Two same-seed
//!   runs produce equal [`ScheduleLog`]s and identical `aa-obs` journals
//!   at any worker count.
//! * **Energy accounting** — completions carry joules from the
//!   [`aa_hwmodel`] power model, aggregated per priority class in the
//!   log (the paper's Fig. 9 energy/solve metric, per class).

//! * **Crash recovery** — [`FleetService::checkpoint`] freezes the whole
//!   fleet (per-chip RNG clocks, health, per-shard queues / logs / round
//!   counters, plan-cache state) into a versioned [`FleetCheckpoint`]
//!   with per-shard sections ([`ShardCheckpoint`], format v2) and the
//!   [`AdmissionWal`] records every external input since; restoring the
//!   pair ([`FleetService::restore`]) drains to bit-identical logs,
//!   solutions, and masked traces versus a fleet that never crashed.
//! * **Chaos testing** — the [`chaos`] module soaks the service under
//!   seeded chip deaths, mid-batch hangs, dispatcher stalls, overload
//!   bursts, deadline storms, and crash/restore cycles, auditing the
//!   exactly-once and convergence invariants.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
mod checkpoint;
mod fleet;
mod log;
mod request;
mod service;

pub use checkpoint::{AdmissionWal, FleetCheckpoint, QueuedRequest, ShardCheckpoint, WalOp};
pub use fleet::{ChipFailure, ChipHealth, ChipState, FleetConfig, HealthConfig, SlotCheckpoint};
pub use log::{ScheduleEvent, ScheduleLog};
pub use request::{
    Backoff, Completion, CompletionPath, Priority, Rejected, SolveMode, SolveRequest, SolveTicket,
    PRIORITY_CLASSES,
};
pub use service::{FleetService, SchedError};

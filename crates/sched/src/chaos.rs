//! Deterministic chaos harness for the fleet service.
//!
//! [`run_soak`] drives a [`FleetService`] through a seeded gauntlet of
//! fleet-level failures — chip deaths and mid-batch hangs, dispatcher
//! stalls, queue-overload bursts, deadline storms, and crash/restore
//! cycles through the checkpoint + WAL recovery path — then audits the
//! service-level invariants:
//!
//! * **exactly-once**: every accepted request is answered, exactly once,
//!   across every injected failure and crash;
//! * **quarantine converges**: a killed chip ends out of rotation
//!   (retired once its quarantine budget is spent) instead of cycling
//!   through probation forever;
//! * **the digital lane engages**: with the whole fleet out of rotation
//!   the dispatcher still answers from its own CG lane;
//! * **no panics**: hostile load produces typed verdicts and bounced
//!   batches, never an unwind.
//!
//! Everything is a pure function of [`ChaosConfig::seed`] — the same soak
//! replays bit-identically, so a violation found in CI reproduces locally
//! from the seed alone.

use std::collections::BTreeSet;

use aa_linalg::rng::Rng64;
use aa_linalg::CsrMatrix;

use crate::checkpoint::FleetCheckpoint;
use crate::fleet::{ChipFailure, ChipState, FleetConfig};
use crate::log::ScheduleEvent;
use crate::request::{Backoff, CompletionPath, Priority, SolveRequest, SolveTicket};
use crate::service::{FleetService, SchedError};

/// Knobs of one deterministic soak run. Every injector is period-based on
/// the harness tick clock; `0` disables it.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed: workload, jitter, and injection choices all derive
    /// from it.
    pub seed: u64,
    /// Fleet size.
    pub chips: usize,
    /// Dispatcher groups ([`FleetConfig::shards`]); `1` soaks the
    /// unsharded dispatcher.
    pub shards: usize,
    /// Distinct tenant ids the workload cycles through; `0` leaves every
    /// request on the default tenant and disables quota enforcement.
    /// With `N > 0` tenants, tenant `t` gets weight `t + 1` so the soak
    /// exercises both over-quota refusals and weighted headroom.
    pub tenants: u32,
    /// Target number of *accepted* requests before the harness stops
    /// submitting and drains.
    pub requests: usize,
    /// Bounded queue capacity (bursts overflow it on purpose).
    pub queue_capacity: usize,
    /// Brownout watermark for `Low`-priority shedding.
    pub brownout_low_watermark: usize,
    /// Chip kill schedule: `(chip, tick)` — the chip dies permanently at
    /// that tick. Killing every chip exercises the digital-only lane.
    pub kills: Vec<(usize, usize)>,
    /// Inject a transient mid-batch hang on a seeded chip every N ticks.
    pub hang_every: usize,
    /// Dispatcher stall: skip the dispatch round every N ticks, letting
    /// the queue build up.
    pub stall_every: usize,
    /// Submit a full-capacity burst every N ticks (overload).
    pub burst_every: usize,
    /// Submit a wave of tight-deadline requests every N ticks.
    pub deadline_storm_every: usize,
    /// Take a fleet checkpoint every N ticks.
    pub checkpoint_every: usize,
    /// Crash the service and restore it from the last checkpoint + WAL
    /// every N ticks.
    pub crash_every: usize,
    /// RHS-coalescing width ([`FleetConfig::max_batch_rhs`]): `> 1` makes
    /// chips serve multi-column batched sweeps, so a mid-batch failure
    /// must bounce whole chunks — the exactly-once audit catches any
    /// column a partial chunk would lose.
    pub max_batch_rhs: usize,
    /// Quarantines before a chip is retired for good.
    pub retire_after_quarantines: usize,
    /// Hard tick bound — exceeding it is itself an invariant violation
    /// (the fleet failed to converge).
    pub max_ticks: usize,
}

impl ChaosConfig {
    /// The standard soak: four chips, all of which die before the run
    /// ends, every injector armed, ≥ `requests` accepted submissions.
    pub fn standard(seed: u64) -> Self {
        ChaosConfig {
            seed,
            chips: 4,
            shards: 1,
            tenants: 0,
            requests: 500,
            queue_capacity: 32,
            brownout_low_watermark: 24,
            kills: vec![(0, 40), (1, 70), (2, 100), (3, 130)],
            hang_every: 17,
            stall_every: 13,
            burst_every: 29,
            deadline_storm_every: 23,
            checkpoint_every: 19,
            crash_every: 31,
            max_batch_rhs: 1,
            retire_after_quarantines: 2,
            max_ticks: 5000,
        }
    }
}

/// What one soak run did and whether the invariants held. `violations`
/// empty means the run passed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Soak seed, echoed for reproduction.
    pub seed: u64,
    /// Harness ticks executed.
    pub ticks: usize,
    /// Submit attempts (including retries).
    pub submitted: usize,
    /// Requests accepted at admission.
    pub accepted: usize,
    /// Accepted requests answered.
    pub completed: usize,
    /// Typed rejections by label.
    pub rejected_queue_full: usize,
    /// Brownout sheds.
    pub rejected_brownout: usize,
    /// Infeasible-deadline refusals.
    pub rejected_deadline: usize,
    /// Fair-share quota refusals.
    pub rejected_quota: usize,
    /// Admissions spilled off their saturated home shard.
    pub spills: usize,
    /// Dispatch rounds run by the surviving service.
    pub rounds: u64,
    /// Crash/restore cycles executed.
    pub crashes: usize,
    /// Permanent chip deaths injected.
    pub injected_deaths: usize,
    /// Transient mid-batch hangs injected.
    pub injected_hangs: usize,
    /// Dispatcher stalls injected.
    pub stalls: usize,
    /// Batches bounced off dead/hung chips and requeued.
    pub requeues: usize,
    /// Quarantine decisions across the run.
    pub quarantines: usize,
    /// Chips retired for good.
    pub retirements: usize,
    /// Completions answered past their deadline by the digital lane.
    pub deadline_fallbacks: usize,
    /// Completions served digital-only (whole fleet out of rotation).
    pub digital_only: usize,
    /// Invariant violations; empty means the soak passed.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The report as a JSON object (hand-rolled; the repo takes no
    /// serialization dependency), for the CI soak artifact.
    pub fn to_json(&self) -> String {
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"format\": \"aa-sched-chaos-soak\",\n",
                "  \"version\": 2,\n",
                "  \"seed\": {},\n",
                "  \"passed\": {},\n",
                "  \"ticks\": {},\n",
                "  \"submitted\": {},\n",
                "  \"accepted\": {},\n",
                "  \"completed\": {},\n",
                "  \"rejected_queue_full\": {},\n",
                "  \"rejected_brownout\": {},\n",
                "  \"rejected_deadline\": {},\n",
                "  \"rejected_quota\": {},\n",
                "  \"spills\": {},\n",
                "  \"rounds\": {},\n",
                "  \"crashes\": {},\n",
                "  \"injected_deaths\": {},\n",
                "  \"injected_hangs\": {},\n",
                "  \"stalls\": {},\n",
                "  \"requeues\": {},\n",
                "  \"quarantines\": {},\n",
                "  \"retirements\": {},\n",
                "  \"deadline_fallbacks\": {},\n",
                "  \"digital_only\": {},\n",
                "  \"violations\": [{}]\n",
                "}}"
            ),
            self.seed,
            self.passed(),
            self.ticks,
            self.submitted,
            self.accepted,
            self.completed,
            self.rejected_queue_full,
            self.rejected_brownout,
            self.rejected_deadline,
            self.rejected_quota,
            self.spills,
            self.rounds,
            self.crashes,
            self.injected_deaths,
            self.injected_hangs,
            self.stalls,
            self.requeues,
            self.quarantines,
            self.retirements,
            self.deadline_fallbacks,
            self.digital_only,
            violations.join(", "),
        )
    }
}

/// A retry the harness owes the service after a transient rejection.
struct PendingRetry {
    request: SolveRequest,
    due_tick: usize,
}

/// Runs one deterministic soak (see the module docs for the scenario and
/// the invariants it audits).
///
/// # Errors
///
/// [`SchedError`] only for harness-level misuse (a config that cannot
/// build a fleet, or a checkpoint that fails to restore) — workload-level
/// failures are soaked up and audited, not returned.
pub fn run_soak(config: &ChaosConfig) -> Result<ChaosReport, SchedError> {
    let structures = vec![
        CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).expect("static dims"),
        CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).expect("static dims"),
        CsrMatrix::tridiagonal(6, -1.0, 2.0, -1.0).expect("static dims"),
    ];
    let mut fleet_cfg = FleetConfig::new(config.chips)
        .with_seed(config.seed)
        .with_shards(config.shards.max(1))
        .with_queue_capacity(config.queue_capacity)
        .with_brownout(config.brownout_low_watermark)
        .with_max_batch_rhs(config.max_batch_rhs.max(1));
    for tenant in 0..config.tenants {
        fleet_cfg = fleet_cfg.with_tenant_weight(tenant, tenant + 1);
    }
    fleet_cfg.health.retire_after_quarantines = Some(config.retire_after_quarantines);

    let mut service = FleetService::new(fleet_cfg.clone(), structures.clone())?;
    let mut report = ChaosReport {
        seed: config.seed,
        ..ChaosReport::default()
    };
    let mut rng = Rng64::seed_from_u64(config.seed ^ 0xC4A0_5EED);
    let mut backoff = Backoff::new(0.05, 5.0, config.seed ^ 0x0BAC_C0FF);
    let mut accepted: Vec<SolveTicket> = Vec::new();
    let mut retries: Vec<PendingRetry> = Vec::new();
    let mut last_checkpoint: FleetCheckpoint = service.checkpoint();
    // Seconds of simulated client time one tick spans, for converting
    // backoff delays into due ticks.
    const TICK_S: f64 = 0.05;
    // Keep traffic flowing until every scheduled kill has had time to play
    // out (bounce → quarantine → failed probe → retirement takes a dozen
    // rounds of live load), or dead chips would idle in rotation unproven.
    let failure_horizon = config
        .kills
        .iter()
        .map(|&(_, at)| at + 40)
        .max()
        .unwrap_or(0);

    let mut tick = 0usize;
    loop {
        tick += 1;
        if tick > config.max_ticks {
            report.violations.push(format!(
                "soak did not converge within {} ticks (queue={}, accepted={}, target={})",
                config.max_ticks,
                service.queue_depth(),
                accepted.len(),
                config.requests
            ));
            break;
        }

        // --- injections --------------------------------------------------
        for (chip, at) in &config.kills {
            if *at == tick {
                service.inject_chaos(*chip, Some(ChipFailure::Dead))?;
                report.injected_deaths += 1;
            }
        }
        if config.hang_every != 0 && tick.is_multiple_of(config.hang_every) {
            let chip = rng.below(config.chips);
            let served = rng.below(2);
            service.inject_chaos(chip, Some(ChipFailure::HangAfter { served }))?;
            report.injected_hangs += 1;
        }

        // --- workload ----------------------------------------------------
        let mut to_submit: Vec<SolveRequest> = Vec::new();
        if accepted.len() < config.requests || tick < failure_horizon {
            let burst = config.burst_every != 0 && tick.is_multiple_of(config.burst_every);
            let storm = config.deadline_storm_every != 0
                && tick.is_multiple_of(config.deadline_storm_every);
            // Bursts oversubscribe the queue outright — brownout sheds the
            // Low-priority tail first, and the remainder still overflows so
            // both rejection paths are exercised.
            let n = if burst {
                config.queue_capacity * 2
            } else {
                1 + rng.below(3)
            };
            for _ in 0..n {
                let structure = rng.below(3);
                let dim = [3usize, 4, 6][structure];
                let rhs: Vec<f64> = (0..dim).map(|_| rng.range(-1.0, 1.0)).collect();
                let mut request =
                    SolveRequest::new(structure, rhs).with_priority(match rng.below(3) {
                        0 => Priority::High,
                        1 => Priority::Normal,
                        _ => Priority::Low,
                    });
                if config.tenants > 0 {
                    request = request.with_tenant(rng.below(config.tenants as usize) as u32);
                }
                if storm {
                    // Tight deadlines around the estimate: some admit and
                    // fall back at solve time, some are refused up front.
                    if let Some(estimate) = service.estimate_s(structure) {
                        request = request.with_deadline_s(estimate * rng.range(0.8, 1.4));
                    }
                }
                to_submit.push(request);
            }
        }
        let due: Vec<usize> = retries
            .iter()
            .enumerate()
            .filter(|(_, r)| r.due_tick <= tick)
            .map(|(i, _)| i)
            .collect();
        for i in due.into_iter().rev() {
            to_submit.push(retries.remove(i).request);
        }
        for request in to_submit {
            report.submitted += 1;
            match service.submit(request.clone()) {
                Ok(ticket) => {
                    accepted.push(ticket);
                    backoff.reset();
                }
                Err(verdict) => {
                    match verdict {
                        crate::request::Rejected::QueueFull { .. } => {
                            report.rejected_queue_full += 1
                        }
                        crate::request::Rejected::Brownout { .. } => report.rejected_brownout += 1,
                        crate::request::Rejected::QuotaExceeded { .. } => {
                            report.rejected_quota += 1
                        }
                        crate::request::Rejected::DeadlineInfeasible { .. } => {
                            report.rejected_deadline += 1;
                            continue; // retrying verbatim can never succeed
                        }
                        _ => continue,
                    }
                    let delay_s = backoff.next_delay_s(&verdict);
                    retries.push(PendingRetry {
                        request,
                        due_tick: tick + (delay_s / TICK_S).ceil() as usize,
                    });
                }
            }
        }

        // --- dispatch (unless the dispatcher is stalled) -------------------
        if config.stall_every != 0 && tick.is_multiple_of(config.stall_every) {
            report.stalls += 1;
        } else {
            service.run_round();
        }

        // --- durability & crash ------------------------------------------
        if config.checkpoint_every != 0 && tick.is_multiple_of(config.checkpoint_every) {
            last_checkpoint = service.checkpoint();
        }
        if config.crash_every != 0 && tick.is_multiple_of(config.crash_every) {
            let wal = service.wal().clone();
            drop(service);
            service = FleetService::restore(
                fleet_cfg.clone(),
                structures.clone(),
                &last_checkpoint,
                &wal,
            )?;
            report.crashes += 1;
        }

        let drained = service.queue_depth() == 0 && retries.is_empty();
        if accepted.len() >= config.requests && drained && tick >= failure_horizon {
            break;
        }
    }
    report.ticks = tick;
    report.rounds = service.rounds();
    report.accepted = accepted.len();

    // --- invariant audit ---------------------------------------------------
    for ticket in &accepted {
        if service.completion(*ticket).is_none() {
            report
                .violations
                .push(format!("accepted ticket {} was never answered", ticket.0));
        }
    }
    let mut answered = BTreeSet::new();
    for event in &service.log().events {
        match event {
            ScheduleEvent::Completed { ticket, .. } if !answered.insert(*ticket) => {
                report
                    .violations
                    .push(format!("ticket {ticket} answered more than once"));
            }
            ScheduleEvent::Requeued { .. } => report.requeues += 1,
            ScheduleEvent::Quarantined { .. } => report.quarantines += 1,
            ScheduleEvent::Retired { .. } => report.retirements += 1,
            ScheduleEvent::Spilled { .. } => report.spills += 1,
            _ => {}
        }
    }
    // Shard-log consistency: every shard-attributed event in the global
    // log appears in exactly one shard's own log, so the per-shard
    // completion tallies must sum to the fleet-wide count.
    let shard_completed: usize = (0..service.shard_count())
        .map(|s| service.shard_log(s).completed())
        .sum();
    if shard_completed != service.log().completed() {
        report.violations.push(format!(
            "shard logs tally {} completions, fleet-wide log has {}",
            shard_completed,
            service.log().completed()
        ));
    }
    for (chip, _) in &config.kills {
        let state = service.health()[*chip].state;
        if !matches!(state, ChipState::Retired | ChipState::Quarantined { .. }) {
            report.violations.push(format!(
                "killed chip {chip} ended in rotation ({state:?}) — quarantine did not converge"
            ));
        }
    }
    for completion in service.completions() {
        report.completed += 1;
        match completion.path {
            CompletionPath::DigitalOnly => report.digital_only += 1,
            CompletionPath::DeadlineFallback => report.deadline_fallbacks += 1,
            _ => {}
        }
    }
    if config.kills.len() >= config.chips && report.digital_only == 0 {
        report
            .violations
            .push("whole fleet was killed but the digital-only lane never engaged".to_string());
    }
    if report.completed < accepted.len() {
        report.violations.push(format!(
            "{} accepted requests but only {} completions",
            accepted.len(),
            report.completed
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_soak_is_deterministic_and_passes() {
        let cfg = ChaosConfig {
            requests: 40,
            kills: vec![(0, 10), (1, 16), (2, 22), (3, 28)],
            max_ticks: 800,
            ..ChaosConfig::standard(11)
        };
        let a = run_soak(&cfg).unwrap();
        let b = run_soak(&cfg).unwrap();
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert_eq!(a.to_json(), b.to_json(), "same seed, same soak");
        assert!(a.accepted >= 40);
        assert!(a.completed >= a.accepted);
        assert!(a.crashes > 0, "crash/restore exercised");
        assert!(a.digital_only > 0, "digital lane engaged");
    }

    #[test]
    fn batched_soak_loses_no_columns() {
        // Regression for mid-batch Dead/HangAfter with multi-RHS chunks:
        // every unserved column of a coalesced sweep must be requeued, so
        // the exactly-once audit (every accepted ticket answered exactly
        // once) holds with coalescing at full width.
        let cfg = ChaosConfig {
            requests: 40,
            kills: vec![(0, 10), (1, 16), (2, 22), (3, 28)],
            max_ticks: 800,
            max_batch_rhs: 4,
            ..ChaosConfig::standard(23)
        };
        let a = run_soak(&cfg).unwrap();
        let b = run_soak(&cfg).unwrap();
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert_eq!(a.to_json(), b.to_json(), "batched soak replays from seed");
        assert!(a.requeues > 0, "mid-batch failures bounced columns");
        assert!(a.completed >= a.accepted);
    }

    #[test]
    fn sharded_tenant_soak_passes_with_fair_share_and_spill() {
        // Two dispatcher groups over four chips, three weighted tenants:
        // the soak must hold exactly-once and shard-log consistency while
        // quota refusals, spills, kills, and crash/restore all fire.
        let cfg = ChaosConfig {
            requests: 40,
            shards: 2,
            tenants: 3,
            queue_capacity: 8,
            brownout_low_watermark: 6,
            kills: vec![(0, 10), (1, 16), (2, 22), (3, 28)],
            max_ticks: 800,
            ..ChaosConfig::standard(37)
        };
        let a = run_soak(&cfg).unwrap();
        let b = run_soak(&cfg).unwrap();
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert_eq!(a.to_json(), b.to_json(), "sharded soak replays from seed");
        assert!(a.accepted >= 40);
        assert!(a.completed >= a.accepted);
        assert!(a.rejected_quota > 0, "fair-share quotas fired");
        assert!(a.crashes > 0, "crash/restore exercised under sharding");
    }

    #[test]
    fn report_json_is_parseable_shape() {
        let mut report = ChaosReport {
            seed: 3,
            ..ChaosReport::default()
        };
        report.violations.push("example \"quoted\" issue".into());
        let json = report.to_json();
        assert!(json.contains("\"format\": \"aa-sched-chaos-soak\""));
        assert!(json.contains("\"passed\": false"));
        assert!(json.contains("\\\"quoted\\\""));
    }
}

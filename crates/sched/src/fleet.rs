//! The chip fleet: per-chip solver state living inside worker threads,
//! plus the dispatcher-side health bookkeeping that decides placement.
//!
//! Each fleet chip is an independently-seeded accelerator instance: its
//! process variation (and any injected fault plan) is derived from the
//! fleet's base seed and the chip index, so chips age and fail
//! independently yet the whole fleet replays bit-identically from one
//! seed. A chip keeps one [`SupervisedSolver`] per registered structure —
//! persistent across rounds, so batching same-structure requests onto one
//! chip hits its compiled-plan cache (PR 4) instead of re-lowering.

use std::collections::BTreeMap;
use std::sync::Arc;

use aa_analog::fault::FaultPlan;
use aa_hwmodel::design::AcceleratorDesign;
use aa_linalg::iterative::{cg, IterativeConfig, StoppingCriterion};
use aa_linalg::rng::mix64;
use aa_linalg::{vector, CsrMatrix, LinearOperator};
use aa_solver::{
    fcg_solve, AnalogPreconditioner, FinalPath, KrylovConfig, RecoveryConfig, SolverConfig,
    SupervisedCheckpoint, SupervisedSolveReport, SupervisedSolver,
};

use crate::request::{CompletionPath, SolveMode};

/// Health-scoring policy: an exponentially-weighted failure score per chip
/// with a quarantine threshold and a timed re-admission probe.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// EWMA smoothing factor in `(0, 1]`: weight of the newest outcome.
    pub alpha: f64,
    /// Score at or above which a chip is pulled from rotation.
    pub quarantine_threshold: f64,
    /// Rounds a quarantined chip sits out before it gets one probe
    /// request; a clean probe re-admits it, a dirty one re-quarantines.
    pub readmit_after_rounds: u64,
    /// After this many quarantines the chip is retired for good — no
    /// further probes, so a dead chip cannot cycle through probation
    /// forever. `None` keeps probing indefinitely.
    pub retire_after_quarantines: Option<usize>,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            alpha: 0.5,
            quarantine_threshold: 0.7,
            readmit_after_rounds: 4,
            retire_after_quarantines: None,
        }
    }
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of accelerator chips.
    pub chips: usize,
    /// Worker threads driving them; `0` means one worker per chip. The
    /// schedule is worker-count-invariant — this only changes wall-clock.
    pub workers: usize,
    /// Base seed; chip `i`'s variation and fault seeds derive from it.
    pub base_seed: u64,
    /// Bounded queue capacity; admission rejects `QueueFull` beyond it.
    pub queue_capacity: usize,
    /// Most requests placed on one chip per round. Same-structure requests
    /// are preferred within a batch to hit the chip's compiled-plan cache.
    pub batch_size: usize,
    /// Most RHS columns coalesced into one batched analog sweep on a chip.
    /// Consecutive same-structure assignments within one round's batch are
    /// chunked to this size and served by a single multi-lane engine run
    /// (`SupervisedSolver::solve_batch`); `1` disables coalescing and
    /// reproduces unbatched serving exactly.
    pub max_batch_rhs: usize,
    /// Solver template applied to every chip (the per-chip noise seed is
    /// overridden from `base_seed`).
    pub solver: SolverConfig,
    /// Recovery policy each chip's supervisor runs per solve.
    pub recovery: RecoveryConfig,
    /// Hardware design point used for deadline estimates and the
    /// schedule log's energy accounting.
    pub design: AcceleratorDesign,
    /// Health-scoring policy.
    pub health: HealthConfig,
    /// Relative-residual tolerance of the digital (CG) lanes.
    pub fallback_tolerance: f64,
    /// Overload-brownout watermark: once the queue is at or above this
    /// depth, `Low`-priority admissions are shed with a typed
    /// [`Rejected::Brownout`](crate::Rejected::Brownout) verdict so
    /// higher classes keep headroom. `None` disables brownout shedding.
    pub brownout_low_watermark: Option<usize>,
    /// Fault plans installed at construction: `(chip, plan)`. Each plan is
    /// [`reseeded`](FaultPlan::reseeded) with the chip's fleet seed so
    /// copies of one plan draw independent noise on different chips.
    pub fault_plans: Vec<(usize, FaultPlan)>,
    /// Independent dispatcher groups. Chips are split into `shards`
    /// contiguous disjoint ranges (the [`aa_linalg::chunk_lengths`]
    /// split); each shard owns its own bounded priority queue, round
    /// counter, schedule log, and worker pool, so dispatch no longer
    /// serializes across the whole fleet. Submissions route to the
    /// structure's home shard (`structure % shards`) while it has queue
    /// headroom — same-structure requests keep landing where the plan
    /// caches are warm — and spill deterministically otherwise. `1`
    /// (the default) reproduces the unsharded service exactly.
    pub shards: usize,
    /// Queue depth at which a shard counts as saturated for routing: a
    /// submission whose home shard is at or above it is placed on the
    /// first shard below it, scanning cyclically from the home. `None`
    /// (the default) saturates only at `queue_capacity`, i.e. requests
    /// spill only when their home shard's queue is full.
    pub spill_watermark: Option<usize>,
    /// Weighted fair-share admission quotas: `(tenant, weight)`. When
    /// non-empty, tenant `t` may occupy at most
    /// `max(1, total_capacity · w_t / (Σ configured weights + 1))` queue
    /// slots across all shards (`total_capacity` = `queue_capacity ×
    /// shards`); tenants with no configured weight collectively share one
    /// default bucket of weight 1. Admissions beyond the share are
    /// refused with a typed
    /// [`Rejected::QuotaExceeded`](crate::Rejected::QuotaExceeded)
    /// verdict. Empty (the default) disables fair-share admission.
    pub tenant_weights: Vec<(u32, u32)>,
    /// Expected preconditioner applications per Krylov-mode request
    /// ([`SolveMode::KrylovPrecond`](crate::SolveMode::KrylovPrecond)):
    /// the multiplier admission control prices such a request's deadline
    /// against ([`aa_solver::estimate::krylov_solve_time_s`] — one
    /// supervised analog solve per FCG preconditioner application, never
    /// coalesced into a shared sweep).
    pub krylov_applications: usize,
}

impl FleetConfig {
    /// A fleet of `chips` ideal accelerators with default policies.
    pub fn new(chips: usize) -> Self {
        FleetConfig {
            chips,
            workers: 0,
            base_seed: 0x5EED_F1EE7,
            queue_capacity: 64,
            batch_size: 4,
            max_batch_rhs: 1,
            solver: SolverConfig::ideal(),
            recovery: RecoveryConfig::default(),
            design: AcceleratorDesign::prototype_20khz(),
            health: HealthConfig::default(),
            fallback_tolerance: 1e-8,
            brownout_low_watermark: None,
            fault_plans: Vec::new(),
            shards: 1,
            spill_watermark: None,
            tenant_weights: Vec::new(),
            krylov_applications: 8,
        }
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Sets the worker-thread count (`0` = one per chip).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Bounds the request queue.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Enables multi-RHS coalescing: up to `columns` consecutive
    /// same-structure assignments per chip per round are served by one
    /// batched analog sweep.
    pub fn with_max_batch_rhs(mut self, columns: usize) -> Self {
        self.max_batch_rhs = columns;
        self
    }

    /// Installs a fault plan on one chip (fleet-reseeded at construction).
    pub fn with_fault_plan(mut self, chip: usize, plan: FaultPlan) -> Self {
        self.fault_plans.push((chip, plan));
        self
    }

    /// Enables overload brownout: `Low`-priority admissions are shed once
    /// the queue reaches `watermark` entries.
    pub fn with_brownout(mut self, watermark: usize) -> Self {
        self.brownout_low_watermark = Some(watermark);
        self
    }

    /// Splits the fleet into `shards` independent dispatcher groups (must
    /// be between 1 and the chip count).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard saturation depth at which routing spills past
    /// the structure's home shard.
    pub fn with_spill_watermark(mut self, watermark: usize) -> Self {
        self.spill_watermark = Some(watermark);
        self
    }

    /// Grants one tenant a fair-share weight (enables weighted quota
    /// admission for every tenant; see
    /// [`tenant_weights`](Self::tenant_weights)).
    pub fn with_tenant_weight(mut self, tenant: u32, weight: u32) -> Self {
        self.tenant_weights.push((tenant, weight));
        self
    }

    /// Sets the expected preconditioner applications a Krylov-mode
    /// request is priced for (floored at 1).
    pub fn with_krylov_applications(mut self, applications: usize) -> Self {
        self.krylov_applications = applications.max(1);
        self
    }

    /// The deterministic per-chip seed: `base_seed` mixed with the index.
    pub fn chip_seed(&self, chip: usize) -> u64 {
        mix64(self.base_seed ^ mix64(chip as u64 + 1))
    }

    /// The effective worker count.
    pub fn effective_workers(&self) -> usize {
        let w = if self.workers == 0 {
            self.chips
        } else {
            self.workers
        };
        w.max(1)
    }

    /// The contiguous `(chip_offset, chip_count)` range each shard owns:
    /// the [`aa_linalg::chunk_lengths`] split of the chips over the
    /// shards, in shard order.
    pub fn shard_chip_ranges(&self) -> Vec<(usize, usize)> {
        let lens = aa_linalg::chunk_lengths(self.chips, self.shards.max(1));
        let mut offset = 0;
        lens.into_iter()
            .map(|len| {
                let range = (offset, len);
                offset += len;
                range
            })
            .collect()
    }

    /// Worker states per shard: the effective workers split over the
    /// shards by the same contiguous rule as the chips, floored at one —
    /// every shard always has at least one worker state (a one-state pool
    /// runs on the dispatcher thread). The schedule never depends on
    /// these counts, only wall-clock does.
    pub fn shard_worker_counts(&self) -> Vec<usize> {
        aa_linalg::chunk_lengths(self.effective_workers(), self.shards.max(1))
            .into_iter()
            .map(|w| w.max(1))
            .collect()
    }

    /// The shard a structure's traffic homes to while it has headroom:
    /// `structure % shards`. Stable across rounds, so one structure's
    /// plan and γ-calibration caches warm exactly one shard's chips.
    pub fn home_shard(&self, structure: usize) -> usize {
        structure % self.shards.max(1)
    }
}

/// Dispatcher-visible chip lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipState {
    /// In rotation.
    Healthy,
    /// Out of rotation since the recorded round.
    Quarantined {
        /// Round the quarantine decision was made.
        since_round: u64,
    },
    /// Receiving one probe request this round; the outcome decides
    /// re-admission.
    Probation,
    /// Permanently out of rotation: the chip burned through its
    /// quarantine budget
    /// ([`HealthConfig::retire_after_quarantines`]) and is never probed
    /// again.
    Retired,
}

/// Dispatcher-side health record of one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipHealth {
    /// EWMA failure score in `[0, 1]`; `0` is perfectly healthy.
    pub score: f64,
    /// Lifecycle state.
    pub state: ChipState,
    /// Requests this chip has served.
    pub solves: usize,
    /// Times this chip has been quarantined.
    pub quarantines: usize,
}

impl ChipHealth {
    pub(crate) fn new() -> Self {
        ChipHealth {
            score: 0.0,
            state: ChipState::Healthy,
            solves: 0,
            quarantines: 0,
        }
    }

    /// Whether the dispatcher may place regular traffic on this chip.
    pub fn in_rotation(&self) -> bool {
        matches!(self.state, ChipState::Healthy | ChipState::Probation)
    }
}

/// The failure weight of one completion path, fed into the EWMA score.
pub(crate) fn outcome_weight(path: CompletionPath) -> f64 {
    match path {
        CompletionPath::Analog => 0.0,
        CompletionPath::AnalogAfterRecovery => 0.4,
        CompletionPath::DeadlineFallback => 0.5,
        CompletionPath::DigitalFallback => 1.0,
        // Never produced by a chip; listed for exhaustiveness.
        CompletionPath::DigitalOnly => 0.0,
    }
}

/// One request as placed on a chip:
/// `(ticket, structure, rhs, deadline, mode)`.
pub(crate) type Assignment = (u64, usize, Vec<f64>, Option<f64>, SolveMode);

/// A chaos-injected failure mode for one chip (driven by
/// [`FleetService::inject_chaos`](crate::FleetService::inject_chaos) and
/// the [`chaos`](crate::chaos) harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipFailure {
    /// The chip is dead: it acknowledges nothing, forever. Every batch
    /// placed on it bounces back unserved until health scoring quarantines
    /// and eventually retires it.
    Dead,
    /// The chip wedges partway through its next non-empty batch: it serves
    /// `served` assignments, drops the rest, and then recovers (the
    /// watchdog resets a hung chip after the round).
    HangAfter {
        /// Assignments answered before the wedge.
        served: usize,
    },
}

impl ChipFailure {
    /// Short stable label used in telemetry and soak reports.
    pub fn label(self) -> &'static str {
        match self {
            ChipFailure::Dead => "dead",
            ChipFailure::HangAfter { .. } => "hang",
        }
    }
}

/// Everything mutable about one chip slot, as frozen into a
/// [`FleetCheckpoint`](crate::FleetCheckpoint): the per-structure solver
/// states (noise-RNG clocks, consumed lifetime, trim codes, shifted fault
/// plans, plan-cache validity, headroom factors) plus any injected chaos
/// failure. The immutable parts — netlists, seeds, configs — are rebuilt
/// deterministically from the [`FleetConfig`] at restore.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotCheckpoint {
    /// The chip's fleet index.
    pub chip: usize,
    /// Per-structure supervised-solver checkpoints, in structure order.
    pub solvers: Vec<(usize, SupervisedCheckpoint)>,
    /// The chaos failure installed on this chip, if any.
    pub failure: Option<ChipFailure>,
}

/// The per-round command routed to one chip — exactly one per chip per
/// round (possibly an empty `Run`), so the worker-pool routing stays
/// worker-count-invariant.
#[derive(Debug)]
pub(crate) enum ChipCommand {
    /// Serve a batch of assignments (empty for idle chips).
    Run(Vec<Assignment>),
    /// Export the slot's checkpoint state.
    Export,
    /// Replace the slot's mutable state from a checkpoint.
    Import(Box<SlotCheckpoint>),
    /// Install (or clear, with `None`) a chaos failure mode.
    Inject(Option<ChipFailure>),
}

impl Default for ChipCommand {
    fn default() -> Self {
        ChipCommand::Run(Vec::new())
    }
}

/// A chip's answer to one [`ChipCommand`].
#[derive(Debug)]
pub(crate) enum ChipReply {
    /// The batch ran: outcomes for served assignments, plus any the chip
    /// failed to serve (the dispatcher requeues those — accepted requests
    /// are never lost to a dead or hung chip).
    Ran {
        outcomes: Vec<ChipOutcome>,
        unserved: Vec<Assignment>,
        failed: bool,
    },
    /// The exported slot state.
    Exported(Box<SlotCheckpoint>),
    /// Import verdict; errors are rendered to strings so they can cross
    /// the worker-pool boundary.
    Imported(Result<(), String>),
    /// Injection acknowledged.
    Injected,
}

/// What a chip reports back for one assignment.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChipOutcome {
    pub ticket: u64,
    pub solution: Vec<f64>,
    pub path: CompletionPath,
    pub residual: f64,
    pub analog_time_s: f64,
}

/// One physical accelerator: the solver instances bound to it, its fault
/// plan, and its identity. Lives inside a worker thread's state.
pub(crate) struct ChipSlot {
    pub index: usize,
    config: SolverConfig,
    recovery: RecoveryConfig,
    fault_plan: Option<FaultPlan>,
    structures: Arc<Vec<CsrMatrix>>,
    /// One persistent supervised solver per structure this chip has seen —
    /// the unit of compiled-plan reuse.
    solvers: BTreeMap<usize, SupervisedSolver>,
    fallback_tolerance: f64,
    /// Most RHS columns served by one batched analog sweep.
    max_batch_rhs: usize,
    /// FCG loop settings for Krylov-mode assignments (tolerance mirrors
    /// the digital lanes', so both modes certify the same residual).
    krylov: KrylovConfig,
    /// The chaos failure currently installed, if any.
    failure: Option<ChipFailure>,
}

impl ChipSlot {
    pub fn new(config: &FleetConfig, index: usize, structures: Arc<Vec<CsrMatrix>>) -> Self {
        let mut solver_cfg = config.solver.clone();
        solver_cfg.nonideal = solver_cfg.nonideal.with_seed(config.chip_seed(index));
        let fault_plan = config
            .fault_plans
            .iter()
            .filter(|(chip, _)| *chip == index)
            .map(|(_, plan)| plan.reseeded(config.chip_seed(index) ^ plan.seed()))
            .next_back();
        ChipSlot {
            index,
            config: solver_cfg,
            recovery: config.recovery.clone(),
            fault_plan,
            structures,
            solvers: BTreeMap::new(),
            fallback_tolerance: config.fallback_tolerance,
            max_batch_rhs: config.max_batch_rhs.max(1),
            krylov: KrylovConfig {
                tolerance: config.fallback_tolerance,
                ..KrylovConfig::default()
            },
            failure: None,
        }
    }

    /// Executes one dispatcher command on this chip.
    pub fn execute(&mut self, command: ChipCommand) -> ChipReply {
        match command {
            ChipCommand::Run(assignments) => self.run(assignments),
            ChipCommand::Export => ChipReply::Exported(Box::new(self.export_state())),
            ChipCommand::Import(state) => ChipReply::Imported(self.import_state(&state)),
            ChipCommand::Inject(failure) => {
                self.failure = failure;
                ChipReply::Injected
            }
        }
    }

    /// Serves one round's batch, in assignment order. Consecutive
    /// same-structure assignments are coalesced into multi-RHS chunks of at
    /// most [`FleetConfig::max_batch_rhs`] columns, each executed as one
    /// batched analog sweep. An injected failure makes the chip drop part
    /// or all of the batch: dropped assignments come back `unserved` so the
    /// dispatcher can requeue them. A wedge that lands mid-chunk drops the
    /// *whole* chunk — a batched sweep has no partial results — so every
    /// column of a partially-covered chunk is requeued, none lost.
    pub fn run(&mut self, assignments: Vec<Assignment>) -> ChipReply {
        let dispatched = assignments.len();
        let ends = self.chunk_ends(&assignments);
        let (served, failed) = match self.failure {
            Some(ChipFailure::Dead) => (0, dispatched > 0),
            Some(ChipFailure::HangAfter { served }) if dispatched > 0 => {
                // The watchdog resets a wedged chip after the round. The
                // served count rounds *down* to a chunk boundary: a sweep
                // the wedge interrupted produced nothing for any lane.
                self.failure = None;
                let raw = served.min(dispatched);
                let aligned = ends
                    .iter()
                    .copied()
                    .take_while(|&end| end <= raw)
                    .last()
                    .unwrap_or(0);
                (aligned, true)
            }
            _ => (dispatched, false),
        };
        let mut assignments = assignments;
        let unserved = assignments.split_off(served);
        let mut outcomes = Vec::with_capacity(served);
        for &end in ends.iter().take_while(|&&end| end <= served) {
            let start = outcomes.len();
            outcomes.extend(self.serve_chunk(&assignments[start..end]));
            for outcome in &outcomes[start..] {
                aa_obs::event(
                    aa_obs::Event::new("sched.solve")
                        .with("ticket", outcome.ticket)
                        .with("chip", self.index)
                        .with("path", outcome.path.label()),
                );
                aa_obs::counter("sched.chip_solves", 1);
            }
        }
        ChipReply::Ran {
            outcomes,
            unserved,
            failed,
        }
    }

    /// Boundaries (exclusive end indices) of the multi-RHS chunks within
    /// one round's assignment list: maximal runs of consecutive
    /// same-structure **direct** assignments, split at `max_batch_rhs`
    /// columns. A Krylov-mode assignment is always its own singleton
    /// chunk — each FCG preconditioner application's right-hand side
    /// depends on the previous iterate, so it can never share a sweep.
    /// With `max_batch_rhs == 1` every index is a boundary, which
    /// reproduces unbatched serving exactly.
    fn chunk_ends(&self, assignments: &[Assignment]) -> Vec<usize> {
        let mut ends = Vec::new();
        let mut start = 0;
        while start < assignments.len() {
            let structure = assignments[start].1;
            let mut end = start + 1;
            if assignments[start].4 == SolveMode::Direct {
                while end < assignments.len()
                    && assignments[end].1 == structure
                    && assignments[end].4 == SolveMode::Direct
                    && end - start < self.max_batch_rhs
                {
                    end += 1;
                }
            }
            ends.push(end);
            start = end;
        }
        ends
    }

    /// Serves one chunk of same-structure assignments: a single assignment
    /// goes through the scalar path, several share one batched analog
    /// sweep with per-column validation (a column the batch could not
    /// certify is re-solved through the full recovery ladder inside
    /// [`SupervisedSolver::solve_batch`]).
    fn serve_chunk(&mut self, chunk: &[Assignment]) -> Vec<ChipOutcome> {
        if chunk.len() == 1 {
            let (ticket, structure, rhs, deadline_s, mode) = &chunk[0];
            return vec![match mode {
                SolveMode::Direct => self.serve(*ticket, *structure, rhs, *deadline_s),
                SolveMode::KrylovPrecond => {
                    self.serve_krylov(*ticket, *structure, rhs, *deadline_s)
                }
            }];
        }
        let structure = chunk[0].1;
        debug_assert!(chunk.iter().all(|a| a.1 == structure));
        debug_assert!(chunk.iter().all(|a| a.4 == SolveMode::Direct));
        if !self.ensure_solver(structure) {
            // The structure cannot be mapped onto this chip at all; the
            // digital lane still owes each client an answer.
            return chunk
                .iter()
                .map(|(ticket, structure, rhs, _, _)| {
                    self.digital(
                        *ticket,
                        *structure,
                        rhs,
                        CompletionPath::DigitalFallback,
                        0.0,
                    )
                })
                .collect();
        }
        let bs: Vec<Vec<f64>> = chunk.iter().map(|(_, _, rhs, _, _)| rhs.clone()).collect();
        let solver = self.solvers.get_mut(&structure).expect("ensured above");
        let results = solver.solve_batch(&bs);
        aa_obs::counter("sched.chip_batches", 1);
        chunk
            .iter()
            .zip(results)
            .map(
                |((ticket, structure, rhs, deadline_s, _), result)| match result {
                    Ok(report) => self.finish(*ticket, *structure, rhs, *deadline_s, report),
                    Err(_) => self.digital(
                        *ticket,
                        *structure,
                        rhs,
                        CompletionPath::DigitalFallback,
                        0.0,
                    ),
                },
            )
            .collect()
    }

    /// Freezes this slot's mutable state for a fleet checkpoint.
    pub fn export_state(&self) -> SlotCheckpoint {
        SlotCheckpoint {
            chip: self.index,
            solvers: self
                .solvers
                .iter()
                .map(|(structure, solver)| (*structure, solver.export_state()))
                .collect(),
            failure: self.failure,
        }
    }

    /// Rebuilds every checkpointed per-structure solver deterministically
    /// (same seeds and configs as construction) and overlays the frozen
    /// mutable state. Errors are rendered to strings so the verdict can
    /// cross the worker-pool boundary.
    pub fn import_state(&mut self, state: &SlotCheckpoint) -> Result<(), String> {
        if state.chip != self.index {
            return Err(format!(
                "slot checkpoint for chip {} imported into chip {}",
                state.chip, self.index
            ));
        }
        let mut solvers = BTreeMap::new();
        for (structure, ckpt) in &state.solvers {
            let Some(matrix) = self.structures.get(*structure) else {
                return Err(format!(
                    "slot checkpoint references unregistered structure {structure}"
                ));
            };
            let mut solver = SupervisedSolver::new(matrix, &self.config, &self.recovery)
                .map_err(|e| format!("rebuilding solver for structure {structure}: {e}"))?;
            solver
                .import_state(ckpt)
                .map_err(|e| format!("restoring solver for structure {structure}: {e}"))?;
            solvers.insert(*structure, solver);
        }
        self.solvers = solvers;
        self.failure = state.failure;
        Ok(())
    }

    /// Lazily builds (and fault-injects) the persistent solver for one
    /// structure; `false` when the structure cannot be mapped onto this
    /// chip at all.
    fn ensure_solver(&mut self, structure: usize) -> bool {
        if self.solvers.contains_key(&structure) {
            return true;
        }
        match SupervisedSolver::new(&self.structures[structure], &self.config, &self.recovery) {
            Ok(mut solver) => {
                if let Some(plan) = &self.fault_plan {
                    solver.inject_faults(plan.clone());
                }
                self.solvers.insert(structure, solver);
                true
            }
            Err(_) => false,
        }
    }

    fn serve(
        &mut self,
        ticket: u64,
        structure: usize,
        rhs: &[f64],
        deadline_s: Option<f64>,
    ) -> ChipOutcome {
        if !self.ensure_solver(structure) {
            // The structure cannot be mapped onto this chip at all;
            // the digital lane still owes the client an answer.
            return self.digital(ticket, structure, rhs, CompletionPath::DigitalFallback, 0.0);
        }
        let solver = self.solvers.get_mut(&structure).expect("ensured above");
        match solver.solve(rhs) {
            Ok(report) => self.finish(ticket, structure, rhs, deadline_s, report),
            Err(_) => self.digital(ticket, structure, rhs, CompletionPath::DigitalFallback, 0.0),
        }
    }

    /// Serves one Krylov-mode assignment: flexible CG around the chip's
    /// persistent supervised solver as analog preconditioner. The
    /// completion path comes from the preconditioner's own accounting
    /// ([`aa_solver::PrecondStats::final_path`]) — a demoted
    /// preconditioner reports `DigitalFallback` even though the FCG
    /// iterate itself is still served. A loop that fails outright (or
    /// never reaches tolerance) falls back to the digital lane, exactly
    /// like a failed direct solve.
    fn serve_krylov(
        &mut self,
        ticket: u64,
        structure: usize,
        rhs: &[f64],
        deadline_s: Option<f64>,
    ) -> ChipOutcome {
        if !self.ensure_solver(structure) {
            return self.digital(ticket, structure, rhs, CompletionPath::DigitalFallback, 0.0);
        }
        let solver = self.solvers.get_mut(&structure).expect("ensured above");
        let mut precond = AnalogPreconditioner::new(solver);
        let outcome = fcg_solve(&mut precond, rhs, &self.krylov);
        match outcome {
            Ok(report) if report.converged => {
                let stats = report.precond;
                let analog_time_s = stats.analog_time_s;
                let path = match stats.final_path() {
                    FinalPath::Analog => CompletionPath::Analog,
                    FinalPath::AnalogAfterRecovery => CompletionPath::AnalogAfterRecovery,
                    FinalPath::DigitalFallback => CompletionPath::DigitalFallback,
                };
                if path.is_analog() {
                    if let Some(deadline) = deadline_s {
                        if analog_time_s > deadline {
                            return self.digital(
                                ticket,
                                structure,
                                rhs,
                                CompletionPath::DeadlineFallback,
                                analog_time_s,
                            );
                        }
                    }
                }
                ChipOutcome {
                    ticket,
                    solution: report.solution,
                    path,
                    residual: report.residual_history.last().copied().unwrap_or(0.0),
                    analog_time_s,
                }
            }
            Ok(report) => self.digital(
                ticket,
                structure,
                rhs,
                CompletionPath::DigitalFallback,
                report.precond.analog_time_s,
            ),
            Err(_) => self.digital(ticket, structure, rhs, CompletionPath::DigitalFallback, 0.0),
        }
    }

    /// Turns one supervised report into the chip's outcome: maps the final
    /// path to a [`CompletionPath`], then swaps in the digital lane's
    /// answer when an analog result arrived past its deadline budget.
    fn finish(
        &self,
        ticket: u64,
        structure: usize,
        rhs: &[f64],
        deadline_s: Option<f64>,
        report: SupervisedSolveReport,
    ) -> ChipOutcome {
        let analog_time_s = report.recovery.analog_time_s();
        let path = match report.recovery.final_path {
            FinalPath::Analog => CompletionPath::Analog,
            FinalPath::AnalogAfterRecovery => CompletionPath::AnalogAfterRecovery,
            FinalPath::DigitalFallback => CompletionPath::DigitalFallback,
        };
        if path.is_analog() {
            if let Some(deadline) = deadline_s {
                if analog_time_s > deadline {
                    // The analog answer exists but arrived past its
                    // budget; serve the digital lane's instead.
                    return self.digital(
                        ticket,
                        structure,
                        rhs,
                        CompletionPath::DeadlineFallback,
                        analog_time_s,
                    );
                }
            }
        }
        ChipOutcome {
            ticket,
            solution: report.solution,
            path,
            residual: report.recovery.final_residual,
            analog_time_s,
        }
    }

    /// The chip-local digital lane: CG to the fallback tolerance.
    fn digital(
        &self,
        ticket: u64,
        structure: usize,
        rhs: &[f64],
        path: CompletionPath,
        analog_time_s: f64,
    ) -> ChipOutcome {
        let (solution, residual) =
            digital_lane(&self.structures[structure], rhs, self.fallback_tolerance);
        ChipOutcome {
            ticket,
            solution,
            path,
            residual,
            analog_time_s,
        }
    }
}

/// Solves `A·u = b` digitally (CG) and returns `(solution, rel_residual)`.
/// Shared by the chip-local fallback and the dispatcher's all-quarantined
/// lane.
pub(crate) fn digital_lane(a: &CsrMatrix, b: &[f64], tolerance: f64) -> (Vec<f64>, f64) {
    let cfg = IterativeConfig {
        stopping: StoppingCriterion::RelativeResidual(tolerance),
        ..IterativeConfig::default()
    };
    match cg(a, b, &cfg) {
        Ok(report) => {
            let bnorm = vector::norm2(b);
            let rel = if bnorm > 0.0 {
                vector::norm2(&a.residual(&report.solution, b)) / bnorm
            } else {
                0.0
            };
            (report.solution, rel)
        }
        // CG only errors on structural mismatch, which admission already
        // rejected; keep the lane total anyway.
        Err(_) => (vec![0.0; b.len()], f64::INFINITY),
    }
}

/// One worker thread's state: the contiguous run of chip slots it owns.
/// The dispatcher ships exactly one [`ChipJob`] per chip per round, so the
/// worker pool's `chunk_lengths` routing sends chip `i`'s job to the
/// worker whose slot range contains `i` — forever, at any worker count.
pub(crate) struct WorkerState {
    pub offset: usize,
    pub slots: Vec<ChipSlot>,
}

impl WorkerState {
    /// Partitions one shard's chip range — global chips `chip_offset ..
    /// chip_offset + chips` — over `workers` states, mirroring
    /// [`aa_linalg::chunk_lengths`]. The state offsets are **shard-local**
    /// (a shard's pool is submitted one command per shard chip), while
    /// the slots keep their global chip indices for seeding.
    pub fn partition_range(
        config: &FleetConfig,
        structures: &Arc<Vec<CsrMatrix>>,
        chip_offset: usize,
        chips: usize,
        workers: usize,
    ) -> Vec<WorkerState> {
        let lens = aa_linalg::chunk_lengths(chips, workers.max(1));
        let mut local = 0;
        lens.iter()
            .map(|&len| {
                let state = WorkerState {
                    offset: local,
                    slots: (local..local + len)
                        .map(|i| ChipSlot::new(config, chip_offset + i, Arc::clone(structures)))
                        .collect(),
                };
                local += len;
                state
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_seeds_are_distinct_and_deterministic() {
        let cfg = FleetConfig::new(4).with_seed(7);
        let seeds: Vec<u64> = (0..4).map(|i| cfg.chip_seed(i)).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(seeds[i], seeds[j], "chips {i} and {j} share a seed");
            }
        }
        assert_eq!(seeds, (0..4).map(|i| cfg.chip_seed(i)).collect::<Vec<_>>());
        assert_ne!(seeds[0], FleetConfig::new(4).with_seed(8).chip_seed(0));
    }

    #[test]
    fn effective_workers_defaults_to_chip_count() {
        assert_eq!(FleetConfig::new(3).effective_workers(), 3);
        assert_eq!(FleetConfig::new(3).with_workers(2).effective_workers(), 2);
        assert_eq!(FleetConfig::new(0).effective_workers(), 1);
    }

    #[test]
    fn outcome_weights_order_paths_by_severity() {
        assert!(outcome_weight(CompletionPath::Analog) == 0.0);
        assert!(
            outcome_weight(CompletionPath::AnalogAfterRecovery)
                < outcome_weight(CompletionPath::DeadlineFallback)
        );
        assert!(
            outcome_weight(CompletionPath::DeadlineFallback)
                < outcome_weight(CompletionPath::DigitalFallback)
        );
    }

    #[test]
    fn worker_partition_covers_all_chips_contiguously() {
        let structures = Arc::new(vec![CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).unwrap()]);
        for workers in [1usize, 2, 3, 4, 8] {
            let cfg = FleetConfig::new(5).with_workers(workers);
            let states = WorkerState::partition_range(&cfg, &structures, 0, cfg.chips, workers);
            assert_eq!(states.len(), workers);
            let mut next = 0;
            for state in &states {
                assert_eq!(state.offset, next);
                for (k, slot) in state.slots.iter().enumerate() {
                    assert_eq!(slot.index, state.offset + k);
                }
                next += state.slots.len();
            }
            assert_eq!(next, 5, "workers={workers}");
        }
        // A sharded split: global chip indices offset by the range start,
        // worker offsets stay shard-local.
        let states = WorkerState::partition_range(&FleetConfig::new(6), &structures, 2, 3, 2);
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].offset, 0);
        assert_eq!(states[1].offset, 2);
        let indices: Vec<usize> = states
            .iter()
            .flat_map(|s| s.slots.iter().map(|slot| slot.index))
            .collect();
        assert_eq!(indices, vec![2, 3, 4]);
    }

    #[test]
    fn chunk_ends_split_by_structure_run_and_cap() {
        let structures = Arc::new(vec![
            CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap(),
            CsrMatrix::tridiagonal(5, -1.0, 2.0, -1.0).unwrap(),
        ]);
        let a = |t: u64, s: usize| (t, s, vec![1.0; 4 + s], None, SolveMode::Direct);
        let k = |t: u64, s: usize| (t, s, vec![1.0; 4 + s], None, SolveMode::KrylovPrecond);
        let slot = ChipSlot::new(
            &FleetConfig::new(1).with_max_batch_rhs(3),
            0,
            Arc::clone(&structures),
        );
        assert_eq!(slot.chunk_ends(&[]), Vec::<usize>::new());
        // A structure switch and the cap both end a chunk.
        assert_eq!(
            slot.chunk_ends(&[a(0, 0), a(1, 0), a(2, 0), a(3, 0), a(4, 1), a(5, 0)]),
            vec![3, 4, 5, 6]
        );
        // A Krylov assignment is a singleton chunk even mid-run of its own
        // structure: its RHS sequence cannot share a sweep.
        assert_eq!(
            slot.chunk_ends(&[a(0, 0), k(1, 0), a(2, 0), a(3, 0)]),
            vec![1, 2, 4]
        );
        // max_batch_rhs = 1 (the default): every index is a boundary.
        let scalar = ChipSlot::new(&FleetConfig::new(1), 0, structures);
        assert_eq!(
            scalar.chunk_ends(&[a(0, 0), a(1, 0), a(2, 0)]),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn hang_mid_chunk_returns_the_whole_chunk_unserved() {
        let structures = Arc::new(vec![CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap()]);
        let mut slot = ChipSlot::new(
            &FleetConfig::new(1).with_max_batch_rhs(4),
            0,
            Arc::clone(&structures),
        );
        slot.failure = Some(ChipFailure::HangAfter { served: 2 });
        let assignments: Vec<Assignment> = (0..4)
            .map(|t| (t, 0, vec![1.0; 4], None, SolveMode::Direct))
            .collect();
        let ChipReply::Ran {
            outcomes,
            unserved,
            failed,
        } = slot.run(assignments)
        else {
            panic!("Run command must produce a Ran reply");
        };
        // served=2 lands mid-chunk; the single 4-column chunk has no
        // partial results, so every column bounces back.
        assert!(failed);
        assert!(outcomes.is_empty());
        assert_eq!(unserved.len(), 4);
        let tickets: Vec<u64> = unserved.iter().map(|a| a.0).collect();
        assert_eq!(tickets, vec![0, 1, 2, 3]);
    }

    #[test]
    fn digital_lane_meets_tolerance() {
        let a = CsrMatrix::tridiagonal(6, -1.0, 2.0, -1.0).unwrap();
        let b = vec![1.0; 6];
        let (x, rel) = digital_lane(&a, &b, 1e-9);
        assert_eq!(x.len(), 6);
        assert!(rel <= 1e-9, "rel={rel}");
    }
}

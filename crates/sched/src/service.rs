//! The fleet service: admission control, sharded dispatcher groups, the
//! round-based dispatch loop over per-shard worker pools, and
//! health-driven placement. All scheduling decisions happen on the
//! dispatcher thread, in deterministic shard order — worker threads only
//! execute already-placed batches — so the [`ScheduleLog`] replays
//! identically at any worker count.
//!
//! # Sharded dispatch
//!
//! The fleet is split into `config.shards` independent dispatcher groups.
//! Each shard owns a disjoint contiguous chip range, its own bounded
//! queue slice, its own worker pool, its own round counter, and its own
//! [`ScheduleLog`]; a fleet-wide aggregate log interleaves every shard's
//! events in decision order. Submissions route by **structure affinity**:
//! a structure homes to `structure % shards`, so its compiled plans and
//! γ-calibrations warm exactly one shard's chips instead of being
//! re-derived on every chip in the fleet. When the home shard saturates
//! (its queue reaches the spill watermark), the router walks cyclically
//! to the first shard with headroom and records a
//! [`ScheduleEvent::Spilled`]. On top of the priority classes and
//! brownout, admission enforces **per-tenant fair-share quotas**
//! ([`FleetConfig::tenant_weights`]): a tenant over its weighted share of
//! the fleet-wide queue capacity is refused with
//! [`Rejected::QuotaExceeded`] before any queue-occupancy check.
//!
//! With `shards == 1` (the default) the service behaves exactly like the
//! unsharded dispatcher: one group, one queue, identical logs.

use std::collections::BTreeMap;
use std::sync::Arc;

use aa_linalg::{CsrMatrix, LinearOperator, WorkerPool};
use aa_solver::estimate::{amortized_solve_time_s, krylov_solve_time_s, predicted_solve_time_s};

use crate::checkpoint::{AdmissionWal, FleetCheckpoint, QueuedRequest, ShardCheckpoint, WalOp};
use crate::fleet::{
    digital_lane, outcome_weight, Assignment, ChipCommand, ChipFailure, ChipHealth, ChipReply,
    ChipState, FleetConfig, SlotCheckpoint, WorkerState,
};
use crate::log::{ScheduleEvent, ScheduleLog};
use crate::request::{
    Completion, CompletionPath, Priority, Rejected, SolveMode, SolveRequest, SolveTicket,
};

/// A fleet construction or recovery error.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The configuration cannot describe a runnable fleet.
    InvalidConfig {
        /// What was wrong.
        message: String,
    },
    /// A checkpoint cannot be restored into this fleet — wrong format
    /// version, wrong shape, or state referencing things the fleet does
    /// not have.
    CheckpointMismatch {
        /// What did not line up.
        message: String,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::InvalidConfig { message } => write!(f, "invalid fleet config: {message}"),
            SchedError::CheckpointMismatch { message } => {
                write!(f, "checkpoint mismatch: {message}")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// An admitted request waiting for dispatch.
#[derive(Debug, Clone)]
struct Queued {
    ticket: u64,
    structure: usize,
    rhs: Vec<f64>,
    priority: Priority,
    deadline_s: Option<f64>,
    tenant: u32,
    mode: SolveMode,
}

/// One dispatcher group: a disjoint chip range with its own pool, queue,
/// health records, round counter, and schedule log. Shards never share
/// mutable state; the only cross-shard structures are the global ticket
/// counter, the inflight index, the completion set, the WAL, and the
/// aggregate log.
struct Shard {
    /// Global index of this shard's first chip.
    chip_offset: usize,
    pool: WorkerPool<WorkerState, ChipCommand, ChipReply>,
    /// Health records for this shard's chips, in local chip order.
    health: Vec<ChipHealth>,
    queue: Vec<Queued>,
    /// This shard's own slice of the schedule — the per-shard replay
    /// identity artifact.
    log: ScheduleLog,
    /// Dispatch rounds this shard has run (it skips rounds where its
    /// queue is empty).
    round: u64,
}

impl Shard {
    fn chips(&self) -> usize {
        self.health.len()
    }
}

/// The multi-chip batched solve service.
///
/// ```
/// use aa_linalg::CsrMatrix;
/// use aa_sched::{FleetConfig, FleetService, SolveRequest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = CsrMatrix::tridiagonal(8, -1.0, 2.0, -1.0)?;
/// let mut fleet = FleetService::new(FleetConfig::new(2), vec![a])?;
/// let ticket = fleet.submit(SolveRequest::new(0, vec![1.0; 8]))?;
/// fleet.run_until_idle();
/// let done = fleet.completion(ticket).expect("served");
/// assert!(done.residual < 1e-2, "12-bit analog readout precision");
/// # Ok(())
/// # }
/// ```
pub struct FleetService {
    config: FleetConfig,
    structures: Arc<Vec<CsrMatrix>>,
    /// Predicted analog solve seconds per structure (`None` when the
    /// estimator cannot price it — such requests are always admitted).
    estimates: Vec<Option<f64>>,
    shards: Vec<Shard>,
    /// `(structure, priority, tenant)` of every admitted-but-unsettled
    /// ticket — the dispatcher's own index, so outcome collection never
    /// scans (or panics on) the log, and a requeued request keeps its
    /// fair-share attribution.
    inflight: BTreeMap<u64, (usize, Priority, u32)>,
    completions: BTreeMap<u64, Completion>,
    /// The fleet-wide aggregate log: every shard's events interleaved in
    /// decision order, plus all rejections.
    log: ScheduleLog,
    /// External inputs since the last checkpoint (see [`AdmissionWal`]).
    wal: AdmissionWal,
    next_ticket: u64,
    round: u64,
}

impl FleetService {
    /// Builds the fleet and registers the solvable structures. Requests
    /// reference a structure by its index in `structures`.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] for an empty fleet, no structures, a
    /// zero batch size or RHS-coalescing width, a shard count of zero or
    /// above the chip count, or a fault plan naming a chip that does not
    /// exist.
    pub fn new(config: FleetConfig, structures: Vec<CsrMatrix>) -> Result<Self, SchedError> {
        if config.chips == 0 {
            return Err(SchedError::InvalidConfig {
                message: "fleet needs at least one chip".into(),
            });
        }
        if structures.is_empty() {
            return Err(SchedError::InvalidConfig {
                message: "fleet needs at least one registered structure".into(),
            });
        }
        if config.batch_size == 0 {
            return Err(SchedError::InvalidConfig {
                message: "batch_size must be at least 1".into(),
            });
        }
        if config.max_batch_rhs == 0 {
            return Err(SchedError::InvalidConfig {
                message: "max_batch_rhs must be at least 1".into(),
            });
        }
        if config.shards == 0 {
            return Err(SchedError::InvalidConfig {
                message: "fleet needs at least one shard".into(),
            });
        }
        if config.shards > config.chips {
            return Err(SchedError::InvalidConfig {
                message: format!(
                    "{} shards over {} chips would leave chipless dispatcher groups",
                    config.shards, config.chips
                ),
            });
        }
        if let Some((chip, _)) = config
            .fault_plans
            .iter()
            .find(|(chip, _)| *chip >= config.chips)
        {
            return Err(SchedError::InvalidConfig {
                message: format!("fault plan targets chip {chip}, fleet has {}", config.chips),
            });
        }
        let estimates = structures
            .iter()
            .map(|a| predicted_solve_time_s(a, &config.design).ok())
            .collect();
        let structures = Arc::new(structures);
        let shards = config
            .shard_chip_ranges()
            .into_iter()
            .zip(config.shard_worker_counts())
            .map(|((chip_offset, chips), workers)| {
                let states =
                    WorkerState::partition_range(&config, &structures, chip_offset, chips, workers);
                let pool = WorkerPool::new(
                    states,
                    |state: &mut WorkerState, i, command: ChipCommand| {
                        state.slots[i - state.offset].execute(command)
                    },
                );
                Shard {
                    chip_offset,
                    pool,
                    health: (0..chips).map(|_| ChipHealth::new()).collect(),
                    queue: Vec::new(),
                    log: ScheduleLog::default(),
                    round: 0,
                }
            })
            .collect();
        Ok(FleetService {
            config,
            structures,
            estimates,
            shards,
            inflight: BTreeMap::new(),
            completions: BTreeMap::new(),
            log: ScheduleLog::default(),
            wal: AdmissionWal::new(),
            next_ticket: 0,
            round: 0,
        })
    }

    /// The registered structures.
    pub fn structures(&self) -> &[CsrMatrix] {
        &self.structures
    }

    /// The fleet configuration in effect.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The predicted analog solve seconds for one structure, if priceable.
    pub fn estimate_s(&self, structure: usize) -> Option<f64> {
        self.estimates.get(structure).copied().flatten()
    }

    /// Per-chip health records, indexed by global chip (the shards'
    /// records concatenated in chip order).
    pub fn health(&self) -> Vec<ChipHealth> {
        self.shards
            .iter()
            .flat_map(|s| s.health.iter().cloned())
            .collect()
    }

    /// Requests admitted but not yet dispatched, across all shards.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Fleet-level dispatch rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// The number of dispatcher groups.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's own schedule log (its slice of the fleet-wide log).
    ///
    /// # Panics
    ///
    /// If `shard` is out of range.
    pub fn shard_log(&self, shard: usize) -> &ScheduleLog {
        &self.shards[shard].log
    }

    /// Dispatch rounds one shard has run (idle-queue rounds are skipped
    /// per shard).
    ///
    /// # Panics
    ///
    /// If `shard` is out of range.
    pub fn shard_rounds(&self, shard: usize) -> u64 {
        self.shards[shard].round
    }

    /// One shard's pending queue depth.
    ///
    /// # Panics
    ///
    /// If `shard` is out of range.
    pub fn shard_queue_depth(&self, shard: usize) -> usize {
        self.shards[shard].queue.len()
    }

    /// The `(chip_offset, chip_count)` range one shard owns.
    ///
    /// # Panics
    ///
    /// If `shard` is out of range.
    pub fn shard_chips(&self, shard: usize) -> (usize, usize) {
        (self.shards[shard].chip_offset, self.shards[shard].chips())
    }

    /// The fleet-wide schedule log accumulated so far.
    pub fn log(&self) -> &ScheduleLog {
        &self.log
    }

    /// Consumes the service, returning the final fleet-wide log.
    pub fn into_log(self) -> ScheduleLog {
        self.log
    }

    /// The resolved outcome of an admitted request, once a dispatch round
    /// has served it.
    pub fn completion(&self, ticket: SolveTicket) -> Option<&Completion> {
        self.completions.get(&ticket.0)
    }

    /// Records one shard-attributed event in both the shard's own log and
    /// the fleet-wide aggregate. Rejections are fleet-wide only (they
    /// never reached a shard) and are recorded directly in `submit`.
    fn record(&mut self, shard: usize, event: ScheduleEvent) {
        self.shards[shard].log.events.push(event.clone());
        self.log.events.push(event);
    }

    /// Admission control: validates the request, applies fair-share
    /// quotas and backpressure, routes it to a shard by structure
    /// affinity, and enqueues it. The attempt is WAL-recorded (admitted
    /// or not) so crash recovery replays the exact admission sequence.
    ///
    /// # Errors
    ///
    /// A typed [`Rejected`] verdict — never a panic — naming the reason:
    /// unknown structure, wrong rhs length, tenant over its fair-share
    /// quota, every shard's queue full, brownout shedding, or a deadline
    /// below the structure's predicted (coalescing-amortized) solve time.
    /// Transient verdicts carry a [`retry_after_s`](Rejected::retry_after_s)
    /// hint.
    pub fn submit(&mut self, request: SolveRequest) -> Result<SolveTicket, Rejected> {
        self.wal.record_submit(request.clone());
        let verdict = self.admit(&request);
        let shard = match verdict {
            Err(rejection) => {
                self.log.rejected += 1;
                self.log.events.push(ScheduleEvent::Rejected {
                    structure: request.structure,
                    priority: request.priority,
                    reason: rejection.label(),
                });
                aa_obs::counter("sched.requests_rejected", 1);
                aa_obs::event(
                    aa_obs::Event::new("sched.reject")
                        .with("structure", request.structure)
                        .with("reason", rejection.label()),
                );
                return Err(rejection);
            }
            Ok(shard) => shard,
        };
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.record(
            shard,
            ScheduleEvent::Admitted {
                ticket,
                structure: request.structure,
                priority: request.priority,
                deadline_s: request.deadline_s,
            },
        );
        aa_obs::counter("sched.requests_admitted", 1);
        let home = self.config.home_shard(request.structure);
        if shard != home {
            self.record(
                shard,
                ScheduleEvent::Spilled {
                    ticket,
                    from_shard: home,
                    to_shard: shard,
                },
            );
            aa_obs::counter("sched.spills", 1);
        }
        self.inflight.insert(
            ticket,
            (request.structure, request.priority, request.tenant),
        );
        self.shards[shard].queue.push(Queued {
            ticket,
            structure: request.structure,
            rhs: request.rhs,
            priority: request.priority,
            deadline_s: request.deadline_s,
            tenant: request.tenant,
            mode: request.mode,
        });
        Ok(SolveTicket(ticket))
    }

    /// The admission pipeline; returns the shard the request routes to.
    fn admit(&self, request: &SolveRequest) -> Result<usize, Rejected> {
        let Some(matrix) = self.structures.get(request.structure) else {
            return Err(Rejected::UnknownStructure {
                structure: request.structure,
            });
        };
        if request.rhs.len() != matrix.dim() {
            return Err(Rejected::RhsLengthMismatch {
                expected: matrix.dim(),
                got: request.rhs.len(),
            });
        }
        if let Some(rejection) = self.check_quota(request.tenant) {
            return Err(rejection);
        }
        let Some(shard) = self.route(request.structure) else {
            return Err(Rejected::QueueFull {
                capacity: self.config.queue_capacity,
                retry_after_s: self.min_drain_s(),
            });
        };
        if let Some(watermark) = self.config.brownout_low_watermark {
            if request.priority == Priority::Low && self.shards[shard].queue.len() >= watermark {
                return Err(Rejected::Brownout {
                    queue_depth: self.shards[shard].queue.len(),
                    retry_after_s: self.shard_drain_s(shard),
                });
            }
        }
        if let (Some(deadline), Some(estimate)) =
            (request.deadline_s, self.estimates[request.structure])
        {
            let priced = self.priced_estimate_s(estimate, request.mode);
            if deadline < priced {
                return Err(Rejected::DeadlineInfeasible {
                    deadline_s: deadline,
                    estimate_s: priced,
                });
            }
        }
        Ok(shard)
    }

    /// The single per-request deadline price, per mode, from one
    /// sequential estimate — both profiles route through
    /// [`aa_solver::estimate`] so the fleet's arithmetic can never drift
    /// from the estimator's:
    ///
    /// * `Direct` — coalesced columns settle together in one sweep, so
    ///   the deadline is judged against the amortized per-request time
    ///   ([`amortized_solve_time_s`] over the coalescing width), not the
    ///   sequential estimate (which over-prices a coalescing fleet by up
    ///   to the batch width).
    /// * `KrylovPrecond` — one supervised analog solve per FCG
    ///   preconditioner application, never coalesced, so the sequential
    ///   estimate is *scaled* by the configured application count
    ///   ([`krylov_solve_time_s`]).
    fn priced_estimate_s(&self, estimate_s: f64, mode: SolveMode) -> f64 {
        match mode {
            SolveMode::Direct => amortized_solve_time_s(estimate_s, self.coalesce_width()),
            SolveMode::KrylovPrecond => {
                krylov_solve_time_s(estimate_s, self.config.krylov_applications)
            }
        }
    }

    /// How many same-structure RHS columns one dispatch actually serves
    /// per analog sweep: the coalescing width, capped by the batch size.
    fn coalesce_width(&self) -> usize {
        self.config.max_batch_rhs.min(self.config.batch_size).max(1)
    }

    /// Structure-affinity routing: the home shard while it has headroom,
    /// else the first shard below the spill watermark scanning cyclically
    /// from the home, else (second pass) the first shard below hard
    /// capacity. `None` when every shard is at capacity.
    fn route(&self, structure: usize) -> Option<usize> {
        let home = self.config.home_shard(structure);
        let n = self.shards.len();
        let cap = self.config.queue_capacity;
        let watermark = self.config.spill_watermark.unwrap_or(cap).min(cap).max(1);
        for pass in [watermark, cap] {
            for k in 0..n {
                let shard = (home + k) % n;
                if self.shards[shard].queue.len() < pass {
                    return Some(shard);
                }
            }
        }
        None
    }

    /// Fair-share admission: refuses a tenant already holding its
    /// weighted share of the fleet-wide queue capacity. Tenants without a
    /// configured weight share one default bucket of weight 1.
    fn check_quota(&self, tenant: u32) -> Option<Rejected> {
        if self.config.tenant_weights.is_empty() {
            return None;
        }
        // Last-configured weight wins for a repeated tenant id.
        let weights: BTreeMap<u32, u32> = self.config.tenant_weights.iter().copied().collect();
        let denominator: u64 = weights.values().map(|&w| u64::from(w)).sum::<u64>() + 1;
        let total = (self.config.queue_capacity * self.shards.len()) as u64;
        let weight = weights.get(&tenant).copied().unwrap_or(1);
        let quota = ((total * u64::from(weight)) / denominator).max(1) as usize;
        // The bucket: the tenant itself when configured, the pooled
        // default bucket otherwise.
        let in_bucket = |q: &Queued| {
            if weights.contains_key(&tenant) {
                q.tenant == tenant
            } else {
                !weights.contains_key(&q.tenant)
            }
        };
        let in_queue: usize = self
            .shards
            .iter()
            .map(|s| s.queue.iter().filter(|q| in_bucket(q)).count())
            .sum();
        if in_queue < quota {
            return None;
        }
        // Retry once the fastest shard holding bucket work has drained.
        let retry_after_s = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.queue.iter().any(&in_bucket))
            .map(|(i, _)| self.shard_drain_s(i))
            .fold(f64::INFINITY, f64::min);
        Some(Rejected::QuotaExceeded {
            tenant,
            in_queue,
            quota,
            retry_after_s: if retry_after_s.is_finite() {
                retry_after_s
            } else {
                0.0
            },
        })
    }

    /// The typed retry hint for one shard: the queued work's predicted
    /// analog seconds — each queued request priced by the same per-mode
    /// rule as deadline admission ([`Self::priced_estimate_s`], which
    /// smooths partial sweeps) — spread over the shard's *effective*
    /// serving lanes. Probation chips count as a fractional lane (one
    /// probe per round versus a full batch); quarantined and retired
    /// chips count as zero — a degraded shard quotes an honestly longer
    /// drain instead of pricing dead silicon as capacity. A shard with no
    /// chip in rotation quotes `0.0`: the dispatcher's digital lane
    /// clears its whole queue next round.
    fn shard_drain_s(&self, shard: usize) -> f64 {
        let s = &self.shards[shard];
        let work_s: f64 = s
            .queue
            .iter()
            .map(|q| {
                let estimate = self.estimates[q.structure].unwrap_or(0.0);
                self.priced_estimate_s(estimate, q.mode)
            })
            .sum();
        let lanes: f64 = s
            .health
            .iter()
            .map(|h| match h.state {
                ChipState::Probation => 1.0 / self.config.batch_size as f64,
                _ if h.in_rotation() => 1.0,
                _ => 0.0,
            })
            .sum();
        if lanes <= 0.0 {
            0.0
        } else {
            work_s / lanes
        }
    }

    /// The smallest drain hint over all shards — the soonest any shard
    /// could accept new work.
    fn min_drain_s(&self) -> f64 {
        (0..self.shards.len())
            .map(|s| self.shard_drain_s(s))
            .fold(f64::INFINITY, f64::min)
    }

    /// Runs one dispatch round over every shard with pending work;
    /// returns the number of requests completed (`0` when all queues were
    /// empty and nothing advanced).
    ///
    /// Placement is two-phase and deterministic: phase one places batches
    /// and ships jobs shard by shard in shard order (so every shard's
    /// workers start while the dispatcher moves on), phase two drains and
    /// collects replies in the same shard order. With one shard this is
    /// exactly the unsharded place → ship → drain → collect sequence.
    pub fn run_round(&mut self) -> usize {
        self.wal.record_round();
        if self.shards.iter().all(|s| s.queue.is_empty()) {
            return 0;
        }
        self.round += 1;
        let _span = aa_obs::span("sched.round");
        aa_obs::histogram("sched.queue_depth", self.queue_depth() as f64);
        let mut completed = 0;
        let mut shipped = vec![false; self.shards.len()];
        for (s, ship) in shipped.iter_mut().enumerate() {
            if self.shards[s].queue.is_empty() {
                continue;
            }
            self.shards[s].round += 1;
            self.update_probation(s);
            // Dispatch order: priority class, then admission order.
            self.shards[s]
                .queue
                .sort_by_key(|q| (q.priority.rank(), q.ticket));
            let jobs = self.place_batches(s);
            if self.shards[s].health.iter().any(ChipHealth::in_rotation) {
                self.shards[s]
                    .pool
                    .try_submit(jobs)
                    .unwrap_or_else(|_| unreachable!("round is drained before the next submit"));
                *ship = true;
            } else {
                // Whole shard quarantined: the dispatcher's own digital
                // lane keeps the shard live (and the loop terminating).
                completed += self.serve_digital_only(s);
            }
        }
        for (s, &ship) in shipped.iter().enumerate() {
            if ship {
                let replies = self.shards[s].pool.drain();
                completed += self.collect_round(s, replies);
            }
        }
        completed
    }

    /// Runs dispatch rounds until every shard's queue is empty.
    pub fn run_until_idle(&mut self) -> usize {
        let mut completed = 0;
        while self.shards.iter().any(|s| !s.queue.is_empty()) {
            completed += self.run_round();
        }
        completed
    }

    /// Moves one shard's quarantined chips whose sit-out elapsed into
    /// probation.
    fn update_probation(&mut self, shard: usize) {
        let round = self.shards[shard].round;
        let offset = self.shards[shard].chip_offset;
        for local in 0..self.shards[shard].health.len() {
            if let ChipState::Quarantined { since_round } = self.shards[shard].health[local].state {
                if round >= since_round + self.config.health.readmit_after_rounds {
                    self.shards[shard].health[local].state = ChipState::Probation;
                    let chip = offset + local;
                    self.record(shard, ScheduleEvent::Probation { chip, round });
                    aa_obs::event(aa_obs::Event::new("sched.probation").with("chip", chip));
                }
            }
        }
    }

    /// Greedy deterministic placement over one shard: its chips in index
    /// order, each taking the highest-priority waiting request plus up to
    /// `batch_size − 1` same-structure followers (compiled-plan reuse).
    /// Probation chips get exactly one probe. Returns one job per shard
    /// chip — empty for idle or quarantined chips — so worker routing is
    /// round-invariant.
    fn place_batches(&mut self, shard: usize) -> Vec<ChipCommand> {
        let chips = self.shards[shard].chips();
        let offset = self.shards[shard].chip_offset;
        let round = self.shards[shard].round;
        let mut jobs: Vec<ChipCommand> = (0..chips).map(|_| ChipCommand::default()).collect();
        for (local, job) in jobs.iter_mut().enumerate() {
            if self.shards[shard].queue.is_empty()
                || !self.shards[shard].health[local].in_rotation()
            {
                continue;
            }
            let budget = if self.shards[shard].health[local].state == ChipState::Probation {
                1
            } else {
                self.config.batch_size
            };
            let head = self.shards[shard].queue.remove(0);
            let structure = head.structure;
            let mut batch = vec![head];
            while batch.len() < budget {
                let Some(pos) = self.shards[shard]
                    .queue
                    .iter()
                    .position(|q| q.structure == structure)
                else {
                    break;
                };
                batch.push(self.shards[shard].queue.remove(pos));
            }
            let tickets: Vec<u64> = batch.iter().map(|q| q.ticket).collect();
            self.record(
                shard,
                ScheduleEvent::Dispatched {
                    round,
                    chip: offset + local,
                    tickets,
                },
            );
            *job = ChipCommand::Run(
                batch
                    .into_iter()
                    .map(|q| (q.ticket, q.structure, q.rhs, q.deadline_s, q.mode))
                    .collect(),
            );
        }
        jobs
    }

    /// Serves one shard's queued requests from the dispatcher's digital
    /// lane; returns how many it settled.
    fn serve_digital_only(&mut self, shard: usize) -> usize {
        let queued = std::mem::take(&mut self.shards[shard].queue);
        let served = queued.len();
        let round = self.shards[shard].round;
        for q in queued {
            let (solution, residual) = digital_lane(
                &self.structures[q.structure],
                &q.rhs,
                self.config.fallback_tolerance,
            );
            self.settle(
                shard,
                Completion {
                    ticket: SolveTicket(q.ticket),
                    structure: q.structure,
                    priority: q.priority,
                    solution,
                    path: CompletionPath::DigitalOnly,
                    residual,
                    analog_time_s: 0.0,
                    energy_j: 0.0,
                    chip: None,
                    round,
                },
            );
        }
        served
    }

    /// Folds one shard round's chip replies into completions, requeues,
    /// health scores, and quarantine decisions — in chip order, on the
    /// dispatcher thread.
    fn collect_round(&mut self, shard: usize, replies: Vec<ChipReply>) -> usize {
        let mut completed = 0;
        let offset = self.shards[shard].chip_offset;
        let round = self.shards[shard].round;
        for (local, reply) in replies.into_iter().enumerate() {
            let chip = offset + local;
            let ChipReply::Ran {
                outcomes,
                unserved,
                failed,
            } = reply
            else {
                // Only `Run` commands are shipped in a round; anything else
                // is an internal routing bug. Skip rather than panic — the
                // invariant is checked in debug builds.
                debug_assert!(false, "non-Run reply in a dispatch round");
                continue;
            };
            let dispatched = !outcomes.is_empty() || !unserved.is_empty();
            let served = !outcomes.is_empty();
            let mut worst = if failed { 1.0f64 } else { 0.0f64 };
            for outcome in outcomes {
                worst = worst.max(outcome_weight(outcome.path));
                self.shards[shard].health[local].solves += 1;
                // The inflight index replaces a log scan here; a ticket the
                // dispatcher never admitted is dropped, not unwrapped.
                let Some((structure, priority, _)) = self.inflight.get(&outcome.ticket).copied()
                else {
                    debug_assert!(false, "outcome for unknown ticket {}", outcome.ticket);
                    aa_obs::counter("sched.orphan_outcomes", 1);
                    continue;
                };
                let energy_j = self
                    .config
                    .design
                    .energy_j(self.structures[structure].dim(), outcome.analog_time_s);
                aa_obs::histogram(latency_metric(priority), outcome.analog_time_s);
                self.settle(
                    shard,
                    Completion {
                        ticket: SolveTicket(outcome.ticket),
                        structure,
                        priority,
                        solution: outcome.solution,
                        path: outcome.path,
                        residual: outcome.residual,
                        analog_time_s: outcome.analog_time_s,
                        energy_j,
                        chip: Some(chip),
                        round,
                    },
                );
                completed += 1;
            }
            self.requeue(shard, local, unserved);
            if served || (failed && dispatched) {
                self.score(shard, local, worst);
            }
        }
        completed
    }

    /// Returns assignments a failed chip never served to its shard's
    /// queue — the exactly-once half of the failure story: an accepted
    /// request bounces until a healthy chip (or the digital lane) answers
    /// it.
    fn requeue(&mut self, shard: usize, local: usize, unserved: Vec<Assignment>) {
        let columns = unserved.len();
        let chip = self.shards[shard].chip_offset + local;
        let round = self.shards[shard].round;
        for (ticket, structure, rhs, deadline_s, mode) in unserved {
            let (priority, tenant) = self
                .inflight
                .get(&ticket)
                .map(|&(_, p, t)| (p, t))
                .unwrap_or_default();
            self.record(
                shard,
                ScheduleEvent::Requeued {
                    ticket,
                    chip,
                    round,
                    columns,
                },
            );
            aa_obs::counter("sched.requeues", 1);
            aa_obs::event(
                aa_obs::Event::new("sched.requeue")
                    .with("ticket", ticket)
                    .with("chip", chip),
            );
            self.shards[shard].queue.push(Queued {
                ticket,
                structure,
                rhs,
                priority,
                deadline_s,
                tenant,
                mode,
            });
        }
    }

    fn settle(&mut self, shard: usize, completion: Completion) {
        self.inflight.remove(&completion.ticket.0);
        self.record(
            shard,
            ScheduleEvent::Completed {
                ticket: completion.ticket.0,
                chip: completion.chip,
                round: completion.round,
                path: completion.path,
                analog_time_s: completion.analog_time_s,
            },
        );
        self.shards[shard]
            .log
            .tally_completion(completion.priority, completion.energy_j);
        self.log
            .tally_completion(completion.priority, completion.energy_j);
        aa_obs::counter("sched.requests_completed", 1);
        self.completions.insert(completion.ticket.0, completion);
    }

    /// EWMA health update plus the quarantine / probation-verdict state
    /// machine, for one shard-local chip.
    fn score(&mut self, shard: usize, local: usize, weight: f64) {
        let alpha = self.config.health.alpha;
        let round = self.shards[shard].round;
        let chip = self.shards[shard].chip_offset + local;
        let health = &mut self.shards[shard].health[local];
        health.score = (1.0 - alpha) * health.score + alpha * weight;
        match health.state {
            ChipState::Probation => {
                if weight == 0.0 {
                    health.state = ChipState::Healthy;
                    health.score = 0.0;
                    self.record(shard, ScheduleEvent::Readmitted { chip, round });
                    aa_obs::event(aa_obs::Event::new("sched.readmit").with("chip", chip));
                } else {
                    self.quarantine(shard, local);
                }
            }
            ChipState::Healthy => {
                if health.score >= self.config.health.quarantine_threshold {
                    self.quarantine(shard, local);
                }
            }
            ChipState::Quarantined { .. } | ChipState::Retired => {}
        }
    }

    fn quarantine(&mut self, shard: usize, local: usize) {
        let round = self.shards[shard].round;
        let chip = self.shards[shard].chip_offset + local;
        self.shards[shard].health[local].state = ChipState::Quarantined { since_round: round };
        self.shards[shard].health[local].quarantines += 1;
        self.record(shard, ScheduleEvent::Quarantined { chip, round });
        aa_obs::counter("sched.quarantines", 1);
        aa_obs::event(aa_obs::Event::new("sched.quarantine").with("chip", chip));
        if let Some(limit) = self.config.health.retire_after_quarantines {
            if self.shards[shard].health[local].quarantines >= limit {
                self.shards[shard].health[local].state = ChipState::Retired;
                self.record(shard, ScheduleEvent::Retired { chip, round });
                aa_obs::counter("sched.retirements", 1);
                aa_obs::event(aa_obs::Event::new("sched.retire").with("chip", chip));
            }
        }
    }

    /// Takes a consistent snapshot of the whole fleet — per-chip solver
    /// state, health records, every shard's pending queue / log / round,
    /// the completion set, the fleet-wide log, and the counters — and
    /// compacts the WAL (everything recorded so far is baked into the
    /// snapshot).
    ///
    /// Restoring the snapshot with [`restore`](Self::restore), then
    /// replaying the WAL accumulated afterwards, rebuilds the service bit
    /// for bit.
    pub fn checkpoint(&mut self) -> FleetCheckpoint {
        let chips = self.export_slots();
        self.wal.clear();
        FleetCheckpoint {
            version: FleetCheckpoint::FORMAT_VERSION,
            base_seed: self.config.base_seed,
            chips,
            health: self.health(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(index, s)| ShardCheckpoint {
                    shard: index,
                    chip_offset: s.chip_offset,
                    chips: s.chips(),
                    queue: s
                        .queue
                        .iter()
                        .map(|q| QueuedRequest {
                            ticket: q.ticket,
                            structure: q.structure,
                            rhs: q.rhs.clone(),
                            priority: q.priority,
                            deadline_s: q.deadline_s,
                            tenant: q.tenant,
                            mode: q.mode,
                        })
                        .collect(),
                    log: s.log.clone(),
                    round: s.round,
                })
                .collect(),
            completions: self.completions.values().cloned().collect(),
            log: self.log.clone(),
            next_ticket: self.next_ticket,
            round: self.round,
        }
    }

    /// The external inputs recorded since the last checkpoint (or since
    /// construction). In a real deployment this is the durable append log;
    /// a crash harness clones it before dropping the service.
    pub fn wal(&self) -> &AdmissionWal {
        &self.wal
    }

    /// Every settled completion so far, in ticket order.
    pub fn completions(&self) -> impl Iterator<Item = &Completion> + '_ {
        self.completions.values()
    }

    /// Rebuilds a crashed service from its last checkpoint plus the WAL
    /// recorded afterwards. `config` and `structures` must be the ones the
    /// crashed fleet was built with — the deterministic parts (netlists,
    /// seeds, process variation, shard topology) are reconstructed from
    /// them, then the checkpointed mutable state is overlaid shard by
    /// shard and the WAL ops are replayed with telemetry silenced
    /// (recovered work is not double-counted).
    ///
    /// The restored service drains to bit-identical [`ScheduleLog`]s —
    /// fleet-wide and per-shard — solutions, and masked traces versus a
    /// fleet that never crashed.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] as for [`new`](Self::new), or
    /// [`SchedError::CheckpointMismatch`] when the snapshot does not fit
    /// the fleet (format version, seed, chip count, shard topology,
    /// structure references).
    pub fn restore(
        config: FleetConfig,
        structures: Vec<CsrMatrix>,
        checkpoint: &FleetCheckpoint,
        wal: &AdmissionWal,
    ) -> Result<Self, SchedError> {
        if checkpoint.version != FleetCheckpoint::FORMAT_VERSION {
            return Err(SchedError::CheckpointMismatch {
                message: format!(
                    "checkpoint format v{} but this build reads v{}",
                    checkpoint.version,
                    FleetCheckpoint::FORMAT_VERSION
                ),
            });
        }
        if checkpoint.base_seed != config.base_seed {
            return Err(SchedError::CheckpointMismatch {
                message: format!(
                    "checkpoint was taken at base seed {:#x}, fleet config has {:#x}",
                    checkpoint.base_seed, config.base_seed
                ),
            });
        }
        let mut service = Self::new(config, structures)?;
        if checkpoint.chips.len() != service.config.chips
            || checkpoint.health.len() != service.config.chips
        {
            return Err(SchedError::CheckpointMismatch {
                message: format!(
                    "checkpoint describes {} chips, fleet has {}",
                    checkpoint.chips.len(),
                    service.config.chips
                ),
            });
        }
        if checkpoint.shards.len() != service.shards.len() {
            return Err(SchedError::CheckpointMismatch {
                message: format!(
                    "checkpoint describes {} shards, fleet has {}",
                    checkpoint.shards.len(),
                    service.shards.len()
                ),
            });
        }
        for (index, section) in checkpoint.shards.iter().enumerate() {
            let shard = &service.shards[index];
            if section.shard != index
                || section.chip_offset != shard.chip_offset
                || section.chips != shard.chips()
            {
                return Err(SchedError::CheckpointMismatch {
                    message: format!(
                        "checkpoint shard {} covers chips {}..{}, fleet shard {index} owns {}..{}",
                        section.shard,
                        section.chip_offset,
                        section.chip_offset + section.chips,
                        shard.chip_offset,
                        shard.chip_offset + shard.chips()
                    ),
                });
            }
            for q in &section.queue {
                let Some(matrix) = service.structures.get(q.structure) else {
                    return Err(SchedError::CheckpointMismatch {
                        message: format!(
                            "queued ticket {} references unregistered structure {}",
                            q.ticket, q.structure
                        ),
                    });
                };
                if q.rhs.len() != matrix.dim() {
                    return Err(SchedError::CheckpointMismatch {
                        message: format!(
                            "queued ticket {} has rhs length {}, structure {} needs {}",
                            q.ticket,
                            q.rhs.len(),
                            q.structure,
                            matrix.dim()
                        ),
                    });
                }
            }
        }
        service.import_slots(&checkpoint.chips)?;
        for (index, section) in checkpoint.shards.iter().enumerate() {
            let offset = service.shards[index].chip_offset;
            let chips = service.shards[index].chips();
            service.shards[index].health = checkpoint.health[offset..offset + chips].to_vec();
            service.shards[index].queue = section
                .queue
                .iter()
                .map(|q| Queued {
                    ticket: q.ticket,
                    structure: q.structure,
                    rhs: q.rhs.clone(),
                    priority: q.priority,
                    deadline_s: q.deadline_s,
                    tenant: q.tenant,
                    mode: q.mode,
                })
                .collect();
            service.shards[index].log = section.log.clone();
            service.shards[index].round = section.round;
        }
        service.inflight = checkpoint
            .shards
            .iter()
            .flat_map(|s| s.queue.iter())
            .map(|q| (q.ticket, (q.structure, q.priority, q.tenant)))
            .collect();
        service.completions = checkpoint
            .completions
            .iter()
            .map(|c| (c.ticket.0, c.clone()))
            .collect();
        service.log = checkpoint.log.clone();
        service.next_ticket = checkpoint.next_ticket;
        service.round = checkpoint.round;
        // Replay everything that happened after the snapshot. The ops
        // re-record into the fresh WAL (they are once again "since the
        // last checkpoint"), so a second crash before the next checkpoint
        // still recovers.
        aa_obs::silenced(|| {
            for op in wal.ops() {
                match op {
                    WalOp::Submit(request) => {
                        let _ = service.submit(request.clone());
                    }
                    WalOp::Round => {
                        service.run_round();
                    }
                    WalOp::Inject { chip, failure } => {
                        let _ = service.inject_chaos(*chip, *failure);
                    }
                }
            }
        });
        Ok(service)
    }

    /// Installs (or clears, with `None`) a chaos failure mode on one chip.
    /// The injection is WAL-recorded so crash recovery replays it.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] when the chip index is out of range.
    pub fn inject_chaos(
        &mut self,
        chip: usize,
        failure: Option<ChipFailure>,
    ) -> Result<(), SchedError> {
        if chip >= self.config.chips {
            return Err(SchedError::InvalidConfig {
                message: format!(
                    "chaos injection targets chip {chip}, fleet has {}",
                    self.config.chips
                ),
            });
        }
        self.wal.record_inject(chip, failure);
        let shard = self
            .shards
            .iter()
            .position(|s| chip >= s.chip_offset && chip < s.chip_offset + s.chips())
            .expect("contiguous shard ranges cover every chip");
        let local = chip - self.shards[shard].chip_offset;
        aa_obs::silenced(|| {
            let commands = (0..self.shards[shard].chips())
                .map(|i| {
                    if i == local {
                        ChipCommand::Inject(failure)
                    } else {
                        ChipCommand::Run(Vec::new())
                    }
                })
                .collect();
            self.shards[shard]
                .pool
                .try_submit(commands)
                .unwrap_or_else(|_| unreachable!("round is drained before the next submit"));
            self.shards[shard].pool.drain();
        });
        Ok(())
    }

    /// Exports every chip slot's state through its shard's pool (same
    /// routing as a dispatch round), with telemetry silenced —
    /// checkpointing leaves no mark on the live trace. Shards export in
    /// order and ranges are contiguous, so the result is in global chip
    /// order.
    fn export_slots(&mut self) -> Vec<SlotCheckpoint> {
        aa_obs::silenced(|| {
            let mut all = Vec::with_capacity(self.config.chips);
            for shard in &mut self.shards {
                let commands = (0..shard.chips()).map(|_| ChipCommand::Export).collect();
                shard
                    .pool
                    .try_submit(commands)
                    .unwrap_or_else(|_| unreachable!("round is drained before the next submit"));
                let offset = shard.chip_offset;
                all.extend(
                    shard
                        .pool
                        .drain()
                        .into_iter()
                        .enumerate()
                        .map(|(local, reply)| match reply {
                            ChipReply::Exported(state) => *state,
                            _ => {
                                debug_assert!(false, "non-Export reply to an export round");
                                SlotCheckpoint {
                                    chip: offset + local,
                                    solvers: Vec::new(),
                                    failure: None,
                                }
                            }
                        }),
                );
            }
            all
        })
    }

    /// Imports checkpointed slot states through each shard's pool.
    fn import_slots(&mut self, slots: &[SlotCheckpoint]) -> Result<(), SchedError> {
        aa_obs::silenced(|| {
            for shard in &mut self.shards {
                let range = &slots[shard.chip_offset..shard.chip_offset + shard.chips()];
                let commands = range
                    .iter()
                    .map(|s| ChipCommand::Import(Box::new(s.clone())))
                    .collect();
                shard
                    .pool
                    .try_submit(commands)
                    .unwrap_or_else(|_| unreachable!("round is drained before the next submit"));
                for reply in shard.pool.drain() {
                    if let ChipReply::Imported(Err(message)) = reply {
                        return Err(SchedError::CheckpointMismatch { message });
                    }
                }
            }
            Ok(())
        })
    }
}

/// The per-class latency histogram name (static, as `aa-obs` requires).
fn latency_metric(priority: Priority) -> &'static str {
    match priority {
        Priority::High => "sched.latency_s.high",
        Priority::Normal => "sched.latency_s.normal",
        Priority::Low => "sched.latency_s.low",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(n: usize) -> CsrMatrix {
        CsrMatrix::tridiagonal(n, -1.0, 2.0, -1.0).unwrap()
    }

    #[test]
    fn construction_rejects_degenerate_configs() {
        assert!(FleetService::new(FleetConfig::new(0), vec![tri(4)]).is_err());
        assert!(FleetService::new(FleetConfig::new(1), vec![]).is_err());
        let mut zero_batch = FleetConfig::new(1);
        zero_batch.batch_size = 0;
        assert!(FleetService::new(zero_batch, vec![tri(4)]).is_err());
        let zero_rhs = FleetConfig::new(1).with_max_batch_rhs(0);
        assert!(FleetService::new(zero_rhs, vec![tri(4)]).is_err());
        let bad_chip = FleetConfig::new(1).with_fault_plan(3, aa_analog::FaultPlan::new(1));
        assert!(FleetService::new(bad_chip, vec![tri(4)]).is_err());
        // Shard topology must describe non-empty dispatcher groups.
        assert!(FleetService::new(FleetConfig::new(2).with_shards(0), vec![tri(4)]).is_err());
        assert!(FleetService::new(FleetConfig::new(2).with_shards(3), vec![tri(4)]).is_err());
    }

    #[test]
    fn admission_rejects_are_typed_and_never_panic() {
        let mut fleet =
            FleetService::new(FleetConfig::new(1).with_queue_capacity(2), vec![tri(4)]).unwrap();
        assert_eq!(
            fleet.submit(SolveRequest::new(9, vec![1.0; 4])),
            Err(Rejected::UnknownStructure { structure: 9 })
        );
        assert_eq!(
            fleet.submit(SolveRequest::new(0, vec![1.0; 3])),
            Err(Rejected::RhsLengthMismatch {
                expected: 4,
                got: 3
            })
        );
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        match fleet.submit(SolveRequest::new(0, vec![1.0; 4])) {
            Err(Rejected::QueueFull {
                capacity,
                retry_after_s,
            }) => {
                assert_eq!(capacity, 2);
                assert!(
                    retry_after_s > 0.0,
                    "two priceable requests are queued: {retry_after_s}"
                );
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(fleet.log().rejected, 3);
        assert_eq!(fleet.queue_depth(), 2);
    }

    #[test]
    fn adversarial_submissions_never_panic() {
        let mut fleet =
            FleetService::new(FleetConfig::new(1).with_queue_capacity(4), vec![tri(4)]).unwrap();
        // Hostile inputs on the request-controlled path: each yields a
        // typed verdict or a served answer, never a panic.
        assert!(fleet
            .submit(SolveRequest::new(usize::MAX, vec![1.0; 4]))
            .is_err());
        assert!(fleet.submit(SolveRequest::new(0, Vec::new())).is_err());
        assert!(fleet.submit(SolveRequest::new(0, vec![0.0; 4096])).is_err());
        // NaN / infinite deadlines are not "below the estimate", so they
        // admit and run; NaN never trips the deadline check at solve time.
        let nan = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(f64::NAN))
            .unwrap();
        let inf = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(f64::INFINITY))
            .unwrap();
        // A NaN rhs is structurally valid; the solve must still settle it.
        let nan_rhs = fleet
            .submit(SolveRequest::new(0, vec![f64::NAN; 4]))
            .unwrap();
        fleet.run_until_idle();
        for ticket in [nan, inf, nan_rhs] {
            assert!(fleet.completion(ticket).is_some(), "{ticket:?}");
        }
        // Out-of-range chaos targets are typed errors too.
        assert!(fleet.inject_chaos(9, None).is_err());
    }

    #[test]
    fn brownout_sheds_low_priority_admissions_only() {
        let mut fleet = FleetService::new(
            FleetConfig::new(1).with_queue_capacity(8).with_brownout(2),
            vec![tri(4)],
        )
        .unwrap();
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        // At the watermark: Low is shed with a typed hint, High still lands.
        let shed = fleet.submit(SolveRequest::new(0, vec![1.0; 4]).with_priority(Priority::Low));
        match shed {
            Err(Rejected::Brownout {
                queue_depth,
                retry_after_s,
            }) => {
                assert_eq!(queue_depth, 2);
                assert!(retry_after_s > 0.0);
            }
            other => panic!("expected Brownout, got {other:?}"),
        }
        assert!(fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_priority(Priority::High))
            .is_ok());
        assert_eq!(fleet.queue_depth(), 3);
        fleet.run_until_idle();
        // Once drained below the watermark, Low admits again.
        assert!(fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_priority(Priority::Low))
            .is_ok());
    }

    #[test]
    fn dead_chip_requeues_and_retires_and_digital_lane_engages() {
        let mut cfg = FleetConfig::new(1);
        cfg.health.retire_after_quarantines = Some(2);
        let mut fleet = FleetService::new(cfg, vec![tri(4)]).unwrap();
        fleet
            .inject_chaos(0, Some(crate::fleet::ChipFailure::Dead))
            .unwrap();
        // Keep one request per round flowing so the quarantine → probation
        // → failed-probe cycle actually plays out (an idle fleet never
        // probes). The dead chip bounces every batch; the dispatcher's
        // digital lane answers everything.
        let mut tickets = Vec::new();
        for _ in 0..14 {
            if let Ok(t) = fleet.submit(SolveRequest::new(0, vec![1.0; 4])) {
                tickets.push(t);
            }
            fleet.run_round();
        }
        fleet.run_until_idle();
        // Every accepted request was answered despite the dead chip.
        assert!(!tickets.is_empty());
        for t in &tickets {
            let done = fleet.completion(*t).expect("answered");
            assert_eq!(done.path, CompletionPath::DigitalOnly);
        }
        // The chip bounced batches, quarantined twice (the probe failed),
        // and retired for good.
        assert!(fleet
            .log()
            .events
            .iter()
            .any(|e| matches!(e, ScheduleEvent::Requeued { .. })));
        assert_eq!(fleet.health()[0].state, ChipState::Retired);
        assert_eq!(fleet.health()[0].quarantines, 2);
    }

    #[test]
    fn infeasible_deadlines_are_rejected_with_the_estimate() {
        let mut fleet = FleetService::new(FleetConfig::new(1), vec![tri(4)]).unwrap();
        let estimate = fleet.estimate_s(0).expect("SPD structure is priceable");
        assert!(estimate > 0.0);
        let verdict =
            fleet.submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(estimate / 2.0));
        assert_eq!(
            verdict,
            Err(Rejected::DeadlineInfeasible {
                deadline_s: estimate / 2.0,
                estimate_s: estimate
            })
        );
        // A generous deadline is admitted and met on the analog path.
        let ticket = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(estimate * 100.0))
            .unwrap();
        fleet.run_until_idle();
        let done = fleet.completion(ticket).unwrap();
        assert!(done.path.is_analog(), "path={:?}", done.path);
        assert!(done.analog_time_s <= estimate * 100.0);
    }

    #[test]
    fn deadline_feasibility_amortizes_over_the_coalescing_width() {
        // With 4-wide RHS coalescing a deadline at half the sequential
        // estimate is feasible: the request rides a shared sweep and is
        // billed a quarter of it.
        let mut coalescing =
            FleetService::new(FleetConfig::new(1).with_max_batch_rhs(4), vec![tri(4)]).unwrap();
        let estimate = coalescing.estimate_s(0).unwrap();
        let ticket = coalescing
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(estimate / 2.0))
            .unwrap();
        coalescing.run_until_idle();
        assert!(coalescing.completion(ticket).is_some());
        // The same deadline on a sequential fleet is still refused, with
        // the sequential estimate in the verdict.
        let mut sequential = FleetService::new(FleetConfig::new(1), vec![tri(4)]).unwrap();
        assert_eq!(
            sequential.submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(estimate / 2.0)),
            Err(Rejected::DeadlineInfeasible {
                deadline_s: estimate / 2.0,
                estimate_s: estimate
            })
        );
        // The width is capped by batch_size: max_batch_rhs 4 over a
        // 1-request batch coalesces nothing.
        let mut cfg = FleetConfig::new(1).with_max_batch_rhs(4);
        cfg.batch_size = 1;
        let mut capped = FleetService::new(cfg, vec![tri(4)]).unwrap();
        assert!(capped
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(estimate / 2.0))
            .is_err());
    }

    #[test]
    fn krylov_requests_serve_preconditioned_fcg_on_the_analog_path() {
        let mut fleet = FleetService::new(FleetConfig::new(1), vec![tri(8)]).unwrap();
        let krylov = fleet
            .submit(SolveRequest::new(0, vec![1.0; 8]).with_krylov())
            .unwrap();
        let direct = fleet.submit(SolveRequest::new(0, vec![1.0; 8])).unwrap();
        fleet.run_until_idle();
        let done = fleet.completion(krylov).expect("served").clone();
        assert!(done.path.is_analog(), "path={:?}", done.path);
        assert!(done.analog_time_s > 0.0, "FCG burned analog seconds");
        // The FCG loop certifies the digital-lane tolerance — tighter
        // than a raw 12-bit analog readout.
        assert!(done.residual <= 1e-8, "residual={}", done.residual);
        // Both modes agree on the answer (the direct path to readout
        // precision).
        let plain = fleet.completion(direct).unwrap();
        for (a, b) in done.solution.iter().zip(&plain.solution) {
            assert!((a - b).abs() < 5e-2, "{a} vs {b}");
        }
        assert!(done.energy_j > 0.0);
    }

    #[test]
    fn krylov_deadlines_price_the_full_application_loop() {
        // 4-wide coalescing: a direct request is billed a quarter of the
        // sequential estimate, a Krylov request the full estimate times
        // the configured application count — same sequential estimate,
        // two profiles.
        let cfg = FleetConfig::new(1)
            .with_max_batch_rhs(4)
            .with_krylov_applications(8);
        let mut fleet = FleetService::new(cfg, vec![tri(4)]).unwrap();
        let estimate = fleet.estimate_s(0).unwrap();
        let verdict = fleet.submit(
            SolveRequest::new(0, vec![1.0; 4])
                .with_krylov()
                .with_deadline_s(estimate),
        );
        assert_eq!(
            verdict,
            Err(Rejected::DeadlineInfeasible {
                deadline_s: estimate,
                estimate_s: estimate * 8.0
            })
        );
        // The same deadline admits in direct mode (amortized to a quarter).
        assert!(fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(estimate))
            .is_ok());
        // A Krylov deadline above the scaled profile admits; whether the
        // loop's actual analog seconds fit decides the served path.
        let generous = fleet
            .submit(
                SolveRequest::new(0, vec![1.0; 4])
                    .with_krylov()
                    .with_deadline_s(estimate * 1e4),
            )
            .unwrap();
        fleet.run_until_idle();
        assert!(fleet.completion(generous).is_some());
    }

    #[test]
    fn krylov_queue_pressure_prices_drain_hints_by_mode() {
        // Two queued Krylov requests cost 2·k·estimate of drain, not
        // 2·estimate: the hint and admission share one pricing rule.
        let cfg = FleetConfig::new(1)
            .with_queue_capacity(2)
            .with_krylov_applications(6);
        let mut fleet = FleetService::new(cfg, vec![tri(4)]).unwrap();
        let estimate = fleet.estimate_s(0).unwrap();
        for _ in 0..2 {
            fleet
                .submit(SolveRequest::new(0, vec![1.0; 4]).with_krylov())
                .unwrap();
        }
        match fleet.submit(SolveRequest::new(0, vec![1.0; 4])) {
            Err(Rejected::QueueFull { retry_after_s, .. }) => {
                assert!(
                    (retry_after_s - 2.0 * 6.0 * estimate).abs() < 1e-12,
                    "retry_after_s={retry_after_s}, estimate={estimate}"
                );
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn degraded_fleet_quotes_honest_drain_hints() {
        // Healthy chip: the full-queue hint prices the queued work on one
        // analog lane.
        let mut fleet =
            FleetService::new(FleetConfig::new(1).with_queue_capacity(2), vec![tri(4)]).unwrap();
        let estimate = fleet.estimate_s(0).unwrap();
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        match fleet.submit(SolveRequest::new(0, vec![1.0; 4])) {
            Err(Rejected::QueueFull { retry_after_s, .. }) => {
                assert!((retry_after_s - 2.0 * estimate).abs() < 1e-12);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Kill the chip and let the dispatcher quarantine it: with no chip
        // in rotation the digital lane clears the queue next round, so the
        // hint drops to zero rather than pricing dead silicon as capacity.
        fleet
            .inject_chaos(0, Some(crate::fleet::ChipFailure::Dead))
            .unwrap();
        // Two failed rounds push the EWMA over the quarantine threshold.
        fleet.run_round();
        fleet.run_round();
        assert!(matches!(
            fleet.health()[0].state,
            ChipState::Quarantined { .. }
        ));
        while fleet.queue_depth() < 2 {
            fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        }
        match fleet.submit(SolveRequest::new(0, vec![1.0; 4])) {
            Err(Rejected::QueueFull { retry_after_s, .. }) => {
                assert_eq!(retry_after_s, 0.0, "no analog lane left");
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn batches_prefer_same_structure_for_plan_reuse() {
        let mut cfg = FleetConfig::new(1);
        cfg.batch_size = 3;
        let mut fleet = FleetService::new(cfg, vec![tri(4), tri(5)]).unwrap();
        // Interleave structures; the chip should batch 0,0,0 first.
        for s in [0usize, 1, 0, 1, 0] {
            fleet
                .submit(SolveRequest::new(s, vec![1.0; fleet.structures()[s].dim()]))
                .unwrap();
        }
        fleet.run_round();
        let batch = fleet
            .log()
            .events
            .iter()
            .find_map(|e| match e {
                ScheduleEvent::Dispatched { tickets, .. } => Some(tickets.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(batch, vec![0, 2, 4], "the three structure-0 tickets");
        fleet.run_until_idle();
        assert_eq!(fleet.log().completed(), 5);
    }

    #[test]
    fn coalesced_multi_rhs_serving_answers_every_request_on_the_analog_path() {
        let mut cfg = FleetConfig::new(1)
            .with_seed(0x0BA7_C4ED)
            .with_max_batch_rhs(3);
        cfg.batch_size = 6;
        let mut fleet = FleetService::new(cfg, vec![tri(4), tri(5)]).unwrap();
        let mut tickets = Vec::new();
        for (i, s) in [0usize, 0, 1, 0, 1, 0].into_iter().enumerate() {
            let n = fleet.structures()[s].dim();
            let rhs: Vec<f64> = (0..n).map(|j| 0.2 + 0.05 * ((i + j) as f64)).collect();
            tickets.push(fleet.submit(SolveRequest::new(s, rhs)).unwrap());
        }
        fleet.run_until_idle();
        for t in &tickets {
            let done = fleet.completion(*t).expect("served");
            assert!(done.path.is_analog(), "path={:?}", done.path);
            assert!(done.residual < 1e-2, "residual={}", done.residual);
            assert!(done.analog_time_s > 0.0);
        }
        assert_eq!(fleet.log().completed(), tickets.len());
    }

    #[test]
    fn hang_mid_chunk_requeues_every_column_with_the_count() {
        let mut cfg = FleetConfig::new(1).with_max_batch_rhs(4);
        cfg.batch_size = 4;
        let mut fleet = FleetService::new(cfg, vec![tri(4)]).unwrap();
        fleet
            .inject_chaos(0, Some(crate::fleet::ChipFailure::HangAfter { served: 2 }))
            .unwrap();
        let mut tickets = Vec::new();
        for _ in 0..4 {
            tickets.push(fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap());
        }
        // Round 1: the wedge lands mid-chunk, so the whole 4-column chunk
        // bounces; every Requeued event carries the full column count.
        assert_eq!(fleet.run_round(), 0);
        let requeues: Vec<(u64, usize)> = fleet
            .log()
            .events
            .iter()
            .filter_map(|e| match e {
                ScheduleEvent::Requeued {
                    ticket, columns, ..
                } => Some((*ticket, *columns)),
                _ => None,
            })
            .collect();
        assert_eq!(requeues, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
        // The watchdog reset the chip: everything is served next rounds.
        fleet.run_until_idle();
        for t in &tickets {
            assert!(fleet.completion(*t).is_some());
        }
    }

    #[test]
    fn priorities_dispatch_high_before_low() {
        let mut cfg = FleetConfig::new(1);
        cfg.batch_size = 1;
        let mut fleet = FleetService::new(cfg, vec![tri(4)]).unwrap();
        let low = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_priority(Priority::Low))
            .unwrap();
        let high = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_priority(Priority::High))
            .unwrap();
        fleet.run_round();
        assert!(fleet.completion(high).is_some(), "high served first");
        assert!(fleet.completion(low).is_none());
        fleet.run_until_idle();
        assert_eq!(fleet.completion(low).unwrap().round, 2);
    }

    #[test]
    fn energy_accounting_uses_the_power_model() {
        let mut fleet = FleetService::new(FleetConfig::new(1), vec![tri(4)]).unwrap();
        let ticket = fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        fleet.run_until_idle();
        let done = fleet.completion(ticket).unwrap().clone();
        assert!(done.analog_time_s > 0.0);
        let expected = fleet.config.design.energy_j(4, done.analog_time_s);
        assert_eq!(done.energy_j, expected);
        assert_eq!(
            fleet.log().energy_per_request_j(Priority::Normal),
            Some(expected)
        );
    }

    #[test]
    fn affinity_routes_same_structure_to_home_shard() {
        let cfg = FleetConfig::new(4).with_shards(2);
        let mut fleet = FleetService::new(cfg, vec![tri(4), tri(5)]).unwrap();
        assert_eq!(fleet.shard_count(), 2);
        assert_eq!(fleet.shard_chips(0), (0, 2));
        assert_eq!(fleet.shard_chips(1), (2, 2));
        // Structure 0 homes to shard 0, structure 1 to shard 1.
        for _ in 0..3 {
            fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
            fleet.submit(SolveRequest::new(1, vec![1.0; 5])).unwrap();
        }
        assert_eq!(fleet.shard_queue_depth(0), 3);
        assert_eq!(fleet.shard_queue_depth(1), 3);
        fleet.run_until_idle();
        // Each shard dispatched only to its own chips, and its own log
        // holds exactly its own traffic.
        for (shard, chips) in [(0usize, 0..2), (1usize, 2..4)] {
            for event in &fleet.shard_log(shard).events {
                if let ScheduleEvent::Dispatched { chip, .. } = event {
                    assert!(chips.contains(chip), "shard {shard} used chip {chip}");
                }
            }
            assert_eq!(fleet.shard_log(shard).completed(), 3);
        }
        assert_eq!(fleet.log().completed(), 6);
        // Fleet-wide aggregates are the sum of the shard logs.
        let shard_events: usize = (0..2).map(|s| fleet.shard_log(s).events.len()).sum();
        assert_eq!(fleet.log().events.len(), shard_events);
    }

    #[test]
    fn spill_walks_to_next_shard_when_home_saturates() {
        let cfg = FleetConfig::new(2)
            .with_shards(2)
            .with_queue_capacity(4)
            .with_spill_watermark(2);
        let mut fleet = FleetService::new(cfg, vec![tri(4)]).unwrap();
        // Structure 0 homes to shard 0; the first two land there.
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        assert_eq!(fleet.shard_queue_depth(0), 2);
        // At the watermark the third spills to shard 1, with the event.
        let spilled = fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        assert_eq!(fleet.shard_queue_depth(1), 1);
        assert!(fleet.shard_log(1).events.iter().any(|e| matches!(
            e,
            ScheduleEvent::Spilled {
                ticket,
                from_shard: 0,
                to_shard: 1,
            } if *ticket == spilled.0
        )));
        // Past the watermark everywhere, the hard-capacity pass still
        // admits (home shard first)…
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        for _ in 0..3 {
            fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        }
        assert_eq!(fleet.queue_depth(), 8);
        // …until both shards are at capacity: then it is QueueFull.
        assert!(matches!(
            fleet.submit(SolveRequest::new(0, vec![1.0; 4])),
            Err(Rejected::QueueFull { .. })
        ));
        fleet.run_until_idle();
        assert_eq!(fleet.log().completed(), 8);
    }

    #[test]
    fn tenant_quotas_enforce_fair_share_admission() {
        // Capacity 8 over one shard, weights: tenant 1 → 3, default
        // bucket → 1, denominator 4. Tenant 1 may hold 6 queued
        // requests, everyone else shares 2.
        let cfg = FleetConfig::new(1)
            .with_queue_capacity(8)
            .with_tenant_weight(1, 3);
        let mut fleet = FleetService::new(cfg, vec![tri(4)]).unwrap();
        for _ in 0..2 {
            fleet
                .submit(SolveRequest::new(0, vec![1.0; 4]).with_tenant(0))
                .unwrap();
        }
        match fleet.submit(SolveRequest::new(0, vec![1.0; 4]).with_tenant(0)) {
            Err(Rejected::QuotaExceeded {
                tenant,
                in_queue,
                quota,
                retry_after_s,
            }) => {
                assert_eq!((tenant, in_queue, quota), (0, 2, 2));
                assert!(retry_after_s > 0.0);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // Unconfigured tenants share the default bucket: tenant 7 is
        // refused by tenant 0's occupancy.
        assert!(matches!(
            fleet.submit(SolveRequest::new(0, vec![1.0; 4]).with_tenant(7)),
            Err(Rejected::QuotaExceeded { tenant: 7, .. })
        ));
        // The weighted tenant still has headroom.
        for _ in 0..6 {
            fleet
                .submit(SolveRequest::new(0, vec![1.0; 4]).with_tenant(1))
                .unwrap();
        }
        assert!(matches!(
            fleet.submit(SolveRequest::new(0, vec![1.0; 4]).with_tenant(1)),
            Err(Rejected::QuotaExceeded {
                tenant: 1,
                in_queue: 6,
                quota: 6,
                ..
            })
        ));
        // Draining frees the buckets again.
        fleet.run_until_idle();
        assert!(fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_tenant(0))
            .is_ok());
        assert_eq!(fleet.log().rejected, 3);
    }

    #[test]
    fn v1_checkpoints_are_refused_with_a_typed_mismatch() {
        let mut fleet = FleetService::new(FleetConfig::new(2), vec![tri(4)]).unwrap();
        let mut checkpoint = fleet.checkpoint();
        checkpoint.version = 1;
        let err = match FleetService::restore(
            FleetConfig::new(2),
            vec![tri(4)],
            &checkpoint,
            &AdmissionWal::new(),
        ) {
            Err(e) => e,
            Ok(_) => panic!("v1 checkpoint restored"),
        };
        match err {
            SchedError::CheckpointMismatch { message } => {
                assert!(message.contains("v1"), "{message}");
                assert!(message.contains("v2"), "{message}");
            }
            other => panic!("expected CheckpointMismatch, got {other:?}"),
        }
        // A mismatched shard topology is refused too: same chips, but the
        // restoring fleet splits them differently.
        let checkpoint = fleet.checkpoint();
        let err = match FleetService::restore(
            FleetConfig::new(2).with_shards(2),
            vec![tri(4)],
            &checkpoint,
            &AdmissionWal::new(),
        ) {
            Err(e) => e,
            Ok(_) => panic!("mismatched shard topology restored"),
        };
        assert!(matches!(err, SchedError::CheckpointMismatch { .. }));
    }

    #[test]
    fn sharded_checkpoint_restore_is_bit_identical() {
        let structures = || vec![tri(4), tri(5)];
        let cfg = || {
            FleetConfig::new(4)
                .with_shards(2)
                .with_seed(0x5AAD_0001)
                .with_queue_capacity(16)
        };
        let mut fleet = FleetService::new(cfg(), structures()).unwrap();
        for i in 0..6 {
            fleet
                .submit(SolveRequest::new(i % 2, vec![1.0; 4 + (i % 2)]))
                .unwrap();
        }
        fleet.run_round();
        let checkpoint = fleet.checkpoint();
        assert_eq!(checkpoint.version, 2);
        assert_eq!(checkpoint.shards.len(), 2);
        // Post-checkpoint traffic goes to the WAL.
        for i in 0..4 {
            fleet
                .submit(SolveRequest::new(i % 2, vec![2.0; 4 + (i % 2)]))
                .unwrap();
        }
        fleet.run_until_idle();
        let wal = fleet.wal().clone();
        let restored = FleetService::restore(cfg(), structures(), &checkpoint, &wal).unwrap();
        assert_eq!(restored.log(), fleet.log());
        for s in 0..2 {
            assert_eq!(restored.shard_log(s), fleet.shard_log(s), "shard {s}");
            assert_eq!(restored.shard_rounds(s), fleet.shard_rounds(s));
        }
        assert_eq!(restored.health(), fleet.health());
        let a: Vec<_> = fleet.completions().cloned().collect();
        let b: Vec<_> = restored.completions().cloned().collect();
        assert_eq!(a, b);
    }
}

//! The fleet service: admission control, the priority queue, the
//! round-based dispatch loop over the worker pool, and health-driven
//! placement. All scheduling decisions happen on the dispatcher thread, in
//! deterministic order — worker threads only execute already-placed
//! batches — so the [`ScheduleLog`] replays identically at any worker
//! count.

use std::collections::BTreeMap;
use std::sync::Arc;

use aa_linalg::{CsrMatrix, LinearOperator, WorkerPool};
use aa_solver::estimate::predicted_solve_time_s;

use crate::fleet::{
    digital_lane, outcome_weight, ChipHealth, ChipJob, ChipOutcome, ChipState, FleetConfig,
    WorkerState,
};
use crate::log::{ScheduleEvent, ScheduleLog};
use crate::request::{Completion, CompletionPath, Priority, Rejected, SolveRequest, SolveTicket};

/// A fleet construction error.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The configuration cannot describe a runnable fleet.
    InvalidConfig {
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::InvalidConfig { message } => write!(f, "invalid fleet config: {message}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// An admitted request waiting for dispatch.
#[derive(Debug, Clone)]
struct Queued {
    ticket: u64,
    structure: usize,
    rhs: Vec<f64>,
    priority: Priority,
    deadline_s: Option<f64>,
}

/// The multi-chip batched solve service.
///
/// ```
/// use aa_linalg::CsrMatrix;
/// use aa_sched::{FleetConfig, FleetService, SolveRequest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = CsrMatrix::tridiagonal(8, -1.0, 2.0, -1.0)?;
/// let mut fleet = FleetService::new(FleetConfig::new(2), vec![a])?;
/// let ticket = fleet.submit(SolveRequest::new(0, vec![1.0; 8]))?;
/// fleet.run_until_idle();
/// let done = fleet.completion(ticket).expect("served");
/// assert!(done.residual < 1e-2, "12-bit analog readout precision");
/// # Ok(())
/// # }
/// ```
pub struct FleetService {
    config: FleetConfig,
    structures: Arc<Vec<CsrMatrix>>,
    /// Predicted analog solve seconds per structure (`None` when the
    /// estimator cannot price it — such requests are always admitted).
    estimates: Vec<Option<f64>>,
    pool: WorkerPool<WorkerState, ChipJob, Vec<ChipOutcome>>,
    health: Vec<ChipHealth>,
    queue: Vec<Queued>,
    completions: BTreeMap<u64, Completion>,
    log: ScheduleLog,
    next_ticket: u64,
    round: u64,
}

impl FleetService {
    /// Builds the fleet and registers the solvable structures. Requests
    /// reference a structure by its index in `structures`.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] for an empty fleet, no structures, a
    /// zero batch size, or a fault plan naming a chip that does not exist.
    pub fn new(config: FleetConfig, structures: Vec<CsrMatrix>) -> Result<Self, SchedError> {
        if config.chips == 0 {
            return Err(SchedError::InvalidConfig {
                message: "fleet needs at least one chip".into(),
            });
        }
        if structures.is_empty() {
            return Err(SchedError::InvalidConfig {
                message: "fleet needs at least one registered structure".into(),
            });
        }
        if config.batch_size == 0 {
            return Err(SchedError::InvalidConfig {
                message: "batch_size must be at least 1".into(),
            });
        }
        if let Some((chip, _)) = config
            .fault_plans
            .iter()
            .find(|(chip, _)| *chip >= config.chips)
        {
            return Err(SchedError::InvalidConfig {
                message: format!("fault plan targets chip {chip}, fleet has {}", config.chips),
            });
        }
        let estimates = structures
            .iter()
            .map(|a| predicted_solve_time_s(a, &config.design).ok())
            .collect();
        let structures = Arc::new(structures);
        let states = WorkerState::partition(&config, &structures);
        let pool = WorkerPool::new(states, |state: &mut WorkerState, i, job: ChipJob| {
            state.slots[i - state.offset].run(job)
        });
        let health = (0..config.chips).map(|_| ChipHealth::new()).collect();
        Ok(FleetService {
            config,
            structures,
            estimates,
            pool,
            health,
            queue: Vec::new(),
            completions: BTreeMap::new(),
            log: ScheduleLog::default(),
            next_ticket: 0,
            round: 0,
        })
    }

    /// The registered structures.
    pub fn structures(&self) -> &[CsrMatrix] {
        &self.structures
    }

    /// The fleet configuration in effect.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The predicted analog solve seconds for one structure, if priceable.
    pub fn estimate_s(&self, structure: usize) -> Option<f64> {
        self.estimates.get(structure).copied().flatten()
    }

    /// Per-chip health records, indexed by chip.
    pub fn health(&self) -> &[ChipHealth] {
        &self.health
    }

    /// Requests admitted but not yet dispatched.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Dispatch rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// The schedule log accumulated so far.
    pub fn log(&self) -> &ScheduleLog {
        &self.log
    }

    /// Consumes the service, returning the final log.
    pub fn into_log(self) -> ScheduleLog {
        self.log
    }

    /// The resolved outcome of an admitted request, once a dispatch round
    /// has served it.
    pub fn completion(&self, ticket: SolveTicket) -> Option<&Completion> {
        self.completions.get(&ticket.0)
    }

    /// Admission control: validates the request, applies backpressure, and
    /// enqueues it.
    ///
    /// # Errors
    ///
    /// A typed [`Rejected`] verdict — never a panic — naming the reason:
    /// unknown structure, wrong rhs length, full queue, or a deadline
    /// below the structure's predicted solve time.
    pub fn submit(&mut self, request: SolveRequest) -> Result<SolveTicket, Rejected> {
        let verdict = self.admit(&request);
        if let Err(rejection) = &verdict {
            self.log.rejected += 1;
            self.log.events.push(ScheduleEvent::Rejected {
                structure: request.structure,
                priority: request.priority,
                reason: rejection.label(),
            });
            aa_obs::counter("sched.requests_rejected", 1);
            aa_obs::event(
                aa_obs::Event::new("sched.reject")
                    .with("structure", request.structure)
                    .with("reason", rejection.label()),
            );
            return Err(rejection.clone());
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.log.events.push(ScheduleEvent::Admitted {
            ticket,
            structure: request.structure,
            priority: request.priority,
            deadline_s: request.deadline_s,
        });
        aa_obs::counter("sched.requests_admitted", 1);
        self.queue.push(Queued {
            ticket,
            structure: request.structure,
            rhs: request.rhs,
            priority: request.priority,
            deadline_s: request.deadline_s,
        });
        Ok(SolveTicket(ticket))
    }

    fn admit(&self, request: &SolveRequest) -> Result<(), Rejected> {
        let Some(matrix) = self.structures.get(request.structure) else {
            return Err(Rejected::UnknownStructure {
                structure: request.structure,
            });
        };
        if request.rhs.len() != matrix.dim() {
            return Err(Rejected::RhsLengthMismatch {
                expected: matrix.dim(),
                got: request.rhs.len(),
            });
        }
        if self.queue.len() >= self.config.queue_capacity {
            return Err(Rejected::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        if let (Some(deadline), Some(estimate)) =
            (request.deadline_s, self.estimates[request.structure])
        {
            if deadline < estimate {
                return Err(Rejected::DeadlineInfeasible {
                    deadline_s: deadline,
                    estimate_s: estimate,
                });
            }
        }
        Ok(())
    }

    /// Runs one dispatch round; returns the number of requests completed
    /// (`0` when the queue was empty and nothing advanced).
    pub fn run_round(&mut self) -> usize {
        if self.queue.is_empty() {
            return 0;
        }
        self.round += 1;
        let _span = aa_obs::span("sched.round");
        aa_obs::histogram("sched.queue_depth", self.queue.len() as f64);
        self.update_probation();
        // Dispatch order: priority class, then admission order.
        self.queue.sort_by_key(|q| (q.priority.rank(), q.ticket));
        let jobs = self.place_batches();
        let outcomes = if self.health.iter().any(ChipHealth::in_rotation) {
            self.pool
                .try_submit(jobs)
                .unwrap_or_else(|_| unreachable!("round is drained before the next submit"));
            self.pool.drain()
        } else {
            // Whole fleet quarantined: the dispatcher's own digital lane
            // keeps the service live (and the loop terminating).
            return self.serve_digital_only();
        };
        self.collect_round(outcomes)
    }

    /// Runs dispatch rounds until the queue is empty.
    pub fn run_until_idle(&mut self) -> usize {
        let mut completed = 0;
        while !self.queue.is_empty() {
            completed += self.run_round();
        }
        completed
    }

    /// Moves quarantined chips whose sit-out elapsed into probation.
    fn update_probation(&mut self) {
        for chip in 0..self.health.len() {
            if let ChipState::Quarantined { since_round } = self.health[chip].state {
                if self.round >= since_round + self.config.health.readmit_after_rounds {
                    self.health[chip].state = ChipState::Probation;
                    self.log.events.push(ScheduleEvent::Probation {
                        chip,
                        round: self.round,
                    });
                    aa_obs::event(aa_obs::Event::new("sched.probation").with("chip", chip));
                }
            }
        }
    }

    /// Greedy deterministic placement: chips in index order, each taking
    /// the highest-priority waiting request plus up to `batch_size − 1`
    /// same-structure followers (compiled-plan reuse). Probation chips get
    /// exactly one probe. Returns one job per chip — empty for idle or
    /// quarantined chips — so worker routing is round-invariant.
    fn place_batches(&mut self) -> Vec<ChipJob> {
        let mut jobs: Vec<ChipJob> = (0..self.config.chips).map(|_| ChipJob::default()).collect();
        for (chip, job) in jobs.iter_mut().enumerate() {
            if self.queue.is_empty() || !self.health[chip].in_rotation() {
                continue;
            }
            let budget = if self.health[chip].state == ChipState::Probation {
                1
            } else {
                self.config.batch_size
            };
            let head = self.queue.remove(0);
            let structure = head.structure;
            let mut batch = vec![head];
            while batch.len() < budget {
                let Some(pos) = self.queue.iter().position(|q| q.structure == structure) else {
                    break;
                };
                batch.push(self.queue.remove(pos));
            }
            let tickets: Vec<u64> = batch.iter().map(|q| q.ticket).collect();
            self.log.events.push(ScheduleEvent::Dispatched {
                round: self.round,
                chip,
                tickets,
            });
            job.assignments = batch
                .into_iter()
                .map(|q| (q.ticket, q.structure, q.rhs, q.deadline_s))
                .collect();
        }
        jobs
    }

    /// Serves every queued request from the dispatcher's digital lane;
    /// returns how many it settled.
    fn serve_digital_only(&mut self) -> usize {
        let queued = std::mem::take(&mut self.queue);
        let served = queued.len();
        for q in queued {
            let (solution, residual) = digital_lane(
                &self.structures[q.structure],
                &q.rhs,
                self.config.fallback_tolerance,
            );
            self.settle(Completion {
                ticket: SolveTicket(q.ticket),
                structure: q.structure,
                priority: q.priority,
                solution,
                path: CompletionPath::DigitalOnly,
                residual,
                analog_time_s: 0.0,
                energy_j: 0.0,
                chip: None,
                round: self.round,
            });
        }
        served
    }

    /// Folds one round's chip outcomes into completions, health scores,
    /// and quarantine decisions — in chip order, on the dispatcher thread.
    fn collect_round(&mut self, outcomes: Vec<Vec<ChipOutcome>>) -> usize {
        let mut completed = 0;
        for (chip, chip_outcomes) in outcomes.into_iter().enumerate() {
            let served = !chip_outcomes.is_empty();
            let mut worst = 0.0f64;
            for outcome in chip_outcomes {
                worst = worst.max(outcome_weight(outcome.path));
                self.health[chip].solves += 1;
                let meta = self
                    .ticket_meta(outcome.ticket)
                    .expect("outcome for unknown ticket");
                let energy_j = self
                    .config
                    .design
                    .energy_j(self.structures[meta.0].dim(), outcome.analog_time_s);
                aa_obs::histogram(latency_metric(meta.1), outcome.analog_time_s);
                self.settle(Completion {
                    ticket: SolveTicket(outcome.ticket),
                    structure: meta.0,
                    priority: meta.1,
                    solution: outcome.solution,
                    path: outcome.path,
                    residual: outcome.residual,
                    analog_time_s: outcome.analog_time_s,
                    energy_j,
                    chip: Some(chip),
                    round: self.round,
                });
                completed += 1;
            }
            if served {
                self.score(chip, worst);
            }
        }
        completed
    }

    /// Looks up `(structure, priority)` of an admitted ticket from the log.
    fn ticket_meta(&self, ticket: u64) -> Option<(usize, Priority)> {
        self.log.events.iter().find_map(|e| match e {
            ScheduleEvent::Admitted {
                ticket: t,
                structure,
                priority,
                ..
            } if *t == ticket => Some((*structure, *priority)),
            _ => None,
        })
    }

    fn settle(&mut self, completion: Completion) {
        self.log.events.push(ScheduleEvent::Completed {
            ticket: completion.ticket.0,
            chip: completion.chip,
            round: completion.round,
            path: completion.path,
            analog_time_s: completion.analog_time_s,
        });
        self.log
            .tally_completion(completion.priority, completion.energy_j);
        aa_obs::counter("sched.requests_completed", 1);
        self.completions.insert(completion.ticket.0, completion);
    }

    /// EWMA health update plus the quarantine / probation-verdict state
    /// machine.
    fn score(&mut self, chip: usize, weight: f64) {
        let health = &mut self.health[chip];
        let alpha = self.config.health.alpha;
        health.score = (1.0 - alpha) * health.score + alpha * weight;
        match health.state {
            ChipState::Probation => {
                if weight == 0.0 {
                    health.state = ChipState::Healthy;
                    health.score = 0.0;
                    self.log.events.push(ScheduleEvent::Readmitted {
                        chip,
                        round: self.round,
                    });
                    aa_obs::event(aa_obs::Event::new("sched.readmit").with("chip", chip));
                } else {
                    self.quarantine(chip);
                }
            }
            ChipState::Healthy => {
                if health.score >= self.config.health.quarantine_threshold {
                    self.quarantine(chip);
                }
            }
            ChipState::Quarantined { .. } => {}
        }
    }

    fn quarantine(&mut self, chip: usize) {
        self.health[chip].state = ChipState::Quarantined {
            since_round: self.round,
        };
        self.health[chip].quarantines += 1;
        self.log.events.push(ScheduleEvent::Quarantined {
            chip,
            round: self.round,
        });
        aa_obs::counter("sched.quarantines", 1);
        aa_obs::event(aa_obs::Event::new("sched.quarantine").with("chip", chip));
    }
}

/// The per-class latency histogram name (static, as `aa-obs` requires).
fn latency_metric(priority: Priority) -> &'static str {
    match priority {
        Priority::High => "sched.latency_s.high",
        Priority::Normal => "sched.latency_s.normal",
        Priority::Low => "sched.latency_s.low",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(n: usize) -> CsrMatrix {
        CsrMatrix::tridiagonal(n, -1.0, 2.0, -1.0).unwrap()
    }

    #[test]
    fn construction_rejects_degenerate_configs() {
        assert!(FleetService::new(FleetConfig::new(0), vec![tri(4)]).is_err());
        assert!(FleetService::new(FleetConfig::new(1), vec![]).is_err());
        let mut zero_batch = FleetConfig::new(1);
        zero_batch.batch_size = 0;
        assert!(FleetService::new(zero_batch, vec![tri(4)]).is_err());
        let bad_chip = FleetConfig::new(1).with_fault_plan(3, aa_analog::FaultPlan::new(1));
        assert!(FleetService::new(bad_chip, vec![tri(4)]).is_err());
    }

    #[test]
    fn admission_rejects_are_typed_and_never_panic() {
        let mut fleet =
            FleetService::new(FleetConfig::new(1).with_queue_capacity(2), vec![tri(4)]).unwrap();
        assert_eq!(
            fleet.submit(SolveRequest::new(9, vec![1.0; 4])),
            Err(Rejected::UnknownStructure { structure: 9 })
        );
        assert_eq!(
            fleet.submit(SolveRequest::new(0, vec![1.0; 3])),
            Err(Rejected::RhsLengthMismatch {
                expected: 4,
                got: 3
            })
        );
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        assert_eq!(
            fleet.submit(SolveRequest::new(0, vec![1.0; 4])),
            Err(Rejected::QueueFull { capacity: 2 })
        );
        assert_eq!(fleet.log().rejected, 3);
        assert_eq!(fleet.queue_depth(), 2);
    }

    #[test]
    fn infeasible_deadlines_are_rejected_with_the_estimate() {
        let mut fleet = FleetService::new(FleetConfig::new(1), vec![tri(4)]).unwrap();
        let estimate = fleet.estimate_s(0).expect("SPD structure is priceable");
        assert!(estimate > 0.0);
        let verdict =
            fleet.submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(estimate / 2.0));
        assert_eq!(
            verdict,
            Err(Rejected::DeadlineInfeasible {
                deadline_s: estimate / 2.0,
                estimate_s: estimate
            })
        );
        // A generous deadline is admitted and met on the analog path.
        let ticket = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(estimate * 100.0))
            .unwrap();
        fleet.run_until_idle();
        let done = fleet.completion(ticket).unwrap();
        assert!(done.path.is_analog(), "path={:?}", done.path);
        assert!(done.analog_time_s <= estimate * 100.0);
    }

    #[test]
    fn batches_prefer_same_structure_for_plan_reuse() {
        let mut cfg = FleetConfig::new(1);
        cfg.batch_size = 3;
        let mut fleet = FleetService::new(cfg, vec![tri(4), tri(5)]).unwrap();
        // Interleave structures; the chip should batch 0,0,0 first.
        for s in [0usize, 1, 0, 1, 0] {
            fleet
                .submit(SolveRequest::new(s, vec![1.0; fleet.structures()[s].dim()]))
                .unwrap();
        }
        fleet.run_round();
        let batch = fleet
            .log()
            .events
            .iter()
            .find_map(|e| match e {
                ScheduleEvent::Dispatched { tickets, .. } => Some(tickets.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(batch, vec![0, 2, 4], "the three structure-0 tickets");
        fleet.run_until_idle();
        assert_eq!(fleet.log().completed(), 5);
    }

    #[test]
    fn priorities_dispatch_high_before_low() {
        let mut cfg = FleetConfig::new(1);
        cfg.batch_size = 1;
        let mut fleet = FleetService::new(cfg, vec![tri(4)]).unwrap();
        let low = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_priority(Priority::Low))
            .unwrap();
        let high = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_priority(Priority::High))
            .unwrap();
        fleet.run_round();
        assert!(fleet.completion(high).is_some(), "high served first");
        assert!(fleet.completion(low).is_none());
        fleet.run_until_idle();
        assert_eq!(fleet.completion(low).unwrap().round, 2);
    }

    #[test]
    fn energy_accounting_uses_the_power_model() {
        let mut fleet = FleetService::new(FleetConfig::new(1), vec![tri(4)]).unwrap();
        let ticket = fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        fleet.run_until_idle();
        let done = fleet.completion(ticket).unwrap().clone();
        assert!(done.analog_time_s > 0.0);
        let expected = fleet.config.design.energy_j(4, done.analog_time_s);
        assert_eq!(done.energy_j, expected);
        assert_eq!(
            fleet.log().energy_per_request_j(Priority::Normal),
            Some(expected)
        );
    }
}

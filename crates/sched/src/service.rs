//! The fleet service: admission control, the priority queue, the
//! round-based dispatch loop over the worker pool, and health-driven
//! placement. All scheduling decisions happen on the dispatcher thread, in
//! deterministic order — worker threads only execute already-placed
//! batches — so the [`ScheduleLog`] replays identically at any worker
//! count.

use std::collections::BTreeMap;
use std::sync::Arc;

use aa_linalg::{CsrMatrix, LinearOperator, WorkerPool};
use aa_solver::estimate::predicted_solve_time_s;

use crate::checkpoint::{AdmissionWal, FleetCheckpoint, QueuedRequest, WalOp};
use crate::fleet::{
    digital_lane, outcome_weight, Assignment, ChipCommand, ChipFailure, ChipHealth, ChipReply,
    ChipState, FleetConfig, SlotCheckpoint, WorkerState,
};
use crate::log::{ScheduleEvent, ScheduleLog};
use crate::request::{Completion, CompletionPath, Priority, Rejected, SolveRequest, SolveTicket};

/// A fleet construction or recovery error.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The configuration cannot describe a runnable fleet.
    InvalidConfig {
        /// What was wrong.
        message: String,
    },
    /// A checkpoint cannot be restored into this fleet — wrong format
    /// version, wrong shape, or state referencing things the fleet does
    /// not have.
    CheckpointMismatch {
        /// What did not line up.
        message: String,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::InvalidConfig { message } => write!(f, "invalid fleet config: {message}"),
            SchedError::CheckpointMismatch { message } => {
                write!(f, "checkpoint mismatch: {message}")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// An admitted request waiting for dispatch.
#[derive(Debug, Clone)]
struct Queued {
    ticket: u64,
    structure: usize,
    rhs: Vec<f64>,
    priority: Priority,
    deadline_s: Option<f64>,
}

/// The multi-chip batched solve service.
///
/// ```
/// use aa_linalg::CsrMatrix;
/// use aa_sched::{FleetConfig, FleetService, SolveRequest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = CsrMatrix::tridiagonal(8, -1.0, 2.0, -1.0)?;
/// let mut fleet = FleetService::new(FleetConfig::new(2), vec![a])?;
/// let ticket = fleet.submit(SolveRequest::new(0, vec![1.0; 8]))?;
/// fleet.run_until_idle();
/// let done = fleet.completion(ticket).expect("served");
/// assert!(done.residual < 1e-2, "12-bit analog readout precision");
/// # Ok(())
/// # }
/// ```
pub struct FleetService {
    config: FleetConfig,
    structures: Arc<Vec<CsrMatrix>>,
    /// Predicted analog solve seconds per structure (`None` when the
    /// estimator cannot price it — such requests are always admitted).
    estimates: Vec<Option<f64>>,
    pool: WorkerPool<WorkerState, ChipCommand, ChipReply>,
    health: Vec<ChipHealth>,
    queue: Vec<Queued>,
    /// `(structure, priority)` of every admitted-but-unsettled ticket —
    /// the dispatcher's own index, so outcome collection never scans (or
    /// panics on) the log.
    inflight: BTreeMap<u64, (usize, Priority)>,
    completions: BTreeMap<u64, Completion>,
    log: ScheduleLog,
    /// External inputs since the last checkpoint (see [`AdmissionWal`]).
    wal: AdmissionWal,
    next_ticket: u64,
    round: u64,
}

impl FleetService {
    /// Builds the fleet and registers the solvable structures. Requests
    /// reference a structure by its index in `structures`.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] for an empty fleet, no structures, a
    /// zero batch size or RHS-coalescing width, or a fault plan naming a
    /// chip that does not exist.
    pub fn new(config: FleetConfig, structures: Vec<CsrMatrix>) -> Result<Self, SchedError> {
        if config.chips == 0 {
            return Err(SchedError::InvalidConfig {
                message: "fleet needs at least one chip".into(),
            });
        }
        if structures.is_empty() {
            return Err(SchedError::InvalidConfig {
                message: "fleet needs at least one registered structure".into(),
            });
        }
        if config.batch_size == 0 {
            return Err(SchedError::InvalidConfig {
                message: "batch_size must be at least 1".into(),
            });
        }
        if config.max_batch_rhs == 0 {
            return Err(SchedError::InvalidConfig {
                message: "max_batch_rhs must be at least 1".into(),
            });
        }
        if let Some((chip, _)) = config
            .fault_plans
            .iter()
            .find(|(chip, _)| *chip >= config.chips)
        {
            return Err(SchedError::InvalidConfig {
                message: format!("fault plan targets chip {chip}, fleet has {}", config.chips),
            });
        }
        let estimates = structures
            .iter()
            .map(|a| predicted_solve_time_s(a, &config.design).ok())
            .collect();
        let structures = Arc::new(structures);
        let states = WorkerState::partition(&config, &structures);
        let pool = WorkerPool::new(
            states,
            |state: &mut WorkerState, i, command: ChipCommand| {
                state.slots[i - state.offset].execute(command)
            },
        );
        let health = (0..config.chips).map(|_| ChipHealth::new()).collect();
        Ok(FleetService {
            config,
            structures,
            estimates,
            pool,
            health,
            queue: Vec::new(),
            inflight: BTreeMap::new(),
            completions: BTreeMap::new(),
            log: ScheduleLog::default(),
            wal: AdmissionWal::new(),
            next_ticket: 0,
            round: 0,
        })
    }

    /// The registered structures.
    pub fn structures(&self) -> &[CsrMatrix] {
        &self.structures
    }

    /// The fleet configuration in effect.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The predicted analog solve seconds for one structure, if priceable.
    pub fn estimate_s(&self, structure: usize) -> Option<f64> {
        self.estimates.get(structure).copied().flatten()
    }

    /// Per-chip health records, indexed by chip.
    pub fn health(&self) -> &[ChipHealth] {
        &self.health
    }

    /// Requests admitted but not yet dispatched.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Dispatch rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// The schedule log accumulated so far.
    pub fn log(&self) -> &ScheduleLog {
        &self.log
    }

    /// Consumes the service, returning the final log.
    pub fn into_log(self) -> ScheduleLog {
        self.log
    }

    /// The resolved outcome of an admitted request, once a dispatch round
    /// has served it.
    pub fn completion(&self, ticket: SolveTicket) -> Option<&Completion> {
        self.completions.get(&ticket.0)
    }

    /// Admission control: validates the request, applies backpressure, and
    /// enqueues it. The attempt is WAL-recorded (admitted or not) so crash
    /// recovery replays the exact admission sequence.
    ///
    /// # Errors
    ///
    /// A typed [`Rejected`] verdict — never a panic — naming the reason:
    /// unknown structure, wrong rhs length, full queue, brownout shedding,
    /// or a deadline below the structure's predicted solve time. Transient
    /// verdicts carry a [`retry_after_s`](Rejected::retry_after_s) hint.
    pub fn submit(&mut self, request: SolveRequest) -> Result<SolveTicket, Rejected> {
        self.wal.record_submit(request.clone());
        let verdict = self.admit(&request);
        if let Err(rejection) = &verdict {
            self.log.rejected += 1;
            self.log.events.push(ScheduleEvent::Rejected {
                structure: request.structure,
                priority: request.priority,
                reason: rejection.label(),
            });
            aa_obs::counter("sched.requests_rejected", 1);
            aa_obs::event(
                aa_obs::Event::new("sched.reject")
                    .with("structure", request.structure)
                    .with("reason", rejection.label()),
            );
            return Err(rejection.clone());
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.log.events.push(ScheduleEvent::Admitted {
            ticket,
            structure: request.structure,
            priority: request.priority,
            deadline_s: request.deadline_s,
        });
        aa_obs::counter("sched.requests_admitted", 1);
        self.inflight
            .insert(ticket, (request.structure, request.priority));
        self.queue.push(Queued {
            ticket,
            structure: request.structure,
            rhs: request.rhs,
            priority: request.priority,
            deadline_s: request.deadline_s,
        });
        Ok(SolveTicket(ticket))
    }

    fn admit(&self, request: &SolveRequest) -> Result<(), Rejected> {
        let Some(matrix) = self.structures.get(request.structure) else {
            return Err(Rejected::UnknownStructure {
                structure: request.structure,
            });
        };
        if request.rhs.len() != matrix.dim() {
            return Err(Rejected::RhsLengthMismatch {
                expected: matrix.dim(),
                got: request.rhs.len(),
            });
        }
        if self.queue.len() >= self.config.queue_capacity {
            return Err(Rejected::QueueFull {
                capacity: self.config.queue_capacity,
                retry_after_s: self.predicted_drain_s(),
            });
        }
        if let Some(watermark) = self.config.brownout_low_watermark {
            if request.priority == Priority::Low && self.queue.len() >= watermark {
                return Err(Rejected::Brownout {
                    queue_depth: self.queue.len(),
                    retry_after_s: self.predicted_drain_s(),
                });
            }
        }
        if let (Some(deadline), Some(estimate)) =
            (request.deadline_s, self.estimates[request.structure])
        {
            if deadline < estimate {
                return Err(Rejected::DeadlineInfeasible {
                    deadline_s: deadline,
                    estimate_s: estimate,
                });
            }
        }
        Ok(())
    }

    /// The typed retry hint for backpressure verdicts: the queued work's
    /// predicted analog seconds spread over the chips in rotation (the
    /// digital-only lane clears a queue in one round, so an all-quarantined
    /// fleet still quotes one lane).
    fn predicted_drain_s(&self) -> f64 {
        let queued_work_s: f64 = self
            .queue
            .iter()
            .map(|q| self.estimates[q.structure].unwrap_or(0.0))
            .sum();
        let lanes = self
            .health
            .iter()
            .filter(|h| h.in_rotation())
            .count()
            .max(1);
        queued_work_s / lanes as f64
    }

    /// Runs one dispatch round; returns the number of requests completed
    /// (`0` when the queue was empty and nothing advanced).
    pub fn run_round(&mut self) -> usize {
        self.wal.record_round();
        if self.queue.is_empty() {
            return 0;
        }
        self.round += 1;
        let _span = aa_obs::span("sched.round");
        aa_obs::histogram("sched.queue_depth", self.queue.len() as f64);
        self.update_probation();
        // Dispatch order: priority class, then admission order.
        self.queue.sort_by_key(|q| (q.priority.rank(), q.ticket));
        let jobs = self.place_batches();
        let outcomes = if self.health.iter().any(ChipHealth::in_rotation) {
            self.pool
                .try_submit(jobs)
                .unwrap_or_else(|_| unreachable!("round is drained before the next submit"));
            self.pool.drain()
        } else {
            // Whole fleet quarantined: the dispatcher's own digital lane
            // keeps the service live (and the loop terminating).
            return self.serve_digital_only();
        };
        self.collect_round(outcomes)
    }

    /// Runs dispatch rounds until the queue is empty.
    pub fn run_until_idle(&mut self) -> usize {
        let mut completed = 0;
        while !self.queue.is_empty() {
            completed += self.run_round();
        }
        completed
    }

    /// Moves quarantined chips whose sit-out elapsed into probation.
    fn update_probation(&mut self) {
        for chip in 0..self.health.len() {
            if let ChipState::Quarantined { since_round } = self.health[chip].state {
                if self.round >= since_round + self.config.health.readmit_after_rounds {
                    self.health[chip].state = ChipState::Probation;
                    self.log.events.push(ScheduleEvent::Probation {
                        chip,
                        round: self.round,
                    });
                    aa_obs::event(aa_obs::Event::new("sched.probation").with("chip", chip));
                }
            }
        }
    }

    /// Greedy deterministic placement: chips in index order, each taking
    /// the highest-priority waiting request plus up to `batch_size − 1`
    /// same-structure followers (compiled-plan reuse). Probation chips get
    /// exactly one probe. Returns one job per chip — empty for idle or
    /// quarantined chips — so worker routing is round-invariant.
    fn place_batches(&mut self) -> Vec<ChipCommand> {
        let mut jobs: Vec<ChipCommand> = (0..self.config.chips)
            .map(|_| ChipCommand::default())
            .collect();
        for (chip, job) in jobs.iter_mut().enumerate() {
            if self.queue.is_empty() || !self.health[chip].in_rotation() {
                continue;
            }
            let budget = if self.health[chip].state == ChipState::Probation {
                1
            } else {
                self.config.batch_size
            };
            let head = self.queue.remove(0);
            let structure = head.structure;
            let mut batch = vec![head];
            while batch.len() < budget {
                let Some(pos) = self.queue.iter().position(|q| q.structure == structure) else {
                    break;
                };
                batch.push(self.queue.remove(pos));
            }
            let tickets: Vec<u64> = batch.iter().map(|q| q.ticket).collect();
            self.log.events.push(ScheduleEvent::Dispatched {
                round: self.round,
                chip,
                tickets,
            });
            *job = ChipCommand::Run(
                batch
                    .into_iter()
                    .map(|q| (q.ticket, q.structure, q.rhs, q.deadline_s))
                    .collect(),
            );
        }
        jobs
    }

    /// Serves every queued request from the dispatcher's digital lane;
    /// returns how many it settled.
    fn serve_digital_only(&mut self) -> usize {
        let queued = std::mem::take(&mut self.queue);
        let served = queued.len();
        for q in queued {
            let (solution, residual) = digital_lane(
                &self.structures[q.structure],
                &q.rhs,
                self.config.fallback_tolerance,
            );
            self.settle(Completion {
                ticket: SolveTicket(q.ticket),
                structure: q.structure,
                priority: q.priority,
                solution,
                path: CompletionPath::DigitalOnly,
                residual,
                analog_time_s: 0.0,
                energy_j: 0.0,
                chip: None,
                round: self.round,
            });
        }
        served
    }

    /// Folds one round's chip replies into completions, requeues, health
    /// scores, and quarantine decisions — in chip order, on the dispatcher
    /// thread.
    fn collect_round(&mut self, replies: Vec<ChipReply>) -> usize {
        let mut completed = 0;
        for (chip, reply) in replies.into_iter().enumerate() {
            let ChipReply::Ran {
                outcomes,
                unserved,
                failed,
            } = reply
            else {
                // Only `Run` commands are shipped in a round; anything else
                // is an internal routing bug. Skip rather than panic — the
                // invariant is checked in debug builds.
                debug_assert!(false, "non-Run reply in a dispatch round");
                continue;
            };
            let dispatched = !outcomes.is_empty() || !unserved.is_empty();
            let served = !outcomes.is_empty();
            let mut worst = if failed { 1.0f64 } else { 0.0f64 };
            for outcome in outcomes {
                worst = worst.max(outcome_weight(outcome.path));
                self.health[chip].solves += 1;
                // The inflight index replaces a log scan here; a ticket the
                // dispatcher never admitted is dropped, not unwrapped.
                let Some((structure, priority)) = self.inflight.get(&outcome.ticket).copied()
                else {
                    debug_assert!(false, "outcome for unknown ticket {}", outcome.ticket);
                    aa_obs::counter("sched.orphan_outcomes", 1);
                    continue;
                };
                let energy_j = self
                    .config
                    .design
                    .energy_j(self.structures[structure].dim(), outcome.analog_time_s);
                aa_obs::histogram(latency_metric(priority), outcome.analog_time_s);
                self.settle(Completion {
                    ticket: SolveTicket(outcome.ticket),
                    structure,
                    priority,
                    solution: outcome.solution,
                    path: outcome.path,
                    residual: outcome.residual,
                    analog_time_s: outcome.analog_time_s,
                    energy_j,
                    chip: Some(chip),
                    round: self.round,
                });
                completed += 1;
            }
            self.requeue(chip, unserved);
            if served || (failed && dispatched) {
                self.score(chip, worst);
            }
        }
        completed
    }

    /// Returns assignments a failed chip never served to the queue — the
    /// exactly-once half of the failure story: an accepted request bounces
    /// until a healthy chip (or the digital lane) answers it.
    fn requeue(&mut self, chip: usize, unserved: Vec<Assignment>) {
        let columns = unserved.len();
        for (ticket, structure, rhs, deadline_s) in unserved {
            let priority = self
                .inflight
                .get(&ticket)
                .map(|(_, p)| *p)
                .unwrap_or_default();
            self.log.events.push(ScheduleEvent::Requeued {
                ticket,
                chip,
                round: self.round,
                columns,
            });
            aa_obs::counter("sched.requeues", 1);
            aa_obs::event(
                aa_obs::Event::new("sched.requeue")
                    .with("ticket", ticket)
                    .with("chip", chip),
            );
            self.queue.push(Queued {
                ticket,
                structure,
                rhs,
                priority,
                deadline_s,
            });
        }
    }

    fn settle(&mut self, completion: Completion) {
        self.inflight.remove(&completion.ticket.0);
        self.log.events.push(ScheduleEvent::Completed {
            ticket: completion.ticket.0,
            chip: completion.chip,
            round: completion.round,
            path: completion.path,
            analog_time_s: completion.analog_time_s,
        });
        self.log
            .tally_completion(completion.priority, completion.energy_j);
        aa_obs::counter("sched.requests_completed", 1);
        self.completions.insert(completion.ticket.0, completion);
    }

    /// EWMA health update plus the quarantine / probation-verdict state
    /// machine.
    fn score(&mut self, chip: usize, weight: f64) {
        let health = &mut self.health[chip];
        let alpha = self.config.health.alpha;
        health.score = (1.0 - alpha) * health.score + alpha * weight;
        match health.state {
            ChipState::Probation => {
                if weight == 0.0 {
                    health.state = ChipState::Healthy;
                    health.score = 0.0;
                    self.log.events.push(ScheduleEvent::Readmitted {
                        chip,
                        round: self.round,
                    });
                    aa_obs::event(aa_obs::Event::new("sched.readmit").with("chip", chip));
                } else {
                    self.quarantine(chip);
                }
            }
            ChipState::Healthy => {
                if health.score >= self.config.health.quarantine_threshold {
                    self.quarantine(chip);
                }
            }
            ChipState::Quarantined { .. } | ChipState::Retired => {}
        }
    }

    fn quarantine(&mut self, chip: usize) {
        self.health[chip].state = ChipState::Quarantined {
            since_round: self.round,
        };
        self.health[chip].quarantines += 1;
        self.log.events.push(ScheduleEvent::Quarantined {
            chip,
            round: self.round,
        });
        aa_obs::counter("sched.quarantines", 1);
        aa_obs::event(aa_obs::Event::new("sched.quarantine").with("chip", chip));
        if let Some(limit) = self.config.health.retire_after_quarantines {
            if self.health[chip].quarantines >= limit {
                self.health[chip].state = ChipState::Retired;
                self.log.events.push(ScheduleEvent::Retired {
                    chip,
                    round: self.round,
                });
                aa_obs::counter("sched.retirements", 1);
                aa_obs::event(aa_obs::Event::new("sched.retire").with("chip", chip));
            }
        }
    }

    /// Takes a consistent snapshot of the whole fleet — per-chip solver
    /// state, health records, the pending queue, the completion set, the
    /// schedule log, and the counters — and compacts the WAL (everything
    /// recorded so far is baked into the snapshot).
    ///
    /// Restoring the snapshot with [`restore`](Self::restore), then
    /// replaying the WAL accumulated afterwards, rebuilds the service bit
    /// for bit.
    pub fn checkpoint(&mut self) -> FleetCheckpoint {
        let chips = self.export_slots();
        self.wal.clear();
        FleetCheckpoint {
            version: FleetCheckpoint::FORMAT_VERSION,
            base_seed: self.config.base_seed,
            chips,
            health: self.health.clone(),
            queue: self
                .queue
                .iter()
                .map(|q| QueuedRequest {
                    ticket: q.ticket,
                    structure: q.structure,
                    rhs: q.rhs.clone(),
                    priority: q.priority,
                    deadline_s: q.deadline_s,
                })
                .collect(),
            completions: self.completions.values().cloned().collect(),
            log: self.log.clone(),
            next_ticket: self.next_ticket,
            round: self.round,
        }
    }

    /// The external inputs recorded since the last checkpoint (or since
    /// construction). In a real deployment this is the durable append log;
    /// a crash harness clones it before dropping the service.
    pub fn wal(&self) -> &AdmissionWal {
        &self.wal
    }

    /// Every settled completion so far, in ticket order.
    pub fn completions(&self) -> impl Iterator<Item = &Completion> + '_ {
        self.completions.values()
    }

    /// Rebuilds a crashed service from its last checkpoint plus the WAL
    /// recorded afterwards. `config` and `structures` must be the ones the
    /// crashed fleet was built with — the deterministic parts (netlists,
    /// seeds, process variation) are reconstructed from them, then the
    /// checkpointed mutable state is overlaid and the WAL ops are replayed
    /// with telemetry silenced (recovered work is not double-counted).
    ///
    /// The restored service drains to bit-identical [`ScheduleLog`],
    /// solutions, and masked traces versus a fleet that never crashed.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] as for [`new`](Self::new), or
    /// [`SchedError::CheckpointMismatch`] when the snapshot does not fit
    /// the fleet (version, seed, chip count, structure references).
    pub fn restore(
        config: FleetConfig,
        structures: Vec<CsrMatrix>,
        checkpoint: &FleetCheckpoint,
        wal: &AdmissionWal,
    ) -> Result<Self, SchedError> {
        if checkpoint.version != FleetCheckpoint::FORMAT_VERSION {
            return Err(SchedError::CheckpointMismatch {
                message: format!(
                    "checkpoint format v{} but this build reads v{}",
                    checkpoint.version,
                    FleetCheckpoint::FORMAT_VERSION
                ),
            });
        }
        if checkpoint.base_seed != config.base_seed {
            return Err(SchedError::CheckpointMismatch {
                message: format!(
                    "checkpoint was taken at base seed {:#x}, fleet config has {:#x}",
                    checkpoint.base_seed, config.base_seed
                ),
            });
        }
        let mut service = Self::new(config, structures)?;
        if checkpoint.chips.len() != service.config.chips
            || checkpoint.health.len() != service.config.chips
        {
            return Err(SchedError::CheckpointMismatch {
                message: format!(
                    "checkpoint describes {} chips, fleet has {}",
                    checkpoint.chips.len(),
                    service.config.chips
                ),
            });
        }
        for q in &checkpoint.queue {
            let Some(matrix) = service.structures.get(q.structure) else {
                return Err(SchedError::CheckpointMismatch {
                    message: format!(
                        "queued ticket {} references unregistered structure {}",
                        q.ticket, q.structure
                    ),
                });
            };
            if q.rhs.len() != matrix.dim() {
                return Err(SchedError::CheckpointMismatch {
                    message: format!(
                        "queued ticket {} has rhs length {}, structure {} needs {}",
                        q.ticket,
                        q.rhs.len(),
                        q.structure,
                        matrix.dim()
                    ),
                });
            }
        }
        service.import_slots(&checkpoint.chips)?;
        service.health = checkpoint.health.clone();
        service.queue = checkpoint
            .queue
            .iter()
            .map(|q| Queued {
                ticket: q.ticket,
                structure: q.structure,
                rhs: q.rhs.clone(),
                priority: q.priority,
                deadline_s: q.deadline_s,
            })
            .collect();
        service.inflight = checkpoint
            .queue
            .iter()
            .map(|q| (q.ticket, (q.structure, q.priority)))
            .collect();
        service.completions = checkpoint
            .completions
            .iter()
            .map(|c| (c.ticket.0, c.clone()))
            .collect();
        service.log = checkpoint.log.clone();
        service.next_ticket = checkpoint.next_ticket;
        service.round = checkpoint.round;
        // Replay everything that happened after the snapshot. The ops
        // re-record into the fresh WAL (they are once again "since the
        // last checkpoint"), so a second crash before the next checkpoint
        // still recovers.
        aa_obs::silenced(|| {
            for op in wal.ops() {
                match op {
                    WalOp::Submit(request) => {
                        let _ = service.submit(request.clone());
                    }
                    WalOp::Round => {
                        service.run_round();
                    }
                    WalOp::Inject { chip, failure } => {
                        let _ = service.inject_chaos(*chip, *failure);
                    }
                }
            }
        });
        Ok(service)
    }

    /// Installs (or clears, with `None`) a chaos failure mode on one chip.
    /// The injection is WAL-recorded so crash recovery replays it.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidConfig`] when the chip index is out of range.
    pub fn inject_chaos(
        &mut self,
        chip: usize,
        failure: Option<ChipFailure>,
    ) -> Result<(), SchedError> {
        if chip >= self.config.chips {
            return Err(SchedError::InvalidConfig {
                message: format!(
                    "chaos injection targets chip {chip}, fleet has {}",
                    self.config.chips
                ),
            });
        }
        self.wal.record_inject(chip, failure);
        aa_obs::silenced(|| {
            let commands = (0..self.config.chips)
                .map(|i| {
                    if i == chip {
                        ChipCommand::Inject(failure)
                    } else {
                        ChipCommand::Run(Vec::new())
                    }
                })
                .collect();
            self.pool
                .try_submit(commands)
                .unwrap_or_else(|_| unreachable!("round is drained before the next submit"));
            self.pool.drain();
        });
        Ok(())
    }

    /// Exports every chip slot's state through the pool (same routing as a
    /// dispatch round), with telemetry silenced — checkpointing leaves no
    /// mark on the live trace.
    fn export_slots(&mut self) -> Vec<SlotCheckpoint> {
        aa_obs::silenced(|| {
            let commands = (0..self.config.chips)
                .map(|_| ChipCommand::Export)
                .collect();
            self.pool
                .try_submit(commands)
                .unwrap_or_else(|_| unreachable!("round is drained before the next submit"));
            self.pool
                .drain()
                .into_iter()
                .enumerate()
                .map(|(chip, reply)| match reply {
                    ChipReply::Exported(state) => *state,
                    _ => {
                        debug_assert!(false, "non-Export reply to an export round");
                        SlotCheckpoint {
                            chip,
                            solvers: Vec::new(),
                            failure: None,
                        }
                    }
                })
                .collect()
        })
    }

    /// Imports checkpointed slot states through the pool.
    fn import_slots(&mut self, slots: &[SlotCheckpoint]) -> Result<(), SchedError> {
        aa_obs::silenced(|| {
            let commands = slots
                .iter()
                .map(|s| ChipCommand::Import(Box::new(s.clone())))
                .collect();
            self.pool
                .try_submit(commands)
                .unwrap_or_else(|_| unreachable!("round is drained before the next submit"));
            for reply in self.pool.drain() {
                if let ChipReply::Imported(Err(message)) = reply {
                    return Err(SchedError::CheckpointMismatch { message });
                }
            }
            Ok(())
        })
    }
}

/// The per-class latency histogram name (static, as `aa-obs` requires).
fn latency_metric(priority: Priority) -> &'static str {
    match priority {
        Priority::High => "sched.latency_s.high",
        Priority::Normal => "sched.latency_s.normal",
        Priority::Low => "sched.latency_s.low",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(n: usize) -> CsrMatrix {
        CsrMatrix::tridiagonal(n, -1.0, 2.0, -1.0).unwrap()
    }

    #[test]
    fn construction_rejects_degenerate_configs() {
        assert!(FleetService::new(FleetConfig::new(0), vec![tri(4)]).is_err());
        assert!(FleetService::new(FleetConfig::new(1), vec![]).is_err());
        let mut zero_batch = FleetConfig::new(1);
        zero_batch.batch_size = 0;
        assert!(FleetService::new(zero_batch, vec![tri(4)]).is_err());
        let zero_rhs = FleetConfig::new(1).with_max_batch_rhs(0);
        assert!(FleetService::new(zero_rhs, vec![tri(4)]).is_err());
        let bad_chip = FleetConfig::new(1).with_fault_plan(3, aa_analog::FaultPlan::new(1));
        assert!(FleetService::new(bad_chip, vec![tri(4)]).is_err());
    }

    #[test]
    fn admission_rejects_are_typed_and_never_panic() {
        let mut fleet =
            FleetService::new(FleetConfig::new(1).with_queue_capacity(2), vec![tri(4)]).unwrap();
        assert_eq!(
            fleet.submit(SolveRequest::new(9, vec![1.0; 4])),
            Err(Rejected::UnknownStructure { structure: 9 })
        );
        assert_eq!(
            fleet.submit(SolveRequest::new(0, vec![1.0; 3])),
            Err(Rejected::RhsLengthMismatch {
                expected: 4,
                got: 3
            })
        );
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        match fleet.submit(SolveRequest::new(0, vec![1.0; 4])) {
            Err(Rejected::QueueFull {
                capacity,
                retry_after_s,
            }) => {
                assert_eq!(capacity, 2);
                assert!(
                    retry_after_s > 0.0,
                    "two priceable requests are queued: {retry_after_s}"
                );
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(fleet.log().rejected, 3);
        assert_eq!(fleet.queue_depth(), 2);
    }

    #[test]
    fn adversarial_submissions_never_panic() {
        let mut fleet =
            FleetService::new(FleetConfig::new(1).with_queue_capacity(4), vec![tri(4)]).unwrap();
        // Hostile inputs on the request-controlled path: each yields a
        // typed verdict or a served answer, never a panic.
        assert!(fleet
            .submit(SolveRequest::new(usize::MAX, vec![1.0; 4]))
            .is_err());
        assert!(fleet.submit(SolveRequest::new(0, Vec::new())).is_err());
        assert!(fleet.submit(SolveRequest::new(0, vec![0.0; 4096])).is_err());
        // NaN / infinite deadlines are not "below the estimate", so they
        // admit and run; NaN never trips the deadline check at solve time.
        let nan = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(f64::NAN))
            .unwrap();
        let inf = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(f64::INFINITY))
            .unwrap();
        // A NaN rhs is structurally valid; the solve must still settle it.
        let nan_rhs = fleet
            .submit(SolveRequest::new(0, vec![f64::NAN; 4]))
            .unwrap();
        fleet.run_until_idle();
        for ticket in [nan, inf, nan_rhs] {
            assert!(fleet.completion(ticket).is_some(), "{ticket:?}");
        }
        // Out-of-range chaos targets are typed errors too.
        assert!(fleet.inject_chaos(9, None).is_err());
    }

    #[test]
    fn brownout_sheds_low_priority_admissions_only() {
        let mut fleet = FleetService::new(
            FleetConfig::new(1).with_queue_capacity(8).with_brownout(2),
            vec![tri(4)],
        )
        .unwrap();
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        // At the watermark: Low is shed with a typed hint, High still lands.
        let shed = fleet.submit(SolveRequest::new(0, vec![1.0; 4]).with_priority(Priority::Low));
        match shed {
            Err(Rejected::Brownout {
                queue_depth,
                retry_after_s,
            }) => {
                assert_eq!(queue_depth, 2);
                assert!(retry_after_s > 0.0);
            }
            other => panic!("expected Brownout, got {other:?}"),
        }
        assert!(fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_priority(Priority::High))
            .is_ok());
        assert_eq!(fleet.queue_depth(), 3);
        fleet.run_until_idle();
        // Once drained below the watermark, Low admits again.
        assert!(fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_priority(Priority::Low))
            .is_ok());
    }

    #[test]
    fn dead_chip_requeues_and_retires_and_digital_lane_engages() {
        let mut cfg = FleetConfig::new(1);
        cfg.health.retire_after_quarantines = Some(2);
        let mut fleet = FleetService::new(cfg, vec![tri(4)]).unwrap();
        fleet
            .inject_chaos(0, Some(crate::fleet::ChipFailure::Dead))
            .unwrap();
        // Keep one request per round flowing so the quarantine → probation
        // → failed-probe cycle actually plays out (an idle fleet never
        // probes). The dead chip bounces every batch; the dispatcher's
        // digital lane answers everything.
        let mut tickets = Vec::new();
        for _ in 0..14 {
            if let Ok(t) = fleet.submit(SolveRequest::new(0, vec![1.0; 4])) {
                tickets.push(t);
            }
            fleet.run_round();
        }
        fleet.run_until_idle();
        // Every accepted request was answered despite the dead chip.
        assert!(!tickets.is_empty());
        for t in &tickets {
            let done = fleet.completion(*t).expect("answered");
            assert_eq!(done.path, CompletionPath::DigitalOnly);
        }
        // The chip bounced batches, quarantined twice (the probe failed),
        // and retired for good.
        assert!(fleet
            .log()
            .events
            .iter()
            .any(|e| matches!(e, ScheduleEvent::Requeued { .. })));
        assert_eq!(fleet.health()[0].state, ChipState::Retired);
        assert_eq!(fleet.health()[0].quarantines, 2);
    }

    #[test]
    fn infeasible_deadlines_are_rejected_with_the_estimate() {
        let mut fleet = FleetService::new(FleetConfig::new(1), vec![tri(4)]).unwrap();
        let estimate = fleet.estimate_s(0).expect("SPD structure is priceable");
        assert!(estimate > 0.0);
        let verdict =
            fleet.submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(estimate / 2.0));
        assert_eq!(
            verdict,
            Err(Rejected::DeadlineInfeasible {
                deadline_s: estimate / 2.0,
                estimate_s: estimate
            })
        );
        // A generous deadline is admitted and met on the analog path.
        let ticket = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_deadline_s(estimate * 100.0))
            .unwrap();
        fleet.run_until_idle();
        let done = fleet.completion(ticket).unwrap();
        assert!(done.path.is_analog(), "path={:?}", done.path);
        assert!(done.analog_time_s <= estimate * 100.0);
    }

    #[test]
    fn batches_prefer_same_structure_for_plan_reuse() {
        let mut cfg = FleetConfig::new(1);
        cfg.batch_size = 3;
        let mut fleet = FleetService::new(cfg, vec![tri(4), tri(5)]).unwrap();
        // Interleave structures; the chip should batch 0,0,0 first.
        for s in [0usize, 1, 0, 1, 0] {
            fleet
                .submit(SolveRequest::new(s, vec![1.0; fleet.structures()[s].dim()]))
                .unwrap();
        }
        fleet.run_round();
        let batch = fleet
            .log()
            .events
            .iter()
            .find_map(|e| match e {
                ScheduleEvent::Dispatched { tickets, .. } => Some(tickets.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(batch, vec![0, 2, 4], "the three structure-0 tickets");
        fleet.run_until_idle();
        assert_eq!(fleet.log().completed(), 5);
    }

    #[test]
    fn coalesced_multi_rhs_serving_answers_every_request_on_the_analog_path() {
        let mut cfg = FleetConfig::new(1)
            .with_seed(0x0BA7_C4ED)
            .with_max_batch_rhs(3);
        cfg.batch_size = 6;
        let mut fleet = FleetService::new(cfg, vec![tri(4), tri(5)]).unwrap();
        let mut tickets = Vec::new();
        for (i, s) in [0usize, 0, 1, 0, 1, 0].into_iter().enumerate() {
            let n = fleet.structures()[s].dim();
            let rhs: Vec<f64> = (0..n).map(|j| 0.2 + 0.05 * ((i + j) as f64)).collect();
            tickets.push(fleet.submit(SolveRequest::new(s, rhs)).unwrap());
        }
        fleet.run_until_idle();
        for t in &tickets {
            let done = fleet.completion(*t).expect("served");
            assert!(done.path.is_analog(), "path={:?}", done.path);
            assert!(done.residual < 1e-2, "residual={}", done.residual);
            assert!(done.analog_time_s > 0.0);
        }
        assert_eq!(fleet.log().completed(), tickets.len());
    }

    #[test]
    fn hang_mid_chunk_requeues_every_column_with_the_count() {
        let mut cfg = FleetConfig::new(1).with_max_batch_rhs(4);
        cfg.batch_size = 4;
        let mut fleet = FleetService::new(cfg, vec![tri(4)]).unwrap();
        fleet
            .inject_chaos(0, Some(crate::fleet::ChipFailure::HangAfter { served: 2 }))
            .unwrap();
        let mut tickets = Vec::new();
        for _ in 0..4 {
            tickets.push(fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap());
        }
        // Round 1: the wedge lands mid-chunk, so the whole 4-column chunk
        // bounces; every Requeued event carries the full column count.
        assert_eq!(fleet.run_round(), 0);
        let requeues: Vec<(u64, usize)> = fleet
            .log()
            .events
            .iter()
            .filter_map(|e| match e {
                ScheduleEvent::Requeued {
                    ticket, columns, ..
                } => Some((*ticket, *columns)),
                _ => None,
            })
            .collect();
        assert_eq!(requeues, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
        // The watchdog reset the chip: everything is served next rounds.
        fleet.run_until_idle();
        for t in &tickets {
            assert!(fleet.completion(*t).is_some());
        }
    }

    #[test]
    fn priorities_dispatch_high_before_low() {
        let mut cfg = FleetConfig::new(1);
        cfg.batch_size = 1;
        let mut fleet = FleetService::new(cfg, vec![tri(4)]).unwrap();
        let low = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_priority(Priority::Low))
            .unwrap();
        let high = fleet
            .submit(SolveRequest::new(0, vec![1.0; 4]).with_priority(Priority::High))
            .unwrap();
        fleet.run_round();
        assert!(fleet.completion(high).is_some(), "high served first");
        assert!(fleet.completion(low).is_none());
        fleet.run_until_idle();
        assert_eq!(fleet.completion(low).unwrap().round, 2);
    }

    #[test]
    fn energy_accounting_uses_the_power_model() {
        let mut fleet = FleetService::new(FleetConfig::new(1), vec![tri(4)]).unwrap();
        let ticket = fleet.submit(SolveRequest::new(0, vec![1.0; 4])).unwrap();
        fleet.run_until_idle();
        let done = fleet.completion(ticket).unwrap().clone();
        assert!(done.analog_time_s > 0.0);
        let expected = fleet.config.design.energy_j(4, done.analog_time_s);
        assert_eq!(done.energy_j, expected);
        assert_eq!(
            fleet.log().energy_per_request_j(Priority::Normal),
            Some(expected)
        );
    }
}

//! The replayable schedule log: every admission, dispatch, completion, and
//! health transition, in the order the dispatcher made them. The whole
//! stack underneath is deterministic, so two same-seed runs produce
//! **equal** logs (`PartialEq` on the full struct) at any worker count —
//! the fleet-level analogue of `aa-obs`'s journal replay.

use crate::request::{CompletionPath, Priority, PRIORITY_CLASSES};

/// One dispatcher decision or observation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleEvent {
    /// A request passed admission control and entered the queue.
    Admitted {
        /// The assigned ticket id.
        ticket: u64,
        /// The registered structure it targets.
        structure: usize,
        /// Its priority class.
        priority: Priority,
        /// Its analog-deadline budget, if any.
        deadline_s: Option<f64>,
    },
    /// A request was refused at admission (stable reason label from
    /// [`Rejected::label`](crate::Rejected::label)).
    Rejected {
        /// The structure it targeted.
        structure: usize,
        /// Its priority class.
        priority: Priority,
        /// Why it was refused.
        reason: &'static str,
    },
    /// An admitted request's structure-affinity home shard was saturated,
    /// so the router placed it on another shard (the first unsaturated
    /// one, scanning cyclically from the home). Recorded right after the
    /// request's `Admitted` event.
    Spilled {
        /// The rerouted ticket.
        ticket: u64,
        /// The shard the structure's affinity pointed at.
        from_shard: usize,
        /// The shard that actually enqueued it.
        to_shard: usize,
    },
    /// A batch of tickets was placed on a chip for one round.
    Dispatched {
        /// The dispatch round.
        round: u64,
        /// The chip the batch was placed on.
        chip: usize,
        /// The tickets in the batch, in dispatch order.
        tickets: Vec<u64>,
    },
    /// An admitted request was answered.
    Completed {
        /// The settled ticket.
        ticket: u64,
        /// The serving chip (`None` when the dispatcher's digital lane
        /// answered directly).
        chip: Option<usize>,
        /// The round it completed in.
        round: u64,
        /// How the answer was produced.
        path: CompletionPath,
        /// Simulated analog seconds burned.
        analog_time_s: f64,
    },
    /// A chip's health score crossed the quarantine threshold.
    Quarantined {
        /// The chip taken out of rotation.
        chip: usize,
        /// The round of the decision.
        round: u64,
    },
    /// A quarantined chip was given one probe request.
    Probation {
        /// The chip on probation.
        chip: usize,
        /// The round of the decision.
        round: u64,
    },
    /// A probed chip answered cleanly and rejoined the rotation.
    Readmitted {
        /// The chip back in rotation.
        chip: usize,
        /// The round of the decision.
        round: u64,
    },
    /// A dispatched request came back unserved (its chip died or hung
    /// mid-batch) and was returned to the queue. Accepted requests are
    /// never lost to a failed chip.
    Requeued {
        /// The bounced ticket.
        ticket: u64,
        /// The chip that failed to serve it.
        chip: usize,
        /// The round of the bounce.
        round: u64,
        /// Total RHS columns this chip bounced this round. Every unserved
        /// column of a failed batch is requeued together — a batched sweep
        /// has no partial results — so each of the `columns` events of one
        /// bounce carries the same count.
        columns: usize,
    },
    /// A chip exhausted its quarantine budget and was permanently removed
    /// from rotation (no further probes).
    Retired {
        /// The chip taken out for good.
        chip: usize,
        /// The round of the decision.
        round: u64,
    },
}

impl ScheduleEvent {
    /// A stable single-line rendering, for diffing two logs by eye.
    pub fn line(&self) -> String {
        match self {
            ScheduleEvent::Admitted {
                ticket,
                structure,
                priority,
                deadline_s,
            } => match deadline_s {
                Some(d) => format!(
                    "admit t{ticket} s{structure} {} deadline={d}",
                    priority.label()
                ),
                None => format!("admit t{ticket} s{structure} {}", priority.label()),
            },
            ScheduleEvent::Rejected {
                structure,
                priority,
                reason,
            } => format!("reject s{structure} {} {reason}", priority.label()),
            ScheduleEvent::Spilled {
                ticket,
                from_shard,
                to_shard,
            } => format!("spill t{ticket} shard{from_shard}->shard{to_shard}"),
            ScheduleEvent::Dispatched {
                round,
                chip,
                tickets,
            } => {
                let ids: Vec<String> = tickets.iter().map(|t| format!("t{t}")).collect();
                format!("r{round} dispatch c{chip} [{}]", ids.join(","))
            }
            ScheduleEvent::Completed {
                ticket,
                chip,
                round,
                path,
                analog_time_s,
            } => match chip {
                Some(c) => format!(
                    "r{round} done t{ticket} c{c} {} analog={analog_time_s}",
                    path.label()
                ),
                None => format!("r{round} done t{ticket} digital {}", path.label()),
            },
            ScheduleEvent::Quarantined { chip, round } => format!("r{round} quarantine c{chip}"),
            ScheduleEvent::Probation { chip, round } => format!("r{round} probation c{chip}"),
            ScheduleEvent::Readmitted { chip, round } => format!("r{round} readmit c{chip}"),
            ScheduleEvent::Requeued {
                ticket,
                chip,
                round,
                columns,
            } => format!("r{round} requeue t{ticket} c{chip} columns={columns}"),
            ScheduleEvent::Retired { chip, round } => format!("r{round} retire c{chip}"),
        }
    }
}

/// The full record of one service run: the event stream plus per-class
/// aggregates. Equality of two logs is the fleet's replay-identity test.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScheduleLog {
    /// Every event, in decision order.
    pub events: Vec<ScheduleEvent>,
    /// Joules drawn from the fleet per priority class (indexed by
    /// [`Priority::rank`]), from the `aa-hwmodel` power model.
    pub energy_j_by_class: [f64; 3],
    /// Completed requests per priority class.
    pub completed_by_class: [usize; 3],
    /// Requests refused at admission.
    pub rejected: usize,
}

impl ScheduleLog {
    /// Stable one-line-per-event rendering of the stream.
    pub fn lines(&self) -> Vec<String> {
        self.events.iter().map(ScheduleEvent::line).collect()
    }

    /// Total completed requests across all classes.
    pub fn completed(&self) -> usize {
        self.completed_by_class.iter().sum()
    }

    /// Total joules drawn across all classes.
    pub fn energy_j(&self) -> f64 {
        self.energy_j_by_class.iter().sum()
    }

    /// Mean joules per completed request of one class (`None` when no
    /// request of that class completed) — the paper's Fig. 9 energy/solve
    /// metric, per serving class.
    pub fn energy_per_request_j(&self, priority: Priority) -> Option<f64> {
        let rank = priority.rank();
        let n = self.completed_by_class[rank];
        (n > 0).then(|| self.energy_j_by_class[rank] / n as f64)
    }

    /// Events of one variant-discriminating predicate, e.g. quarantines.
    pub fn quarantine_events(&self) -> impl Iterator<Item = &ScheduleEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, ScheduleEvent::Quarantined { .. }))
    }

    /// Records a completion's per-class aggregates.
    pub(crate) fn tally_completion(&mut self, priority: Priority, energy_j: f64) {
        let rank = priority.rank();
        self.completed_by_class[rank] += 1;
        self.energy_j_by_class[rank] += energy_j;
        debug_assert!(PRIORITY_CLASSES[rank] == priority);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_stable_and_distinct() {
        let log = ScheduleLog {
            events: vec![
                ScheduleEvent::Admitted {
                    ticket: 0,
                    structure: 1,
                    priority: Priority::High,
                    deadline_s: Some(0.25),
                },
                ScheduleEvent::Dispatched {
                    round: 1,
                    chip: 2,
                    tickets: vec![0],
                },
                ScheduleEvent::Completed {
                    ticket: 0,
                    chip: Some(2),
                    round: 1,
                    path: CompletionPath::Analog,
                    analog_time_s: 0.125,
                },
                ScheduleEvent::Quarantined { chip: 2, round: 1 },
                ScheduleEvent::Requeued {
                    ticket: 3,
                    chip: 2,
                    round: 1,
                    columns: 4,
                },
                ScheduleEvent::Spilled {
                    ticket: 5,
                    from_shard: 0,
                    to_shard: 1,
                },
            ],
            ..ScheduleLog::default()
        };
        let lines = log.lines();
        assert_eq!(lines[0], "admit t0 s1 high deadline=0.25");
        assert_eq!(lines[1], "r1 dispatch c2 [t0]");
        assert_eq!(lines[2], "r1 done t0 c2 analog analog=0.125");
        assert_eq!(lines[3], "r1 quarantine c2");
        assert_eq!(lines[4], "r1 requeue t3 c2 columns=4");
        assert_eq!(lines[5], "spill t5 shard0->shard1");
        assert_eq!(log.quarantine_events().count(), 1);
    }

    #[test]
    fn per_class_tallies_accumulate() {
        let mut log = ScheduleLog::default();
        log.tally_completion(Priority::Normal, 2.0);
        log.tally_completion(Priority::Normal, 1.0);
        log.tally_completion(Priority::Low, 4.0);
        assert_eq!(log.completed(), 3);
        assert_eq!(log.energy_j(), 7.0);
        assert_eq!(log.energy_per_request_j(Priority::Normal), Some(1.5));
        assert_eq!(log.energy_per_request_j(Priority::Low), Some(4.0));
        assert_eq!(log.energy_per_request_j(Priority::High), None);
    }
}

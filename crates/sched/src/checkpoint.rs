//! Crash recovery for the fleet service: the versioned [`FleetCheckpoint`]
//! snapshot plus the [`AdmissionWal`] — an append-only log of every
//! external input (submit attempts, dispatch rounds, chaos injections)
//! since the last checkpoint.
//!
//! The recovery contract is event sourcing over a deterministic core.
//! Everything the dispatcher does between two external inputs is a pure
//! function of fleet state, so a service rebuilt from
//! `checkpoint + WAL replay` is **bit-identical** to one that never
//! crashed: same [`ScheduleLog`], same solution vectors, same masked
//! `aa-obs` traces for all post-crash work. Replay runs with telemetry
//! silenced ([`aa_obs::silenced`]) so recovered work is not double-counted
//! in the live recorder.
//!
//! Exactly-once semantics follow from what each half holds:
//!
//! * the checkpoint freezes admitted-but-queued requests and the full
//!   completion set, so nothing settled is re-answered from scratch;
//! * the WAL records every admission attempt after the checkpoint, so
//!   nothing accepted is lost — replaying the ops re-admits and re-serves
//!   them deterministically, reissuing the same tickets.
//!
//! In a real deployment the WAL is the durable append log and the
//! checkpoint a periodic compaction of it; here both are plain values the
//! harness keeps across the simulated crash
//! ([`FleetService::checkpoint`](crate::FleetService::checkpoint) /
//! [`FleetService::restore`](crate::FleetService::restore)).

use crate::fleet::{ChipFailure, ChipHealth, SlotCheckpoint};
use crate::log::ScheduleLog;
use crate::request::{Completion, Priority, SolveMode, SolveRequest};

/// One admitted-but-undispatched request, as frozen in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedRequest {
    /// The ticket issued at admission.
    pub ticket: u64,
    /// The registered structure it targets.
    pub structure: usize,
    /// Its right-hand side.
    pub rhs: Vec<f64>,
    /// Its priority class.
    pub priority: Priority,
    /// Its analog-deadline budget, if any.
    pub deadline_s: Option<f64>,
    /// The tenant it was admitted under (fair-share accounting).
    pub tenant: u32,
    /// How it asked to be solved (direct or Krylov-preconditioned).
    pub mode: SolveMode,
}

/// One dispatcher group's slice of a [`FleetCheckpoint`] (format v2):
/// its chip range, pending queue, per-shard schedule log, and round
/// counter. Chip slot states and health records stay in the checkpoint's
/// flat global-order vectors; a shard's slice is recovered from its
/// `chip_offset`/`chips` range.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// The shard index.
    pub shard: usize,
    /// Global index of the shard's first chip.
    pub chip_offset: usize,
    /// Number of chips the shard owns.
    pub chips: usize,
    /// The shard's admitted requests still waiting for dispatch.
    pub queue: Vec<QueuedRequest>,
    /// The shard's own schedule log (its slice of the fleet-wide log).
    pub log: ScheduleLog,
    /// Dispatch rounds this shard has run.
    pub round: u64,
}

/// A consistent snapshot of the whole fleet service, taken between
/// dispatch rounds: per-chip solver state (noise clocks, lifetimes, trim
/// codes, fault plans, plan caches), dispatcher health records, the
/// pending queue, the completion set, the schedule log, and the ticket /
/// round counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCheckpoint {
    /// Layout version stamp; restores of a different version are refused.
    pub version: u32,
    /// The base seed of the fleet that produced this snapshot — a restore
    /// into a differently-seeded fleet would silently diverge, so it is
    /// checked instead.
    pub base_seed: u64,
    /// Per-chip slot states, in chip order.
    pub chips: Vec<SlotCheckpoint>,
    /// Dispatcher-side health records, in chip order.
    pub health: Vec<ChipHealth>,
    /// Per-shard sections (format v2): each dispatcher group's queue,
    /// log, and round counter, in shard order. An unsharded fleet has
    /// exactly one section.
    pub shards: Vec<ShardCheckpoint>,
    /// Every settled completion — the exactly-once record: a restored
    /// fleet never re-answers these.
    pub completions: Vec<Completion>,
    /// The fleet-wide schedule log up to the snapshot point.
    pub log: ScheduleLog,
    /// The next ticket id to issue.
    pub next_ticket: u64,
    /// Fleet-level dispatch rounds run so far.
    pub round: u64,
}

impl FleetCheckpoint {
    /// Current checkpoint layout version. v2 replaced the flat fleet-wide
    /// queue with per-shard sections ([`ShardCheckpoint`]); v1 snapshots
    /// are refused at restore with a typed
    /// [`CheckpointMismatch`](crate::SchedError::CheckpointMismatch).
    pub const FORMAT_VERSION: u32 = 2;
}

/// One external input to the fleet service, as recorded in the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A submit attempt — recorded whether it was admitted or rejected,
    /// since both outcomes shape the schedule log deterministically.
    Submit(SolveRequest),
    /// One dispatch round ran.
    Round,
    /// A chaos failure was installed on (or cleared from) a chip.
    Inject {
        /// The targeted chip.
        chip: usize,
        /// The failure mode (`None` clears).
        failure: Option<ChipFailure>,
    },
}

/// The admission write-ahead log: every external input since the last
/// checkpoint, in arrival order. Appended by the service itself; cleared
/// when a checkpoint compacts it. Replaying a WAL over its checkpoint
/// ([`FleetService::restore`](crate::FleetService::restore)) reproduces
/// the crashed service's state bit for bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdmissionWal {
    ops: Vec<WalOp>,
}

impl AdmissionWal {
    /// An empty log.
    pub fn new() -> Self {
        AdmissionWal::default()
    }

    /// The recorded ops, in arrival order.
    pub fn ops(&self) -> &[WalOp] {
        &self.ops
    }

    /// Ops recorded since the last checkpoint.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing happened since the last checkpoint.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub(crate) fn record_submit(&mut self, request: SolveRequest) {
        self.ops.push(WalOp::Submit(request));
    }

    pub(crate) fn record_round(&mut self) {
        self.ops.push(WalOp::Round);
    }

    pub(crate) fn record_inject(&mut self, chip: usize, failure: Option<ChipFailure>) {
        self.ops.push(WalOp::Inject { chip, failure });
    }

    pub(crate) fn clear(&mut self) {
        self.ops.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_records_ops_in_order_and_clears() {
        let mut wal = AdmissionWal::new();
        assert!(wal.is_empty());
        wal.record_submit(SolveRequest::new(0, vec![1.0]));
        wal.record_round();
        wal.record_inject(2, Some(ChipFailure::Dead));
        assert_eq!(wal.len(), 3);
        assert!(matches!(wal.ops()[0], WalOp::Submit(_)));
        assert_eq!(wal.ops()[1], WalOp::Round);
        assert_eq!(
            wal.ops()[2],
            WalOp::Inject {
                chip: 2,
                failure: Some(ChipFailure::Dead)
            }
        );
        wal.clear();
        assert!(wal.is_empty());
    }
}

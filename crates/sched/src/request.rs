//! Requests, tickets, admission verdicts, and completions — the service's
//! client-facing vocabulary — plus the [`Backoff`] retry helper that turns
//! typed backpressure verdicts into paced resubmission.

use aa_linalg::rng::Rng64;

/// Priority class of a [`SolveRequest`]. Higher classes are dispatched
/// first within a round; ties break by admission order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Latency-sensitive traffic, always scheduled first.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Background traffic, scheduled only after the other classes.
    Low,
}

/// All classes, in dispatch order. Indexable by [`Priority::rank`].
pub const PRIORITY_CLASSES: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

impl Priority {
    /// Dispatch rank: `0` is served first.
    pub fn rank(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Short stable label used in telemetry and the schedule log.
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// How a [`SolveRequest`] wants its answer produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SolveMode {
    /// One supervised analog solve (possibly coalesced into a multi-RHS
    /// sweep with same-structure neighbours). The default.
    #[default]
    Direct,
    /// Analog-preconditioned flexible CG ([`aa_solver::fcg_solve`]): the
    /// chip runs one supervised analog solve *per preconditioner
    /// application*, so the request is priced against
    /// [`aa_solver::estimate::krylov_solve_time_s`] — its own deadline
    /// profile — and is never coalesced into a shared sweep (each
    /// application's right-hand side depends on the previous iterate).
    KrylovPrecond,
}

impl SolveMode {
    /// Short stable label used in telemetry and the schedule log.
    pub fn label(self) -> &'static str {
        match self {
            SolveMode::Direct => "direct",
            SolveMode::KrylovPrecond => "krylov_precond",
        }
    }
}

/// One `A·u = b` instance submitted to the fleet. The matrix is referenced
/// by the index it was registered under at
/// [`FleetService::new`](crate::FleetService::new) — a chip's compiled-plan
/// cache is keyed by structure, so same-structure requests batch onto one
/// chip and reuse its lowered plan.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Index of the registered coefficient matrix.
    pub structure: usize,
    /// Right-hand side; must match the structure's dimension.
    pub rhs: Vec<f64>,
    /// Priority class.
    pub priority: Priority,
    /// Optional budget of **simulated analog seconds** for this request.
    /// A request whose analog solve exceeds the budget is answered by the
    /// digital lane instead (see
    /// [`CompletionPath::DeadlineFallback`]); a request whose budget is
    /// below the structure's predicted solve time is rejected at admission.
    pub deadline_s: Option<f64>,
    /// Tenant id for fair-share admission. When the fleet configures
    /// [`tenant_weights`](crate::FleetConfig::tenant_weights), each
    /// tenant's queued footprint is capped at its weighted share of the
    /// fleet's total queue capacity; tenants with no configured weight
    /// share one default-weight bucket. `0` is just another tenant id.
    pub tenant: u32,
    /// How the answer should be produced (direct analog solve or
    /// Krylov-preconditioned FCG).
    pub mode: SolveMode,
}

impl SolveRequest {
    /// A normal-priority request with no deadline, from tenant `0`.
    pub fn new(structure: usize, rhs: Vec<f64>) -> Self {
        SolveRequest {
            structure,
            rhs,
            priority: Priority::Normal,
            deadline_s: None,
            tenant: 0,
            mode: SolveMode::Direct,
        }
    }

    /// Sets the priority class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the analog-deadline budget, in simulated chip-lifetime seconds.
    pub fn with_deadline_s(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Sets the tenant id for fair-share admission.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Asks for an analog-preconditioned Krylov (FCG) solve instead of a
    /// direct supervised solve.
    pub fn with_krylov(mut self) -> Self {
        self.mode = SolveMode::KrylovPrecond;
        self
    }
}

/// Receipt for an admitted request; redeem it with
/// [`FleetService::completion`](crate::FleetService::completion) once the
/// dispatch loop has run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SolveTicket(pub u64);

/// Typed admission-control verdicts. Rejection is backpressure, not an
/// error: the request was never enqueued and the caller may retry later,
/// relax the deadline, or shed the load.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejected {
    /// The bounded queue is at capacity.
    QueueFull {
        /// The configured bound that was hit.
        capacity: usize,
        /// Predicted seconds until the backlog drains enough to retry —
        /// the queued work's estimated solve time divided over the chips
        /// currently in rotation. A typed hint, not a guarantee.
        retry_after_s: f64,
    },
    /// The tenant's weighted fair-share of the fleet's queue capacity is
    /// already occupied by its own queued requests. Other tenants are
    /// unaffected; retry once some of this tenant's work drains.
    QuotaExceeded {
        /// The tenant that hit its share.
        tenant: u32,
        /// The tenant's queued requests across all shards.
        in_queue: usize,
        /// Its weighted quota (queue slots).
        quota: usize,
        /// Predicted seconds until one of the tenant's queued requests
        /// drains and frees a slot. A typed hint, not a guarantee.
        retry_after_s: f64,
    },
    /// Overload brownout: the queue crossed the configured watermark, so
    /// low-priority admissions are shed to protect higher classes'
    /// deadlines. Retry later or escalate the priority.
    Brownout {
        /// Queue depth at the shedding decision.
        queue_depth: usize,
        /// Predicted seconds until the backlog drains below the watermark.
        retry_after_s: f64,
    },
    /// The requested analog deadline is below the structure's predicted
    /// solve time — it could never be met, so it is refused up front.
    DeadlineInfeasible {
        /// What the request asked for.
        deadline_s: f64,
        /// The fleet's prediction for this structure.
        estimate_s: f64,
    },
    /// The request referenced a structure index that was never registered.
    UnknownStructure {
        /// The out-of-range index.
        structure: usize,
    },
    /// The right-hand side length does not match the structure's dimension.
    RhsLengthMismatch {
        /// The structure's dimension.
        expected: usize,
        /// The submitted length.
        got: usize,
    },
}

impl Rejected {
    /// Short stable label used in telemetry and the schedule log.
    pub fn label(&self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "queue_full",
            Rejected::QuotaExceeded { .. } => "quota_exceeded",
            Rejected::Brownout { .. } => "brownout",
            Rejected::DeadlineInfeasible { .. } => "deadline_infeasible",
            Rejected::UnknownStructure { .. } => "unknown_structure",
            Rejected::RhsLengthMismatch { .. } => "rhs_length_mismatch",
        }
    }

    /// The typed retry hint, when the verdict is transient backpressure
    /// (`QueueFull`, `Brownout`). `None` means retrying the same request
    /// verbatim can never succeed.
    pub fn retry_after_s(&self) -> Option<f64> {
        match self {
            Rejected::QueueFull { retry_after_s, .. }
            | Rejected::QuotaExceeded { retry_after_s, .. }
            | Rejected::Brownout { retry_after_s, .. } => Some(*retry_after_s),
            _ => None,
        }
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull {
                capacity,
                retry_after_s,
            } => {
                write!(
                    f,
                    "request queue is full ({capacity} entries), retry after {retry_after_s} s"
                )
            }
            Rejected::QuotaExceeded {
                tenant,
                in_queue,
                quota,
                retry_after_s,
            } => write!(
                f,
                "tenant {tenant} has {in_queue} queued requests, quota is {quota}, \
                 retry after {retry_after_s} s"
            ),
            Rejected::Brownout {
                queue_depth,
                retry_after_s,
            } => write!(
                f,
                "brownout: low-priority admissions shed at queue depth {queue_depth}, \
                 retry after {retry_after_s} s"
            ),
            Rejected::DeadlineInfeasible {
                deadline_s,
                estimate_s,
            } => write!(
                f,
                "deadline {deadline_s} s is below the predicted solve time {estimate_s} s"
            ),
            Rejected::UnknownStructure { structure } => {
                write!(f, "structure index {structure} was never registered")
            }
            Rejected::RhsLengthMismatch { expected, got } => {
                write!(f, "rhs has {got} entries, structure needs {expected}")
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// Client-side retry pacing for transient [`Rejected`] verdicts:
/// exponential backoff with deterministic full jitter, floored by the
/// verdict's own typed [`retry_after_s`](Rejected::retry_after_s) hint.
///
/// The jitter draws from the in-repo [`Rng64`], so a seeded client replays
/// the same retry schedule bit-identically — the property every chaos and
/// replay test in this repo leans on.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_s: f64,
    cap_s: f64,
    attempt: u32,
    rng: Rng64,
}

impl Backoff {
    /// A backoff starting at `base_s`, doubling per attempt, capped at
    /// `cap_s`, jittered from `seed`.
    pub fn new(base_s: f64, cap_s: f64, seed: u64) -> Self {
        Backoff {
            base_s: base_s.max(0.0),
            cap_s: cap_s.max(base_s.max(0.0)),
            attempt: 0,
            rng: Rng64::seed_from_u64(seed),
        }
    }

    /// The delay before the next retry: `min(cap, base·2^attempt)` jittered
    /// uniformly into `[delay/2, delay]`, and never below the verdict's own
    /// retry hint when it carries one.
    pub fn next_delay_s(&mut self, verdict: &Rejected) -> f64 {
        let exp = (self.base_s * 2f64.powi(self.attempt.min(30) as i32)).min(self.cap_s);
        self.attempt = self.attempt.saturating_add(1);
        let jittered = 0.5 * exp + 0.5 * exp * self.rng.uniform();
        match verdict.retry_after_s() {
            Some(hint) => jittered.max(hint),
            None => jittered,
        }
    }

    /// Retries attempted since construction or the last [`reset`](Self::reset).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Clears the attempt counter after a successful submission.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// How an accepted request's answer was ultimately produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionPath {
    /// First analog attempt on the placed chip passed validation.
    Analog,
    /// Analog succeeded after the chip's supervisor ran recovery actions.
    AnalogAfterRecovery,
    /// The chip's analog recovery was exhausted; its supervisor's digital
    /// fallback produced the answer.
    DigitalFallback,
    /// Analog answered, but past the request's deadline budget — the
    /// digital lane's answer was served instead.
    DeadlineFallback,
    /// No healthy chip was available; the dispatcher served the request
    /// from the digital lane directly.
    DigitalOnly,
}

impl CompletionPath {
    /// Short stable label used in telemetry and the schedule log.
    pub fn label(self) -> &'static str {
        match self {
            CompletionPath::Analog => "analog",
            CompletionPath::AnalogAfterRecovery => "analog_after_recovery",
            CompletionPath::DigitalFallback => "digital_fallback",
            CompletionPath::DeadlineFallback => "deadline_fallback",
            CompletionPath::DigitalOnly => "digital_only",
        }
    }

    /// Whether the served answer came out of the analog array.
    pub fn is_analog(self) -> bool {
        matches!(
            self,
            CompletionPath::Analog | CompletionPath::AnalogAfterRecovery
        )
    }
}

/// The resolved outcome of one admitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The ticket this completion settles.
    pub ticket: SolveTicket,
    /// The registered structure that was solved.
    pub structure: usize,
    /// The request's priority class.
    pub priority: Priority,
    /// The accepted solution vector.
    pub solution: Vec<f64>,
    /// How the answer was produced.
    pub path: CompletionPath,
    /// Relative residual `‖b − A·u‖ / ‖b‖` of the served answer.
    pub residual: f64,
    /// Simulated analog seconds burned on the placed chip (including
    /// rejected recovery attempts), `0` for [`CompletionPath::DigitalOnly`].
    pub analog_time_s: f64,
    /// Energy drawn from the placed chip, joules (power model ×
    /// `analog_time_s`).
    pub energy_j: f64,
    /// The chip that served it; `None` for [`CompletionPath::DigitalOnly`].
    pub chip: Option<usize>,
    /// The dispatch round it completed in.
    pub round: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ranks_and_labels_are_stable() {
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        for (i, class) in PRIORITY_CLASSES.iter().enumerate() {
            assert_eq!(class.rank(), i);
        }
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::High.label(), "high");
    }

    #[test]
    fn request_builder_sets_fields() {
        let r = SolveRequest::new(2, vec![1.0, 2.0])
            .with_priority(Priority::Low)
            .with_deadline_s(0.5)
            .with_tenant(7)
            .with_krylov();
        assert_eq!(r.structure, 2);
        assert_eq!(r.priority, Priority::Low);
        assert_eq!(r.deadline_s, Some(0.5));
        assert_eq!(r.tenant, 7);
        assert_eq!(r.mode, SolveMode::KrylovPrecond);
        assert_eq!(r.mode.label(), "krylov_precond");
        let plain = SolveRequest::new(0, vec![]);
        assert_eq!(plain.tenant, 0);
        assert_eq!(plain.mode, SolveMode::Direct);
        assert_eq!(plain.mode.label(), "direct");
    }

    #[test]
    fn rejection_labels_and_messages() {
        let r = Rejected::QueueFull {
            capacity: 4,
            retry_after_s: 0.5,
        };
        assert_eq!(r.label(), "queue_full");
        assert!(r.to_string().contains('4'));
        assert_eq!(r.retry_after_s(), Some(0.5));
        let b = Rejected::Brownout {
            queue_depth: 48,
            retry_after_s: 1.5,
        };
        assert_eq!(b.label(), "brownout");
        assert!(b.to_string().contains("48"));
        assert_eq!(b.retry_after_s(), Some(1.5));
        let d = Rejected::DeadlineInfeasible {
            deadline_s: 0.1,
            estimate_s: 0.2,
        };
        assert_eq!(d.label(), "deadline_infeasible");
        assert!(d.to_string().contains("0.2"));
        assert_eq!(d.retry_after_s(), None);
        let q = Rejected::QuotaExceeded {
            tenant: 3,
            in_queue: 5,
            quota: 4,
            retry_after_s: 2.5,
        };
        assert_eq!(q.label(), "quota_exceeded");
        assert!(q.to_string().contains("tenant 3"));
        assert_eq!(q.retry_after_s(), Some(2.5));
    }

    #[test]
    fn backoff_grows_honors_hints_and_replays_deterministically() {
        let full = Rejected::QueueFull {
            capacity: 4,
            retry_after_s: 0.0,
        };
        let mut a = Backoff::new(0.1, 10.0, 7);
        let mut b = Backoff::new(0.1, 10.0, 7);
        let da: Vec<f64> = (0..6).map(|_| a.next_delay_s(&full)).collect();
        let db: Vec<f64> = (0..6).map(|_| b.next_delay_s(&full)).collect();
        assert_eq!(da, db, "seeded jitter replays bit-identically");
        for (k, d) in da.iter().enumerate() {
            let ceiling = (0.1 * 2f64.powi(k as i32)).min(10.0);
            assert!(*d >= ceiling / 2.0 && *d <= ceiling, "attempt {k}: {d}");
        }
        assert_eq!(a.attempts(), 6);
        a.reset();
        assert_eq!(a.attempts(), 0);
        // A typed hint floors the jittered delay.
        let hinted = Rejected::Brownout {
            queue_depth: 9,
            retry_after_s: 42.0,
        };
        assert!(a.next_delay_s(&hinted) >= 42.0);
    }

    #[test]
    fn completion_path_analog_split() {
        assert!(CompletionPath::Analog.is_analog());
        assert!(CompletionPath::AnalogAfterRecovery.is_analog());
        assert!(!CompletionPath::DigitalFallback.is_analog());
        assert!(!CompletionPath::DeadlineFallback.is_analog());
        assert!(!CompletionPath::DigitalOnly.is_analog());
    }
}

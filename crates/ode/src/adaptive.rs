use crate::{OdeError, OdeSystem, Trajectory};

/// Options for the adaptive Cash–Karp RK4(5) integrator.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOptions {
    /// Relative tolerance on the local error.
    pub rtol: f64,
    /// Absolute tolerance on the local error.
    pub atol: f64,
    /// Initial step size. `None` picks `t_end / 100`.
    pub dt_initial: Option<f64>,
    /// Largest allowed step size. `None` means unbounded.
    pub dt_max: Option<f64>,
    /// Hard cap on accepted + rejected steps.
    pub max_steps: usize,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            rtol: 1e-8,
            atol: 1e-10,
            dt_initial: None,
            dt_max: None,
            max_steps: 1_000_000,
        }
    }
}

/// Statistics from an adaptive integration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Steps accepted into the trajectory.
    pub accepted: usize,
    /// Steps rejected and retried with a smaller size.
    pub rejected: usize,
    /// Derivative evaluations.
    pub evals: usize,
}

/// Cash–Karp tableau coefficients.
mod tableau {
    pub const A: [[f64; 5]; 5] = [
        [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0],
        [3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0, 0.0, 0.0],
        [-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0, 0.0],
        [
            1631.0 / 55296.0,
            175.0 / 512.0,
            575.0 / 13824.0,
            44275.0 / 110592.0,
            253.0 / 4096.0,
        ],
    ];
    pub const C: [f64; 6] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 3.0 / 5.0, 1.0, 7.0 / 8.0];
    /// 5th-order weights.
    pub const B5: [f64; 6] = [
        37.0 / 378.0,
        0.0,
        250.0 / 621.0,
        125.0 / 594.0,
        0.0,
        512.0 / 1771.0,
    ];
    /// 4th-order (embedded) weights.
    pub const B4: [f64; 6] = [
        2825.0 / 27648.0,
        0.0,
        18575.0 / 48384.0,
        13525.0 / 55296.0,
        277.0 / 14336.0,
        1.0 / 4.0,
    ];
}

/// Integrates `system` from `u0` over `[0, t_end]` with adaptive step control.
///
/// # Errors
///
/// * [`OdeError::DimensionMismatch`] if `u0.len() != system.dim()`.
/// * [`OdeError::InvalidStep`] on non-positive `t_end` or tolerances.
/// * [`OdeError::StepBudgetExhausted`] if `max_steps` is reached.
/// * [`OdeError::Diverged`] if the state becomes non-finite.
///
/// ```
/// use aa_ode::{integrate_adaptive, AdaptiveOptions, FnSystem};
///
/// let sys = FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| du[0] = -u[0]);
/// let (traj, stats) = integrate_adaptive(&sys, &[1.0], 5.0, &AdaptiveOptions::default()).unwrap();
/// assert!((traj.final_state()[0] - (-5.0f64).exp()).abs() < 1e-7);
/// assert!(stats.accepted > 0);
/// ```
pub fn integrate_adaptive<S: OdeSystem>(
    system: &S,
    u0: &[f64],
    t_end: f64,
    options: &AdaptiveOptions,
) -> Result<(Trajectory, AdaptiveStats), OdeError> {
    let n = system.dim();
    if u0.len() != n {
        return Err(OdeError::DimensionMismatch {
            expected: n,
            actual: u0.len(),
        });
    }
    if !(t_end.is_finite() && t_end > 0.0) {
        return Err(OdeError::invalid_step(format!("t_end = {t_end}")));
    }
    if !(options.rtol > 0.0 && options.atol > 0.0) {
        return Err(OdeError::invalid_step(
            "tolerances must be positive".to_string(),
        ));
    }

    let mut traj = Trajectory::new(0.0, u0.to_vec());
    let mut stats = AdaptiveStats::default();
    let mut u = u0.to_vec();
    let mut t = 0.0;
    let mut h = options.dt_initial.unwrap_or(t_end / 100.0);
    if let Some(hmax) = options.dt_max {
        h = h.min(hmax);
    }

    let mut k = vec![vec![0.0; n]; 6];
    let mut u_stage = vec![0.0; n];
    let mut u5 = vec![0.0; n];
    let mut err = vec![0.0; n];
    let mut steps = 0;

    while t < t_end {
        if steps >= options.max_steps {
            return Err(OdeError::StepBudgetExhausted { reached: t, steps });
        }
        steps += 1;
        let h_try = h.min(t_end - t);

        // Six Cash–Karp stages.
        system.eval(t, &u, &mut k[0]);
        stats.evals += 1;
        for stage in 1..6 {
            for i in 0..n {
                let mut acc = 0.0;
                for (j, kj) in k.iter().enumerate().take(stage) {
                    acc += tableau::A[stage - 1][j] * kj[i];
                }
                u_stage[i] = u[i] + h_try * acc;
            }
            let (head, tail) = k.split_at_mut(stage);
            let _ = head;
            system.eval(t + tableau::C[stage] * h_try, &u_stage, &mut tail[0]);
            stats.evals += 1;
        }

        // 5th-order solution and embedded error estimate.
        let mut err_norm: f64 = 0.0;
        for i in 0..n {
            let mut acc5 = 0.0;
            let mut acc4 = 0.0;
            for (j, kj) in k.iter().enumerate() {
                acc5 += tableau::B5[j] * kj[i];
                acc4 += tableau::B4[j] * kj[i];
            }
            u5[i] = u[i] + h_try * acc5;
            err[i] = h_try * (acc5 - acc4);
            let scale = options.atol + options.rtol * u[i].abs().max(u5[i].abs());
            err_norm = err_norm.max((err[i] / scale).abs());
        }

        if !u5.iter().all(|v| v.is_finite()) {
            return Err(OdeError::Diverged { at_time: t + h_try });
        }

        if err_norm <= 1.0 {
            // Accept.
            t += h_try;
            u.copy_from_slice(&u5);
            traj.push(t, u.clone());
            stats.accepted += 1;
            // Grow the step (safety factor 0.9, order-5 exponent).
            let factor = if err_norm == 0.0 {
                5.0
            } else {
                (0.9 * err_norm.powf(-0.2)).clamp(0.2, 5.0)
            };
            h = h_try * factor;
        } else {
            // Reject and shrink.
            stats.rejected += 1;
            h = h_try * (0.9 * err_norm.powf(-0.25)).clamp(0.1, 1.0);
        }
        if let Some(hmax) = options.dt_max {
            h = h.min(hmax);
        }
        if h < f64::EPSILON * t_end {
            return Err(OdeError::invalid_step(format!(
                "step size underflow at t = {t}"
            )));
        }
    }
    Ok((traj, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSystem;

    #[test]
    fn meets_tolerance_on_decay() {
        let sys = FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| du[0] = -u[0]);
        let opts = AdaptiveOptions {
            rtol: 1e-10,
            atol: 1e-12,
            ..AdaptiveOptions::default()
        };
        let (traj, _) = integrate_adaptive(&sys, &[1.0], 1.0, &opts).unwrap();
        assert!((traj.final_state()[0] - (-1.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn fewer_steps_than_fixed_at_equal_accuracy() {
        // Adaptive stepping takes larger steps where the solution is smooth.
        let sys = FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| du[0] = -u[0]);
        let (traj, stats) =
            integrate_adaptive(&sys, &[1.0], 10.0, &AdaptiveOptions::default()).unwrap();
        assert!(stats.accepted < 1000, "accepted = {}", stats.accepted);
        assert!((traj.final_state()[0] - (-10.0f64).exp()).abs() < 1e-8);
    }

    #[test]
    fn stiff_like_problem_rejects_some_steps() {
        // Rapid transient then slow decay; the controller must adapt.
        let sys = FnSystem::new(1, |t, u: &[f64], du: &mut [f64]| {
            du[0] = -50.0 * (u[0] - (t).cos())
        });
        let opts = AdaptiveOptions {
            dt_initial: Some(1.0),
            ..AdaptiveOptions::default()
        };
        let (_, stats) = integrate_adaptive(&sys, &[0.0], 2.0, &opts).unwrap();
        assert!(stats.rejected > 0);
    }

    #[test]
    fn step_budget_is_enforced() {
        let sys = FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| du[0] = -u[0]);
        let opts = AdaptiveOptions {
            max_steps: 3,
            dt_initial: Some(1e-9),
            dt_max: Some(1e-9),
            ..AdaptiveOptions::default()
        };
        assert!(matches!(
            integrate_adaptive(&sys, &[1.0], 1.0, &opts),
            Err(OdeError::StepBudgetExhausted { .. })
        ));
    }

    #[test]
    fn validates_arguments() {
        let sys = FnSystem::new(1, |_t, _u: &[f64], du: &mut [f64]| du[0] = 0.0);
        assert!(integrate_adaptive(&sys, &[1.0, 2.0], 1.0, &AdaptiveOptions::default()).is_err());
        assert!(integrate_adaptive(&sys, &[1.0], 0.0, &AdaptiveOptions::default()).is_err());
        let bad = AdaptiveOptions {
            rtol: 0.0,
            ..AdaptiveOptions::default()
        };
        assert!(integrate_adaptive(&sys, &[1.0], 1.0, &bad).is_err());
    }

    #[test]
    fn dt_max_is_respected() {
        let sys = FnSystem::new(1, |_t, _u: &[f64], du: &mut [f64]| du[0] = 1.0);
        let opts = AdaptiveOptions {
            dt_max: Some(0.1),
            ..AdaptiveOptions::default()
        };
        let (traj, _) = integrate_adaptive(&sys, &[0.0], 1.0, &opts).unwrap();
        for w in traj.times().windows(2) {
            assert!(w[1] - w[0] <= 0.1 + 1e-12);
        }
    }
}

//! The paper's Algorithm 1, verbatim.

/// Euler's method for the scalar ODE `du/dt = a·u + b` (paper Algorithm 1).
///
/// Returns the evolution of `u` over `steps` equal steps covering `time`
/// seconds, including the initial value — `steps + 1` samples in total.
///
/// This is the didactic routine the paper uses to explain that "analog
/// computing does the same but in continuous time, using an infinitesimally
/// small time period" (§II-A). It is deliberately kept in the paper's exact
/// formulation; use [`integrate_fixed`](crate::integrate_fixed) for real work.
///
/// # Panics
///
/// Panics if `steps == 0` or `time` is not finite and positive.
///
/// ```
/// // du/dt = -u + 0, u(0) = 1 → u(1) ≈ e⁻¹.
/// let history = aa_ode::algorithm1(1.0, 100_000, -1.0, 0.0, 1.0);
/// assert_eq!(history.len(), 100_001);
/// let end = history.last().copied().unwrap();
/// assert!((end - (-1.0f64).exp()).abs() < 1e-4);
/// ```
pub fn algorithm1(time: f64, steps: usize, a: f64, b: f64, u_init: f64) -> Vec<f64> {
    assert!(steps > 0, "steps must be positive");
    assert!(
        time.is_finite() && time > 0.0,
        "time must be finite and positive"
    );
    let step_size = time / steps as f64;
    let mut u = u_init;
    let mut history = Vec::with_capacity(steps + 1);
    history.push(u);
    for _step in 0..steps {
        let delta = a * u + b;
        u += step_size * delta;
        history.push(u);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form_decay() {
        // u(t) = e^{-t} for a = -1, b = 0.
        let h = algorithm1(2.0, 200_000, -1.0, 0.0, 1.0);
        assert!((h.last().unwrap() - (-2.0f64).exp()).abs() < 1e-4);
    }

    #[test]
    fn constant_bias_reaches_equilibrium() {
        // du/dt = -u + 5 tends to u = 5: the same "steady state solves the
        // algebraic equation" idea the linear solver relies on.
        let h = algorithm1(20.0, 20_000, -1.0, 5.0, 0.0);
        assert!((h.last().unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn history_includes_initial_value() {
        let h = algorithm1(1.0, 4, 0.0, 1.0, 7.0);
        assert_eq!(h.len(), 5);
        assert_eq!(h[0], 7.0);
        // du/dt = 1: u grows by time/steps per step.
        assert!((h[4] - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "steps must be positive")]
    fn zero_steps_panics() {
        algorithm1(1.0, 0, 1.0, 0.0, 0.0);
    }
}

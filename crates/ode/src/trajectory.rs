use crate::OdeError;

/// A time-sampled solution of an ODE system.
///
/// Stores `(t_k, u_k)` pairs in increasing time order. This plays the role
/// of the "time-varying waveform" the paper's Figure 1 describes: in the
/// embedded use-case the whole waveform is the answer; in the linear-algebra
/// use-case only [`final_state`](Trajectory::final_state) (the steady state)
/// is read out through the ADCs.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
    dim: usize,
}

impl Trajectory {
    /// Creates a trajectory seeded with the initial condition at `t0`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty.
    pub fn new(t0: f64, initial: Vec<f64>) -> Self {
        assert!(!initial.is_empty(), "trajectory state must be non-empty");
        let dim = initial.len();
        Trajectory {
            times: vec![t0],
            states: vec![initial],
            dim,
        }
    }

    /// Appends a sample. Times must be strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not increase or the state dimension changes.
    pub fn push(&mut self, t: f64, state: Vec<f64>) {
        assert!(
            t > *self.times.last().expect("trajectory is never empty"),
            "time samples must be strictly increasing"
        );
        assert_eq!(state.len(), self.dim, "state dimension changed");
        self.times.push(t);
        self.states.push(state);
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored samples (including the initial condition).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether only the initial sample is present.
    pub fn is_empty(&self) -> bool {
        self.times.len() <= 1
    }

    /// Sampled time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sampled states, parallel to [`times`](Trajectory::times).
    pub fn states(&self) -> &[Vec<f64>] {
        &self.states
    }

    /// The last time point.
    pub fn final_time(&self) -> f64 {
        *self.times.last().expect("trajectory is never empty")
    }

    /// The final state — the analog accelerator's steady-state readout.
    pub fn final_state(&self) -> &[f64] {
        self.states.last().expect("trajectory is never empty")
    }

    /// Linearly interpolates the state at time `t`.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::InvalidStep`] if `t` lies outside the sampled span.
    pub fn sample(&self, t: f64) -> Result<Vec<f64>, OdeError> {
        let first = self.times[0];
        let last = self.final_time();
        if !(first..=last).contains(&t) {
            return Err(OdeError::invalid_step(format!(
                "sample time {t} outside trajectory span [{first}, {last}]"
            )));
        }
        let idx = match self
            .times
            .binary_search_by(|probe| probe.partial_cmp(&t).expect("times are finite"))
        {
            Ok(i) => return Ok(self.states[i].clone()),
            Err(i) => i,
        };
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let w = (t - t0) / (t1 - t0);
        Ok(self.states[idx - 1]
            .iter()
            .zip(&self.states[idx])
            .map(|(a, b)| a + w * (b - a))
            .collect())
    }

    /// Iterates over `(t, state)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[f64])> + '_ {
        self.times
            .iter()
            .zip(&self.states)
            .map(|(&t, s)| (t, s.as_slice()))
    }

    /// The single-variable waveform of component `i` as `(t, u_i)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn component(&self, i: usize) -> Vec<(f64, f64)> {
        assert!(i < self.dim, "component index out of bounds");
        self.iter().map(|(t, s)| (t, s[i])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Trajectory {
        let mut tr = Trajectory::new(0.0, vec![0.0, 10.0]);
        tr.push(1.0, vec![1.0, 20.0]);
        tr.push(2.0, vec![4.0, 30.0]);
        tr
    }

    #[test]
    fn accessors() {
        let tr = simple();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dim(), 2);
        assert!(!tr.is_empty());
        assert_eq!(tr.final_time(), 2.0);
        assert_eq!(tr.final_state(), &[4.0, 30.0]);
        assert_eq!(tr.component(1), vec![(0.0, 10.0), (1.0, 20.0), (2.0, 30.0)]);
    }

    #[test]
    fn interpolation_is_linear() {
        let tr = simple();
        let s = tr.sample(0.5).unwrap();
        assert_eq!(s, vec![0.5, 15.0]);
        // Exact hit returns the stored sample.
        assert_eq!(tr.sample(1.0).unwrap(), vec![1.0, 20.0]);
    }

    #[test]
    fn out_of_range_sampling_errors() {
        let tr = simple();
        assert!(tr.sample(-0.1).is_err());
        assert!(tr.sample(2.1).is_err());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_push_panics() {
        let mut tr = simple();
        tr.push(1.5, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension changed")]
    fn dimension_change_panics() {
        let mut tr = simple();
        tr.push(3.0, vec![0.0]);
    }
}

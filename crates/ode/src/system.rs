use aa_linalg::LinearOperator;

/// A first-order ODE system `du/dt = f(t, u)`.
///
/// This is the contract between problem definitions (circuits, PDE
/// semi-discretizations, gradient flows) and the integrators.
pub trait OdeSystem {
    /// State dimension.
    fn dim(&self) -> usize;

    /// Evaluates the derivative: `du ← f(t, u)`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `u.len()` or `du.len()` differ from
    /// [`dim`](Self::dim).
    fn eval(&self, t: f64, u: &[f64], du: &mut [f64]);
}

impl<T: OdeSystem + ?Sized> OdeSystem for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn eval(&self, t: f64, u: &[f64], du: &mut [f64]) {
        (**self).eval(t, u, du)
    }
}

/// An [`OdeSystem`] defined by a closure — convenient for examples and tests.
///
/// ```
/// use aa_ode::{FnSystem, OdeSystem};
///
/// let sys = FnSystem::new(2, |_t, u: &[f64], du: &mut [f64]| {
///     du[0] = u[1];
///     du[1] = -u[0]; // harmonic oscillator
/// });
/// let mut du = [0.0; 2];
/// sys.eval(0.0, &[1.0, 0.0], &mut du);
/// assert_eq!(du, [0.0, -1.0]);
/// ```
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnSystem<F> {
    /// Wraps a closure `f(t, u, du)` as a system of dimension `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }
    fn eval(&self, t: f64, u: &[f64], du: &mut [f64]) {
        assert_eq!(u.len(), self.dim, "eval: state length mismatch");
        assert_eq!(du.len(), self.dim, "eval: derivative length mismatch");
        (self.f)(t, u, du)
    }
}

impl<F> std::fmt::Debug for FnSystem<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSystem").field("dim", &self.dim).finish()
    }
}

/// The affine linear system `du/dt = c − M·u` over any linear operator `M`.
///
/// With `M = A` and `c = b` this is exactly the paper's continuous-time
/// gradient descent `du/dt = b − A·u(t)` (Equation 2) whose steady state
/// solves `A·u = b`. See also [`GradientFlow`] which adds the time-scaling
/// factor used by the analog hardware mapping.
#[derive(Debug, Clone)]
pub struct LinearSystem<M> {
    m: M,
    c: Vec<f64>,
}

impl<M: LinearOperator> LinearSystem<M> {
    /// Creates `du/dt = c − M·u`.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != m.dim()`.
    pub fn new(m: M, c: Vec<f64>) -> Self {
        assert_eq!(c.len(), m.dim(), "constant term length mismatch");
        LinearSystem { m, c }
    }

    /// The operator `M`.
    pub fn operator(&self) -> &M {
        &self.m
    }

    /// The constant drive `c`.
    pub fn constant(&self) -> &[f64] {
        &self.c
    }
}

impl<M: LinearOperator> OdeSystem for LinearSystem<M> {
    fn dim(&self) -> usize {
        self.m.dim()
    }

    fn eval(&self, _t: f64, u: &[f64], du: &mut [f64]) {
        self.m.apply(u, du);
        for (d, c) in du.iter_mut().zip(&self.c) {
            *d = c - *d;
        }
    }
}

/// The gradient flow `du/dt = κ·(b − A·u)` with an explicit rate constant.
///
/// The rate constant `κ` models the analog circuit's bandwidth: a higher
/// bandwidth design integrates "faster" in wall-clock terms (paper §V-B).
/// The steady state is independent of `κ` — only the time to reach it
/// changes, which is the essence of the paper's time-scaling argument.
#[derive(Debug, Clone)]
pub struct GradientFlow<M> {
    a: M,
    b: Vec<f64>,
    rate: f64,
}

impl<M: LinearOperator> GradientFlow<M> {
    /// Creates `du/dt = rate·(b − A·u)`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != a.dim()` or `rate` is not finite and positive.
    pub fn new(a: M, b: Vec<f64>, rate: f64) -> Self {
        assert_eq!(b.len(), a.dim(), "rhs length mismatch");
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate constant must be finite and positive"
        );
        GradientFlow { a, b, rate }
    }

    /// The system matrix `A`.
    pub fn matrix(&self) -> &M {
        &self.a
    }

    /// The right-hand side `b`.
    pub fn rhs(&self) -> &[f64] {
        &self.b
    }

    /// The rate constant `κ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl<M: LinearOperator> OdeSystem for GradientFlow<M> {
    fn dim(&self) -> usize {
        self.a.dim()
    }

    fn eval(&self, _t: f64, u: &[f64], du: &mut [f64]) {
        self.a.apply(u, du);
        for (d, b) in du.iter_mut().zip(&self.b) {
            *d = self.rate * (b - *d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aa_linalg::CsrMatrix;

    #[test]
    fn linear_system_derivative_is_b_minus_au() {
        let a = CsrMatrix::identity(2);
        let sys = LinearSystem::new(&a, vec![3.0, 4.0]);
        let mut du = [0.0; 2];
        sys.eval(0.0, &[1.0, 1.0], &mut du);
        assert_eq!(du, [2.0, 3.0]);
        assert_eq!(sys.constant(), &[3.0, 4.0]);
    }

    #[test]
    fn gradient_flow_scales_by_rate() {
        let a = CsrMatrix::identity(2);
        let slow = GradientFlow::new(&a, vec![1.0, 0.0], 1.0);
        let fast = GradientFlow::new(&a, vec![1.0, 0.0], 10.0);
        let mut du_slow = [0.0; 2];
        let mut du_fast = [0.0; 2];
        slow.eval(0.0, &[0.0, 0.0], &mut du_slow);
        fast.eval(0.0, &[0.0, 0.0], &mut du_fast);
        assert_eq!(du_fast[0], 10.0 * du_slow[0]);
        assert_eq!(fast.rate(), 10.0);
    }

    #[test]
    #[should_panic(expected = "rate constant")]
    fn gradient_flow_rejects_bad_rate() {
        let a = CsrMatrix::identity(1);
        let _ = GradientFlow::new(&a, vec![0.0], -1.0);
    }

    #[test]
    fn derivative_is_zero_at_solution() {
        // At u = A⁻¹b the gradient flow has zero derivative — the steady
        // state the analog accelerator reads out.
        let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).unwrap();
        let u = vec![1.5, 2.0, 1.5]; // A·u = [1, 1, 1]
        let flow = GradientFlow::new(&a, a.apply_vec(&u), 1.0);
        let mut du = [0.0; 3];
        flow.eval(0.0, &u, &mut du);
        for d in du {
            assert!(d.abs() < 1e-14);
        }
    }

    #[test]
    fn fn_system_debug_nonempty() {
        let sys = FnSystem::new(1, |_t, _u: &[f64], _du: &mut [f64]| {});
        assert!(format!("{sys:?}").contains("dim"));
    }
}

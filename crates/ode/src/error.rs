use std::error::Error;
use std::fmt;

/// Errors produced by the ODE integrators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OdeError {
    /// The initial state length does not match the system dimension.
    DimensionMismatch {
        /// System dimension.
        expected: usize,
        /// Supplied state length.
        actual: usize,
    },
    /// A non-positive or non-finite step size / time span was requested.
    InvalidStep {
        /// Description of the invalid quantity.
        message: String,
    },
    /// The adaptive integrator could not meet the tolerance within the step
    /// budget (commonly a stiff problem or an unstable circuit).
    StepBudgetExhausted {
        /// Time reached before giving up.
        reached: f64,
        /// Steps taken.
        steps: usize,
    },
    /// The state left the finite range (overflow / divergence).
    Diverged {
        /// Time at which a non-finite value first appeared.
        at_time: f64,
    },
    /// Newton iteration inside an implicit method failed to converge.
    NewtonFailed {
        /// Time of the failing step.
        at_time: f64,
        /// Newton iterations attempted.
        iterations: usize,
    },
    /// An error from the linear-algebra layer (implicit solvers factor matrices).
    Linalg(aa_linalg::LinalgError),
}

impl OdeError {
    pub(crate) fn invalid_step(message: impl Into<String>) -> Self {
        OdeError::InvalidStep {
            message: message.into(),
        }
    }
}

impl fmt::Display for OdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdeError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "state length {actual} does not match system dimension {expected}"
                )
            }
            OdeError::InvalidStep { message } => write!(f, "invalid step: {message}"),
            OdeError::StepBudgetExhausted { reached, steps } => write!(
                f,
                "step budget exhausted after {steps} steps at t = {reached}"
            ),
            OdeError::Diverged { at_time } => {
                write!(f, "state diverged to non-finite values at t = {at_time}")
            }
            OdeError::NewtonFailed {
                at_time,
                iterations,
            } => write!(
                f,
                "newton iteration failed to converge after {iterations} iterations at t = {at_time}"
            ),
            OdeError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for OdeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OdeError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aa_linalg::LinalgError> for OdeError {
    fn from(e: aa_linalg::LinalgError) -> Self {
        OdeError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OdeError::DimensionMismatch {
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("does not match"));
        let e = OdeError::Diverged { at_time: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e: OdeError = aa_linalg::LinalgError::invalid("x").into();
        assert!(e.to_string().contains("linear algebra"));
    }

    #[test]
    fn source_chains_to_linalg() {
        use std::error::Error;
        let e: OdeError = aa_linalg::LinalgError::invalid("x").into();
        assert!(e.source().is_some());
        assert!(OdeError::Diverged { at_time: 0.0 }.source().is_none());
    }
}

use aa_linalg::{direct::LuFactor, DenseMatrix};

use crate::{OdeError, OdeSystem, Trajectory};

/// Options for the Newton iteration inside [`backward_euler`].
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonOptions {
    /// Convergence tolerance on `‖Δu‖∞` per Newton solve.
    pub tolerance: f64,
    /// Maximum Newton iterations per time step.
    pub max_iterations: usize,
    /// Finite-difference perturbation for the Jacobian.
    pub fd_epsilon: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            tolerance: 1e-10,
            max_iterations: 25,
            fd_epsilon: 1e-7,
        }
    }
}

/// Backward (implicit) Euler: solves `u_{k+1} = u_k + h·f(t_{k+1}, u_{k+1})`
/// at every step with a damped Newton iteration and a finite-difference
/// Jacobian.
///
/// This is the "implicit time stepping (e.g., backward Euler)" box in the
/// paper's Figure 4 taxonomy — the route by which time-dependent PDEs give
/// rise to the sparse linear systems the analog accelerator targets: each
/// implicit step *is* a linear solve.
///
/// Intended for the moderate dimensions of the chip-level models; the dense
/// Jacobian costs `O(n²)` evaluations per step.
///
/// # Errors
///
/// * [`OdeError::DimensionMismatch`] if `u0.len() != system.dim()`.
/// * [`OdeError::InvalidStep`] on non-positive `dt` or `t_end`.
/// * [`OdeError::NewtonFailed`] if a step's Newton iteration stalls.
/// * [`OdeError::Linalg`] if the Newton matrix is singular.
///
/// ```
/// use aa_ode::{backward_euler, FnSystem, NewtonOptions};
///
/// // Stiff decay du/dt = -1000·u: explicit Euler needs dt < 2e-3;
/// // backward Euler is unconditionally stable.
/// let sys = FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| du[0] = -1000.0 * u[0]);
/// let traj = backward_euler(&sys, &[1.0], 1.0, 0.05, &NewtonOptions::default()).unwrap();
/// assert!(traj.final_state()[0].abs() < 1e-3);
/// ```
pub fn backward_euler<S: OdeSystem>(
    system: &S,
    u0: &[f64],
    t_end: f64,
    dt: f64,
    newton: &NewtonOptions,
) -> Result<Trajectory, OdeError> {
    let n = system.dim();
    if u0.len() != n {
        return Err(OdeError::DimensionMismatch {
            expected: n,
            actual: u0.len(),
        });
    }
    if !(dt.is_finite() && dt > 0.0) {
        return Err(OdeError::invalid_step(format!("dt = {dt}")));
    }
    if !(t_end.is_finite() && t_end > 0.0) {
        return Err(OdeError::invalid_step(format!("t_end = {t_end}")));
    }

    let mut traj = Trajectory::new(0.0, u0.to_vec());
    let mut u = u0.to_vec();
    let mut t = 0.0;
    let mut f_new = vec![0.0; n];
    let mut residual = vec![0.0; n];

    while t < t_end {
        let h = dt.min(t_end - t);
        let t_new = t + h;
        // Predictor: explicit Euler.
        system.eval(t, &u, &mut f_new);
        let mut u_new: Vec<f64> = u.iter().zip(&f_new).map(|(ui, fi)| ui + h * fi).collect();

        let mut converged = false;
        for _iter in 0..newton.max_iterations {
            // Residual g(u_new) = u_new − u − h·f(t_new, u_new).
            system.eval(t_new, &u_new, &mut f_new);
            for i in 0..n {
                residual[i] = u_new[i] - u[i] - h * f_new[i];
            }
            let rnorm = residual.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if rnorm <= newton.tolerance {
                converged = true;
                break;
            }
            // Jacobian of g: I − h·∂f/∂u (finite differences).
            let jac = newton_matrix(system, t_new, &u_new, h, newton.fd_epsilon)?;
            let delta = LuFactor::new(&jac)?.solve(&residual)?;
            for (ui, d) in u_new.iter_mut().zip(&delta) {
                *ui -= d;
            }
            if u_new.iter().any(|v| !v.is_finite()) {
                return Err(OdeError::Diverged { at_time: t_new });
            }
        }
        if !converged {
            return Err(OdeError::NewtonFailed {
                at_time: t_new,
                iterations: newton.max_iterations,
            });
        }
        u = u_new;
        t = t_new;
        traj.push(t, u.clone());
    }
    Ok(traj)
}

/// Builds `I − h·J_f(t, u)` by forward finite differences.
fn newton_matrix<S: OdeSystem>(
    system: &S,
    t: f64,
    u: &[f64],
    h: f64,
    eps: f64,
) -> Result<DenseMatrix, OdeError> {
    let n = u.len();
    let mut base = vec![0.0; n];
    system.eval(t, u, &mut base);
    let mut jac = DenseMatrix::zeros(n, n)?;
    let mut pert = u.to_vec();
    let mut f_pert = vec![0.0; n];
    for j in 0..n {
        let delta = eps * u[j].abs().max(1.0);
        pert[j] = u[j] + delta;
        system.eval(t, &pert, &mut f_pert);
        pert[j] = u[j];
        for i in 0..n {
            let dfdu = (f_pert[i] - base[i]) / delta;
            let identity = if i == j { 1.0 } else { 0.0 };
            jac.set(i, j, identity - h * dfdu);
        }
    }
    Ok(jac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{integrate_fixed, FixedMethod, FnSystem};

    fn stiff() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| du[0] = -1000.0 * u[0])
    }

    #[test]
    fn stable_on_stiff_problem_where_explicit_blows_up() {
        // dt = 0.01 violates the explicit stability bound (dt < 0.002)...
        let explicit = integrate_fixed(&stiff(), &[1.0], 1.0, 0.01, FixedMethod::Euler);
        let blew_up = match explicit {
            Err(OdeError::Diverged { .. }) => true,
            Ok(t) => t.final_state()[0].abs() > 1.0,
            Err(_) => false,
        };
        assert!(blew_up, "explicit Euler should be unstable here");
        // ...but backward Euler is fine.
        let implicit =
            backward_euler(&stiff(), &[1.0], 1.0, 0.01, &NewtonOptions::default()).unwrap();
        assert!(implicit.final_state()[0].abs() < 1e-3);
    }

    #[test]
    fn first_order_accuracy_on_smooth_problem() {
        let sys = FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| du[0] = -u[0]);
        let exact = (-1.0f64).exp();
        let err = |dt: f64| {
            let t = backward_euler(&sys, &[1.0], 1.0, dt, &NewtonOptions::default()).unwrap();
            (t.final_state()[0] - exact).abs()
        };
        let ratio = err(0.02) / err(0.01);
        assert!((ratio - 2.0).abs() < 0.3, "first-order ratio = {ratio}");
    }

    #[test]
    fn nonlinear_logistic_equation() {
        // du/dt = u(1−u): logistic growth to the stable fixed point u = 1.
        let sys = FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| {
            du[0] = u[0] * (1.0 - u[0])
        });
        let traj = backward_euler(&sys, &[0.1], 20.0, 0.1, &NewtonOptions::default()).unwrap();
        assert!((traj.final_state()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn coupled_system() {
        // Rotation with damping: spirals to the origin.
        let sys = FnSystem::new(2, |_t, u: &[f64], du: &mut [f64]| {
            du[0] = -0.5 * u[0] + u[1];
            du[1] = -u[0] - 0.5 * u[1];
        });
        let traj =
            backward_euler(&sys, &[1.0, 0.0], 20.0, 0.05, &NewtonOptions::default()).unwrap();
        let end = traj.final_state();
        assert!(end[0].abs() < 1e-3 && end[1].abs() < 1e-3);
    }

    #[test]
    fn validates_inputs() {
        let sys = stiff();
        assert!(backward_euler(&sys, &[1.0, 2.0], 1.0, 0.1, &NewtonOptions::default()).is_err());
        assert!(backward_euler(&sys, &[1.0], 1.0, 0.0, &NewtonOptions::default()).is_err());
        assert!(backward_euler(&sys, &[1.0], -1.0, 0.1, &NewtonOptions::default()).is_err());
    }
}

//! ODE integration substrate for the `analog-accel` workspace.
//!
//! Analog computers *are* ODE solvers: the configured circuit is a system
//! `du/dt = f(t, u)` evolving in continuous time (paper §II). This crate
//! provides the numerical machinery that both
//!
//! * simulates the analog accelerator chip model (`aa-analog` compiles a
//!   netlist into an [`OdeSystem`] and integrates it), and
//! * implements the "explicit time stepping" box of the paper's Figure 4
//!   problem taxonomy for the digital comparison.
//!
//! # Integrators
//!
//! * [`integrate_fixed`] — fixed-step explicit [Euler](FixedMethod::Euler)
//!   (the paper's Algorithm 1), [midpoint](FixedMethod::Midpoint), and
//!   classic [RK4](FixedMethod::Rk4).
//! * [`integrate_adaptive`] — embedded Cash–Karp RK4(5) with step-size
//!   control.
//! * [`integrate_to_steady_state`] — runs until `‖du/dt‖∞` falls below a
//!   threshold, which is exactly how the analog accelerator detects that a
//!   linear-algebra solve has converged (§IV-A: "the steady state value of
//!   u(t) satisfies the system of linear equations").
//! * [`backward_euler`] — implicit first-order stepping via damped Newton,
//!   the "implicit time stepping" box of Figure 4.
//!
//! # Quick start
//!
//! ```
//! use aa_ode::{integrate_fixed, FixedMethod, FnSystem};
//!
//! // du/dt = -u, u(0) = 1: the solution is e^{-t}.
//! let system = FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| du[0] = -u[0]);
//! let traj = integrate_fixed(&system, &[1.0], 1.0, 1e-4, FixedMethod::Rk4).unwrap();
//! let u1 = traj.final_state()[0];
//! assert!((u1 - (-1.0f64).exp()).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod error;
mod euler;
mod fixed;
mod implicit;
mod steady;
mod system;
mod trajectory;

pub use adaptive::{integrate_adaptive, AdaptiveOptions, AdaptiveStats};
pub use error::OdeError;
pub use euler::algorithm1;
pub use fixed::{integrate_fixed, FixedMethod};
pub use implicit::{backward_euler, NewtonOptions};
pub use steady::{integrate_to_steady_state, SteadyOptions, SteadyReport};
pub use system::{FnSystem, GradientFlow, LinearSystem, OdeSystem};
pub use trajectory::Trajectory;

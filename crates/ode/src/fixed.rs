use crate::{OdeError, OdeSystem, Trajectory};

/// Fixed-step explicit integration methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FixedMethod {
    /// Forward Euler — the paper's Algorithm 1, first order.
    Euler,
    /// Explicit midpoint (RK2), second order.
    Midpoint,
    /// Classic Runge–Kutta, fourth order.
    Rk4,
}

impl FixedMethod {
    /// Formal order of accuracy.
    pub fn order(&self) -> u32 {
        match self {
            FixedMethod::Euler => 1,
            FixedMethod::Midpoint => 2,
            FixedMethod::Rk4 => 4,
        }
    }

    /// Derivative evaluations per step.
    pub fn stages(&self) -> usize {
        match self {
            FixedMethod::Euler => 1,
            FixedMethod::Midpoint => 2,
            FixedMethod::Rk4 => 4,
        }
    }
}

/// Integrates `system` from `u0` over `[0, t_end]` with fixed step `dt`.
///
/// The final step is shortened so the trajectory ends exactly at `t_end`.
///
/// # Errors
///
/// * [`OdeError::DimensionMismatch`] if `u0.len() != system.dim()`.
/// * [`OdeError::InvalidStep`] if `dt` or `t_end` is non-positive/non-finite.
/// * [`OdeError::Diverged`] if the state becomes non-finite.
///
/// ```
/// use aa_ode::{integrate_fixed, FixedMethod, FnSystem};
///
/// // Constant derivative: u(t) = 2t.
/// let sys = FnSystem::new(1, |_t, _u: &[f64], du: &mut [f64]| du[0] = 2.0);
/// let traj = integrate_fixed(&sys, &[0.0], 3.0, 0.5, FixedMethod::Euler).unwrap();
/// assert!((traj.final_state()[0] - 6.0).abs() < 1e-12);
/// ```
pub fn integrate_fixed<S: OdeSystem>(
    system: &S,
    u0: &[f64],
    t_end: f64,
    dt: f64,
    method: FixedMethod,
) -> Result<Trajectory, OdeError> {
    let n = system.dim();
    if u0.len() != n {
        return Err(OdeError::DimensionMismatch {
            expected: n,
            actual: u0.len(),
        });
    }
    if !(dt.is_finite() && dt > 0.0) {
        return Err(OdeError::invalid_step(format!("dt = {dt}")));
    }
    if !(t_end.is_finite() && t_end > 0.0) {
        return Err(OdeError::invalid_step(format!("t_end = {t_end}")));
    }

    let mut traj = Trajectory::new(0.0, u0.to_vec());
    let mut u = u0.to_vec();
    let mut t = 0.0;
    let mut scratch = Scratch::new(n);

    while t < t_end {
        let h = dt.min(t_end - t);
        step(system, t, &mut u, h, method, &mut scratch);
        t += h;
        if u.iter().any(|v| !v.is_finite()) {
            return Err(OdeError::Diverged { at_time: t });
        }
        traj.push(t, u.clone());
    }
    Ok(traj)
}

/// Scratch buffers reused across steps (k-stages and the midpoint state).
pub(crate) struct Scratch {
    pub(crate) k1: Vec<f64>,
    pub(crate) k2: Vec<f64>,
    pub(crate) k3: Vec<f64>,
    pub(crate) k4: Vec<f64>,
    pub(crate) mid: Vec<f64>,
}

impl Scratch {
    pub(crate) fn new(n: usize) -> Self {
        Scratch {
            k1: vec![0.0; n],
            k2: vec![0.0; n],
            k3: vec![0.0; n],
            k4: vec![0.0; n],
            mid: vec![0.0; n],
        }
    }
}

/// Advances `u` in place by one step of size `h`.
pub(crate) fn step<S: OdeSystem>(
    system: &S,
    t: f64,
    u: &mut [f64],
    h: f64,
    method: FixedMethod,
    s: &mut Scratch,
) {
    match method {
        FixedMethod::Euler => {
            system.eval(t, u, &mut s.k1);
            for (ui, k) in u.iter_mut().zip(&s.k1) {
                *ui += h * k;
            }
        }
        FixedMethod::Midpoint => {
            system.eval(t, u, &mut s.k1);
            for ((m, ui), k) in s.mid.iter_mut().zip(u.iter()).zip(&s.k1) {
                *m = ui + 0.5 * h * k;
            }
            system.eval(t + 0.5 * h, &s.mid, &mut s.k2);
            for (ui, k) in u.iter_mut().zip(&s.k2) {
                *ui += h * k;
            }
        }
        FixedMethod::Rk4 => {
            system.eval(t, u, &mut s.k1);
            for ((m, ui), k) in s.mid.iter_mut().zip(u.iter()).zip(&s.k1) {
                *m = ui + 0.5 * h * k;
            }
            system.eval(t + 0.5 * h, &s.mid, &mut s.k2);
            for ((m, ui), k) in s.mid.iter_mut().zip(u.iter()).zip(&s.k2) {
                *m = ui + 0.5 * h * k;
            }
            system.eval(t + 0.5 * h, &s.mid, &mut s.k3);
            for ((m, ui), k) in s.mid.iter_mut().zip(u.iter()).zip(&s.k3) {
                *m = ui + h * k;
            }
            system.eval(t + h, &s.mid, &mut s.k4);
            for (i, ui) in u.iter_mut().enumerate() {
                *ui += h / 6.0 * (s.k1[i] + 2.0 * s.k2[i] + 2.0 * s.k3[i] + s.k4[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnSystem;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| du[0] = -u[0])
    }

    #[test]
    fn orders_and_stages() {
        assert_eq!(FixedMethod::Euler.order(), 1);
        assert_eq!(FixedMethod::Midpoint.order(), 2);
        assert_eq!(FixedMethod::Rk4.order(), 4);
        assert_eq!(FixedMethod::Rk4.stages(), 4);
    }

    #[test]
    fn accuracy_improves_with_order() {
        let exact = (-1.0f64).exp();
        let err = |m| {
            let traj = integrate_fixed(&decay(), &[1.0], 1.0, 0.05, m).unwrap();
            (traj.final_state()[0] - exact).abs()
        };
        let e_euler = err(FixedMethod::Euler);
        let e_mid = err(FixedMethod::Midpoint);
        let e_rk4 = err(FixedMethod::Rk4);
        assert!(e_euler > e_mid);
        assert!(e_mid > e_rk4);
        assert!(e_rk4 < 1e-7);
    }

    #[test]
    fn euler_converges_first_order() {
        let exact = (-1.0f64).exp();
        let err = |dt: f64| {
            let traj = integrate_fixed(&decay(), &[1.0], 1.0, dt, FixedMethod::Euler).unwrap();
            (traj.final_state()[0] - exact).abs()
        };
        let ratio = err(0.01) / err(0.005);
        assert!((ratio - 2.0).abs() < 0.2, "first-order ratio = {ratio}");
    }

    #[test]
    fn rk4_converges_fourth_order() {
        let exact = (-1.0f64).exp();
        let err = |dt: f64| {
            let traj = integrate_fixed(&decay(), &[1.0], 1.0, dt, FixedMethod::Rk4).unwrap();
            (traj.final_state()[0] - exact).abs()
        };
        let ratio = err(0.1) / err(0.05);
        assert!(ratio > 12.0 && ratio < 20.0, "fourth-order ratio = {ratio}");
    }

    #[test]
    fn harmonic_oscillator_conserves_energy_approximately() {
        let sys = FnSystem::new(2, |_t, u: &[f64], du: &mut [f64]| {
            du[0] = u[1];
            du[1] = -u[0];
        });
        let traj = integrate_fixed(
            &sys,
            &[1.0, 0.0],
            2.0 * std::f64::consts::PI,
            1e-3,
            FixedMethod::Rk4,
        )
        .unwrap();
        let end = traj.final_state();
        assert!((end[0] - 1.0).abs() < 1e-9);
        assert!(end[1].abs() < 1e-9);
    }

    #[test]
    fn final_time_is_exact_despite_uneven_division() {
        let traj = integrate_fixed(&decay(), &[1.0], 1.0, 0.3, FixedMethod::Euler).unwrap();
        assert!((traj.final_time() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn validates_inputs() {
        assert!(matches!(
            integrate_fixed(&decay(), &[1.0, 2.0], 1.0, 0.1, FixedMethod::Euler),
            Err(OdeError::DimensionMismatch { .. })
        ));
        assert!(integrate_fixed(&decay(), &[1.0], 1.0, 0.0, FixedMethod::Euler).is_err());
        assert!(integrate_fixed(&decay(), &[1.0], -1.0, 0.1, FixedMethod::Euler).is_err());
        assert!(integrate_fixed(&decay(), &[1.0], f64::NAN, 0.1, FixedMethod::Euler).is_err());
    }

    #[test]
    fn divergence_detected() {
        // du/dt = u²: blows up in finite time from u(0) = 1 at t = 1.
        let sys = FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| du[0] = u[0] * u[0]);
        let result = integrate_fixed(&sys, &[1.0], 2.0, 0.01, FixedMethod::Rk4);
        assert!(matches!(result, Err(OdeError::Diverged { .. })));
    }
}

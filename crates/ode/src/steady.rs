use crate::fixed::{step, Scratch};
use crate::{FixedMethod, OdeError, OdeSystem, Trajectory};

/// Options for steady-state integration.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyOptions {
    /// Declare steady state when `‖du/dt‖∞ ≤ derivative_tol`.
    pub derivative_tol: f64,
    /// Integration step size.
    pub dt: f64,
    /// Give up (with `reached_steady_state = false`) after this much time.
    pub max_time: f64,
    /// Method used for the underlying steps.
    pub method: FixedMethod,
    /// Record at most this many samples into the trajectory (uniformly
    /// thinned); `0` keeps only the endpoints.
    pub max_samples: usize,
}

impl Default for SteadyOptions {
    fn default() -> Self {
        SteadyOptions {
            derivative_tol: 1e-9,
            dt: 1e-3,
            max_time: 1e4,
            method: FixedMethod::Rk4,
            max_samples: 1024,
        }
    }
}

/// Outcome of a steady-state integration.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyReport {
    /// The trajectory up to the stopping time (thinned to `max_samples`).
    pub trajectory: Trajectory,
    /// Whether the derivative criterion was met before `max_time`.
    pub reached_steady_state: bool,
    /// Simulated time at which integration stopped.
    pub settle_time: f64,
    /// `‖du/dt‖∞` at the stopping point.
    pub final_derivative_norm: f64,
    /// Number of integration steps taken.
    pub steps: usize,
}

impl SteadyReport {
    /// The steady-state vector (final state of the trajectory).
    pub fn state(&self) -> &[f64] {
        self.trajectory.final_state()
    }
}

/// Integrates until the derivative vanishes — the analog accelerator's
/// operating mode for linear algebra.
///
/// The paper (§IV-A): "As u(t) evolves, the derivative approaches zero so
/// long as A is a positive definite matrix. When the derivative becomes zero,
/// the steady state value of u(t) satisfies the system of linear equations."
/// This routine is the numerical embodiment of the `execStart`/`execStop`
/// window of the accelerator's Table I ISA.
///
/// # Errors
///
/// * [`OdeError::DimensionMismatch`] if `u0.len() != system.dim()`.
/// * [`OdeError::InvalidStep`] on non-positive `dt`, tolerance, or `max_time`.
/// * [`OdeError::Diverged`] if the state becomes non-finite (e.g. the gradient
///   flow of a non-positive-definite matrix).
///
/// ```
/// use aa_ode::{integrate_to_steady_state, GradientFlow, SteadyOptions};
/// use aa_linalg::CsrMatrix;
///
/// # fn main() -> Result<(), aa_ode::OdeError> {
/// let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0)?;
/// let flow = GradientFlow::new(&a, vec![1.0, 1.0, 1.0], 1.0);
/// let report = integrate_to_steady_state(&flow, &[0.0; 3], &SteadyOptions::default())?;
/// assert!(report.reached_steady_state);
/// // Steady state solves A·u = b: u = [1.5, 2, 1.5].
/// assert!((report.state()[1] - 2.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn integrate_to_steady_state<S: OdeSystem>(
    system: &S,
    u0: &[f64],
    options: &SteadyOptions,
) -> Result<SteadyReport, OdeError> {
    let n = system.dim();
    if u0.len() != n {
        return Err(OdeError::DimensionMismatch {
            expected: n,
            actual: u0.len(),
        });
    }
    if !(options.dt.is_finite() && options.dt > 0.0) {
        return Err(OdeError::invalid_step(format!("dt = {}", options.dt)));
    }
    if !(options.max_time.is_finite() && options.max_time > 0.0) {
        return Err(OdeError::invalid_step(format!(
            "max_time = {}",
            options.max_time
        )));
    }
    if options.derivative_tol <= 0.0 || options.derivative_tol.is_nan() {
        return Err(OdeError::invalid_step(
            "derivative_tol must be positive".to_string(),
        ));
    }

    // Thinning: record every `record_every`-th step so the trajectory holds
    // at most max_samples interior points.
    let total_steps = (options.max_time / options.dt).ceil() as usize;
    let record_every = total_steps
        .checked_div(options.max_samples)
        .map_or(usize::MAX, |n| n.max(1));

    let mut traj = Trajectory::new(0.0, u0.to_vec());
    let mut u = u0.to_vec();
    let mut du = vec![0.0; n];
    let mut scratch = Scratch::new(n);
    let mut t = 0.0;
    let mut steps = 0;

    loop {
        system.eval(t, &u, &mut du);
        let dnorm = du.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let steady = dnorm <= options.derivative_tol;
        let timed_out = t >= options.max_time;
        if steady || timed_out {
            if t > traj.final_time() {
                traj.push(t, u.clone());
            }
            return Ok(SteadyReport {
                trajectory: traj,
                reached_steady_state: steady,
                settle_time: t,
                final_derivative_norm: dnorm,
                steps,
            });
        }

        let h = options.dt.min(options.max_time - t);
        step(system, t, &mut u, h, options.method, &mut scratch);
        t += h;
        steps += 1;
        if u.iter().any(|v| !v.is_finite()) {
            return Err(OdeError::Diverged { at_time: t });
        }
        if steps % record_every == 0 {
            traj.push(t, u.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnSystem, GradientFlow};
    use aa_linalg::CsrMatrix;

    #[test]
    fn settle_time_scales_inversely_with_rate() {
        // Doubling the rate constant (bandwidth) halves the settle time —
        // the paper's bandwidth/performance proportionality.
        let a = CsrMatrix::identity(1);
        let settle = |rate: f64| {
            let flow = GradientFlow::new(&a, vec![1.0], rate);
            integrate_to_steady_state(
                &flow,
                &[0.0],
                &SteadyOptions {
                    derivative_tol: 1e-6,
                    dt: 1e-4,
                    ..SteadyOptions::default()
                },
            )
            .unwrap()
            .settle_time
        };
        // |du/dt| = rate·e^{−rate·t} crosses tol at t = ln(rate/tol)/rate, so
        // the analytic times are t₁ = ln(1e6) ≈ 13.82 and t₂ = ln(2e6)/2 ≈ 7.25.
        let t1 = settle(1.0);
        let t2 = settle(2.0);
        assert!((t1 - (1e6f64).ln()).abs() < 0.01, "t1 = {t1}");
        assert!((t2 - (2e6f64).ln() / 2.0).abs() < 0.01, "t2 = {t2}");
        assert!(t1 / t2 > 1.8, "higher bandwidth must settle faster");
    }

    #[test]
    fn gradient_flow_reaches_linear_solution() {
        let a = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
        let b = vec![1.0, 0.0, 0.0, 1.0];
        let flow = GradientFlow::new(&a, b.clone(), 1.0);
        let report =
            integrate_to_steady_state(&flow, &[0.0; 4], &SteadyOptions::default()).unwrap();
        assert!(report.reached_steady_state);
        use aa_linalg::LinearOperator;
        assert!(a.residual_norm(report.state(), &b) < 1e-6);
    }

    #[test]
    fn timeout_reported_when_never_steady() {
        // Constant derivative never settles.
        let sys = FnSystem::new(1, |_t, _u: &[f64], du: &mut [f64]| du[0] = 1.0);
        let report = integrate_to_steady_state(
            &sys,
            &[0.0],
            &SteadyOptions {
                max_time: 0.5,
                dt: 0.01,
                ..SteadyOptions::default()
            },
        )
        .unwrap();
        assert!(!report.reached_steady_state);
        assert!((report.settle_time - 0.5).abs() < 1e-9);
    }

    #[test]
    fn divergence_on_indefinite_flow() {
        // du/dt = +u diverges (analog overflow analogue).
        let sys = FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| du[0] = u[0] * 1e3);
        let result = integrate_to_steady_state(
            &sys,
            &[1.0],
            &SteadyOptions {
                dt: 1.0,
                ..SteadyOptions::default()
            },
        );
        assert!(matches!(result, Err(OdeError::Diverged { .. })));
    }

    #[test]
    fn trajectory_thinning_bounds_samples() {
        let a = CsrMatrix::identity(1);
        let flow = GradientFlow::new(&a, vec![1.0], 1.0);
        let report = integrate_to_steady_state(
            &flow,
            &[0.0],
            &SteadyOptions {
                derivative_tol: 1e-10,
                dt: 1e-5,
                max_samples: 64,
                ..SteadyOptions::default()
            },
        )
        .unwrap();
        // Some slack: endpoints are always kept.
        assert!(report.trajectory.len() <= 66 + report.steps / 1_000_000);
    }

    #[test]
    fn already_steady_initial_state() {
        let a = CsrMatrix::identity(2);
        let flow = GradientFlow::new(&a, vec![3.0, 4.0], 1.0);
        let report =
            integrate_to_steady_state(&flow, &[3.0, 4.0], &SteadyOptions::default()).unwrap();
        assert!(report.reached_steady_state);
        assert_eq!(report.steps, 0);
        assert_eq!(report.settle_time, 0.0);
    }

    #[test]
    fn validates_options() {
        let sys = FnSystem::new(1, |_t, _u: &[f64], du: &mut [f64]| du[0] = 0.0);
        let bad_dt = SteadyOptions {
            dt: 0.0,
            ..SteadyOptions::default()
        };
        assert!(integrate_to_steady_state(&sys, &[0.0], &bad_dt).is_err());
        let bad_tol = SteadyOptions {
            derivative_tol: -1.0,
            ..SteadyOptions::default()
        };
        assert!(integrate_to_steady_state(&sys, &[0.0], &bad_tol).is_err());
    }
}

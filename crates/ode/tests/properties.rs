//! Property-style tests on the ODE integrators.
//!
//! Cases are drawn from a seeded [`Rng64`] stream so the suite is fully
//! deterministic while still sweeping a wide parameter range.

use aa_linalg::rng::Rng64;
use aa_ode::{
    backward_euler, integrate_adaptive, integrate_fixed, AdaptiveOptions, FixedMethod, FnSystem,
    NewtonOptions,
};

/// Linearity: for the linear system du/dt = −k·u, scaling the initial
/// condition scales the whole trajectory (all integrators are linear maps on
/// linear systems).
#[test]
fn linear_systems_scale_linearly() {
    let mut rng = Rng64::seed_from_u64(1);
    for _ in 0..48 {
        let k = rng.range(0.1, 5.0);
        let u0 = rng.range(-10.0, 10.0);
        let scale = rng.range(0.1, 10.0);
        let sys = FnSystem::new(1, move |_t, u: &[f64], du: &mut [f64]| du[0] = -k * u[0]);
        let a = integrate_fixed(&sys, &[u0], 1.0, 0.01, FixedMethod::Rk4).unwrap();
        let b = integrate_fixed(&sys, &[u0 * scale], 1.0, 0.01, FixedMethod::Rk4).unwrap();
        let fa = a.final_state()[0];
        let fb = b.final_state()[0];
        assert!((fb - fa * scale).abs() <= 1e-9 * fa.abs().max(1.0) * scale);
    }
}

/// Exponential decay never undershoots zero or overshoots the initial value
/// for any stable step size (RK4 on the test equation).
#[test]
fn decay_stays_monotone_in_bounds() {
    let mut rng = Rng64::seed_from_u64(2);
    for _ in 0..48 {
        let k = rng.range(0.1, 5.0);
        let dt = rng.range(0.001, 0.4);
        let sys = FnSystem::new(1, move |_t, u: &[f64], du: &mut [f64]| du[0] = -k * u[0]);
        let traj = integrate_fixed(&sys, &[1.0], 2.0, dt, FixedMethod::Rk4).unwrap();
        for (_, s) in traj.iter() {
            assert!(s[0] >= -1e-12 && s[0] <= 1.0 + 1e-12);
        }
        // Monotone decreasing.
        for w in traj.states().windows(2) {
            assert!(w[1][0] <= w[0][0] + 1e-12);
        }
    }
}

/// The adaptive integrator agrees with a fine fixed-step reference on the
/// logistic equation, within its own tolerance.
#[test]
fn adaptive_matches_fixed_reference() {
    let mut rng = Rng64::seed_from_u64(3);
    for _ in 0..24 {
        let u0 = rng.range(0.05, 0.95);
        let sys = FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| {
            du[0] = u[0] * (1.0 - u[0])
        });
        let reference = integrate_fixed(&sys, &[u0], 3.0, 1e-4, FixedMethod::Rk4).unwrap();
        let (adaptive, _) = integrate_adaptive(
            &sys,
            &[u0],
            3.0,
            &AdaptiveOptions {
                rtol: 1e-9,
                atol: 1e-11,
                ..AdaptiveOptions::default()
            },
        )
        .unwrap();
        let r = reference.final_state()[0];
        let a = adaptive.final_state()[0];
        assert!((r - a).abs() < 1e-7, "{r} vs {a}");
    }
}

/// Backward Euler is unconditionally bounded on the decay problem for ANY
/// positive step (A-stability) — explicit methods are not.
#[test]
fn backward_euler_is_a_stable() {
    let mut rng = Rng64::seed_from_u64(4);
    for _ in 0..48 {
        let k = rng.range(1.0, 1000.0);
        let dt = rng.range(0.001, 10.0);
        let sys = FnSystem::new(1, move |_t, u: &[f64], du: &mut [f64]| du[0] = -k * u[0]);
        let traj = backward_euler(&sys, &[1.0], 5.0 * dt, dt, &NewtonOptions::default()).unwrap();
        for (_, s) in traj.iter() {
            assert!(s[0].abs() <= 1.0 + 1e-9, "unbounded at k={k} dt={dt}");
        }
    }
}

/// Trajectory sampling never extrapolates and is exact at endpoints.
#[test]
fn trajectory_endpoints_exact() {
    let mut rng = Rng64::seed_from_u64(5);
    for _ in 0..48 {
        let u0 = rng.range(-5.0, 5.0);
        let t_end = rng.range(0.1, 3.0);
        let sys = FnSystem::new(1, |_t, _u: &[f64], du: &mut [f64]| du[0] = 1.0);
        let traj = integrate_fixed(&sys, &[u0], t_end, 0.01, FixedMethod::Euler).unwrap();
        let start = traj.sample(0.0).unwrap();
        assert!((start[0] - u0).abs() < 1e-12);
        let end = traj.sample(traj.final_time()).unwrap();
        assert!((end[0] - traj.final_state()[0]).abs() < 1e-12);
        assert!(traj.sample(t_end + 0.1).is_err());
        assert!(traj.sample(-0.1).is_err());
    }
}

/// The paper's Algorithm 1 agrees with the generic Euler integrator.
#[test]
fn algorithm1_equals_generic_euler() {
    let (a, b, u0) = (-0.7, 0.35, 0.9);
    let steps = 1000;
    let history = aa_ode::algorithm1(2.0, steps, a, b, u0);
    let sys = FnSystem::new(1, move |_t, u: &[f64], du: &mut [f64]| du[0] = a * u[0] + b);
    let traj = integrate_fixed(&sys, &[u0], 2.0, 2.0 / steps as f64, FixedMethod::Euler).unwrap();
    assert!((history.last().unwrap() - traj.final_state()[0]).abs() < 1e-12);
}

//! Property-based tests on the ODE integrators.

use aa_ode::{
    backward_euler, integrate_adaptive, integrate_fixed, AdaptiveOptions, FixedMethod, FnSystem,
    NewtonOptions,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Linearity: for the linear system du/dt = −k·u, scaling the initial
    /// condition scales the whole trajectory (all integrators are linear
    /// maps on linear systems).
    #[test]
    fn linear_systems_scale_linearly(
        k in 0.1f64..5.0,
        u0 in -10.0f64..10.0,
        scale in 0.1f64..10.0,
    ) {
        let sys = FnSystem::new(1, move |_t, u: &[f64], du: &mut [f64]| du[0] = -k * u[0]);
        let a = integrate_fixed(&sys, &[u0], 1.0, 0.01, FixedMethod::Rk4).unwrap();
        let b = integrate_fixed(&sys, &[u0 * scale], 1.0, 0.01, FixedMethod::Rk4).unwrap();
        let fa = a.final_state()[0];
        let fb = b.final_state()[0];
        prop_assert!((fb - fa * scale).abs() <= 1e-9 * fa.abs().max(1.0) * scale);
    }

    /// Exponential decay never undershoots zero or overshoots the initial
    /// value for any stable step size (RK4 on the test equation).
    #[test]
    fn decay_stays_monotone_in_bounds(
        k in 0.1f64..5.0,
        dt in 0.001f64..0.4,
    ) {
        let sys = FnSystem::new(1, move |_t, u: &[f64], du: &mut [f64]| du[0] = -k * u[0]);
        let traj = integrate_fixed(&sys, &[1.0], 2.0, dt, FixedMethod::Rk4).unwrap();
        for (_, s) in traj.iter() {
            prop_assert!(s[0] >= -1e-12 && s[0] <= 1.0 + 1e-12);
        }
        // Monotone decreasing.
        for w in traj.states().windows(2) {
            prop_assert!(w[1][0] <= w[0][0] + 1e-12);
        }
    }

    /// The adaptive integrator agrees with a fine fixed-step reference on
    /// the logistic equation, within its own tolerance.
    #[test]
    fn adaptive_matches_fixed_reference(u0 in 0.05f64..0.95) {
        let sys = FnSystem::new(1, |_t, u: &[f64], du: &mut [f64]| du[0] = u[0] * (1.0 - u[0]));
        let reference = integrate_fixed(&sys, &[u0], 3.0, 1e-4, FixedMethod::Rk4).unwrap();
        let (adaptive, _) = integrate_adaptive(
            &sys,
            &[u0],
            3.0,
            &AdaptiveOptions { rtol: 1e-9, atol: 1e-11, ..AdaptiveOptions::default() },
        )
        .unwrap();
        let r = reference.final_state()[0];
        let a = adaptive.final_state()[0];
        prop_assert!((r - a).abs() < 1e-7, "{r} vs {a}");
    }

    /// Backward Euler is unconditionally bounded on the decay problem for
    /// ANY positive step (A-stability) — explicit methods are not.
    #[test]
    fn backward_euler_is_a_stable(
        k in 1.0f64..1000.0,
        dt in 0.001f64..10.0,
    ) {
        let sys = FnSystem::new(1, move |_t, u: &[f64], du: &mut [f64]| du[0] = -k * u[0]);
        let traj = backward_euler(&sys, &[1.0], 5.0 * dt, dt, &NewtonOptions::default()).unwrap();
        for (_, s) in traj.iter() {
            prop_assert!(s[0].abs() <= 1.0 + 1e-9, "unbounded at k={k} dt={dt}");
        }
    }

    /// Trajectory sampling never extrapolates and is exact at endpoints.
    #[test]
    fn trajectory_endpoints_exact(u0 in -5.0f64..5.0, t_end in 0.1f64..3.0) {
        let sys = FnSystem::new(1, |_t, _u: &[f64], du: &mut [f64]| du[0] = 1.0);
        let traj = integrate_fixed(&sys, &[u0], t_end, 0.01, FixedMethod::Euler).unwrap();
        let start = traj.sample(0.0).unwrap();
        prop_assert!((start[0] - u0).abs() < 1e-12);
        let end = traj.sample(traj.final_time()).unwrap();
        prop_assert!((end[0] - traj.final_state()[0]).abs() < 1e-12);
        prop_assert!(traj.sample(t_end + 0.1).is_err());
        prop_assert!(traj.sample(-0.1).is_err());
    }
}

/// The paper's Algorithm 1 agrees with the generic Euler integrator.
#[test]
fn algorithm1_equals_generic_euler() {
    let (a, b, u0) = (-0.7, 0.35, 0.9);
    let steps = 1000;
    let history = aa_ode::algorithm1(2.0, steps, a, b, u0);
    let sys = FnSystem::new(1, move |_t, u: &[f64], du: &mut [f64]| du[0] = a * u[0] + b);
    let traj = integrate_fixed(&sys, &[u0], 2.0, 2.0 / steps as f64, FixedMethod::Euler).unwrap();
    assert!((history.last().unwrap() - traj.final_state()[0]).abs() < 1e-12);
}

use crate::{DenseMatrix, LinalgError};

/// Singular value decomposition `A = U·Σ·Vᵀ` by one-sided Jacobi rotations.
///
/// The last direct-solver box of the paper's Figure 4 taxonomy ("Cholesky,
/// QR, SVD"). One-sided Jacobi repeatedly orthogonalizes pairs of columns of
/// `B = A·V`; at convergence the column norms of `B` are the singular values
/// and its normalized columns are `U`. Simple, unconditionally convergent,
/// and accurate for the small dense systems this workspace handles.
///
/// ```
/// use aa_linalg::{DenseMatrix, direct::SvdFactor};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]])?;
/// let svd = SvdFactor::new(&a)?;
/// assert!((svd.singular_values()[0] - 3.0).abs() < 1e-12);
/// assert!((svd.singular_values()[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SvdFactor {
    /// Left singular vectors (columns).
    u: DenseMatrix,
    /// Singular values, descending.
    sigma: Vec<f64>,
    /// Right singular vectors (columns).
    v: DenseMatrix,
    n: usize,
}

impl SvdFactor {
    /// Off-diagonal mass threshold (relative) for sweep convergence.
    const SWEEP_TOL: f64 = 1e-14;
    /// Maximum Jacobi sweeps.
    const MAX_SWEEPS: usize = 60;

    /// Decomposes a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if `a` is not square.
    pub fn new(a: &DenseMatrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut b = a.clone();
        let mut v = DenseMatrix::identity(n);
        let scale = a.max_abs().max(f64::MIN_POSITIVE);

        for _sweep in 0..Self::MAX_SWEEPS {
            let mut rotated = false;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Gram entries of columns p, q.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..n {
                        app += b.get(i, p) * b.get(i, p);
                        aqq += b.get(i, q) * b.get(i, q);
                        apq += b.get(i, p) * b.get(i, q);
                    }
                    if apq.abs() <= Self::SWEEP_TOL * scale * scale {
                        continue;
                    }
                    rotated = true;
                    // Jacobi rotation annihilating the (p, q) Gram entry.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..n {
                        let bp = b.get(i, p);
                        let bq = b.get(i, q);
                        b.set(i, p, c * bp - s * bq);
                        b.set(i, q, s * bp + c * bq);
                        let vp = v.get(i, p);
                        let vq = v.get(i, q);
                        v.set(i, p, c * vp - s * vq);
                        v.set(i, q, s * vp + c * vq);
                    }
                }
            }
            if !rotated {
                break;
            }
        }

        // Column norms → singular values; normalized columns → U.
        let mut order: Vec<usize> = (0..n).collect();
        let norms: Vec<f64> = (0..n)
            .map(|j| {
                (0..n)
                    .map(|i| b.get(i, j) * b.get(i, j))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        order.sort_by(|x, y| norms[*y].partial_cmp(&norms[*x]).expect("finite norms"));

        let mut u = DenseMatrix::zeros(n, n)?;
        let mut v_sorted = DenseMatrix::zeros(n, n)?;
        let mut sigma = Vec::with_capacity(n);
        for (dst, &src) in order.iter().enumerate() {
            let nz = norms[src];
            sigma.push(nz);
            for i in 0..n {
                let ui = if nz > 0.0 { b.get(i, src) / nz } else { 0.0 };
                u.set(i, dst, ui);
                v_sorted.set(i, dst, v.get(i, src));
            }
        }
        Ok(SvdFactor {
            u,
            sigma,
            v: v_sorted,
            n,
        })
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Singular values in descending order.
    pub fn singular_values(&self) -> &[f64] {
        &self.sigma
    }

    /// The left singular vectors (columns of `U`).
    pub fn u(&self) -> &DenseMatrix {
        &self.u
    }

    /// The right singular vectors (columns of `V`).
    pub fn v(&self) -> &DenseMatrix {
        &self.v
    }

    /// Two-norm condition number `σ_max/σ_min` (∞ if singular).
    pub fn condition_number(&self) -> f64 {
        let max = self.sigma.first().copied().unwrap_or(0.0);
        let min = self.sigma.last().copied().unwrap_or(0.0);
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// The numerical rank at relative threshold `rtol·σ_max`.
    pub fn rank(&self, rtol: f64) -> usize {
        let cutoff = rtol * self.sigma.first().copied().unwrap_or(0.0);
        self.sigma.iter().filter(|s| **s > cutoff).count()
    }

    /// Minimum-norm least-squares solve via the pseudo-inverse,
    /// `x = V·Σ⁺·Uᵀ·b`, truncating singular values below `rtol·σ_max`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim`.
    pub fn solve_min_norm(&self, b: &[f64], rtol: f64) -> Result<Vec<f64>, LinalgError> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                actual: b.len(),
                context: "svd solve rhs",
            });
        }
        let cutoff = rtol * self.sigma.first().copied().unwrap_or(0.0);
        // y = Σ⁺·Uᵀ·b
        let mut y = vec![0.0; n];
        for (k, yk) in y.iter_mut().enumerate() {
            if self.sigma[k] > cutoff {
                let mut dot = 0.0;
                for (i, bi) in b.iter().enumerate() {
                    dot += self.u.get(i, k) * bi;
                }
                *yk = dot / self.sigma[k];
            }
        }
        // x = V·y
        let mut x = vec![0.0; n];
        for (i, xi) in x.iter_mut().enumerate() {
            for (k, yk) in y.iter().enumerate() {
                *xi += self.v.get(i, k) * yk;
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearOperator;

    #[test]
    fn diagonal_matrix_has_obvious_svd() {
        let a = DenseMatrix::from_rows(&[&[0.0, 5.0], &[1.0, 0.0]]).unwrap();
        let svd = SvdFactor::new(&a).unwrap();
        assert!((svd.singular_values()[0] - 5.0).abs() < 1e-12);
        assert!((svd.singular_values()[1] - 1.0).abs() < 1e-12);
        assert!((svd.condition_number() - 5.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_u_sigma_vt() {
        let a = DenseMatrix::from_rows(&[&[2.0, -1.0, 0.3], &[0.5, 1.5, -0.7], &[-0.2, 0.8, 1.1]])
            .unwrap();
        let svd = SvdFactor::new(&a).unwrap();
        // A·v_k = σ_k·u_k for every k.
        for k in 0..3 {
            let vk: Vec<f64> = (0..3).map(|i| svd.v().get(i, k)).collect();
            let av = a.apply_vec(&vk);
            for (i, avi) in av.iter().enumerate() {
                let expect = svd.singular_values()[k] * svd.u().get(i, k);
                assert!((avi - expect).abs() < 1e-10, "k={k} i={i}");
            }
        }
    }

    #[test]
    fn singular_vectors_are_orthonormal() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let svd = SvdFactor::new(&a).unwrap();
        for m in [svd.u(), svd.v()] {
            for p in 0..2 {
                for q in 0..2 {
                    let dot: f64 = (0..2).map(|i| m.get(i, p) * m.get(i, q)).sum();
                    let expect = if p == q { 1.0 } else { 0.0 };
                    assert!((dot - expect).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn solve_matches_lu_on_nonsingular_system() {
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0], &[3.0, 1.0]]).unwrap();
        let b = vec![2.0, 4.0];
        let svd = SvdFactor::new(&a).unwrap();
        let x = svd.solve_min_norm(&b, 1e-12).unwrap();
        let x_lu = crate::direct::LuFactor::new(&a).unwrap().solve(&b).unwrap();
        for (s, l) in x.iter().zip(&x_lu) {
            assert!((s - l).abs() < 1e-10);
        }
    }

    #[test]
    fn rank_deficient_matrix_gets_min_norm_solution() {
        // Rank-1 matrix: rows are multiples.
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let svd = SvdFactor::new(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        assert!(svd.condition_number() > 1e10);
        // Consistent rhs: b in the column space.
        let b = vec![1.0, 2.0];
        let x = svd.solve_min_norm(&b, 1e-10).unwrap();
        // Residual is zero and x is the min-norm representative (1/5, 2/5).
        assert!(a.residual_norm(&x, &b) < 1e-10);
        assert!((x[0] - 0.2).abs() < 1e-10);
        assert!((x[1] - 0.4).abs() < 1e-10);
    }

    #[test]
    fn singular_values_match_eigenvalues_for_spd() {
        // For SPD matrices σ_k = λ_k.
        let a = DenseMatrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]).unwrap();
        let svd = SvdFactor::new(&a).unwrap();
        assert!((svd.singular_values()[0] - 3.0).abs() < 1e-10);
        assert!((svd.singular_values()[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn validates_shapes() {
        assert!(SvdFactor::new(&DenseMatrix::zeros(2, 3).unwrap()).is_err());
        let svd = SvdFactor::new(&DenseMatrix::identity(2)).unwrap();
        assert!(svd.solve_min_norm(&[1.0], 1e-12).is_err());
    }
}

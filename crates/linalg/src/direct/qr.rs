use crate::{DenseMatrix, LinalgError};

/// QR factorization by Householder reflections, `A = Q·R`.
///
/// One of the direct solvers of the paper's Figure 4 taxonomy ("Direct
/// solvers (e.g., Cholesky, QR, SVD)"). Unlike Cholesky it needs no
/// symmetry, and it is unconditionally backward-stable — part of the
/// digital toolbox the analog approach cannot emulate (§IV-A: "analog
/// computers are not suitable for direct linear algebra approaches").
///
/// Storage: the Householder vectors live in the lower triangle of `qr`
/// (head included, on the diagonal); `R`'s strict upper triangle lives in
/// the upper part, and `R`'s diagonal in the separate `r_diag` vector.
///
/// ```
/// use aa_linalg::{DenseMatrix, direct::QrFactor};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let x = QrFactor::new(&a)?.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrFactor {
    /// Householder vectors (lower triangle incl. diagonal) and the strict
    /// upper triangle of `R`.
    qr: DenseMatrix,
    /// `R`'s diagonal.
    r_diag: Vec<f64>,
    /// `β_k = 2/(v_kᵀ·v_k)` per reflector (zero for skipped columns).
    betas: Vec<f64>,
    /// Magnitude scale of the input matrix, for relative rank tests.
    scale: f64,
    n: usize,
}

impl QrFactor {
    /// Relative magnitudes below this are treated as rank deficiency.
    const RANK_TOL: f64 = 1e-13;

    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::SingularMatrix`] if `A` is rank-deficient.
    pub fn new(a: &DenseMatrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let scale = a.max_abs().max(f64::MIN_POSITIVE);
        let mut qr = a.clone();
        let mut r_diag = vec![0.0; n];
        let mut betas = vec![0.0; n];

        for k in 0..n {
            let mut norm2 = 0.0;
            for i in k..n {
                norm2 += qr.get(i, k) * qr.get(i, k);
            }
            let norm = norm2.sqrt();
            if norm < Self::RANK_TOL * scale {
                return Err(LinalgError::SingularMatrix { pivot: k });
            }
            // α takes the opposite sign of the pivot for stability.
            let alpha = if qr.get(k, k) >= 0.0 { -norm } else { norm };
            let v0 = qr.get(k, k) - alpha;
            let vtv = norm2 - qr.get(k, k) * qr.get(k, k) + v0 * v0;
            r_diag[k] = alpha;
            if vtv < (Self::RANK_TOL * scale).powi(2) {
                continue; // column is already e₁-aligned
            }
            qr.set(k, k, v0);
            betas[k] = 2.0 / vtv;

            for j in (k + 1)..n {
                let mut dot = 0.0;
                for i in k..n {
                    dot += qr.get(i, k) * qr.get(i, j);
                }
                let scale = betas[k] * dot;
                for i in k..n {
                    qr.set(i, j, qr.get(i, j) - scale * qr.get(i, k));
                }
            }
        }
        Ok(QrFactor {
            qr,
            r_diag,
            betas,
            scale,
            n,
        })
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Applies `Qᵀ` to a vector in place (the reflectors, in order).
    pub fn apply_q_transpose(&self, y: &mut [f64]) {
        assert_eq!(y.len(), self.n, "apply_q_transpose: length mismatch");
        for k in 0..self.n {
            if self.betas[k] == 0.0 {
                continue;
            }
            let mut dot = 0.0;
            for (i, yi) in y.iter().enumerate().skip(k) {
                dot += self.qr.get(i, k) * yi;
            }
            let scale = self.betas[k] * dot;
            for (i, yi) in y.iter_mut().enumerate().skip(k) {
                *yi -= scale * self.qr.get(i, k);
            }
        }
    }

    /// Applies `Q` to a vector in place (reflectors in reverse order).
    pub fn apply_q(&self, y: &mut [f64]) {
        assert_eq!(y.len(), self.n, "apply_q: length mismatch");
        for k in (0..self.n).rev() {
            if self.betas[k] == 0.0 {
                continue;
            }
            let mut dot = 0.0;
            for (i, yi) in y.iter().enumerate().skip(k) {
                dot += self.qr.get(i, k) * yi;
            }
            let scale = self.betas[k] * dot;
            for (i, yi) in y.iter_mut().enumerate().skip(k) {
                *yi -= scale * self.qr.get(i, k);
            }
        }
    }

    /// Solves `A·x = b` via `R·x = Qᵀ·b`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `b.len() != dim`.
    /// * [`LinalgError::SingularMatrix`] on a vanishing `R` diagonal.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                actual: b.len(),
                context: "qr solve rhs",
            });
        }
        let mut x = b.to_vec();
        self.apply_q_transpose(&mut x);
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.qr.get(i, j) * xj;
            }
            if self.r_diag[i].abs() < Self::RANK_TOL * self.scale {
                return Err(LinalgError::SingularMatrix { pivot: i });
            }
            x[i] = sum / self.r_diag[i];
        }
        Ok(x)
    }

    /// `|det(A)| = Π |r_kk|` (the reflections lose the sign).
    pub fn abs_det(&self) -> f64 {
        self.r_diag.iter().map(|r| r.abs()).product()
    }

    /// Reconstructs `R` as a dense upper-triangular matrix.
    pub fn r(&self) -> DenseMatrix {
        let mut r = DenseMatrix::zeros(self.n, self.n).expect("n > 0 by construction");
        for i in 0..self.n {
            r.set(i, i, self.r_diag[i]);
            for j in (i + 1)..self.n {
                r.set(i, j, self.qr.get(i, j));
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearOperator;

    #[test]
    fn solves_unsymmetric_system() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]])
            .unwrap();
        let x_true = [1.0, -1.0, 2.0];
        let b = a.apply_vec(&x_true);
        let x = QrFactor::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn q_is_orthogonal() {
        let a = DenseMatrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let qr = QrFactor::new(&a).unwrap();
        // Q·Qᵀ·v = v for arbitrary v.
        let mut v = vec![0.7, -1.3];
        let original = v.clone();
        qr.apply_q_transpose(&mut v);
        qr.apply_q(&mut v);
        for (a, b) in v.iter().zip(&original) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn q_times_r_reconstructs_a() {
        let a = DenseMatrix::from_rows(&[&[2.0, -1.0, 0.5], &[1.5, 3.0, -2.0], &[0.0, 1.0, 1.0]])
            .unwrap();
        let qr = QrFactor::new(&a).unwrap();
        let r = qr.r();
        // Column c of A equals Q·(column c of R).
        for c in 0..3 {
            let mut col: Vec<f64> = (0..3).map(|i| r.get(i, c)).collect();
            qr.apply_q(&mut col);
            for (i, v) in col.iter().enumerate() {
                assert!((v - a.get(i, c)).abs() < 1e-10, "col {c} row {i}");
            }
        }
    }

    #[test]
    fn r_is_upper_triangular_with_nonzero_diagonal() {
        let a = DenseMatrix::from_rows(&[&[1.0, 4.0], &[2.0, 5.0]]).unwrap();
        let qr = QrFactor::new(&a).unwrap();
        let r = qr.r();
        assert_eq!(r.get(1, 0), 0.0);
        assert!(r.get(0, 0).abs() > 0.1);
        assert!(qr.abs_det() > 0.0);
        // |det| = |1·5 − 4·2| = 3.
        assert!((qr.abs_det() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let qr = QrFactor::new(&a);
        // Rank deficiency shows up at factor time or at solve time.
        match qr {
            Err(LinalgError::SingularMatrix { .. }) => {}
            Ok(f) => {
                assert!(matches!(
                    f.solve(&[1.0, 2.0]),
                    Err(LinalgError::SingularMatrix { .. })
                ));
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn matches_lu_on_random_system() {
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 0.0, 3.0], &[2.0, 1.0, 0.0]])
            .unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x_qr = QrFactor::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::direct::LuFactor::new(&a).unwrap().solve(&b).unwrap();
        for (q, l) in x_qr.iter().zip(&x_lu) {
            assert!((q - l).abs() < 1e-10);
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3).unwrap();
        assert!(QrFactor::new(&a).is_err());
        let f = QrFactor::new(&DenseMatrix::identity(3)).unwrap();
        assert!(f.solve(&[1.0]).is_err());
    }
}

use crate::{DenseMatrix, LinalgError};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// ```
/// use aa_linalg::{DenseMatrix, direct::CholeskyFactor};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[4.0, 2.0], &[2.0, 5.0]])?;
/// let chol = CholeskyFactor::new(&a)?;
/// let x = chol.solve(&[2.0, 1.0])?;
/// assert!((x[0] - 0.5).abs() < 1e-12);
/// assert!((x[1] - 0.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    /// Lower-triangular factor, stored densely (upper part zero).
    l: DenseMatrix,
}

impl CholeskyFactor {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Symmetry is assumed from the lower triangle; only the lower triangle
    /// of `a` is read.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn new(a: &DenseMatrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = DenseMatrix::zeros(n, n)?;
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(CholeskyFactor { l })
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &DenseMatrix {
        &self.l
    }

    /// Solves `A·x = b` by forward/backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                actual: b.len(),
                context: "cholesky solve rhs",
            });
        }
        // Forward: L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, yk) in y.iter().enumerate().take(i) {
                sum -= self.l.get(i, k) * yk;
            }
            y[i] = sum / self.l.get(i, i);
        }
        // Backward: Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l.get(k, i) * xk;
            }
            x[i] = sum / self.l.get(i, i);
        }
        Ok(x)
    }

    /// Log-determinant of `A`, `2·Σ log(l_ii)` (cheap by-product of factoring).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearOperator;

    #[test]
    fn factor_reconstructs_matrix() {
        let a = DenseMatrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let chol = CholeskyFactor::new(&a).unwrap();
        let l = chol.factor();
        let reconstructed = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((reconstructed.get(i, j) - a.get(i, j)).abs() < 1e-10);
            }
        }
        // Known factor from the classic example: l00 = 2, l11 = 1, l22 = 3.
        assert!((l.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((l.get(1, 1) - 1.0).abs() < 1e-12);
        assert!((l.get(2, 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_gives_exact_solution() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]])
            .unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.apply_vec(&x_true);
        let x = CholeskyFactor::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            CholeskyFactor::new(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3).unwrap();
        assert!(matches!(
            CholeskyFactor::new(&a),
            Err(LinalgError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn rhs_length_validated() {
        let a = DenseMatrix::identity(2);
        let chol = CholeskyFactor::new(&a).unwrap();
        assert!(chol.solve(&[1.0]).is_err());
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let chol = CholeskyFactor::new(&DenseMatrix::identity(4)).unwrap();
        assert!(chol.log_det().abs() < 1e-14);
    }
}

//! Direct solvers: Cholesky decomposition and LU (Gaussian elimination).
//!
//! The analog computing literature notes that analog computers are *not*
//! suited to direct linear-algebra approaches (paper §IV-A, citing Ulmann).
//! These factorizations are here as the digital gold standard: exact
//! reference solutions for tests and for computing error norms in the
//! Figure 7 convergence study.

mod cholesky;
mod lu;
mod qr;
mod svd;

pub use cholesky::CholeskyFactor;
pub use lu::LuFactor;
pub use qr::QrFactor;
pub use svd::SvdFactor;

use crate::{DenseMatrix, LinalgError};

/// Solves `A·x = b` by Cholesky if `A` is symmetric, else by partial-pivot LU.
///
/// # Errors
///
/// Returns an error if `A` is not square, dimensions mismatch, or the matrix
/// is singular (or not SPD when the Cholesky path is taken and LU also fails).
///
/// ```
/// use aa_linalg::{DenseMatrix, direct};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
/// let x = direct::solve(&a, &[1.0, 2.0])?;
/// assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
/// assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if a.is_symmetric(1e-12) {
        match CholeskyFactor::new(a) {
            Ok(f) => return f.solve(b),
            Err(LinalgError::NotPositiveDefinite { .. }) => { /* fall through to LU */ }
            Err(e) => return Err(e),
        }
    }
    LuFactor::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearOperator;

    #[test]
    fn solve_dispatches_on_symmetry() {
        // SPD: takes the Cholesky path.
        let spd = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = solve(&spd, &[5.0, 4.0]).unwrap();
        assert!(spd.residual_norm(&x, &[5.0, 4.0]) < 1e-12);

        // Unsymmetric: takes the LU path.
        let gen = DenseMatrix::from_rows(&[&[0.0, 2.0], &[3.0, 1.0]]).unwrap();
        let x = solve(&gen, &[2.0, 4.0]).unwrap();
        assert!(gen.residual_norm(&x, &[2.0, 4.0]) < 1e-12);

        // Symmetric but indefinite: Cholesky fails, LU succeeds.
        let indef = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&indef, &[3.0, 5.0]).unwrap();
        assert_eq!(x, vec![5.0, 3.0]);
    }

    #[test]
    fn singular_matrix_is_an_error() {
        let s = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(solve(&s, &[1.0, 2.0]).is_err());
    }
}

use crate::{DenseMatrix, LinalgError};

/// LU factorization with partial pivoting, `P·A = L·U` (Gaussian elimination).
///
/// ```
/// use aa_linalg::{DenseMatrix, direct::LuFactor};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]])?;
/// let x = LuFactor::new(&a)?.solve(&[3.0, 4.0])?;
/// assert_eq!(x, vec![2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactor {
    /// Combined L (below diagonal, unit diagonal implicit) and U (upper) storage.
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` is the original row in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or −1.0), used for the determinant.
    perm_sign: f64,
}

impl LuFactor {
    /// Pivot magnitudes below this threshold are treated as singular.
    const PIVOT_TOL: f64 = 1e-300;

    /// Factors a square matrix with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::SingularMatrix`] if no usable pivot exists.
    pub fn new(a: &DenseMatrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below the diagonal.
            let (pivot_row, pivot_val) =
                (k..n)
                    .map(|i| (i, lu.get(i, k).abs()))
                    .fold(
                        (k, -1.0),
                        |best, cur| if cur.1 > best.1 { cur } else { best },
                    );
            if pivot_val < Self::PIVOT_TOL {
                return Err(LinalgError::SingularMatrix { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu.get(k, j);
                    lu.set(k, j, lu.get(pivot_row, j));
                    lu.set(pivot_row, j, tmp);
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let factor = lu.get(i, k) / pivot;
                lu.set(i, k, factor);
                for j in (k + 1)..n {
                    lu.set(i, j, lu.get(i, j) - factor * lu.get(k, j));
                }
            }
        }
        Ok(LuFactor {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                actual: b.len(),
                context: "lu solve rhs",
            });
        }
        // Apply the permutation, then forward-substitute L·y = P·b.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = y[i];
            for (k, yk) in y.iter().enumerate().take(i) {
                sum -= self.lu.get(i, k) * yk;
            }
            y[i] = sum;
        }
        // Backward-substitute U·x = y.
        let mut x = y;
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.lu.get(i, k) * xk;
            }
            x[i] = sum / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Determinant of `A` (product of U's diagonal times the permutation sign).
    pub fn det(&self) -> f64 {
        self.perm_sign * (0..self.dim()).map(|i| self.lu.get(i, i)).product::<f64>()
    }

    /// Inverse of `A` as a dense matrix (column-by-column solves).
    ///
    /// # Errors
    ///
    /// Propagates solve errors (none expected once factored).
    pub fn inverse(&self) -> Result<DenseMatrix, LinalgError> {
        let n = self.dim();
        let mut inv = DenseMatrix::zeros(n, n)?;
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for (i, v) in col.iter().enumerate() {
                inv.set(i, j, *v);
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearOperator;

    #[test]
    fn solves_with_pivoting_required() {
        // Zero on the leading diagonal forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 0.0, 3.0], &[2.0, 1.0, 0.0]])
            .unwrap();
        let x_true = [1.0, 2.0, -1.0];
        let b = a.apply_vec(&x_true);
        let x = LuFactor::new(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn determinant_matches_known_value() {
        let a = DenseMatrix::from_rows(&[&[3.0, 1.0], &[2.0, 4.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        assert!((lu.det() - 10.0).abs() < 1e-12);
        // Permutation sign handled: swapping rows flips sign.
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((LuFactor::new(&b).unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuFactor::new(&a),
            Err(LinalgError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = DenseMatrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = LuFactor::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(3, 2).unwrap();
        assert!(LuFactor::new(&a).is_err());
    }

    #[test]
    fn rhs_length_validated() {
        let lu = LuFactor::new(&DenseMatrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}

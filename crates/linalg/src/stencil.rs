//! Matrix-free finite-difference Poisson operators.
//!
//! The paper's digital baseline implements conjugate gradients "using stencils
//! to capture the sparse structure of the matrix, without having to allocate
//! memory for the full matrix". These operators reproduce that: the 1D, 2D,
//! and 3D negative Laplacian with Dirichlet boundaries, discretized by
//! second-order central differences on the unit interval/square/cube.
//!
//! For `L` increments per side the interior grid has `L` points per dimension
//! and spacing `h = 1/(L+1)`; the assembled operator is `(1/h²)·K` where `K`
//! has `2·d` on the diagonal and `−1` couplings to each of the `2·d`
//! neighbours in `d` dimensions — exactly the pentadiagonal 2D form shown in
//! the paper's §IV-B (its `3×3` example matrix, including the `1/h² = 9`
//! prefactor for `h = 1/3`).

use crate::op::{LinearOperator, RowAccess};
use crate::LinalgError;

/// Matrix-free `d`-dimensional Poisson operator (negative Laplacian, Dirichlet).
///
/// ```
/// use aa_linalg::stencil::PoissonStencil;
/// use aa_linalg::LinearOperator;
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let op = PoissonStencil::new_2d(3)?; // the paper's 3×3 example grid
/// assert_eq!(op.dim(), 9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoissonStencil {
    /// Interior points per dimension.
    points_per_side: usize,
    /// Spatial dimensionality: 1, 2, or 3.
    dimensionality: usize,
}

impl PoissonStencil {
    /// 1D operator on `l` interior points of the unit interval.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `l == 0`.
    pub fn new_1d(l: usize) -> Result<Self, LinalgError> {
        Self::new(l, 1)
    }

    /// 2D operator on an `l × l` interior grid of the unit square.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `l == 0`.
    pub fn new_2d(l: usize) -> Result<Self, LinalgError> {
        Self::new(l, 2)
    }

    /// 3D operator on an `l × l × l` interior grid of the unit cube.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `l == 0`.
    pub fn new_3d(l: usize) -> Result<Self, LinalgError> {
        Self::new(l, 3)
    }

    /// General constructor for dimensionality 1, 2, or 3.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `l == 0` or
    /// `dimensionality ∉ {1, 2, 3}`.
    pub fn new(l: usize, dimensionality: usize) -> Result<Self, LinalgError> {
        if l == 0 {
            return Err(LinalgError::invalid("grid must have at least one point"));
        }
        if !(1..=3).contains(&dimensionality) {
            return Err(LinalgError::invalid(format!(
                "dimensionality must be 1, 2, or 3, got {dimensionality}"
            )));
        }
        Ok(PoissonStencil {
            points_per_side: l,
            dimensionality,
        })
    }

    /// Interior points per dimension (`L` in the paper's notation).
    pub fn points_per_side(&self) -> usize {
        self.points_per_side
    }

    /// Spatial dimensionality (1, 2, or 3).
    pub fn dimensionality(&self) -> usize {
        self.dimensionality
    }

    /// Grid spacing `h = 1/(L+1)` on the unit domain.
    pub fn spacing(&self) -> f64 {
        1.0 / (self.points_per_side as f64 + 1.0)
    }

    /// The `1/h²` prefactor multiplying the integer stencil.
    ///
    /// This is the factor the paper highlights when discussing dynamic-range
    /// scaling: coefficients grow like `L²` as resolution increases.
    pub fn prefactor(&self) -> f64 {
        let h = self.spacing();
        1.0 / (h * h)
    }

    /// Diagonal coefficient `2·d / h²`.
    pub fn diagonal_value(&self) -> f64 {
        2.0 * self.dimensionality as f64 * self.prefactor()
    }

    /// Off-diagonal (neighbour) coefficient `−1/h²`.
    pub fn offdiagonal_value(&self) -> f64 {
        -self.prefactor()
    }

    /// Decomposes a linear index into per-dimension coordinates.
    fn coords(&self, mut idx: usize) -> [usize; 3] {
        let l = self.points_per_side;
        let mut c = [0usize; 3];
        for item in c.iter_mut().take(self.dimensionality) {
            *item = idx % l;
            idx /= l;
        }
        c
    }

    /// Recomposes coordinates into a linear index.
    fn index(&self, c: [usize; 3]) -> usize {
        let l = self.points_per_side;
        let mut idx = 0;
        for d in (0..self.dimensionality).rev() {
            idx = idx * l + c[d];
        }
        idx
    }
}

impl LinearOperator for PoissonStencil {
    fn dim(&self) -> usize {
        self.points_per_side.pow(self.dimensionality as u32)
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let n = self.dim();
        assert_eq!(x.len(), n, "apply: input length mismatch");
        assert_eq!(y.len(), n, "apply: output length mismatch");
        let l = self.points_per_side;
        let diag = 2.0 * self.dimensionality as f64;
        let pre = self.prefactor();
        for i in 0..n {
            let c = self.coords(i);
            let mut acc = diag * x[i];
            for d in 0..self.dimensionality {
                if c[d] > 0 {
                    let mut cn = c;
                    cn[d] -= 1;
                    acc -= x[self.index(cn)];
                }
                if c[d] + 1 < l {
                    let mut cn = c;
                    cn[d] += 1;
                    acc -= x[self.index(cn)];
                }
            }
            y[i] = pre * acc;
        }
    }
}

impl RowAccess for PoissonStencil {
    fn for_each_in_row(&self, i: usize, f: &mut dyn FnMut(usize, f64)) {
        assert!(i < self.dim(), "row index out of bounds");
        let l = self.points_per_side;
        let pre = self.prefactor();
        let c = self.coords(i);
        f(i, 2.0 * self.dimensionality as f64 * pre);
        for d in 0..self.dimensionality {
            if c[d] > 0 {
                let mut cn = c;
                cn[d] -= 1;
                f(self.index(cn), -pre);
            }
            if c[d] + 1 < l {
                let mut cn = c;
                cn[d] += 1;
                f(self.index(cn), -pre);
            }
        }
    }

    fn diagonal(&self, _i: usize) -> f64 {
        self.diagonal_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn rejects_degenerate_grids() {
        assert!(PoissonStencil::new(0, 2).is_err());
        assert!(PoissonStencil::new(3, 0).is_err());
        assert!(PoissonStencil::new(3, 4).is_err());
    }

    #[test]
    fn paper_3x3_example_matrix() {
        // §IV-B: 3×3 grid on the unit square, h = 1/4 in our convention of
        // interior points... The paper uses h = 1/3 (discretized into thirds,
        // prefactor 9). Our convention L interior points → h = 1/(L+1), so we
        // check structure against the analytically assembled matrix instead.
        let op = PoissonStencil::new_2d(3).unwrap();
        let a = CsrMatrix::from_row_access(&op);
        let pre = op.prefactor();
        // Center node 4 couples to 1, 3, 5, 7.
        assert_eq!(a.get(4, 4), 4.0 * pre);
        for j in [1, 3, 5, 7] {
            assert_eq!(a.get(4, j), -pre);
        }
        // Corner node 0 couples to 1 and 3 only (pentadiagonal sparsity).
        assert_eq!(a.get(0, 0), 4.0 * pre);
        assert_eq!(a.get(0, 1), -pre);
        assert_eq!(a.get(0, 3), -pre);
        assert_eq!(a.get(0, 2), 0.0);
        // Row 2 (end of first grid row) must NOT couple to row 3 (wraparound).
        assert_eq!(a.get(2, 3), 0.0);
    }

    #[test]
    fn nnz_matches_pentadiagonal_count() {
        let op = PoissonStencil::new_2d(4).unwrap();
        // Interior 2D grid of L² points: diagonal N entries plus 2·L·(L−1)
        // horizontal plus 2·L·(L−1) vertical couplings.
        let l = 4;
        let expected = l * l + 4 * l * (l - 1);
        assert_eq!(op.nnz(), expected);
    }

    #[test]
    fn one_dimensional_matches_tridiagonal() {
        let op = PoissonStencil::new_1d(5).unwrap();
        let pre = op.prefactor();
        let reference = CsrMatrix::tridiagonal(5, -pre, 2.0 * pre, -pre).unwrap();
        let assembled = CsrMatrix::from_row_access(&op);
        assert_eq!(assembled, reference);
    }

    #[test]
    fn three_dimensional_center_has_six_neighbors() {
        let op = PoissonStencil::new_3d(3).unwrap();
        // Center of a 3×3×3 grid is index 13 = 1 + 3·1 + 9·1.
        assert_eq!(op.row_nnz(13), 7);
        assert_eq!(op.diagonal(13), 6.0 * op.prefactor());
    }

    #[test]
    fn apply_matches_assembled_matrix() {
        for (l, d) in [(5, 1), (4, 2), (3, 3)] {
            let op = PoissonStencil::new(l, d).unwrap();
            let a = CsrMatrix::from_row_access(&op);
            let n = op.dim();
            let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
            let y_stencil = op.apply_vec(&x);
            let y_matrix = a.apply_vec(&x);
            for (s, m) in y_stencil.iter().zip(&y_matrix) {
                assert!(
                    (s - m).abs() < 1e-10 * m.abs().max(1.0),
                    "stencil/matrix disagreement in {d}D"
                );
            }
        }
    }

    #[test]
    fn operator_is_symmetric() {
        let op = PoissonStencil::new_2d(4).unwrap();
        let a = CsrMatrix::from_row_access(&op);
        assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn prefactor_grows_with_resolution() {
        // §VI-D: coefficients grow ∝ L², the source of the dynamic-range cost.
        let small = PoissonStencil::new_2d(3).unwrap();
        let big = PoissonStencil::new_2d(31).unwrap();
        assert_eq!(small.prefactor(), 16.0);
        assert_eq!(big.prefactor(), 1024.0);
        assert!(big.prefactor() / small.prefactor() == 64.0);
    }
}

use super::{check_system, Driver, IterativeConfig, Method, SolveReport};
use crate::op::RowAccess;
use crate::{vector, LinalgError};

/// Steepest gradient descent for symmetric positive-definite systems.
///
/// Each step moves along the residual (the negative gradient of
/// `½xᵀAx − bᵀx`) with the exact line-search step size
/// `α = rᵀr / rᵀAr`.
///
/// This method is the paper's conceptual bridge to analog computing: "we can
/// consider the analog accelerator as doing continuous-time steepest descent,
/// taking many infinitesimal steps in continuous time" (§VI-B). The discrete
/// version here is what the analog gradient flow degenerates to when the step
/// size is made finite.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b` or the initial guess has the
///   wrong length.
/// * [`LinalgError::NotPositiveDefinite`] if a curvature `rᵀAr ≤ 0` is
///   encountered (the matrix is not SPD).
///
/// ```
/// use aa_linalg::{CsrMatrix, iterative::{steepest_descent, IterativeConfig}};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = CsrMatrix::tridiagonal(6, -1.0, 2.0, -1.0)?;
/// let report = steepest_descent(&a, &[1.0; 6], &IterativeConfig::default())?;
/// assert!(report.converged);
/// # Ok(())
/// # }
/// ```
pub fn steepest_descent<M: RowAccess>(
    a: &M,
    b: &[f64],
    config: &IterativeConfig,
) -> Result<SolveReport, LinalgError> {
    steepest_descent_observed(a, b, config, |_, _| {})
}

/// [`steepest_descent`] with a per-iteration observer.
///
/// # Errors
///
/// Same as [`steepest_descent`].
pub fn steepest_descent_observed<M, F>(
    a: &M,
    b: &[f64],
    config: &IterativeConfig,
    mut observe: F,
) -> Result<SolveReport, LinalgError>
where
    M: RowAccess,
    F: FnMut(usize, &[f64]),
{
    let n = check_system(a, b)?;
    let x0 = config.validate(n)?;
    let nnz = a.nnz();

    let mut driver = Driver::new(x0, config.stopping, b);
    let mut r = a.residual(&driver.x, b);
    driver.work.add_matvec(nnz);
    let mut ar = vec![0.0; n];
    let mut converged = false;
    let mut iterations = 0;

    for k in 1..=config.max_iterations {
        iterations = k;
        let rr = vector::dot(&r, &r);
        driver.work.add_dot(n);
        if rr == 0.0 {
            // Exact solution reached; record and stop.
            observe(k, &driver.x);
            converged = driver.step_done(0.0, 0.0);
            break;
        }
        a.apply(&r, &mut ar);
        driver.work.add_matvec(nnz);
        let curvature = vector::dot(&r, &ar);
        driver.work.add_dot(n);
        if curvature <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: k });
        }
        let alpha = rr / curvature;
        // The step is x ← x + α·r, so the largest element-wise change is
        // |α|·‖r‖∞ with the pre-update residual.
        let max_change = alpha.abs() * vector::norm_inf(&r);
        vector::axpy(alpha, &r, &mut driver.x);
        driver.work.add_axpy(n);
        // r ← r − α·A·r keeps the residual consistent without a fresh matvec.
        vector::axpy(-alpha, &ar, &mut r);
        driver.work.add_axpy(n);

        let res_norm = vector::norm2(&r);
        observe(k, &driver.x);
        if driver.step_done(res_norm, max_change) {
            converged = true;
            break;
        }
    }
    Ok(driver.finish(Method::SteepestDescent, converged, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::{cg, StoppingCriterion};
    use crate::LinearOperator;
    use crate::{CsrMatrix, Triplet};

    #[test]
    fn converges_on_spd_system() {
        let a = CsrMatrix::tridiagonal(10, -1.0, 2.0, -1.0).unwrap();
        let b = vec![1.0; 10];
        let report = steepest_descent(&a, &b, &IterativeConfig::default()).unwrap();
        assert!(report.converged);
        assert!(a.residual_norm(&report.solution, &b) < 1e-8);
    }

    #[test]
    fn slower_than_cg_on_ill_conditioned_system() {
        // Figure 7 / §VI-B: "doing many iterations of a poor algorithm is no
        // match for a better algorithm". CG must beat steepest descent.
        let a = CsrMatrix::tridiagonal(30, -1.0, 2.0, -1.0).unwrap();
        let b = vec![1.0; 30];
        let cfg = IterativeConfig::with_stopping(StoppingCriterion::AbsoluteResidual(1e-8));
        let sd = steepest_descent(&a, &b, &cfg).unwrap();
        let cgr = cg(&a, &b, &cfg).unwrap();
        assert!(sd.converged && cgr.converged);
        assert!(cgr.iterations < sd.iterations);
    }

    #[test]
    fn indefinite_matrix_detected() {
        let a = CsrMatrix::from_triplets(2, &[Triplet::new(0, 0, 1.0), Triplet::new(1, 1, -1.0)])
            .unwrap();
        let result = steepest_descent(&a, &[1.0, 1.0], &IterativeConfig::default());
        assert!(matches!(
            result,
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn exact_initial_guess_terminates() {
        let a = CsrMatrix::identity(3);
        let b = vec![4.0, 5.0, 6.0];
        let cfg = IterativeConfig::default().initial_guess(b.clone());
        let report = steepest_descent(&a, &b, &cfg).unwrap();
        assert!(report.converged);
        assert_eq!(report.solution, b);
    }

    #[test]
    fn single_step_on_identity() {
        // On A = I steepest descent converges in one exact step.
        let a = CsrMatrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, -4.0];
        let cfg = IterativeConfig::with_stopping(StoppingCriterion::AbsoluteResidual(1e-12));
        let report = steepest_descent(&a, &b, &cfg).unwrap();
        assert!(report.converged);
        assert!(report.iterations <= 2);
        for (x, t) in report.solution.iter().zip(&b) {
            assert!((x - t).abs() < 1e-12);
        }
    }
}

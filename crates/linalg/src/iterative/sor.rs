use super::jacobi::{invert_diagonal, residual_norm};
use super::{check_system, Driver, IterativeConfig, Method, SolveReport};
use crate::op::RowAccess;
use crate::LinalgError;

/// Successive over-relaxation.
///
/// A Gauss–Seidel sweep whose update is extrapolated by the relaxation
/// factor `ω ∈ (0, 2)`:
/// `x_i ← (1 − ω)·x_i + ω·x_i^{GS}`.
/// With the optimal `ω` (see [`sor_optimal_omega`]) SOR improves the Poisson
/// convergence rate from `O(1/h²)` iterations to `O(1/h)`.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b` or the initial guess has the
///   wrong length.
/// * [`LinalgError::SingularMatrix`] if a diagonal entry is zero.
/// * [`LinalgError::InvalidArgument`] if `config.omega ∉ (0, 2)`.
///
/// ```
/// use aa_linalg::{CsrMatrix, iterative::{sor, IterativeConfig}};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = CsrMatrix::tridiagonal(6, -1.0, 2.0, -1.0)?;
/// let cfg = IterativeConfig::default().omega(1.4);
/// let report = sor(&a, &[1.0; 6], &cfg)?;
/// assert!(report.converged);
/// # Ok(())
/// # }
/// ```
pub fn sor<M: RowAccess>(
    a: &M,
    b: &[f64],
    config: &IterativeConfig,
) -> Result<SolveReport, LinalgError> {
    sor_observed(a, b, config, |_, _| {})
}

/// [`sor`] with a per-iteration observer `observe(iteration, iterate)`.
///
/// # Errors
///
/// Same as [`sor`].
pub fn sor_observed<M, F>(
    a: &M,
    b: &[f64],
    config: &IterativeConfig,
    mut observe: F,
) -> Result<SolveReport, LinalgError>
where
    M: RowAccess,
    F: FnMut(usize, &[f64]),
{
    if !(config.omega > 0.0 && config.omega < 2.0) {
        return Err(LinalgError::invalid(format!(
            "sor relaxation factor must be in (0, 2), got {}",
            config.omega
        )));
    }
    let n = check_system(a, b)?;
    let x0 = config.validate(n)?;
    let inv_diag = invert_diagonal(a)?;
    let nnz = a.nnz();
    let omega = config.omega;

    let mut driver = Driver::new(x0, config.stopping, b);
    let mut converged = false;
    let mut iterations = 0;

    for k in 1..=config.max_iterations {
        iterations = k;
        let mut max_change: f64 = 0.0;
        for i in 0..n {
            let mut acc = b[i];
            a.for_each_in_row(i, &mut |j, v| {
                if j != i {
                    acc -= v * driver.x[j];
                }
            });
            let gs = acc * inv_diag[i];
            let new = (1.0 - omega) * driver.x[i] + omega * gs;
            max_change = max_change.max((new - driver.x[i]).abs());
            driver.x[i] = new;
        }
        driver.work.add_matvec(nnz);
        driver.work.add_axpy(n);

        let res = residual_norm(a, &driver.x, b, &mut driver.work);
        observe(k, &driver.x);
        if driver.step_done(res, max_change) {
            converged = true;
            break;
        }
    }
    Ok(driver.finish(Method::Sor, converged, iterations))
}

/// The asymptotically optimal relaxation factor for the Poisson model problem
/// with `l` interior points per side: `ω* = 2 / (1 + sin(π·h))`, `h = 1/(l+1)`.
///
/// ```
/// let omega = aa_linalg::iterative::sor_optimal_omega(15);
/// assert!(omega > 1.0 && omega < 2.0);
/// ```
pub fn sor_optimal_omega(l: usize) -> f64 {
    let h = 1.0 / (l as f64 + 1.0);
    2.0 / (1.0 + (std::f64::consts::PI * h).sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::{gauss_seidel, StoppingCriterion};
    use crate::stencil::PoissonStencil;
    use crate::{CsrMatrix, LinearOperator};

    #[test]
    fn converges_and_matches_reference() {
        let a = CsrMatrix::tridiagonal(10, -1.0, 2.0, -1.0).unwrap();
        let b = vec![1.0; 10];
        let cfg = IterativeConfig::default().omega(sor_optimal_omega(10));
        let report = sor(&a, &b, &cfg).unwrap();
        assert!(report.converged);
        assert!(a.residual_norm(&report.solution, &b) < 1e-8);
    }

    #[test]
    fn omega_one_reduces_to_gauss_seidel() {
        let a = CsrMatrix::tridiagonal(8, -1.0, 2.0, -1.0).unwrap();
        let b = vec![1.0; 8];
        let cfg = IterativeConfig::default().omega(1.0).max_iterations(7);
        let s = sor(&a, &b, &cfg).unwrap();
        let g = gauss_seidel(&a, &b, &cfg).unwrap();
        for (si, gi) in s.solution.iter().zip(&g.solution) {
            assert!((si - gi).abs() < 1e-14);
        }
    }

    #[test]
    fn optimal_omega_beats_gauss_seidel() {
        let op = PoissonStencil::new_2d(12).unwrap();
        let b = vec![1.0; op.dim()];
        let stop = StoppingCriterion::AbsoluteResidual(1e-6);
        let cfg_sor = IterativeConfig::with_stopping(stop).omega(sor_optimal_omega(12));
        let cfg_gs = IterativeConfig::with_stopping(stop);
        let s = sor(&op, &b, &cfg_sor).unwrap();
        let g = gauss_seidel(&op, &b, &cfg_gs).unwrap();
        assert!(s.converged && g.converged);
        assert!(
            s.iterations < g.iterations,
            "{} !< {}",
            s.iterations,
            g.iterations
        );
    }

    #[test]
    fn invalid_omega_rejected() {
        let a = CsrMatrix::identity(2);
        for omega in [0.0, 2.0, -0.5, 2.5, f64::NAN] {
            let cfg = IterativeConfig::default().omega(omega);
            assert!(
                sor(&a, &[1.0, 1.0], &cfg).is_err(),
                "omega = {omega} should be rejected"
            );
        }
    }

    #[test]
    fn optimal_omega_increases_with_resolution() {
        assert!(sor_optimal_omega(3) < sor_optimal_omega(30));
        assert!(sor_optimal_omega(100) < 2.0);
        // Degenerate one-point grid: h = 1/2 gives exactly ω = 1 (Gauss–Seidel).
        assert_eq!(sor_optimal_omega(1), 1.0);
    }
}

//! Classical iterative solvers for `A·x = b`.
//!
//! These are the five algorithms compared in the paper's Figure 7 — conjugate
//! gradients, steepest descent, successive over-relaxation, Gauss–Seidel, and
//! Jacobi — plus the shared configuration, stopping criteria, and reporting
//! machinery. Every solver records a per-iteration residual history and an
//! operation count so the hardware model can convert algorithmic work into
//! time and energy.
//!
//! ```
//! use aa_linalg::CsrMatrix;
//! use aa_linalg::iterative::{cg, jacobi, IterativeConfig};
//!
//! # fn main() -> Result<(), aa_linalg::LinalgError> {
//! let a = CsrMatrix::tridiagonal(8, -1.0, 2.0, -1.0)?;
//! let b = vec![1.0; 8];
//! let cfg = IterativeConfig::default();
//! let fast = cg(&a, &b, &cfg)?;
//! let slow = jacobi(&a, &b, &cfg)?;
//! assert!(fast.iterations < slow.iterations); // CG converges fastest (Fig. 7)
//! # Ok(())
//! # }
//! ```

mod cg;
mod gauss_seidel;
mod jacobi;
mod pcg;
mod sor;
mod steepest;

pub use cg::{cg, cg_observed};
pub use gauss_seidel::{gauss_seidel, gauss_seidel_observed};
pub use jacobi::{jacobi, jacobi_observed};
pub use pcg::pcg;
pub use sor::{sor, sor_observed, sor_optimal_omega};
pub use steepest::{steepest_descent, steepest_descent_observed};

use crate::LinalgError;

/// Which iterative method produced a [`SolveReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Method {
    /// Jacobi (simultaneous displacement).
    Jacobi,
    /// Gauss–Seidel (successive displacement).
    GaussSeidel,
    /// Successive over-relaxation.
    Sor,
    /// Steepest gradient descent — the discrete-time analogue of the
    /// continuous gradient flow the analog accelerator performs.
    SteepestDescent,
    /// Conjugate gradients — the paper's strongest digital baseline.
    ConjugateGradient,
}

impl Method {
    /// Short lowercase label matching the paper's Figure 7 legend.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Jacobi => "jacobi",
            Method::GaussSeidel => "gs",
            Method::Sor => "sor",
            Method::SteepestDescent => "steepest",
            Method::ConjugateGradient => "cg",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// When an iterative solver should declare convergence.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum StoppingCriterion {
    /// Stop when `‖b − A·x‖₂ ≤ tol`.
    AbsoluteResidual(f64),
    /// Stop when `‖b − A·x‖₂ ≤ tol · ‖b‖₂`.
    RelativeResidual(f64),
    /// Stop when no element of `x` changes by more than `tol` between
    /// consecutive iterations.
    ///
    /// With `tol = 1/256` of full scale this is the paper's digital stopping
    /// rule for matching one analog run through an 8-bit ADC (§V, "Accuracy").
    MaxChange(f64),
}

impl StoppingCriterion {
    /// The paper's equal-accuracy rule for a `bits`-bit ADC: stop when no
    /// element changes by more than one code, `1/2^bits`, of full scale.
    pub fn adc_equivalent(bits: u32) -> Self {
        StoppingCriterion::MaxChange(1.0 / f64::from(2u32).powi(bits as i32))
    }
}

/// Configuration shared by all iterative solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeConfig {
    /// Hard iteration cap; solvers return `converged = false` when it is hit.
    pub max_iterations: usize,
    /// Convergence test applied once per iteration.
    pub stopping: StoppingCriterion,
    /// Starting iterate; `None` means the zero vector (the paper's `u_init`).
    pub initial_guess: Option<Vec<f64>>,
    /// SOR relaxation factor; ignored by other methods. Must lie in (0, 2).
    pub omega: f64,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        IterativeConfig {
            max_iterations: 100_000,
            stopping: StoppingCriterion::RelativeResidual(1e-10),
            initial_guess: None,
            omega: 1.5,
        }
    }
}

impl IterativeConfig {
    /// Convenience constructor setting only the stopping rule.
    pub fn with_stopping(stopping: StoppingCriterion) -> Self {
        IterativeConfig {
            stopping,
            ..IterativeConfig::default()
        }
    }

    /// Returns a copy with the iteration cap replaced.
    pub fn max_iterations(mut self, max: usize) -> Self {
        self.max_iterations = max;
        self
    }

    /// Returns a copy with the initial guess replaced.
    pub fn initial_guess(mut self, guess: Vec<f64>) -> Self {
        self.initial_guess = Some(guess);
        self
    }

    /// Returns a copy with the SOR relaxation factor replaced.
    pub fn omega(mut self, omega: f64) -> Self {
        self.omega = omega;
        self
    }

    /// Validates the configuration against a problem of dimension `n`.
    pub(crate) fn validate(&self, n: usize) -> Result<Vec<f64>, LinalgError> {
        if let Some(guess) = &self.initial_guess {
            if guess.len() != n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    actual: guess.len(),
                    context: "initial guess",
                });
            }
            Ok(guess.clone())
        } else {
            Ok(vec![0.0; n])
        }
    }
}

/// Floating-point operation counts accumulated during a solve.
///
/// The paper's GPU energy model charges 225 pJ per multiply-add; these counts
/// are what `aa-hwmodel` multiplies that constant by.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Matrix–vector products performed.
    pub matvecs: usize,
    /// Total floating-point operations (adds + multiplies), approximate.
    pub flops: usize,
    /// Fused multiply-add count (the unit the 225 pJ/op GPU model charges).
    pub fma: usize,
}

impl WorkCounters {
    pub(crate) fn add_matvec(&mut self, nnz: usize) {
        self.matvecs += 1;
        self.flops += 2 * nnz;
        self.fma += nnz;
    }

    pub(crate) fn add_dot(&mut self, n: usize) {
        self.flops += 2 * n;
        self.fma += n;
    }

    pub(crate) fn add_axpy(&mut self, n: usize) {
        self.flops += 2 * n;
        self.fma += n;
    }
}

/// The result of an iterative solve: solution, convergence flag, and history.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Which method ran.
    pub method: Method,
    /// The final iterate.
    pub solution: Vec<f64>,
    /// Whether the stopping criterion was met before `max_iterations`.
    pub converged: bool,
    /// Iterations actually performed.
    pub iterations: usize,
    /// `‖b − A·x‖₂` after each iteration (index 0 is after iteration 1).
    pub residual_history: Vec<f64>,
    /// Final residual norm.
    pub final_residual: f64,
    /// Algorithmic work, for the hardware cost models.
    pub work: WorkCounters,
}

/// Internal driver state shared by the solver implementations.
pub(crate) struct Driver {
    pub(crate) x: Vec<f64>,
    pub(crate) report_residuals: Vec<f64>,
    pub(crate) work: WorkCounters,
    stopping: StoppingCriterion,
    rhs_norm: f64,
}

impl Driver {
    pub(crate) fn new(x: Vec<f64>, stopping: StoppingCriterion, b: &[f64]) -> Self {
        Driver {
            x,
            report_residuals: Vec::new(),
            work: WorkCounters::default(),
            stopping,
            rhs_norm: crate::vector::norm2(b),
        }
    }

    /// Records this iteration's residual norm and reports whether the
    /// stopping rule is satisfied. `max_change` is the largest element-wise
    /// update this iteration (for [`StoppingCriterion::MaxChange`]).
    pub(crate) fn step_done(&mut self, residual_norm: f64, max_change: f64) -> bool {
        self.report_residuals.push(residual_norm);
        match self.stopping {
            StoppingCriterion::AbsoluteResidual(tol) => residual_norm <= tol,
            StoppingCriterion::RelativeResidual(tol) => {
                residual_norm <= tol * self.rhs_norm.max(f64::MIN_POSITIVE)
            }
            StoppingCriterion::MaxChange(tol) => max_change <= tol,
        }
    }

    pub(crate) fn finish(self, method: Method, converged: bool, iterations: usize) -> SolveReport {
        let final_residual = self.report_residuals.last().copied().unwrap_or(f64::NAN);
        SolveReport {
            method,
            solution: self.x,
            converged,
            iterations,
            residual_history: self.report_residuals,
            final_residual,
            work: self.work,
        }
    }
}

/// Checks that operator and right-hand side are compatible.
pub(crate) fn check_system<M: crate::LinearOperator>(
    a: &M,
    b: &[f64],
) -> Result<usize, LinalgError> {
    let n = a.dim();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            actual: b.len(),
            context: "right-hand side",
        });
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn method_labels_match_figure7_legend() {
        assert_eq!(Method::ConjugateGradient.label(), "cg");
        assert_eq!(Method::SteepestDescent.label(), "steepest");
        assert_eq!(Method::Sor.to_string(), "sor");
        assert_eq!(Method::GaussSeidel.label(), "gs");
        assert_eq!(Method::Jacobi.label(), "jacobi");
    }

    #[test]
    fn adc_equivalent_is_one_code() {
        assert_eq!(
            StoppingCriterion::adc_equivalent(8),
            StoppingCriterion::MaxChange(1.0 / 256.0)
        );
        assert_eq!(
            StoppingCriterion::adc_equivalent(12),
            StoppingCriterion::MaxChange(1.0 / 4096.0)
        );
    }

    #[test]
    fn config_builder_chains() {
        let cfg = IterativeConfig::with_stopping(StoppingCriterion::AbsoluteResidual(1e-6))
            .max_iterations(10)
            .omega(1.2)
            .initial_guess(vec![1.0, 2.0]);
        assert_eq!(cfg.max_iterations, 10);
        assert_eq!(cfg.omega, 1.2);
        assert_eq!(cfg.initial_guess, Some(vec![1.0, 2.0]));
    }

    #[test]
    fn validate_rejects_bad_guess_length() {
        let cfg = IterativeConfig::default().initial_guess(vec![0.0; 3]);
        assert!(cfg.validate(4).is_err());
        assert_eq!(cfg.validate(3).unwrap(), vec![0.0; 3]);
        assert_eq!(
            IterativeConfig::default().validate(2).unwrap(),
            vec![0.0; 2]
        );
    }

    #[test]
    fn work_counters_accumulate() {
        let mut w = WorkCounters::default();
        w.add_matvec(10);
        w.add_dot(4);
        w.add_axpy(4);
        assert_eq!(w.matvecs, 1);
        assert_eq!(w.flops, 20 + 8 + 8);
        assert_eq!(w.fma, 18);
    }

    #[test]
    fn all_solvers_agree_on_spd_system() {
        let a = CsrMatrix::tridiagonal(16, -1.0, 2.0, -1.0).unwrap();
        let b: Vec<f64> = (0..16).map(|i| ((i % 5) as f64) - 2.0).collect();
        let cfg = IterativeConfig::with_stopping(StoppingCriterion::AbsoluteResidual(1e-9));
        let reference = cg(&a, &b, &cfg).unwrap();
        assert!(reference.converged);
        for report in [
            jacobi(&a, &b, &cfg).unwrap(),
            gauss_seidel(&a, &b, &cfg).unwrap(),
            sor(&a, &b, &cfg).unwrap(),
            steepest_descent(&a, &b, &cfg).unwrap(),
        ] {
            assert!(report.converged, "{} did not converge", report.method);
            for (x, r) in report.solution.iter().zip(&reference.solution) {
                assert!(
                    (x - r).abs() < 1e-6,
                    "{} disagrees with CG: {x} vs {r}",
                    report.method
                );
            }
        }
    }

    #[test]
    fn convergence_ordering_matches_figure7() {
        // Figure 7: CG fastest, then steepest/SOR, then GS, then Jacobi.
        let a = CsrMatrix::tridiagonal(32, -1.0, 2.0, -1.0).unwrap();
        let b = vec![1.0; 32];
        let cfg = IterativeConfig::with_stopping(StoppingCriterion::AbsoluteResidual(1e-8));
        let it = |r: SolveReport| r.iterations;
        let cg_iters = it(cg(&a, &b, &cfg).unwrap());
        let gs_iters = it(gauss_seidel(&a, &b, &cfg).unwrap());
        let jac_iters = it(jacobi(&a, &b, &cfg).unwrap());
        assert!(cg_iters < gs_iters);
        assert!(gs_iters < jac_iters);
    }
}

use super::jacobi::{invert_diagonal, residual_norm};
use super::{check_system, Driver, IterativeConfig, Method, SolveReport};
use crate::op::RowAccess;
use crate::LinalgError;

/// Gauss–Seidel iteration (successive displacement).
///
/// Like [Jacobi](super::jacobi) but each element update immediately uses the
/// freshly computed values of earlier elements in the same sweep:
/// `x_i ← (b_i − Σ_{j<i} a_ij·x_j^{new} − Σ_{j>i} a_ij·x_j^{old}) / a_ii`.
/// On the Poisson systems of the paper it converges roughly twice as fast as
/// Jacobi (Figure 7).
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b` or the initial guess has the
///   wrong length.
/// * [`LinalgError::SingularMatrix`] if a diagonal entry is zero.
///
/// ```
/// use aa_linalg::{CsrMatrix, iterative::{gauss_seidel, IterativeConfig}};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = CsrMatrix::tridiagonal(6, -1.0, 2.0, -1.0)?;
/// let report = gauss_seidel(&a, &[1.0; 6], &IterativeConfig::default())?;
/// assert!(report.converged);
/// # Ok(())
/// # }
/// ```
pub fn gauss_seidel<M: RowAccess>(
    a: &M,
    b: &[f64],
    config: &IterativeConfig,
) -> Result<SolveReport, LinalgError> {
    gauss_seidel_observed(a, b, config, |_, _| {})
}

/// [`gauss_seidel`] with a per-iteration observer `observe(iteration, iterate)`.
///
/// # Errors
///
/// Same as [`gauss_seidel`].
pub fn gauss_seidel_observed<M, F>(
    a: &M,
    b: &[f64],
    config: &IterativeConfig,
    mut observe: F,
) -> Result<SolveReport, LinalgError>
where
    M: RowAccess,
    F: FnMut(usize, &[f64]),
{
    let n = check_system(a, b)?;
    let x0 = config.validate(n)?;
    let inv_diag = invert_diagonal(a)?;
    let nnz = a.nnz();

    let mut driver = Driver::new(x0, config.stopping, b);
    let mut converged = false;
    let mut iterations = 0;

    for k in 1..=config.max_iterations {
        iterations = k;
        let mut max_change: f64 = 0.0;
        for i in 0..n {
            let mut acc = b[i];
            a.for_each_in_row(i, &mut |j, v| {
                if j != i {
                    acc -= v * driver.x[j];
                }
            });
            let new = acc * inv_diag[i];
            max_change = max_change.max((new - driver.x[i]).abs());
            driver.x[i] = new;
        }
        driver.work.add_matvec(nnz);

        let res = residual_norm(a, &driver.x, b, &mut driver.work);
        observe(k, &driver.x);
        if driver.step_done(res, max_change) {
            converged = true;
            break;
        }
    }
    Ok(driver.finish(Method::GaussSeidel, converged, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::{jacobi, StoppingCriterion};
    use crate::{CsrMatrix, LinearOperator, Triplet};

    #[test]
    fn converges_on_poisson_system() {
        let a = CsrMatrix::tridiagonal(12, -1.0, 2.0, -1.0).unwrap();
        let b = vec![1.0; 12];
        let report = gauss_seidel(&a, &b, &IterativeConfig::default()).unwrap();
        assert!(report.converged);
        assert!(a.residual_norm(&report.solution, &b) < 1e-8);
    }

    #[test]
    fn faster_than_jacobi_on_poisson() {
        // The classical result (and Figure 7's ordering): GS ≈ 2× Jacobi rate.
        let a = CsrMatrix::tridiagonal(20, -1.0, 2.0, -1.0).unwrap();
        let b = vec![1.0; 20];
        let cfg = IterativeConfig::with_stopping(StoppingCriterion::AbsoluteResidual(1e-8));
        let gs = gauss_seidel(&a, &b, &cfg).unwrap();
        let jac = jacobi(&a, &b, &cfg).unwrap();
        assert!(gs.converged && jac.converged);
        assert!(gs.iterations < jac.iterations);
        // The asymptotic factor is ≈2; allow slack for finite tolerance.
        assert!(jac.iterations as f64 / gs.iterations as f64 > 1.5);
    }

    #[test]
    fn zero_diagonal_rejected() {
        let a = CsrMatrix::from_triplets(1, &[Triplet::new(0, 0, 0.0)]).unwrap();
        assert!(gauss_seidel(&a, &[1.0], &IterativeConfig::default()).is_err());
    }

    #[test]
    fn observer_and_history_lengths_agree() {
        let a = CsrMatrix::tridiagonal(5, -1.0, 3.0, -1.0).unwrap();
        let mut seen = 0;
        let report =
            gauss_seidel_observed(&a, &[1.0; 5], &IterativeConfig::default(), |_, _| seen += 1)
                .unwrap();
        assert_eq!(seen, report.iterations);
        assert_eq!(report.residual_history.len(), report.iterations);
    }

    #[test]
    fn rhs_length_validated() {
        let a = CsrMatrix::identity(3);
        assert!(matches!(
            gauss_seidel(&a, &[1.0], &IterativeConfig::default()),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}

use super::{check_system, Driver, IterativeConfig, Method, SolveReport};
use crate::op::RowAccess;
use crate::{vector, LinalgError};

/// Jacobi iteration (simultaneous displacement).
///
/// Every element is updated from the *previous* iterate:
/// `x_i ← (b_i − Σ_{j≠i} a_ij·x_j) / a_ii`.
///
/// Converges for strictly diagonally dominant matrices and for the SPD
/// Poisson systems used throughout the paper, but — as Figure 7 shows — it is
/// the slowest of the classical methods.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b` or the initial guess has the
///   wrong length.
/// * [`LinalgError::SingularMatrix`] if a diagonal entry is zero.
///
/// ```
/// use aa_linalg::{CsrMatrix, iterative::{jacobi, IterativeConfig}};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = CsrMatrix::tridiagonal(6, -1.0, 4.0, -1.0)?;
/// let report = jacobi(&a, &[1.0; 6], &IterativeConfig::default())?;
/// assert!(report.converged);
/// # Ok(())
/// # }
/// ```
pub fn jacobi<M: RowAccess>(
    a: &M,
    b: &[f64],
    config: &IterativeConfig,
) -> Result<SolveReport, LinalgError> {
    jacobi_observed(a, b, config, |_, _| {})
}

/// [`jacobi`] with a per-iteration observer `observe(iteration, iterate)`.
///
/// The observer is what the Figure 7 harness uses to record the error norm
/// `‖x_k − x*‖₂` at every iteration.
///
/// # Errors
///
/// Same as [`jacobi`].
pub fn jacobi_observed<M, F>(
    a: &M,
    b: &[f64],
    config: &IterativeConfig,
    mut observe: F,
) -> Result<SolveReport, LinalgError>
where
    M: RowAccess,
    F: FnMut(usize, &[f64]),
{
    let n = check_system(a, b)?;
    let x0 = config.validate(n)?;
    let inv_diag = invert_diagonal(a)?;
    let nnz = a.nnz();

    let mut driver = Driver::new(x0, config.stopping, b);
    let mut x_next = vec![0.0; n];
    let mut converged = false;
    let mut iterations = 0;

    for k in 1..=config.max_iterations {
        iterations = k;
        let mut max_change: f64 = 0.0;
        for i in 0..n {
            let mut acc = b[i];
            a.for_each_in_row(i, &mut |j, v| {
                if j != i {
                    acc -= v * driver.x[j];
                }
            });
            x_next[i] = acc * inv_diag[i];
            max_change = max_change.max((x_next[i] - driver.x[i]).abs());
        }
        std::mem::swap(&mut driver.x, &mut x_next);
        driver.work.add_matvec(nnz);

        let res = residual_norm(a, &driver.x, b, &mut driver.work);
        observe(k, &driver.x);
        if driver.step_done(res, max_change) {
            converged = true;
            break;
        }
    }
    Ok(driver.finish(Method::Jacobi, converged, iterations))
}

/// Extracts `1/a_ii` for every row, failing on zero diagonals.
pub(crate) fn invert_diagonal<M: RowAccess>(a: &M) -> Result<Vec<f64>, LinalgError> {
    (0..a.dim())
        .map(|i| {
            let d = a.diagonal(i);
            if d == 0.0 {
                Err(LinalgError::SingularMatrix { pivot: i })
            } else {
                Ok(1.0 / d)
            }
        })
        .collect()
}

/// `‖b − A·x‖₂`, charging the extra matvec to the work counters.
pub(crate) fn residual_norm<M: RowAccess>(
    a: &M,
    x: &[f64],
    b: &[f64],
    work: &mut super::WorkCounters,
) -> f64 {
    work.add_matvec(a.nnz());
    vector::norm2(&a.residual(x, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::StoppingCriterion;
    use crate::{CsrMatrix, LinearOperator, Triplet};

    #[test]
    fn converges_on_diagonally_dominant_system() {
        let a = CsrMatrix::tridiagonal(10, -1.0, 4.0, -1.0).unwrap();
        let b = vec![2.0; 10];
        let report = jacobi(&a, &b, &IterativeConfig::default()).unwrap();
        assert!(report.converged);
        assert!(a.residual_norm(&report.solution, &b) < 1e-8);
        assert_eq!(report.residual_history.len(), report.iterations);
    }

    #[test]
    fn diverges_gracefully_when_capped() {
        // Not diagonally dominant; Jacobi diverges but must stop at the cap.
        let a = CsrMatrix::from_triplets(
            2,
            &[
                Triplet::new(0, 0, 1.0),
                Triplet::new(0, 1, 2.0),
                Triplet::new(1, 0, 3.0),
                Triplet::new(1, 1, 1.0),
            ],
        )
        .unwrap();
        let cfg = IterativeConfig::default().max_iterations(50);
        let report = jacobi(&a, &[1.0, 1.0], &cfg).unwrap();
        assert!(!report.converged);
        assert_eq!(report.iterations, 50);
    }

    #[test]
    fn zero_diagonal_is_singular_error() {
        let a = CsrMatrix::from_triplets(2, &[Triplet::new(0, 1, 1.0), Triplet::new(1, 0, 1.0)])
            .unwrap();
        assert!(matches!(
            jacobi(&a, &[1.0, 1.0], &IterativeConfig::default()),
            Err(LinalgError::SingularMatrix { pivot: 0 })
        ));
    }

    #[test]
    fn observer_sees_every_iteration() {
        let a = CsrMatrix::tridiagonal(4, -1.0, 4.0, -1.0).unwrap();
        let mut count = 0;
        let report = jacobi_observed(&a, &[1.0; 4], &IterativeConfig::default(), |k, x| {
            count += 1;
            assert_eq!(k, count);
            assert_eq!(x.len(), 4);
        })
        .unwrap();
        assert_eq!(count, report.iterations);
    }

    #[test]
    fn max_change_stopping_matches_adc_rule() {
        let a = CsrMatrix::tridiagonal(6, -1.0, 4.0, -1.0).unwrap();
        let cfg = IterativeConfig::with_stopping(StoppingCriterion::adc_equivalent(8));
        let r8 = jacobi(&a, &[1.0; 6], &cfg).unwrap();
        let cfg12 = IterativeConfig::with_stopping(StoppingCriterion::adc_equivalent(12));
        let r12 = jacobi(&a, &[1.0; 6], &cfg12).unwrap();
        assert!(r8.converged && r12.converged);
        // Matching a 12-bit ADC requires at least as many iterations as 8-bit.
        assert!(r12.iterations >= r8.iterations);
    }

    #[test]
    fn initial_guess_at_solution_stops_immediately() {
        let a = CsrMatrix::identity(3);
        let b = vec![1.0, 2.0, 3.0];
        let cfg = IterativeConfig::default().initial_guess(b.clone());
        let report = jacobi(&a, &b, &cfg).unwrap();
        assert!(report.converged);
        assert_eq!(report.iterations, 1);
    }

    #[test]
    fn work_counters_are_populated() {
        let a = CsrMatrix::tridiagonal(8, -1.0, 4.0, -1.0).unwrap();
        let report = jacobi(&a, &[1.0; 8], &IterativeConfig::default()).unwrap();
        assert!(report.work.matvecs >= report.iterations);
        assert!(report.work.flops > 0);
    }
}

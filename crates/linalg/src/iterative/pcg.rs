use super::jacobi::invert_diagonal;
use super::{check_system, Driver, IterativeConfig, Method, SolveReport};
use crate::op::RowAccess;
use crate::{vector, LinalgError};

/// Jacobi-preconditioned conjugate gradients.
///
/// CG with the diagonal preconditioner `M = diag(A)`: each iteration solves
/// `M·z = r` (one division per element) and conjugates in the `M`-inner
/// product. For the constant-diagonal Poisson stencils of the paper this
/// equals plain CG, but it strengthens the digital baseline on
/// variable-coefficient problems — the paper's point that "the intense
/// demand for efficient linear algebra has led to powerful digital
/// algorithms … that make the baseline in this study difficult to beat"
/// extends to preconditioning, which has no analog counterpart.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] on shape errors.
/// * [`LinalgError::SingularMatrix`] on a zero diagonal.
/// * [`LinalgError::NotPositiveDefinite`] on non-positive curvature.
///
/// ```
/// use aa_linalg::{CsrMatrix, iterative::{pcg, IterativeConfig}};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = CsrMatrix::tridiagonal(16, -1.0, 2.0, -1.0)?;
/// let report = pcg(&a, &[1.0; 16], &IterativeConfig::default())?;
/// assert!(report.converged);
/// # Ok(())
/// # }
/// ```
pub fn pcg<M: RowAccess>(
    a: &M,
    b: &[f64],
    config: &IterativeConfig,
) -> Result<SolveReport, LinalgError> {
    let n = check_system(a, b)?;
    let x0 = config.validate(n)?;
    let inv_diag = invert_diagonal(a)?;
    if inv_diag.iter().any(|d| *d < 0.0) {
        return Err(LinalgError::NotPositiveDefinite { pivot: 0 });
    }
    let nnz = a.nnz();

    let mut driver = Driver::new(x0, config.stopping, b);
    let mut r = a.residual(&driver.x, b);
    driver.work.add_matvec(nnz);
    // z = M⁻¹·r, p = z.
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, d)| ri * d).collect();
    let mut p = z.clone();
    let mut ap = vec![0.0; n];
    let mut rz = vector::dot(&r, &z);
    driver.work.add_dot(n);

    let mut converged = false;
    let mut iterations = 0;

    for k in 1..=config.max_iterations {
        iterations = k;
        if rz == 0.0 {
            converged = driver.step_done(0.0, 0.0);
            break;
        }
        a.apply(&p, &mut ap);
        driver.work.add_matvec(nnz);
        let curvature = vector::dot(&p, &ap);
        driver.work.add_dot(n);
        if curvature <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: k });
        }
        let alpha = rz / curvature;
        vector::axpy(alpha, &p, &mut driver.x);
        driver.work.add_axpy(n);
        vector::axpy(-alpha, &ap, &mut r);
        driver.work.add_axpy(n);
        for (zi, (ri, d)) in z.iter_mut().zip(r.iter().zip(&inv_diag)) {
            *zi = ri * d;
        }
        driver.work.add_axpy(n);
        let rz_new = vector::dot(&r, &z);
        driver.work.add_dot(n);
        let beta = rz_new / rz;
        vector::xpby(&z, beta, &mut p);
        driver.work.add_axpy(n);

        let max_change = alpha.abs() * vector::norm_inf(&p);
        rz = rz_new;
        if driver.step_done(vector::norm2(&r), max_change) {
            converged = true;
            break;
        }
    }
    Ok(driver.finish(Method::ConjugateGradient, converged, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::{cg, StoppingCriterion};
    use crate::{CsrMatrix, Triplet};

    /// An SPD system with widely varying diagonal (a "variable coefficient"
    /// Poisson), where Jacobi preconditioning should shine.
    fn variable_coefficient(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            // Coefficients spanning two orders of magnitude.
            let c = 1.0 + 99.0 * (i as f64 / n as f64).powi(2);
            if i > 0 {
                t.push(Triplet::new(i, i - 1, -c));
                t.push(Triplet::new(i - 1, i, -c));
            }
            t.push(Triplet::new(i, i, 2.5 * c + 0.5));
        }
        CsrMatrix::from_triplets(n, &t).unwrap()
    }

    #[test]
    fn matches_cg_solution() {
        let a = variable_coefficient(24);
        let b: Vec<f64> = (0..24).map(|i| ((i % 7) as f64) - 3.0).collect();
        let cfg = IterativeConfig::with_stopping(StoppingCriterion::RelativeResidual(1e-11));
        let plain = cg(&a, &b, &cfg).unwrap();
        let precond = pcg(&a, &b, &cfg).unwrap();
        assert!(plain.converged && precond.converged);
        for (x, y) in plain.solution.iter().zip(&precond.solution) {
            assert!((x - y).abs() < 1e-7 * x.abs().max(1.0));
        }
    }

    #[test]
    fn preconditioning_reduces_iterations_on_bad_scaling() {
        let a = variable_coefficient(64);
        let b = vec![1.0; 64];
        let cfg = IterativeConfig::with_stopping(StoppingCriterion::RelativeResidual(1e-10));
        let plain = cg(&a, &b, &cfg).unwrap();
        let precond = pcg(&a, &b, &cfg).unwrap();
        assert!(
            precond.iterations <= plain.iterations,
            "pcg {} !<= cg {}",
            precond.iterations,
            plain.iterations
        );
    }

    #[test]
    fn equals_cg_on_constant_diagonal() {
        // Jacobi preconditioning of a constant-diagonal matrix is a uniform
        // rescale: identical iterates to plain CG.
        let a = CsrMatrix::tridiagonal(16, -1.0, 2.0, -1.0).unwrap();
        let b = vec![1.0; 16];
        let cfg = IterativeConfig::with_stopping(StoppingCriterion::RelativeResidual(1e-10));
        let plain = cg(&a, &b, &cfg).unwrap();
        let precond = pcg(&a, &b, &cfg).unwrap();
        assert_eq!(plain.iterations, precond.iterations);
    }

    #[test]
    fn rejects_indefinite_diagonal() {
        let a = CsrMatrix::from_triplets(2, &[Triplet::new(0, 0, -1.0), Triplet::new(1, 1, 1.0)])
            .unwrap();
        assert!(pcg(&a, &[1.0, 1.0], &IterativeConfig::default()).is_err());
    }

    #[test]
    fn validates_shapes() {
        let a = CsrMatrix::identity(3);
        assert!(pcg(&a, &[1.0], &IterativeConfig::default()).is_err());
    }
}

use super::{check_system, Driver, IterativeConfig, Method, SolveReport};
use crate::op::RowAccess;
use crate::{vector, LinalgError};

/// Conjugate gradients for symmetric positive-definite systems.
///
/// The paper's strongest digital baseline (§V-A): "CG converges to a solution
/// limited by the precision of double precision floating point numbers the
/// quickest". Each step chooses a search direction conjugate to all previous
/// ones, so in exact arithmetic CG terminates in at most `n` steps and in
/// practice in `O(√κ)` iterations (`O(L) = O(√N)` for the 2D Poisson problem,
/// the `N^0.5` convergence-steps entry of the paper's Table III).
///
/// The implementation is matrix-free — it only applies the operator — so it
/// runs identically over a [`CsrMatrix`](crate::CsrMatrix) or a
/// [Poisson stencil](crate::stencil::PoissonStencil), matching the paper's
/// stencil-based CG that never allocates the full matrix.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b` or the initial guess has the
///   wrong length.
/// * [`LinalgError::NotPositiveDefinite`] if a non-positive curvature
///   `pᵀAp ≤ 0` is encountered.
///
/// ```
/// use aa_linalg::{CsrMatrix, iterative::{cg, IterativeConfig}};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = CsrMatrix::tridiagonal(32, -1.0, 2.0, -1.0)?;
/// let report = cg(&a, &[1.0; 32], &IterativeConfig::default())?;
/// assert!(report.converged);
/// // Exact termination: at most n iterations.
/// assert!(report.iterations <= 32);
/// # Ok(())
/// # }
/// ```
pub fn cg<M: RowAccess>(
    a: &M,
    b: &[f64],
    config: &IterativeConfig,
) -> Result<SolveReport, LinalgError> {
    cg_observed(a, b, config, |_, _| {})
}

/// [`cg`] with a per-iteration observer `observe(iteration, iterate)`.
///
/// # Errors
///
/// Same as [`cg`].
pub fn cg_observed<M, F>(
    a: &M,
    b: &[f64],
    config: &IterativeConfig,
    mut observe: F,
) -> Result<SolveReport, LinalgError>
where
    M: RowAccess,
    F: FnMut(usize, &[f64]),
{
    let n = check_system(a, b)?;
    let x0 = config.validate(n)?;
    let nnz = a.nnz();

    let mut driver = Driver::new(x0, config.stopping, b);
    let mut r = a.residual(&driver.x, b);
    driver.work.add_matvec(nnz);
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rr = vector::dot(&r, &r);
    driver.work.add_dot(n);

    let mut converged = false;
    let mut iterations = 0;

    for k in 1..=config.max_iterations {
        iterations = k;
        if rr == 0.0 {
            observe(k, &driver.x);
            converged = driver.step_done(0.0, 0.0);
            break;
        }
        a.apply(&p, &mut ap);
        driver.work.add_matvec(nnz);
        let curvature = vector::dot(&p, &ap);
        driver.work.add_dot(n);
        if curvature <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: k });
        }
        let alpha = rr / curvature;
        vector::axpy(alpha, &p, &mut driver.x);
        driver.work.add_axpy(n);
        vector::axpy(-alpha, &ap, &mut r);
        driver.work.add_axpy(n);
        let rr_new = vector::dot(&r, &r);
        driver.work.add_dot(n);
        let beta = rr_new / rr;
        vector::xpby(&r, beta, &mut p);
        driver.work.add_axpy(n);

        let max_change = alpha.abs() * vector::norm_inf(&p);
        rr = rr_new;
        observe(k, &driver.x);
        if driver.step_done(rr.sqrt(), max_change) {
            converged = true;
            break;
        }
    }
    Ok(driver.finish(Method::ConjugateGradient, converged, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use crate::iterative::StoppingCriterion;
    use crate::stencil::PoissonStencil;
    use crate::LinearOperator;
    use crate::{CsrMatrix, Triplet};

    #[test]
    fn exact_termination_in_n_steps() {
        let a = CsrMatrix::tridiagonal(16, -1.0, 2.0, -1.0).unwrap();
        let b: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let cfg = IterativeConfig::with_stopping(StoppingCriterion::AbsoluteResidual(1e-10));
        let report = cg(&a, &b, &cfg).unwrap();
        assert!(report.converged);
        assert!(report.iterations <= 16);
    }

    #[test]
    fn matches_direct_solver() {
        let a = CsrMatrix::tridiagonal(8, -1.0, 2.0, -1.0).unwrap();
        let b = vec![1.0; 8];
        let report = cg(&a, &b, &IterativeConfig::default()).unwrap();
        let exact = direct::solve(&a.to_dense(), &b).unwrap();
        for (x, e) in report.solution.iter().zip(&exact) {
            assert!((x - e).abs() < 1e-8);
        }
    }

    #[test]
    fn matrix_free_stencil_agrees_with_assembled() {
        let op = PoissonStencil::new_2d(6).unwrap();
        let a = CsrMatrix::from_row_access(&op);
        let b = vec![1.0; op.dim()];
        let cfg = IterativeConfig::with_stopping(StoppingCriterion::AbsoluteResidual(1e-10));
        let r1 = cg(&op, &b, &cfg).unwrap();
        let r2 = cg(&a, &b, &cfg).unwrap();
        assert_eq!(r1.iterations, r2.iterations);
        for (x, y) in r1.solution.iter().zip(&r2.solution) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn iterations_scale_with_sqrt_condition() {
        // 2D Poisson: κ ∝ L², so CG iterations ∝ L (the paper's N^0.5 row in
        // Table III). Doubling L should roughly double iterations.
        let stop = StoppingCriterion::RelativeResidual(1e-10);
        let count = |l: usize| {
            let op = PoissonStencil::new_2d(l).unwrap();
            // A pseudo-random RHS so CG explores the full Krylov space.
            let mut state = 12345u64;
            let b: Vec<f64> = (0..op.dim())
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
                .collect();
            cg(&op, &b, &IterativeConfig::with_stopping(stop))
                .unwrap()
                .iterations as f64
        };
        let i16 = count(16);
        let i32 = count(32);
        let ratio = i32 / i16;
        assert!(
            ratio > 1.6 && ratio < 2.5,
            "expected ≈2x iteration growth, got {ratio}"
        );
    }

    #[test]
    fn non_spd_matrix_detected() {
        let a = CsrMatrix::from_triplets(2, &[Triplet::new(0, 0, -1.0), Triplet::new(1, 1, -1.0)])
            .unwrap();
        assert!(matches!(
            cg(&a, &[1.0, 1.0], &IterativeConfig::default()),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let a = CsrMatrix::tridiagonal(5, -1.0, 2.0, -1.0).unwrap();
        let report = cg(&a, &[0.0; 5], &IterativeConfig::default()).unwrap();
        assert!(report.converged);
        assert_eq!(report.solution, vec![0.0; 5]);
    }

    #[test]
    fn work_counter_has_two_matvec_shape() {
        // CG uses one matvec per iteration plus one for the initial residual.
        let a = CsrMatrix::tridiagonal(12, -1.0, 2.0, -1.0).unwrap();
        let report = cg(&a, &[1.0; 12], &IterativeConfig::default()).unwrap();
        assert_eq!(report.work.matvecs, report.iterations + 1);
    }
}

use std::error::Error;
use std::fmt;

/// Errors produced by linear-algebra routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. matrix–vector dimension mismatch).
    DimensionMismatch {
        /// Dimension the operation expected.
        expected: usize,
        /// Dimension that was actually supplied.
        actual: usize,
        /// Human-readable description of which operand mismatched.
        context: &'static str,
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A factorization encountered a zero (or numerically negligible) pivot.
    SingularMatrix {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// Cholesky required symmetric positive-definiteness and the matrix is not SPD.
    NotPositiveDefinite {
        /// Index of the pivot where positive-definiteness failed.
        pivot: usize,
    },
    /// A structurally invalid argument (empty matrix, index out of bounds, ...).
    InvalidArgument {
        /// Description of the invalid argument.
        message: String,
    },
}

impl LinalgError {
    /// Convenience constructor for [`LinalgError::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        LinalgError::InvalidArgument {
            message: message.into(),
        }
    }
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite at pivot {pivot}")
            }
            LinalgError::InvalidArgument { message } => {
                write!(f, "invalid argument: {message}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::DimensionMismatch {
            expected: 3,
            actual: 4,
            context: "matvec",
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in matvec: expected 3, got 4"
        );
        let e = LinalgError::NotSquare { rows: 2, cols: 3 };
        assert_eq!(e.to_string(), "matrix must be square, got 2x3");
        let e = LinalgError::SingularMatrix { pivot: 1 };
        assert_eq!(e.to_string(), "matrix is singular at pivot 1");
        let e = LinalgError::NotPositiveDefinite { pivot: 0 };
        assert_eq!(e.to_string(), "matrix is not positive definite at pivot 0");
        let e = LinalgError::invalid("empty matrix");
        assert_eq!(e.to_string(), "invalid argument: empty matrix");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}

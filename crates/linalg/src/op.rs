//! Operator abstractions shared by every solver in the workspace.
//!
//! Iterative solvers only need to *apply* a matrix, never to store it.
//! [`LinearOperator`] captures that minimal contract, which lets the same
//! conjugate-gradients code run over an explicit [`CsrMatrix`](crate::CsrMatrix),
//! a dense matrix, or a matrix-free [Poisson stencil](crate::stencil) — the
//! representation the paper's digital baseline uses ("implemented using
//! stencils ... without having to allocate memory for the full matrix").

use crate::vector;

/// A square linear operator `A : ℝⁿ → ℝⁿ` that can be applied to a vector.
pub trait LinearOperator {
    /// Problem dimension `n` (number of rows and columns).
    fn dim(&self) -> usize;

    /// Computes `y ← A·x`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.len()` or `y.len()` differ from
    /// [`dim`](Self::dim).
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Computes `A·x` into a fresh vector.
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }

    /// Computes the residual `r = b − A·x` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != b.len()` or either differs from [`dim`](Self::dim).
    fn residual(&self, x: &[f64], b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.dim(), "residual: rhs length mismatch");
        let mut r = self.apply_vec(x);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        r
    }

    /// Euclidean norm of the residual `‖b − A·x‖₂`.
    fn residual_norm(&self, x: &[f64], b: &[f64]) -> f64 {
        vector::norm2(&self.residual(x, b))
    }
}

/// Row-wise access to an operator's coefficients.
///
/// Gauss–Seidel and SOR sweep rows in place and therefore need the actual
/// coefficients, not just matrix–vector products. Stencil operators implement
/// this by regenerating their row pattern on the fly.
pub trait RowAccess: LinearOperator {
    /// Calls `f(j, a_ij)` for every structurally non-zero entry of row `i`.
    ///
    /// Entries may be visited in any order. An entry may be visited at most
    /// once per call.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    fn for_each_in_row(&self, i: usize, f: &mut dyn FnMut(usize, f64));

    /// The diagonal entry `a_ii`.
    ///
    /// The default implementation scans row `i`; implementations with cheap
    /// diagonal access should override it.
    fn diagonal(&self, i: usize) -> f64 {
        let mut d = 0.0;
        self.for_each_in_row(i, &mut |j, v| {
            if j == i {
                d += v;
            }
        });
        d
    }

    /// Number of structural non-zeros in row `i`.
    fn row_nnz(&self, i: usize) -> usize {
        let mut n = 0;
        self.for_each_in_row(i, &mut |_, _| n += 1);
        n
    }

    /// Total number of structural non-zeros.
    fn nnz(&self) -> usize {
        (0..self.dim()).map(|i| self.row_nnz(i)).sum()
    }
}

impl<T: LinearOperator + ?Sized> LinearOperator for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y)
    }
}

impl<T: RowAccess + ?Sized> RowAccess for &T {
    fn for_each_in_row(&self, i: usize, f: &mut dyn FnMut(usize, f64)) {
        (**self).for_each_in_row(i, f)
    }
    fn diagonal(&self, i: usize) -> f64 {
        (**self).diagonal(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = CsrMatrix::identity(3);
        let b = vec![1.0, 2.0, 3.0];
        let r = a.residual(&b, &b);
        assert_eq!(r, vec![0.0; 3]);
        assert_eq!(a.residual_norm(&b, &b), 0.0);
    }

    #[test]
    fn trait_object_usable() {
        let a = CsrMatrix::identity(2);
        let op: &dyn LinearOperator = &a;
        assert_eq!(op.dim(), 2);
        assert_eq!(op.apply_vec(&[5.0, 7.0]), vec![5.0, 7.0]);
    }

    #[test]
    fn reference_impl_forwards() {
        let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).unwrap();
        let r = &a;
        assert_eq!(LinearOperator::dim(&r), 3);
        assert_eq!(RowAccess::diagonal(&r, 1), 2.0);
        assert_eq!(RowAccess::nnz(&r), 7);
    }
}

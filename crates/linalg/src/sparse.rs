use crate::op::{LinearOperator, RowAccess};
use crate::LinalgError;

/// A `(row, col, value)` coordinate entry used to assemble a [`CsrMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Coefficient value.
    pub value: f64,
}

impl Triplet {
    /// Creates a triplet.
    pub fn new(row: usize, col: usize, value: f64) -> Self {
        Triplet { row, col, value }
    }
}

/// A square sparse matrix in compressed-sparse-row (CSR) format.
///
/// This is the explicit sparse representation used when the analog solver
/// needs the actual coefficients of a discretized PDE (configuring multiplier
/// gains requires reading `a_ij`, not just applying the operator).
///
/// ```
/// use aa_linalg::{CsrMatrix, Triplet, LinearOperator};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = CsrMatrix::from_triplets(2, &[
///     Triplet::new(0, 0, 2.0),
///     Triplet::new(0, 1, -1.0),
///     Triplet::new(1, 1, 2.0),
/// ])?;
/// assert_eq!(a.apply_vec(&[1.0, 1.0]), vec![1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles an `n × n` matrix from coordinate triplets.
    ///
    /// Duplicate `(row, col)` entries are summed, matching the usual
    /// finite-element assembly convention. Explicit zeros are kept.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `n == 0` or any index is
    /// out of bounds.
    pub fn from_triplets(n: usize, triplets: &[Triplet]) -> Result<Self, LinalgError> {
        if n == 0 {
            return Err(LinalgError::invalid("matrix dimension must be non-zero"));
        }
        for t in triplets {
            if t.row >= n || t.col >= n {
                return Err(LinalgError::invalid(format!(
                    "triplet ({}, {}) out of bounds for dimension {n}",
                    t.row, t.col
                )));
            }
        }
        let mut sorted: Vec<Triplet> = triplets.to_vec();
        sorted.sort_by_key(|t| (t.row, t.col));

        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut prev: Option<(usize, usize)> = None;
        for t in &sorted {
            if prev == Some((t.row, t.col)) {
                *values.last_mut().expect("duplicate implies a stored entry") += t.value;
            } else {
                col_idx.push(t.col);
                values.push(t.value);
                row_ptr[t.row + 1] = col_idx.len();
                prev = Some((t.row, t.col));
            }
        }
        // Make row_ptr cumulative (rows with no entries inherit the previous offset).
        for i in 1..=n {
            if row_ptr[i] < row_ptr[i - 1] {
                row_ptr[i] = row_ptr[i - 1];
            }
        }
        Ok(CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// The `n × n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "identity dimension must be non-zero");
        CsrMatrix {
            n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// A tridiagonal matrix with constant bands `(lower, diag, upper)`.
    ///
    /// This is the 1D Poisson form `[-1, 2, -1]` (up to scaling) used
    /// throughout the paper's decomposition discussion.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `n == 0`.
    pub fn tridiagonal(n: usize, lower: f64, diag: f64, upper: f64) -> Result<Self, LinalgError> {
        let mut t = Vec::with_capacity(3 * n);
        for i in 0..n {
            if i > 0 {
                t.push(Triplet::new(i, i - 1, lower));
            }
            t.push(Triplet::new(i, i, diag));
            if i + 1 < n {
                t.push(Triplet::new(i, i + 1, upper));
            }
        }
        CsrMatrix::from_triplets(n, &t)
    }

    /// Builds a CSR matrix from any [`RowAccess`] operator (e.g. a stencil).
    pub fn from_row_access<M: RowAccess>(op: &M) -> Self {
        let n = op.dim();
        let mut triplets = Vec::new();
        for i in 0..n {
            op.for_each_in_row(i, &mut |j, v| triplets.push(Triplet::new(i, j, v)));
        }
        CsrMatrix::from_triplets(n, &triplets).expect("RowAccess indices are in bounds")
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Entry `a_ij` (zero if not stored).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(row, col, value)` of stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            self.col_idx[lo..hi]
                .iter()
                .zip(&self.values[lo..hi])
                .map(move |(&j, &v)| (i, j, v))
        })
    }

    /// Maximum absolute coefficient, `max_ij |a_ij|`.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= s;
        }
        out
    }

    /// Whether the matrix is symmetric within tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.iter()
            .all(|(i, j, v)| (self.get(j, i) - v).abs() <= tol)
    }

    /// Extracts the square sub-matrix for the index set `indices`
    /// (the block-diagonal piece the paper's domain decomposition solves).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `indices` is empty or has
    /// an out-of-bounds entry.
    pub fn submatrix(&self, indices: &[usize]) -> Result<CsrMatrix, LinalgError> {
        if indices.is_empty() {
            return Err(LinalgError::invalid("submatrix index set is empty"));
        }
        let mut map = vec![usize::MAX; self.n];
        for (k, &i) in indices.iter().enumerate() {
            if i >= self.n {
                return Err(LinalgError::invalid(format!(
                    "submatrix index {i} out of bounds for dimension {}",
                    self.n
                )));
            }
            map[i] = k;
        }
        let mut triplets = Vec::new();
        for (k, &i) in indices.iter().enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for (c, v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
                if map[*c] != usize::MAX {
                    triplets.push(Triplet::new(k, map[*c], *v));
                }
            }
        }
        CsrMatrix::from_triplets(indices.len(), &triplets)
    }

    /// The transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let triplets: Vec<Triplet> = self.iter().map(|(i, j, v)| Triplet::new(j, i, v)).collect();
        CsrMatrix::from_triplets(self.n, &triplets).expect("transpose preserves bounds")
    }

    /// Converts to a dense matrix (intended for small systems and tests).
    pub fn to_dense(&self) -> crate::DenseMatrix {
        let mut d = crate::DenseMatrix::zeros(self.n, self.n).expect("n > 0 by construction");
        for (i, j, v) in self.iter() {
            d.set(i, j, d.get(i, j) + v);
        }
        d
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "apply: input length mismatch");
        assert_eq!(y.len(), self.n, "apply: output length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for (c, v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
                acc += v * x[*c];
            }
            *yi = acc;
        }
    }
}

impl RowAccess for CsrMatrix {
    fn for_each_in_row(&self, i: usize, f: &mut dyn FnMut(usize, f64)) {
        assert!(i < self.n, "row index out of bounds");
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        for (c, v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
            f(*c, *v);
        }
    }

    fn diagonal(&self, i: usize) -> f64 {
        self.get(i, i)
    }

    fn row_nnz(&self, i: usize) -> usize {
        assert!(i < self.n, "row index out of bounds");
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }
}

impl FromIterator<Triplet> for Result<CsrMatrix, LinalgError> {
    fn from_iter<I: IntoIterator<Item = Triplet>>(iter: I) -> Self {
        let triplets: Vec<Triplet> = iter.into_iter().collect();
        let n = triplets
            .iter()
            .map(|t| t.row.max(t.col) + 1)
            .max()
            .unwrap_or(0);
        CsrMatrix::from_triplets(n, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_sorts_and_sums_duplicates() {
        let a = CsrMatrix::from_triplets(
            2,
            &[
                Triplet::new(1, 0, 3.0),
                Triplet::new(0, 0, 1.0),
                Triplet::new(0, 0, 1.5),
                Triplet::new(0, 1, 2.0),
            ],
        )
        .unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 0), 2.5);
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 0), 3.0);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn out_of_bounds_triplet_rejected() {
        assert!(CsrMatrix::from_triplets(2, &[Triplet::new(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(0, &[]).is_err());
    }

    #[test]
    fn empty_rows_are_allowed() {
        let a = CsrMatrix::from_triplets(3, &[Triplet::new(2, 2, 5.0)]).unwrap();
        assert_eq!(a.row_nnz(0), 0);
        assert_eq!(a.row_nnz(1), 0);
        assert_eq!(a.row_nnz(2), 1);
        assert_eq!(a.apply_vec(&[1.0, 1.0, 1.0]), vec![0.0, 0.0, 5.0]);
    }

    #[test]
    fn tridiagonal_structure() {
        let a = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
        assert_eq!(a.nnz(), 10);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(3, 2), -1.0);
        assert_eq!(a.get(0, 3), 0.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn matvec_matches_dense() {
        let a = CsrMatrix::tridiagonal(5, -1.0, 2.0, -1.0).unwrap();
        let d = a.to_dense();
        let x: Vec<f64> = (0..5).map(|i| (i as f64) * 0.3 - 0.7).collect();
        let ys = a.apply_vec(&x);
        let yd = d.apply_vec(&x);
        for (s, dv) in ys.iter().zip(&yd) {
            assert!((s - dv).abs() < 1e-14);
        }
    }

    #[test]
    fn submatrix_extracts_block() {
        let a = CsrMatrix::tridiagonal(5, -1.0, 2.0, -1.0).unwrap();
        let s = a.submatrix(&[1, 2, 3]).unwrap();
        assert_eq!(s.dim(), 3);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(0, 1), -1.0);
        assert_eq!(s.get(2, 1), -1.0);
        // Couplings to rows 0 and 4 are dropped.
        assert_eq!(s.nnz(), 7);
    }

    #[test]
    fn submatrix_validates_indices() {
        let a = CsrMatrix::identity(3);
        assert!(a.submatrix(&[]).is_err());
        assert!(a.submatrix(&[3]).is_err());
    }

    #[test]
    fn from_row_access_round_trips() {
        let a = CsrMatrix::tridiagonal(4, -1.0, 4.0, -1.0).unwrap();
        let b = CsrMatrix::from_row_access(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn scaled_and_max_abs() {
        let a = CsrMatrix::tridiagonal(3, -1.0, 4.0, -1.0).unwrap();
        assert_eq!(a.max_abs(), 4.0);
        let b = a.scaled(0.5);
        assert_eq!(b.get(1, 1), 2.0);
        assert_eq!(b.get(1, 0), -0.5);
    }

    #[test]
    fn iter_visits_all_entries() {
        let a = CsrMatrix::tridiagonal(3, -1.0, 2.0, -1.0).unwrap();
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(entries.len(), 7);
        assert!(entries.contains(&(1, 0, -1.0)));
        assert!(entries.contains(&(1, 1, 2.0)));
    }

    #[test]
    fn transpose_round_trips() {
        let a = CsrMatrix::from_triplets(
            3,
            &[
                Triplet::new(0, 1, 2.0),
                Triplet::new(1, 0, -1.0),
                Triplet::new(2, 2, 5.0),
                Triplet::new(0, 2, 7.0),
            ],
        )
        .unwrap();
        let t = a.transpose();
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.get(0, 1), -1.0);
        assert_eq!(t.get(2, 0), 7.0);
        assert_eq!(t.get(2, 2), 5.0);
        assert_eq!(t.transpose(), a);
        // Symmetric matrices are fixed points.
        let s = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0).unwrap();
        assert_eq!(s.transpose(), s);
    }

    #[test]
    fn collect_from_triplets() {
        let r: Result<CsrMatrix, _> = vec![Triplet::new(0, 0, 1.0), Triplet::new(1, 1, 2.0)]
            .into_iter()
            .collect();
        let a = r.unwrap();
        assert_eq!(a.dim(), 2);
        assert_eq!(a.get(1, 1), 2.0);
    }
}

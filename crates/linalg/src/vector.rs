//! Free functions on `&[f64]` vectors: BLAS-1 style kernels and norms.
//!
//! All functions panic on dimension mismatch — they are inner-loop kernels
//! used pervasively by the solvers, where a mismatch is a programming error
//! rather than a recoverable condition.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
///
/// ```
/// assert_eq!(aa_linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
///
/// ```
/// assert_eq!(aa_linalg::vector::norm2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Max norm `‖x‖∞`.
///
/// ```
/// assert_eq!(aa_linalg::vector::norm_inf(&[1.0, -7.0, 3.0]), 7.0);
/// ```
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// `y ← a·x + y`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y ← x + b·y` (scale-and-add used by CG's direction update).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + b * *yi;
    }
}

/// `x ← a·x`.
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Element-wise difference `x − y` as a new vector.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Largest absolute element-wise change between two iterates,
/// `max_i |x_i − y_i|`.
///
/// This is the paper's digital stopping criterion: iteration stops when no
/// element of the output vector changes by more than 1/256 (one 8-bit ADC
/// code) of full scale.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn max_abs_change(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_change: length mismatch");
    x.iter().zip(y).fold(0.0, |m, (a, b)| m.max((a - b).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [1.0, -2.0, 2.0];
        assert_eq!(dot(&x, &x), 9.0);
        assert_eq!(norm2(&x), 3.0);
        assert_eq!(norm_inf(&x), 2.0);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn xpby_matches_manual() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn sub_and_max_change() {
        let x = [3.0, 5.0];
        let y = [1.0, 9.0];
        assert_eq!(sub(&x, &y), vec![2.0, -4.0]);
        assert_eq!(max_abs_change(&x, &y), 4.0);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}

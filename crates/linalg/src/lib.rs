//! Dense and sparse linear algebra for the `analog-accel` workspace.
//!
//! This crate is the digital-computing substrate of the ISCA 2016 paper
//! *Evaluation of an Analog Accelerator for Linear Algebra*: it provides the
//! matrices, matrix-free stencil operators, direct factorizations, and the
//! classical iterative solvers (Jacobi, Gauss–Seidel, SOR, steepest descent,
//! conjugate gradients) that the paper's digital baseline is built from.
//!
//! # Quick start
//!
//! Solve a small symmetric positive-definite system with conjugate gradients:
//!
//! ```
//! use aa_linalg::{CsrMatrix, LinearOperator, iterative::{cg, IterativeConfig}};
//!
//! # fn main() -> Result<(), aa_linalg::LinalgError> {
//! // 1D Poisson: tridiagonal [-1, 2, -1].
//! let a = CsrMatrix::tridiagonal(4, -1.0, 2.0, -1.0)?;
//! let b = vec![1.0; 4];
//! let report = cg(&a, &b, &IterativeConfig::default())?;
//! assert!(report.converged);
//! let residual = a.residual_norm(&report.solution, &b);
//! assert!(residual < 1e-8);
//! # Ok(())
//! # }
//! ```
//!
//! # Organization
//!
//! * [`DenseMatrix`] — row-major dense matrices with factorization support.
//! * [`CsrMatrix`] — compressed sparse row matrices built from triplets.
//! * [`stencil`] — matrix-free Poisson operators in 1, 2, and 3 dimensions.
//! * [`direct`] — Cholesky and LU (Gaussian elimination) direct solvers.
//! * [`iterative`] — the five classical iterative solvers compared in the
//!   paper's Figure 7, each reporting a full convergence history.
//! * [`eigen`] — eigenvalue estimation (power iteration, Gershgorin discs)
//!   used by the analog convergence-time model.
//! * [`compensated`] — two-float (double-double style) error-free kernels
//!   for extended-precision residual accumulation in iterative refinement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod error;
mod sparse;

pub mod compensated;
pub mod direct;
pub mod eigen;
pub mod iterative;
pub mod op;
pub mod parallel;
pub mod rng;
pub mod stencil;
pub mod vector;

pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use op::{LinearOperator, RowAccess};
pub use parallel::{chunk_lengths, scoped_map, ParallelConfig, WorkerPool};
pub use sparse::{CsrMatrix, Triplet};

//! Deterministic scoped-thread fan-out used by the higher-level solvers.
//!
//! The workspace has a strict no-external-dependency policy, so parallelism
//! is built on [`std::thread::scope`] only. The single primitive exported
//! here, [`scoped_map`], applies a function to every element of a `Vec` and
//! returns the results **in input order**, regardless of how work was split
//! across threads. Callers that need bitwise-reproducible output (residual
//! histories, solution vectors) get it for free as long as each item's
//! computation is independent of the others.
//!
//! Telemetry crosses the fan-out the same way: when an [`aa_obs`] recorder
//! is installed on the calling thread, `scoped_map` forks one child recorder
//! **per item** (not per worker), installs it on whichever thread runs that
//! item, and joins the children back in input order. The merged journal is
//! therefore identical for any `max_threads`, including the serial path.

/// How much thread-level parallelism a solver may use.
///
/// The default is serial (`max_threads == 1`), so existing call sites keep
/// their exact behaviour unless a caller opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Upper bound on worker threads for a single fan-out. `0` and `1` both
    /// mean "run on the calling thread".
    pub max_threads: usize,
}

impl ParallelConfig {
    /// Serial execution on the calling thread.
    pub const fn serial() -> Self {
        ParallelConfig { max_threads: 1 }
    }

    /// Fan out across up to `max_threads` scoped threads.
    pub const fn threads(max_threads: usize) -> Self {
        ParallelConfig { max_threads }
    }

    /// Effective worker count for `items` independent tasks.
    pub fn effective_threads(&self, items: usize) -> usize {
        self.max_threads.max(1).min(items.max(1))
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::serial()
    }
}

/// Applies `f` to every item, possibly across scoped threads, returning the
/// results in input order.
///
/// `f` receives `(index, item)` so callers can recover positional context.
/// Work is split into at most `config.max_threads` contiguous chunks; with
/// `max_threads <= 1` (or a single item) everything runs on the calling
/// thread with no spawn overhead. Because every item is mapped
/// independently and results are reassembled by index, the output is
/// identical for any thread count.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn scoped_map<T, R, F>(items: Vec<T>, config: &ParallelConfig, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = config.effective_threads(n);
    if workers <= 1 || n <= 1 {
        // The serial path forks and joins per item exactly like the parallel
        // path below, so histogram accumulation happens in the same grouped
        // order — exported sums are then bit-identical at any thread count,
        // not just equal up to floating-point reassociation.
        let recorder = aa_obs::current();
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| match &recorder {
                Some(parent) => {
                    let child = parent.fork(i);
                    let out = aa_obs::with_recorder(child.clone(), || run_task(i, item, &f));
                    parent.join(vec![child]);
                    out
                }
                None => run_task(i, item, &f),
            })
            .collect();
    }

    // One child recorder per ITEM (not per worker): item i's telemetry lands
    // in child i regardless of which thread runs it, and joining children in
    // input order makes the merged journal thread-count invariant.
    let recorder = aa_obs::current();
    let task_recorders: Vec<Option<std::sync::Arc<dyn aa_obs::Recorder>>> = match &recorder {
        Some(parent) => (0..n).map(|i| Some(parent.fork(i))).collect(),
        None => (0..n).map(|_| None).collect(),
    };

    // Contiguous chunks, remainder spread over the first chunks so sizes
    // differ by at most one.
    let base = n / workers;
    let extra = n % workers;
    type Task<T> = (Option<std::sync::Arc<dyn aa_obs::Recorder>>, T);
    let mut chunks: Vec<(usize, Vec<Task<T>>)> = Vec::with_capacity(workers);
    let mut items = task_recorders
        .iter()
        .cloned()
        .zip(items)
        .collect::<Vec<_>>()
        .into_iter();
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        if len == 0 {
            break;
        }
        chunks.push((start, items.by_ref().take(len).collect()));
        start += len;
    }

    let f = &f;
    let mut chunk_results: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(offset, chunk)| {
                scope.spawn(move || {
                    let mapped: Vec<R> = chunk
                        .into_iter()
                        .enumerate()
                        .map(|(i, (task_recorder, item))| match task_recorder {
                            Some(rec) => {
                                aa_obs::with_recorder(rec, || run_task(offset + i, item, f))
                            }
                            None => run_task(offset + i, item, f),
                        })
                        .collect();
                    (offset, mapped)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoped_map worker panicked"))
            .collect()
    });

    if let Some(parent) = recorder {
        parent.join(task_recorders.into_iter().flatten().collect());
    }

    chunk_results.sort_by_key(|(offset, _)| *offset);
    let mut out = Vec::with_capacity(n);
    for (_, mut mapped) in chunk_results.drain(..) {
        out.append(&mut mapped);
    }
    out
}

/// Runs one mapped item, recording its wall time when telemetry is active.
fn run_task<T, R>(index: usize, item: T, f: &impl Fn(usize, T) -> R) -> R {
    if !aa_obs::is_active() {
        return f(index, item);
    }
    let start = std::time::Instant::now();
    let out = f(index, item);
    aa_obs::counter("parallel.tasks", 1);
    aa_obs::timing(
        "parallel.task_ns",
        u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_orders_match() {
        let items: Vec<usize> = (0..23).collect();
        let serial = scoped_map(items.clone(), &ParallelConfig::serial(), |i, x| i * 100 + x);
        for threads in [2, 3, 4, 8, 64] {
            let par = scoped_map(items.clone(), &ParallelConfig::threads(threads), |i, x| {
                i * 100 + x
            });
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(scoped_map(empty, &ParallelConfig::threads(4), |_, x| x).is_empty());
        assert_eq!(
            scoped_map(vec![7], &ParallelConfig::threads(4), |i, x: i32| x + i
                as i32),
            vec![7]
        );
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = scoped_map(vec![1.0, 2.0, 3.0], &ParallelConfig::threads(16), |_, x| {
            x * 2.0
        });
        assert_eq!(out, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn journal_is_identical_across_thread_counts() {
        if !aa_obs::ENABLED {
            return;
        }
        let run = |threads: usize| {
            let rec = aa_obs::MemoryRecorder::shared();
            aa_obs::with_recorder(rec.clone(), || {
                scoped_map(
                    (0..7usize).collect(),
                    &ParallelConfig::threads(threads),
                    |i, x| {
                        aa_obs::event(aa_obs::Event::new("task").with("i", i).with("x", x));
                        x * 2
                    },
                );
            });
            let snap = rec.snapshot();
            assert_eq!(snap.counter("parallel.tasks"), 7, "threads={threads}");
            snap.deterministic_lines()
        };
        let serial = run(1);
        assert_eq!(serial.len(), 7, "one journal event per task");
        for threads in [2, 3, 4, 8] {
            assert_eq!(serial, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(ParallelConfig::threads(0).effective_threads(10), 1);
        assert_eq!(ParallelConfig::threads(4).effective_threads(2), 2);
        assert_eq!(ParallelConfig::threads(4).effective_threads(100), 4);
        assert_eq!(ParallelConfig::default(), ParallelConfig::serial());
    }
}

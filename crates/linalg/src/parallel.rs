//! Deterministic thread fan-out used by the higher-level solvers.
//!
//! The workspace has a strict no-external-dependency policy, so parallelism
//! is built on the standard library only. Two primitives are exported:
//!
//! * [`scoped_map`] — a one-shot fan-out over [`std::thread::scope`] that
//!   applies a function to every element of a `Vec` and returns the results
//!   **in input order**, regardless of how work was split across threads.
//! * [`WorkerPool`] — a persistent pool of long-lived worker threads fed
//!   over `mpsc` channels, for call sites that fan out the *same* shape of
//!   work many times (the block-Jacobi sweep loop). Spawning threads once
//!   and reusing them amortizes thread start-up across iterations; jobs
//!   travel as one batched message per worker, and the calling thread runs
//!   the first chunk itself instead of parking on per-item results.
//!
//! Callers that need bitwise-reproducible output (residual histories,
//! solution vectors) get it for free as long as each item's computation is
//! independent of the others.
//!
//! Telemetry crosses both fan-outs the same way: when an [`aa_obs`] recorder
//! is installed on the calling thread, one child recorder is forked **per
//! item** (not per worker), installed on whichever thread runs that item,
//! and the children are joined back in input order. The merged journal is
//! therefore identical for any thread count, including the serial path.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};

/// How much thread-level parallelism a solver may use.
///
/// The default is serial (`max_threads == 1`), so existing call sites keep
/// their exact behaviour unless a caller opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Upper bound on worker threads for a single fan-out. `0` and `1` both
    /// mean "run on the calling thread".
    pub max_threads: usize,
}

impl ParallelConfig {
    /// Serial execution on the calling thread.
    pub const fn serial() -> Self {
        ParallelConfig { max_threads: 1 }
    }

    /// Fan out across up to `max_threads` scoped threads.
    pub const fn threads(max_threads: usize) -> Self {
        ParallelConfig { max_threads }
    }

    /// Effective worker count for `items` independent tasks.
    pub fn effective_threads(&self, items: usize) -> usize {
        self.max_threads.max(1).min(items.max(1))
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::serial()
    }
}

/// Splits `items` into `workers` contiguous chunk lengths, remainder spread
/// over the first chunks so sizes differ by at most one. Trailing entries
/// may be zero when `workers > items`.
///
/// Both [`scoped_map`] and [`WorkerPool`] partition with this function, so
/// a caller that pre-partitions per-worker state with `chunk_lengths` is
/// guaranteed to see the matching items routed to the matching worker.
pub fn chunk_lengths(items: usize, workers: usize) -> Vec<usize> {
    let workers = workers.max(1);
    let base = items / workers;
    let extra = items % workers;
    (0..workers)
        .map(|w| base + usize::from(w < extra))
        .collect()
}

/// Applies `f` to every item, possibly across scoped threads, returning the
/// results in input order.
///
/// `f` receives `(index, item)` so callers can recover positional context.
/// Work is split into at most `config.max_threads` contiguous chunks (see
/// [`chunk_lengths`]); with `max_threads <= 1` (or a single item) everything
/// runs on the calling thread with no spawn overhead. Because every item is
/// mapped independently and results are reassembled by index, the output is
/// identical for any thread count.
///
/// # Panics
///
/// Propagates a panic from `f` with its original payload (the scope joins
/// all workers first, then re-raises via [`std::panic::resume_unwind`]).
pub fn scoped_map<T, R, F>(items: Vec<T>, config: &ParallelConfig, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = config.effective_threads(n);
    if workers <= 1 || n <= 1 {
        // The serial path forks and joins per item exactly like the parallel
        // path below, so histogram accumulation happens in the same grouped
        // order — exported sums are then bit-identical at any thread count,
        // not just equal up to floating-point reassociation.
        let recorder = aa_obs::current();
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| match &recorder {
                Some(parent) => {
                    let child = parent.fork(i);
                    let out = aa_obs::with_recorder(child.clone(), || run_task(i, item, &f));
                    parent.join(vec![child]);
                    out
                }
                None => run_task(i, item, &f),
            })
            .collect();
    }

    // One child recorder per ITEM (not per worker): item i's telemetry lands
    // in child i regardless of which thread runs it, and joining children in
    // input order makes the merged journal thread-count invariant.
    let recorder = aa_obs::current();
    let task_recorders: Vec<Option<Arc<dyn aa_obs::Recorder>>> = match &recorder {
        Some(parent) => (0..n).map(|i| Some(parent.fork(i))).collect(),
        None => (0..n).map(|_| None).collect(),
    };

    type Task<T> = (Option<Arc<dyn aa_obs::Recorder>>, T);
    let mut chunks: Vec<(usize, Vec<Task<T>>)> = Vec::with_capacity(workers);
    let mut items = task_recorders
        .iter()
        .cloned()
        .zip(items)
        .collect::<Vec<_>>()
        .into_iter();
    let mut start = 0;
    for len in chunk_lengths(n, workers) {
        if len == 0 {
            break;
        }
        chunks.push((start, items.by_ref().take(len).collect()));
        start += len;
    }

    let f = &f;
    let joined: Vec<std::thread::Result<(usize, Vec<R>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(offset, chunk)| {
                scope.spawn(move || {
                    let mapped: Vec<R> = chunk
                        .into_iter()
                        .enumerate()
                        .map(|(i, (task_recorder, item))| match task_recorder {
                            Some(rec) => {
                                aa_obs::with_recorder(rec, || run_task(offset + i, item, f))
                            }
                            None => run_task(offset + i, item, f),
                        })
                        .collect();
                    (offset, mapped)
                })
            })
            .collect();
        // Join everything before re-raising so the original panic payload
        // survives (scope would otherwise overwrite it with its own).
        handles.into_iter().map(|h| h.join()).collect()
    });

    if let Some(parent) = recorder {
        parent.join(task_recorders.into_iter().flatten().collect());
    }

    let mut chunk_results: Vec<(usize, Vec<R>)> = Vec::with_capacity(joined.len());
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for result in joined {
        match result {
            Ok(v) => chunk_results.push(v),
            Err(payload) => panic = panic.or(Some(payload)),
        }
    }
    if let Some(payload) = panic {
        resume_unwind(payload);
    }

    chunk_results.sort_by_key(|(offset, _)| *offset);
    let mut out = Vec::with_capacity(n);
    for (_, mut mapped) in chunk_results.drain(..) {
        out.append(&mut mapped);
    }
    out
}

/// Runs one mapped item, recording its wall time when telemetry is active.
fn run_task<T, R>(index: usize, item: T, f: &impl Fn(usize, T) -> R) -> R {
    timed(|| f(index, item))
}

/// Times one unit of fan-out work. Shared by [`scoped_map`] and
/// [`WorkerPool`] so both emit the exact same `parallel.tasks` counter and
/// `parallel.task_ns` timing per item — a requirement for the thread-count
/// invariance of decomposed-solve traces.
fn timed<R>(run: impl FnOnce() -> R) -> R {
    if !aa_obs::is_active() {
        return run();
    }
    let start = std::time::Instant::now();
    let out = run();
    aa_obs::counter("parallel.tasks", 1);
    aa_obs::timing(
        "parallel.task_ns",
        u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );
    out
}

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;
type WorkFn<S, T, R> = Arc<dyn Fn(&mut S, usize, T) -> R + Send + Sync>;

/// An item kept on the calling thread: `(global_index, recorder, item)`.
type LocalTask<T> = (usize, Option<Arc<dyn aa_obs::Recorder>>, T);

/// One worker's whole chunk of a `map` call, batched into a single channel
/// message so a sweep costs one send + one receive per worker instead of
/// one per item.
struct Job<T> {
    /// Global index of the chunk's first item.
    base: usize,
    tasks: Vec<(Option<Arc<dyn aa_obs::Recorder>>, T)>,
}

/// A finished chunk: per-item results (or the panic payload that killed the
/// item) in chunk order.
struct Done<R> {
    base: usize,
    results: Vec<Result<R, PanicPayload>>,
}

/// Runs one pool item under its forked recorder, catching the panic so the
/// worker (or the calling thread) survives for the next item; `map`
/// re-raises the payload on the caller.
fn run_pool_task<S, T, R>(
    f: &WorkFn<S, T, R>,
    state: &mut S,
    index: usize,
    recorder: Option<Arc<dyn aa_obs::Recorder>>,
    payload: T,
) -> Result<R, PanicPayload> {
    catch_unwind(AssertUnwindSafe(|| match recorder {
        Some(rec) => aa_obs::with_recorder(rec, || timed(|| f(state, index, payload))),
        None => timed(|| f(state, index, payload)),
    }))
}

/// A persistent pool of worker threads, each owning a caller-supplied state.
///
/// Built once per multi-iteration fan-out site (e.g. per
/// `solve_decomposed` call), then [`WorkerPool::map`]-ed every iteration.
/// Threads are spawned in [`WorkerPool::new`] and joined on drop, so an
/// N-sweep solve pays thread start-up once instead of N times.
///
/// `map` is itself built from a split pair the `aa-sched` dispatcher uses
/// directly: [`try_submit`](WorkerPool::try_submit) ships the remote chunks
/// to the spawned workers and returns immediately (the calling thread's own
/// chunk is deferred), and [`drain`](WorkerPool::drain) runs the local
/// chunk, collects every result, and joins the telemetry. Between the two
/// calls the caller is free to do dispatcher-side work — admit requests,
/// append log records — while the workers chew.
///
/// Each worker owns one `S` (mutable, never shared). Items are routed to
/// workers by the same contiguous [`chunk_lengths`] split `scoped_map`
/// uses: for `n` items and `w` workers, worker 0 always receives the first
/// chunk, worker 1 the next, and so on. A caller that partitions per-item
/// resources into the worker states with `chunk_lengths(n, w)` therefore
/// gets each item delivered to the worker holding its resources, for every
/// `map` call with `n` items.
///
/// With a single worker state the pool spawns no threads at all and runs on
/// the calling thread, forking/joining the per-item recorder exactly like
/// `scoped_map`'s serial path — traces stay bit-identical at any worker
/// count.
pub struct WorkerPool<S, T, R> {
    inner: PoolInner<S, T, R>,
    /// The round shipped by `try_submit` and not yet `drain`ed.
    pending: Option<PendingRound<T>>,
}

/// Bookkeeping for one in-flight `try_submit` round.
struct PendingRound<T> {
    /// Total items submitted this round.
    n: usize,
    /// The calling thread's chunk: `(global_index, recorder, item)`, run
    /// inside `drain` so it overlaps with the spawned workers.
    local: Vec<LocalTask<T>>,
    /// `Done` messages still owed by the spawned workers.
    expected: usize,
    /// Per-item recorder children, joined back (in input order) at drain.
    task_recorders: Vec<Option<Arc<dyn aa_obs::Recorder>>>,
    /// The recorder installed when the round was submitted.
    parent: Option<Arc<dyn aa_obs::Recorder>>,
}

enum PoolInner<S, T, R> {
    Serial {
        state: S,
        f: WorkFn<S, T, R>,
    },
    Threads {
        /// Worker 0's state: its chunk runs on the calling thread inside
        /// `map`, overlapping with the spawned workers instead of parking.
        local: S,
        f: WorkFn<S, T, R>,
        /// Job channels for workers `1..states.len()`.
        txs: Vec<mpsc::Sender<Job<T>>>,
        rx: mpsc::Receiver<Done<R>>,
        handles: Vec<std::thread::JoinHandle<()>>,
    },
}

impl<S, T, R> WorkerPool<S, T, R>
where
    S: Send + 'static,
    T: Send + 'static,
    R: Send + 'static,
{
    /// Spawns one long-lived worker thread per state *beyond the first*
    /// (none when `states.len() == 1`): worker 0's chunk always runs on the
    /// calling thread, so `w` worker states occupy `w` cores with `w − 1`
    /// spawned threads and the caller never idles while work is pending.
    /// `f` is invoked as `f(&mut state, index, item)` with `index` the
    /// item's position in the `map` input.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    pub fn new(states: Vec<S>, f: impl Fn(&mut S, usize, T) -> R + Send + Sync + 'static) -> Self {
        assert!(
            !states.is_empty(),
            "WorkerPool needs at least one worker state"
        );
        let f: WorkFn<S, T, R> = Arc::new(f);
        let mut states = states.into_iter();
        let first = states.next().expect("at least one state");
        if states.len() == 0 {
            return WorkerPool {
                inner: PoolInner::Serial { state: first, f },
                pending: None,
            };
        }
        let (done_tx, rx) = mpsc::channel::<Done<R>>();
        let mut txs = Vec::with_capacity(states.len());
        let mut handles = Vec::with_capacity(states.len());
        for mut state in states {
            let (tx, job_rx) = mpsc::channel::<Job<T>>();
            let done_tx = done_tx.clone();
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    let Job { base, tasks } = job;
                    let mut results = Vec::with_capacity(tasks.len());
                    for (k, (recorder, payload)) in tasks.into_iter().enumerate() {
                        results.push(run_pool_task(&f, &mut state, base + k, recorder, payload));
                    }
                    if done_tx.send(Done { base, results }).is_err() {
                        break;
                    }
                }
            }));
            txs.push(tx);
        }
        WorkerPool {
            inner: PoolInner::Threads {
                local: first,
                f,
                txs,
                rx,
                handles,
            },
            pending: None,
        }
    }

    /// Number of worker states (1 means "runs on the calling thread").
    pub fn workers(&self) -> usize {
        match &self.inner {
            PoolInner::Serial { .. } => 1,
            PoolInner::Threads { txs, .. } => txs.len() + 1,
        }
    }

    /// Whether a [`try_submit`](Self::try_submit) round is still awaiting
    /// its [`drain`](Self::drain).
    pub fn is_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Ships one round of items to the pool without blocking on results.
    ///
    /// Remote chunks are sent to the spawned workers immediately; the
    /// calling thread's own chunk is held back and executed inside
    /// [`drain`](Self::drain), so the caller can interleave its own work
    /// with the workers'. Recorder children are forked per item (in input
    /// order) now, from the recorder installed on the calling thread;
    /// `drain` must therefore run on the same logical recorder scope.
    ///
    /// At most one round may be in flight: submitting while a round is
    /// pending returns the items back unchanged as `Err`.
    pub fn try_submit(&mut self, items: Vec<T>) -> Result<(), Vec<T>> {
        if self.pending.is_some() {
            return Err(items);
        }
        let n = items.len();
        let parent = aa_obs::current();
        let task_recorders: Vec<Option<Arc<dyn aa_obs::Recorder>>> = match &parent {
            Some(p) => (0..n).map(|i| Some(p.fork(i))).collect(),
            None => (0..n).map(|_| None).collect(),
        };
        let mut tasks = task_recorders
            .iter()
            .cloned()
            .zip(items)
            .enumerate()
            .map(|(i, (rec, item))| (i, rec, item));
        let (local, expected) = match &mut self.inner {
            PoolInner::Serial { .. } => (tasks.collect(), 0),
            PoolInner::Threads { txs, .. } => {
                let lens = chunk_lengths(n, txs.len() + 1);
                let local: Vec<_> = tasks.by_ref().take(lens[0]).collect();
                let mut base = lens[0];
                let mut expected = 0;
                for (w, len) in lens[1..].iter().copied().enumerate() {
                    if len > 0 {
                        let chunk: Vec<_> =
                            tasks.by_ref().take(len).map(|(_, r, t)| (r, t)).collect();
                        txs[w]
                            .send(Job { base, tasks: chunk })
                            .expect("worker pool thread exited");
                        expected += 1;
                    }
                    base += len;
                }
                (local, expected)
            }
        };
        self.pending = Some(PendingRound {
            n,
            local,
            expected,
            task_recorders,
            parent,
        });
        Ok(())
    }

    /// Completes the in-flight [`try_submit`](Self::try_submit) round: runs
    /// the calling thread's chunk, collects every worker's results, joins
    /// the forked recorders in input order, and returns the results in
    /// input order. Returns an empty vector when no round is pending.
    ///
    /// # Panics
    ///
    /// If `f` panicked for one or more items, re-raises the payload of the
    /// lowest-indexed one via [`std::panic::resume_unwind`] after all items
    /// finished and telemetry was joined.
    pub fn drain(&mut self) -> Vec<R> {
        let Some(round) = self.pending.take() else {
            return Vec::new();
        };
        let PendingRound {
            n,
            local,
            expected,
            task_recorders,
            parent,
        } = round;
        let mut slots: Vec<Option<Result<R, PanicPayload>>> = (0..n).map(|_| None).collect();
        match &mut self.inner {
            PoolInner::Serial { state, f } => {
                for (i, rec, item) in local {
                    slots[i] = Some(run_pool_task(f, state, i, rec, item));
                }
            }
            PoolInner::Threads {
                local: state,
                f,
                rx,
                ..
            } => {
                for (i, rec, item) in local {
                    slots[i] = Some(run_pool_task(f, state, i, rec, item));
                }
                for _ in 0..expected {
                    let done = rx.recv().expect("worker pool result channel closed");
                    for (k, result) in done.results.into_iter().enumerate() {
                        slots[done.base + k] = Some(result);
                    }
                }
            }
        }
        if let Some(parent) = parent {
            parent.join(task_recorders.into_iter().flatten().collect());
        }
        let mut out = Vec::with_capacity(n);
        let mut panic: Option<PanicPayload> = None;
        for slot in slots {
            match slot.expect("worker pool missed an item") {
                Ok(r) => out.push(r),
                Err(payload) => panic = panic.or(Some(payload)),
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        out
    }

    /// Runs every item through the pool, returning results in input order.
    /// Equivalent to [`try_submit`](Self::try_submit) immediately followed
    /// by [`drain`](Self::drain).
    ///
    /// Item `i` of an `n`-item call goes to the worker owning position `i`
    /// of the `chunk_lengths(n, workers)` split. Recorder children are
    /// forked per item in input order and joined back in input order, so
    /// the merged journal is invariant under the worker count.
    ///
    /// # Panics
    ///
    /// Panics if a round is already in flight, or — like `drain` — with the
    /// lowest-indexed item's payload when `f` panicked.
    pub fn map(&mut self, items: Vec<T>) -> Vec<R> {
        assert!(
            self.try_submit(items).is_ok(),
            "WorkerPool::map called with a submitted round still pending"
        );
        self.drain()
    }
}

impl<S, T, R> Drop for WorkerPool<S, T, R> {
    fn drop(&mut self) {
        if let PoolInner::Threads { txs, handles, .. } = &mut self.inner {
            // Closing the job channels lets the workers fall out of their
            // recv loop; join so no thread outlives the pool.
            txs.clear();
            for handle in handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_orders_match() {
        let items: Vec<usize> = (0..23).collect();
        let serial = scoped_map(items.clone(), &ParallelConfig::serial(), |i, x| i * 100 + x);
        for threads in [2, 3, 4, 8, 64] {
            let par = scoped_map(items.clone(), &ParallelConfig::threads(threads), |i, x| {
                i * 100 + x
            });
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(scoped_map(empty, &ParallelConfig::threads(4), |_, x| x).is_empty());
        assert_eq!(
            scoped_map(vec![7], &ParallelConfig::threads(4), |i, x: i32| x + i
                as i32),
            vec![7]
        );
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = scoped_map(vec![1.0, 2.0, 3.0], &ParallelConfig::threads(16), |_, x| {
            x * 2.0
        });
        assert_eq!(out, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn chunk_lengths_cover_and_balance() {
        assert_eq!(chunk_lengths(7, 3), vec![3, 2, 2]);
        assert_eq!(chunk_lengths(4, 4), vec![1, 1, 1, 1]);
        assert_eq!(chunk_lengths(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(chunk_lengths(0, 3), vec![0, 0, 0]);
        assert_eq!(chunk_lengths(5, 0), vec![5]);
        for items in 0..40 {
            for workers in 1..10 {
                let lens = chunk_lengths(items, workers);
                assert_eq!(lens.iter().sum::<usize>(), items);
                let max = lens.iter().max().copied().unwrap_or(0);
                let min = lens.iter().min().copied().unwrap_or(0);
                assert!(max - min <= 1, "items={items} workers={workers}");
            }
        }
    }

    /// Extracts the human-readable message from a caught panic payload.
    fn payload_message(payload: &PanicPayload) -> String {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("string-like payload")
    }

    #[test]
    fn scoped_map_preserves_panic_payload() {
        let caught = std::panic::catch_unwind(|| {
            scoped_map(
                (0..8usize).collect(),
                &ParallelConfig::threads(4),
                |_, x| {
                    assert!(x != 5, "item five exploded");
                    x
                },
            )
        })
        .expect_err("must panic");
        let msg = payload_message(&caught);
        assert!(msg.contains("item five exploded"), "payload lost: {msg}");
    }

    #[test]
    fn journal_is_identical_across_thread_counts() {
        if !aa_obs::ENABLED {
            return;
        }
        let run = |threads: usize| {
            let rec = aa_obs::MemoryRecorder::shared();
            aa_obs::with_recorder(rec.clone(), || {
                scoped_map(
                    (0..7usize).collect(),
                    &ParallelConfig::threads(threads),
                    |i, x| {
                        aa_obs::event(aa_obs::Event::new("task").with("i", i).with("x", x));
                        x * 2
                    },
                );
            });
            let snap = rec.snapshot();
            assert_eq!(snap.counter("parallel.tasks"), 7, "threads={threads}");
            snap.deterministic_lines()
        };
        let serial = run(1);
        assert_eq!(serial.len(), 7, "one journal event per task");
        for threads in [2, 3, 4, 8] {
            assert_eq!(serial, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(ParallelConfig::threads(0).effective_threads(10), 1);
        assert_eq!(ParallelConfig::threads(4).effective_threads(2), 2);
        assert_eq!(ParallelConfig::threads(4).effective_threads(100), 4);
        assert_eq!(ParallelConfig::default(), ParallelConfig::serial());
    }

    #[test]
    fn pool_matches_scoped_map_across_worker_counts() {
        let items: Vec<usize> = (0..23).collect();
        let want = scoped_map(items.clone(), &ParallelConfig::serial(), |i, x| i * 100 + x);
        for workers in [1usize, 2, 3, 4, 8] {
            let mut pool = WorkerPool::new(vec![(); workers], |_, i, x: usize| i * 100 + x);
            assert_eq!(pool.workers(), workers);
            // Repeated maps through the same pool stay correct.
            for round in 0..3 {
                let got = pool.map(items.clone());
                assert_eq!(want, got, "workers={workers} round={round}");
            }
        }
    }

    #[test]
    fn pool_routes_items_to_the_matching_worker_state() {
        // Worker states are (offset, hit count); the closure checks that the
        // global item index always lands in its owner's chunk.
        let n = 10usize;
        for workers in [2usize, 3, 4] {
            let lens = chunk_lengths(n, workers);
            let mut offset = 0;
            let states: Vec<(usize, usize)> = lens
                .iter()
                .map(|len| {
                    let s = (offset, *len);
                    offset += len;
                    s
                })
                .collect();
            let mut pool = WorkerPool::new(states, |state: &mut (usize, usize), i, _x: usize| {
                let (start, len) = *state;
                assert!(i >= start && i < start + len, "item {i} missed its worker");
                i
            });
            for _ in 0..3 {
                assert_eq!(pool.map((0..n).collect()), (0..n).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn pool_preserves_panic_payload_and_survives() {
        let mut pool = WorkerPool::new(vec![(); 3], |_, _i, x: usize| {
            assert!(x != 4, "worker pool item four exploded");
            x * 2
        });
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| pool.map((0..9).collect())))
            .expect_err("must panic");
        let msg = payload_message(&caught);
        assert!(
            msg.contains("worker pool item four exploded"),
            "payload lost: {msg}"
        );
        // The pool is still usable after a panicking map.
        assert_eq!(pool.map(vec![1, 2, 3]), vec![2, 4, 6]);
    }

    #[test]
    fn pool_try_submit_drain_matches_map() {
        for workers in [1usize, 2, 3, 4] {
            let mut pool = WorkerPool::new(vec![(); workers], |_, i, x: usize| i * 100 + x);
            assert!(!pool.is_pending());
            assert!(pool.try_submit((0..11).collect()).is_ok());
            assert!(pool.is_pending());
            // A second submit while pending hands the items back untouched.
            let rejected = pool
                .try_submit(vec![77, 88])
                .expect_err("second submit must be refused");
            assert_eq!(rejected, vec![77, 88], "workers={workers}");
            let got = pool.drain();
            assert!(!pool.is_pending());
            let want: Vec<usize> = (0..11).map(|x| x * 100 + x).collect();
            assert_eq!(got, want, "workers={workers}");
            // After draining, the pool is ready for the next round — and
            // map still works on the same pool.
            assert!(pool.try_submit(vec![5]).is_ok());
            assert_eq!(pool.drain(), vec![5]);
            assert_eq!(pool.map(vec![2]), vec![2]);
        }
    }

    #[test]
    fn pool_drain_without_submit_is_empty() {
        let mut pool = WorkerPool::new(vec![(); 2], |_, _i, x: usize| x);
        assert!(pool.drain().is_empty());
        assert_eq!(pool.map(vec![9]), vec![9]);
    }

    #[test]
    fn pool_split_rounds_share_the_map_journal() {
        if !aa_obs::ENABLED {
            return;
        }
        let body = |_: &mut (), i: usize, x: usize| {
            aa_obs::event(aa_obs::Event::new("pool.task").with("i", i).with("x", x));
            x + 1
        };
        let via_map = {
            let rec = aa_obs::MemoryRecorder::shared();
            aa_obs::with_recorder(rec.clone(), || {
                let mut pool = WorkerPool::new(vec![(); 3], body);
                pool.map((0..9).collect());
            });
            rec.snapshot()
        };
        let via_split = {
            let rec = aa_obs::MemoryRecorder::shared();
            aa_obs::with_recorder(rec.clone(), || {
                let mut pool = WorkerPool::new(vec![(); 3], body);
                pool.try_submit((0..9).collect()).unwrap();
                pool.drain();
            });
            rec.snapshot()
        };
        assert_eq!(
            via_map.deterministic_lines(),
            via_split.deterministic_lines()
        );
        assert_eq!(via_map.to_json_masked(), via_split.to_json_masked());
    }

    #[test]
    fn pool_journal_is_identical_across_worker_counts() {
        if !aa_obs::ENABLED {
            return;
        }
        let run = |workers: usize| {
            let rec = aa_obs::MemoryRecorder::shared();
            aa_obs::with_recorder(rec.clone(), || {
                let mut pool = WorkerPool::new(vec![(); workers], |_, i, x: usize| {
                    aa_obs::event(aa_obs::Event::new("pool.task").with("i", i).with("x", x));
                    x * 2
                });
                for _ in 0..2 {
                    pool.map((0..7).collect());
                }
            });
            let snap = rec.snapshot();
            assert_eq!(snap.counter("parallel.tasks"), 14, "workers={workers}");
            (snap.deterministic_lines(), snap.to_json_masked())
        };
        let serial = run(1);
        assert_eq!(serial.0.len(), 14, "one journal event per task");
        for workers in [2, 3, 4] {
            assert_eq!(serial, run(workers), "workers={workers}");
        }
    }
}

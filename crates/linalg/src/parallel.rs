//! Deterministic scoped-thread fan-out used by the higher-level solvers.
//!
//! The workspace has a strict no-external-dependency policy, so parallelism
//! is built on [`std::thread::scope`] only. The single primitive exported
//! here, [`scoped_map`], applies a function to every element of a `Vec` and
//! returns the results **in input order**, regardless of how work was split
//! across threads. Callers that need bitwise-reproducible output (residual
//! histories, solution vectors) get it for free as long as each item's
//! computation is independent of the others.

/// How much thread-level parallelism a solver may use.
///
/// The default is serial (`max_threads == 1`), so existing call sites keep
/// their exact behaviour unless a caller opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Upper bound on worker threads for a single fan-out. `0` and `1` both
    /// mean "run on the calling thread".
    pub max_threads: usize,
}

impl ParallelConfig {
    /// Serial execution on the calling thread.
    pub const fn serial() -> Self {
        ParallelConfig { max_threads: 1 }
    }

    /// Fan out across up to `max_threads` scoped threads.
    pub const fn threads(max_threads: usize) -> Self {
        ParallelConfig { max_threads }
    }

    /// Effective worker count for `items` independent tasks.
    pub fn effective_threads(&self, items: usize) -> usize {
        self.max_threads.max(1).min(items.max(1))
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::serial()
    }
}

/// Applies `f` to every item, possibly across scoped threads, returning the
/// results in input order.
///
/// `f` receives `(index, item)` so callers can recover positional context.
/// Work is split into at most `config.max_threads` contiguous chunks; with
/// `max_threads <= 1` (or a single item) everything runs on the calling
/// thread with no spawn overhead. Because every item is mapped
/// independently and results are reassembled by index, the output is
/// identical for any thread count.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn scoped_map<T, R, F>(items: Vec<T>, config: &ParallelConfig, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = config.effective_threads(n);
    if workers <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Contiguous chunks, remainder spread over the first chunks so sizes
    // differ by at most one.
    let base = n / workers;
    let extra = n % workers;
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        if len == 0 {
            break;
        }
        chunks.push((start, items.by_ref().take(len).collect()));
        start += len;
    }

    let f = &f;
    let mut chunk_results: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(offset, chunk)| {
                scope.spawn(move || {
                    let mapped: Vec<R> = chunk
                        .into_iter()
                        .enumerate()
                        .map(|(i, item)| f(offset + i, item))
                        .collect();
                    (offset, mapped)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoped_map worker panicked"))
            .collect()
    });

    chunk_results.sort_by_key(|(offset, _)| *offset);
    let mut out = Vec::with_capacity(n);
    for (_, mut mapped) in chunk_results.drain(..) {
        out.append(&mut mapped);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_orders_match() {
        let items: Vec<usize> = (0..23).collect();
        let serial = scoped_map(items.clone(), &ParallelConfig::serial(), |i, x| i * 100 + x);
        for threads in [2, 3, 4, 8, 64] {
            let par = scoped_map(items.clone(), &ParallelConfig::threads(threads), |i, x| {
                i * 100 + x
            });
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(scoped_map(empty, &ParallelConfig::threads(4), |_, x| x).is_empty());
        assert_eq!(
            scoped_map(vec![7], &ParallelConfig::threads(4), |i, x: i32| x + i
                as i32),
            vec![7]
        );
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = scoped_map(vec![1.0, 2.0, 3.0], &ParallelConfig::threads(16), |_, x| {
            x * 2.0
        });
        assert_eq!(out, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(ParallelConfig::threads(0).effective_threads(10), 1);
        assert_eq!(ParallelConfig::threads(4).effective_threads(2), 2);
        assert_eq!(ParallelConfig::threads(4).effective_threads(100), 4);
        assert_eq!(ParallelConfig::default(), ParallelConfig::serial());
    }
}

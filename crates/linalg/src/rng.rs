//! Deterministic, dependency-free pseudo-random number generation.
//!
//! The workspace models seeded process variation, readout noise, and
//! injected transient faults; all of them must be **bit-reproducible** from
//! a seed so that every observed failure doubles as a regression test. This
//! module provides a small SplitMix64-based generator plus a stateless
//! mixing finalizer for counter-based noise streams, replacing the external
//! `rand` crate (which the offline build environment cannot fetch).

/// The SplitMix64 finalizer: a stateless, high-quality 64-bit mixing
/// function. `mix64(x)` is a bijection on `u64`, so distinct inputs never
/// collide — the right primitive for counter-based (stateless) noise where
/// the sample at `(seed, site, time)` must not depend on evaluation order.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Maps a `u64` to a uniform `f64` in `[0, 1)` using the top 53 bits.
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A small deterministic PRNG (SplitMix64 sequence).
///
/// Statistical quality is ample for simulation noise and test-case
/// generation, and the implementation is platform-independent: the same
/// seed yields the same stream on every target.
///
/// ```
/// use aa_linalg::rng::Rng64;
/// let mut a = Rng64::seed_from_u64(42);
/// let mut b = Rng64::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so that small, similar seeds (0, 1, 2, …) produce
        // decorrelated streams.
        Rng64 {
            state: mix64(seed ^ 0x6a09e667f3bcc909),
        }
    }

    /// The raw internal state, for checkpointing. Restoring it with
    /// [`from_state`](Self::from_state) resumes the stream exactly where
    /// it left off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a state captured by
    /// [`state`](Self::state). Unlike [`seed_from_u64`](Self::seed_from_u64)
    /// this performs no pre-mixing: the argument is the verbatim internal
    /// state, not a seed.
    pub fn from_state(state: u64) -> Self {
        Rng64 { state }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        mix64(self.state)
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// A uniform sample in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is empty");
        // Modulo bias is < 2^-50 for any n that fits in usize here.
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A standard normal sample via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        // u1 ∈ (0, 1] so ln(u1) is finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Rng64::seed_from_u64(11);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gaussian_has_roughly_unit_variance() {
        let mut rng = Rng64::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn below_covers_range() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = Rng64::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Rng64::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mix64_is_stable() {
        // Pin the function's output so noise streams never silently change
        // between versions (every stored failure seed is a regression test).
        assert_eq!(mix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(mix64(1), 0x910a2dec89025cc1);
    }
}

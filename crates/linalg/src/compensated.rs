//! Compensated (two-float, double-double style) arithmetic kernels.
//!
//! Iterative refinement is limited by the precision in which the residual
//! `b − A·x` is accumulated: once the true residual drops below the rounding
//! noise of an f64 dot product, further rounds stop making progress. The
//! kernels here carry every accumulation as an unevaluated pair
//! `hi + lo` of doubles (a [`TwoFloat`]), using the error-free transforms
//! `two_sum` (Knuth) and `two_prod` (FMA-based), which doubles the effective
//! accumulation precision to ~106 bits without any wide integer or software
//! float type. This is the Ogita–Rump–Oishi `Dot2` construction.
//!
//! The kernels are deterministic: results depend only on operand order, so
//! same-seed replays are bit-identical at any thread count.

use crate::op::RowAccess;

/// An unevaluated sum of two doubles with `|lo| ≤ ulp(hi)/2`.
///
/// The represented value is `hi + lo` evaluated in exact arithmetic. `hi`
/// alone is the value correctly rounded to f64.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TwoFloat {
    /// Leading component (the f64-rounded value).
    pub hi: f64,
    /// Trailing error term.
    pub lo: f64,
}

/// Error-free sum: returns `(s, e)` with `s = fl(a + b)` and `a + b = s + e`
/// exactly (Knuth's TwoSum, branch-free, valid for any operand ordering).
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free product: returns `(p, e)` with `p = fl(a·b)` and `a·b = p + e`
/// exactly, using one fused multiply-add.
#[inline]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

impl TwoFloat {
    /// The pair `(v, 0)`.
    #[inline]
    pub fn new(v: f64) -> Self {
        TwoFloat { hi: v, lo: 0.0 }
    }

    /// The represented value rounded to a single f64.
    #[inline]
    pub fn value(&self) -> f64 {
        self.hi + self.lo
    }

    /// `self + b` with the rounding error folded into `lo`.
    #[inline]
    pub fn add_f64(self, b: f64) -> Self {
        let (s, e) = two_sum(self.hi, b);
        TwoFloat {
            hi: s,
            lo: self.lo + e,
        }
    }

    /// `self + a·b` with both the product and sum errors folded into `lo`.
    #[inline]
    pub fn add_prod(self, a: f64, b: f64) -> Self {
        let (p, pe) = two_prod(a, b);
        let (s, se) = two_sum(self.hi, p);
        TwoFloat {
            hi: s,
            lo: self.lo + pe + se,
        }
    }

    /// Renormalizes so `hi` is the correctly rounded value and `|lo|` is at
    /// most half an ulp of `hi`.
    #[inline]
    pub fn renormalize(self) -> Self {
        let (s, e) = two_sum(self.hi, self.lo);
        TwoFloat { hi: s, lo: e }
    }
}

/// Compensated dot product `xᵀy` (Ogita–Rump `Dot2`): as accurate as a dot
/// product computed in twice the working precision and rounded once.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn dot2(x: &[f64], y: &[f64]) -> TwoFloat {
    assert_eq!(x.len(), y.len(), "dot2: length mismatch");
    let mut acc = TwoFloat::default();
    for (a, b) in x.iter().zip(y) {
        acc = acc.add_prod(*a, *b);
    }
    acc.renormalize()
}

/// Compensated Euclidean norm `‖x‖₂` via [`dot2`]`(x, x)`.
pub fn norm2_comp(x: &[f64]) -> f64 {
    dot2(x, x).value().sqrt()
}

/// Compensated in-place update `y ← a·x + y` on a two-float accumulator
/// vector: the product error and the carry of each element survive in `lo`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn axpy2(a: f64, x: &[f64], y: &mut [TwoFloat]) {
    assert_eq!(x.len(), y.len(), "axpy2: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = yi.add_prod(a, *xi).renormalize();
    }
}

/// Promotes an f64 vector to two-float pairs (all `lo` terms zero).
pub fn promote(x: &[f64]) -> Vec<TwoFloat> {
    x.iter().map(|v| TwoFloat::new(*v)).collect()
}

/// Rounds a two-float vector back to f64, one rounding per element.
pub fn demote(x: &[TwoFloat]) -> Vec<f64> {
    x.iter().map(|v| v.value()).collect()
}

/// Compensated residual `r = b − A·x` where `x` is held as two-float pairs:
/// each row accumulates `b_i − Σ_j a_ij·(x_j.hi + x_j.lo)` in a two-float
/// accumulator, so the result is the residual as if computed in ~106-bit
/// precision and rounded once per element.
///
/// # Panics
///
/// Panics if `x.len()` or `b.len()` differ from `a.dim()`.
pub fn residual_comp<M: RowAccess>(a: &M, x: &[TwoFloat], b: &[f64]) -> Vec<f64> {
    let n = a.dim();
    assert_eq!(x.len(), n, "residual_comp: solution length mismatch");
    assert_eq!(b.len(), n, "residual_comp: rhs length mismatch");
    let mut r = Vec::with_capacity(n);
    for (i, bi) in b.iter().enumerate() {
        let mut acc = TwoFloat::new(*bi);
        a.for_each_in_row(i, &mut |j, v| {
            acc = acc.add_prod(-v, x[j].hi).add_prod(-v, x[j].lo);
        });
        r.push(acc.value());
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn two_sum_is_error_free() {
        let (s, e) = two_sum(1.0, 1e-30);
        assert_eq!(s, 1.0);
        assert_eq!(e, 1e-30);
        let (s, e) = two_sum(0.1, 0.2);
        // s + e recovers information the single rounding lost.
        assert_eq!(s, 0.1 + 0.2);
        assert!(e != 0.0);
    }

    #[test]
    fn two_prod_recovers_rounding_error() {
        let a = 1.0 + f64::EPSILON;
        let (p, e) = two_prod(a, a);
        // (1+ε)² = 1 + 2ε + ε²; the ε² term is the product error.
        assert_eq!(p, 1.0 + 2.0 * f64::EPSILON);
        assert_eq!(e, f64::EPSILON * f64::EPSILON);
    }

    #[test]
    fn dot2_survives_catastrophic_cancellation() {
        // Naive summation of [big, 1, -big] loses the 1; dot2 keeps it.
        let x = [1e16, 1.0, -1e16];
        let y = [1.0, 1.0, 1.0];
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_eq!(naive, 0.0);
        assert_eq!(dot2(&x, &y).value(), 1.0);
    }

    #[test]
    fn axpy2_accumulates_below_f64_ulp() {
        // Adding 2^-60 a thousand times to 1.0 is invisible in f64 but must
        // survive in the two-float accumulator.
        let tiny = (2.0_f64).powi(-60);
        let x = [1.0];
        let mut y = vec![TwoFloat::new(1.0)];
        for _ in 0..1000 {
            axpy2(tiny, &x, &mut y);
        }
        let plain = 1.0 + 1000.0 * tiny; // rounds to 1.0 in f64 per-step form
        assert_eq!(plain, 1.0 + 1000.0 * tiny);
        assert!((y[0].hi + y[0].lo) > 1.0);
        assert!(((y[0].hi - 1.0) + y[0].lo - 1000.0 * tiny).abs() < 1e-30);
    }

    #[test]
    fn residual_comp_matches_plain_on_exact_data() {
        let a = CsrMatrix::tridiagonal(8, -1.0, 2.0, -1.0).unwrap();
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let b = vec![1.0; 8];
        let plain = crate::op::LinearOperator::residual(&a, &x, &b);
        let comp = residual_comp(&a, &promote(&x), &b);
        // Integer-valued data: both paths are exact and identical.
        assert_eq!(plain, comp);
    }

    #[test]
    fn promote_demote_roundtrip() {
        let x = [1.5, -2.25, 0.0];
        assert_eq!(demote(&promote(&x)), x.to_vec());
    }
}

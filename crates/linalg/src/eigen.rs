//! Eigenvalue estimation for convergence-time modelling.
//!
//! The analog gradient flow `du/dt = b − A·u` converges like
//! `e^{−λ_min·t}` (paper §VI inset: `u(t) = A⁻¹b + c·e^{−At}`), so the
//! solution time of the analog accelerator is governed by the smallest
//! eigenvalue of `A` and the circuit bandwidth. This module provides:
//!
//! * [`power_iteration`] — dominant eigenvalue `λ_max`.
//! * [`smallest_eigenvalue`] — `λ_min` by shifted power iteration.
//! * [`gershgorin_bounds`] — cheap analytic enclosure of the spectrum.
//! * [`poisson_lambda_min`] / [`poisson_lambda_max`] — closed forms for the
//!   model Poisson operators.

use crate::op::{LinearOperator, RowAccess};
use crate::{vector, LinalgError};

/// Result of an eigenvalue iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenEstimate {
    /// The eigenvalue estimate.
    pub value: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the estimate met the requested tolerance.
    pub converged: bool,
}

/// Estimates the dominant eigenvalue of a symmetric operator by power
/// iteration with Rayleigh-quotient refinement.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] if `max_iterations == 0`.
///
/// ```
/// use aa_linalg::{CsrMatrix, eigen::power_iteration};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = CsrMatrix::tridiagonal(16, -1.0, 2.0, -1.0)?;
/// let est = power_iteration(&a, 2000, 1e-10)?;
/// assert!(est.value < 4.0 && est.value > 3.8); // λ_max → 4 as n → ∞
/// # Ok(())
/// # }
/// ```
pub fn power_iteration<M: LinearOperator>(
    a: &M,
    max_iterations: usize,
    tolerance: f64,
) -> Result<EigenEstimate, LinalgError> {
    if max_iterations == 0 {
        return Err(LinalgError::invalid("max_iterations must be positive"));
    }
    let n = a.dim();
    // Deterministic non-degenerate start vector (no RNG dependency here).
    let mut v: Vec<f64> = (0..n)
        .map(|i| 1.0 + ((i * 2654435761) % 1000) as f64 / 1000.0)
        .collect();
    let norm = vector::norm2(&v);
    vector::scale(1.0 / norm, &mut v);

    let mut av = vec![0.0; n];
    let mut lambda = 0.0;
    for k in 1..=max_iterations {
        a.apply(&v, &mut av);
        let new_lambda = vector::dot(&v, &av);
        let norm = vector::norm2(&av);
        if norm == 0.0 {
            // v is in the null space; the dominant eigenvalue along it is 0.
            return Ok(EigenEstimate {
                value: 0.0,
                iterations: k,
                converged: true,
            });
        }
        for (vi, avi) in v.iter_mut().zip(&av) {
            *vi = avi / norm;
        }
        if (new_lambda - lambda).abs() <= tolerance * new_lambda.abs().max(1.0) {
            return Ok(EigenEstimate {
                value: new_lambda,
                iterations: k,
                converged: true,
            });
        }
        lambda = new_lambda;
    }
    Ok(EigenEstimate {
        value: lambda,
        iterations: max_iterations,
        converged: false,
    })
}

/// Estimates the smallest eigenvalue of a symmetric positive-definite
/// operator by power iteration on the shifted operator `σI − A`, where
/// `σ ≥ λ_max` comes from a Gershgorin bound.
///
/// # Errors
///
/// Propagates [`power_iteration`] errors.
///
/// ```
/// use aa_linalg::{CsrMatrix, eigen::smallest_eigenvalue};
///
/// # fn main() -> Result<(), aa_linalg::LinalgError> {
/// let a = CsrMatrix::tridiagonal(8, -1.0, 2.0, -1.0)?;
/// let est = smallest_eigenvalue(&a, 20_000, 1e-12)?;
/// // λ_min = 4·sin²(π/18) ≈ 0.120615
/// assert!((est.value - 0.120615).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn smallest_eigenvalue<M: RowAccess>(
    a: &M,
    max_iterations: usize,
    tolerance: f64,
) -> Result<EigenEstimate, LinalgError> {
    let (_, upper) = gershgorin_bounds(a);
    let shifted = Shifted { a, sigma: upper };
    let est = power_iteration(&shifted, max_iterations, tolerance)?;
    Ok(EigenEstimate {
        value: upper - est.value,
        iterations: est.iterations,
        converged: est.converged,
    })
}

/// The shifted operator `σI − A` used by [`smallest_eigenvalue`].
struct Shifted<'a, M> {
    a: &'a M,
    sigma: f64,
}

impl<M: LinearOperator> LinearOperator for Shifted<'_, M> {
    fn dim(&self) -> usize {
        self.a.dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.a.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = self.sigma * xi - *yi;
        }
    }
}

/// Gershgorin disc bounds `(lower, upper)` on the spectrum of `A`:
/// every eigenvalue lies in `[min_i(a_ii − R_i), max_i(a_ii + R_i)]` where
/// `R_i = Σ_{j≠i} |a_ij|`.
pub fn gershgorin_bounds<M: RowAccess>(a: &M) -> (f64, f64) {
    let mut lower = f64::INFINITY;
    let mut upper = f64::NEG_INFINITY;
    for i in 0..a.dim() {
        let mut diag = 0.0;
        let mut radius = 0.0;
        a.for_each_in_row(i, &mut |j, v| {
            if j == i {
                diag += v;
            } else {
                radius += v.abs();
            }
        });
        lower = lower.min(diag - radius);
        upper = upper.max(diag + radius);
    }
    (lower, upper)
}

/// Condition number estimate `λ_max / λ_min` for an SPD operator.
///
/// # Errors
///
/// Propagates iteration errors; returns
/// [`LinalgError::NotPositiveDefinite`] if the smallest eigenvalue estimate
/// is non-positive.
pub fn condition_estimate<M: RowAccess>(
    a: &M,
    max_iterations: usize,
    tolerance: f64,
) -> Result<f64, LinalgError> {
    let max = power_iteration(a, max_iterations, tolerance)?;
    let min = smallest_eigenvalue(a, max_iterations, tolerance)?;
    if min.value <= 0.0 {
        return Err(LinalgError::NotPositiveDefinite { pivot: 0 });
    }
    Ok(max.value / min.value)
}

/// Closed-form smallest eigenvalue of the `d`-dimensional Poisson operator
/// with `l` interior points per side: `λ_min = d·(4/h²)·sin²(π·h/2)`,
/// `h = 1/(l+1)`.
///
/// As `l → ∞` this tends to `d·π²` — the continuum limit — which is why the
/// *scaled* analog solve time grows like `L² = N` (2D) after the paper's
/// value/time scaling.
pub fn poisson_lambda_min(l: usize, dimensionality: usize) -> f64 {
    let h = 1.0 / (l as f64 + 1.0);
    let s = (std::f64::consts::PI * h / 2.0).sin();
    dimensionality as f64 * (4.0 / (h * h)) * s * s
}

/// Closed-form largest eigenvalue of the `d`-dimensional Poisson operator:
/// `λ_max = d·(4/h²)·cos²(π·h/2)`.
pub fn poisson_lambda_max(l: usize, dimensionality: usize) -> f64 {
    let h = 1.0 / (l as f64 + 1.0);
    let c = (std::f64::consts::PI * h / 2.0).cos();
    dimensionality as f64 * (4.0 / (h * h)) * c * c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::PoissonStencil;
    use crate::CsrMatrix;

    #[test]
    fn power_iteration_finds_dominant_eigenvalue() {
        // diag(1, 2, 5): λ_max = 5.
        let a = CsrMatrix::from_triplets(
            3,
            &[
                crate::Triplet::new(0, 0, 1.0),
                crate::Triplet::new(1, 1, 2.0),
                crate::Triplet::new(2, 2, 5.0),
            ],
        )
        .unwrap();
        let est = power_iteration(&a, 1000, 1e-12).unwrap();
        assert!(est.converged);
        assert!((est.value - 5.0).abs() < 1e-8);
    }

    #[test]
    fn closed_forms_match_numerical_estimates() {
        for (l, d) in [(6, 1), (5, 2), (4, 3)] {
            let op = PoissonStencil::new(l, d).unwrap();
            let max_est = power_iteration(&op, 50_000, 1e-13).unwrap();
            let min_est = smallest_eigenvalue(&op, 50_000, 1e-13).unwrap();
            let max_true = poisson_lambda_max(l, d);
            let min_true = poisson_lambda_min(l, d);
            assert!(
                (max_est.value - max_true).abs() / max_true < 1e-3,
                "λ_max mismatch in {d}D: {} vs {}",
                max_est.value,
                max_true
            );
            assert!(
                (min_est.value - min_true).abs() / min_true < 1e-2,
                "λ_min mismatch in {d}D: {} vs {}",
                min_est.value,
                min_true
            );
        }
    }

    #[test]
    fn gershgorin_encloses_poisson_spectrum() {
        let op = PoissonStencil::new_2d(5).unwrap();
        let (lo, hi) = gershgorin_bounds(&op);
        assert!(lo <= poisson_lambda_min(5, 2));
        assert!(hi >= poisson_lambda_max(5, 2));
        // For interior rows the bound is [0, 8/h²].
        assert!(lo >= 0.0);
    }

    #[test]
    fn condition_number_grows_like_l_squared() {
        let k4 = condition_estimate(&PoissonStencil::new_1d(4).unwrap(), 50_000, 1e-13).unwrap();
        let k9 = condition_estimate(&PoissonStencil::new_1d(9).unwrap(), 50_000, 1e-13).unwrap();
        // h halves (1/5 → 1/10): κ ≈ 4/(π h)² should grow ≈4×.
        let ratio = k9 / k4;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn zero_max_iterations_rejected() {
        let a = CsrMatrix::identity(2);
        assert!(power_iteration(&a, 0, 1e-10).is_err());
    }

    #[test]
    fn lambda_min_tends_to_continuum_limit() {
        // λ_min → d·π² as resolution increases.
        let lim = 2.0 * std::f64::consts::PI.powi(2);
        let val = poisson_lambda_min(200, 2);
        assert!((val - lim).abs() / lim < 1e-3);
    }
}

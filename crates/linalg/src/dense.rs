use crate::op::{LinearOperator, RowAccess};
use crate::LinalgError;

/// A row-major dense matrix of `f64` values.
///
/// Dense matrices back the small circuit-level systems the analog chip model
/// works with (a handful of integrators) and the direct factorizations in
/// [`crate::direct`]. Large PDE systems should use [`crate::CsrMatrix`] or the
/// matrix-free operators in [`crate::stencil`] instead.
///
/// ```
/// use aa_linalg::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
/// assert_eq!(a.get(0, 1), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::invalid("matrix dimensions must be non-zero"));
        }
        Ok(DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n).expect("identity dimension must be non-zero");
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `rows` is empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::invalid("matrix must have at least one entry"));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::invalid("ragged rows"));
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a square matrix from a flat row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `data.len() != n*n` or `n == 0`.
    pub fn from_row_major(n: usize, data: &[f64]) -> Result<Self, LinalgError> {
        if n == 0 {
            return Err(LinalgError::invalid("matrix dimensions must be non-zero"));
        }
        if data.len() != n * n {
            return Err(LinalgError::invalid(format!(
                "expected {} entries for a {n}x{n} matrix, got {}",
                n * n,
                data.len()
            )));
        }
        Ok(DenseMatrix {
            rows: n,
            cols: n,
            data: data.to_vec(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Entry `a_ij`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets entry `a_ij`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// A view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows).expect("dims checked at construction");
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Whether the matrix is symmetric within tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Matrix–matrix product `self × other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
                context: "matmul inner dimension",
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols)?;
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += aik * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Maximum absolute entry, `max_ij |a_ij|`.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Scales every entry by `s` in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Flat row-major view of the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl LinearOperator for DenseMatrix {
    fn dim(&self) -> usize {
        assert!(self.is_square(), "LinearOperator requires a square matrix");
        self.rows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "apply: input length mismatch");
        assert_eq!(y.len(), self.rows, "apply: output length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = crate::vector::dot(self.row(i), x);
        }
    }
}

impl RowAccess for DenseMatrix {
    fn for_each_in_row(&self, i: usize, f: &mut dyn FnMut(usize, f64)) {
        for (j, &v) in self.row(i).iter().enumerate() {
            if v != 0.0 {
                f(j, v);
            }
        }
    }

    fn diagonal(&self, i: usize) -> f64 {
        self.get(i, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(DenseMatrix::zeros(0, 3).is_err());
        assert!(DenseMatrix::zeros(3, 0).is_err());
        assert!(DenseMatrix::from_rows(&[]).is_err());
    }

    #[test]
    fn ragged_rows_rejected() {
        let r0: &[f64] = &[1.0, 2.0];
        let r1: &[f64] = &[3.0];
        assert!(DenseMatrix::from_rows(&[r0, r1]).is_err());
    }

    #[test]
    fn from_row_major_validates_length() {
        assert!(DenseMatrix::from_row_major(2, &[1.0, 2.0, 3.0]).is_err());
        let m = DenseMatrix::from_row_major(2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn identity_applies_as_identity() {
        let id = DenseMatrix::identity(3);
        let x = [1.0, -2.0, 0.5];
        assert_eq!(id.apply_vec(&x), x.to_vec());
    }

    #[test]
    fn matvec_matches_manual() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.apply_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn transpose_and_symmetry() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.get(0, 1), 3.0);
        assert!(!m.is_symmetric(1e-12));
        let s = DenseMatrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
    }

    #[test]
    fn matmul_matches_manual() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            DenseMatrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3).unwrap();
        let b = DenseMatrix::zeros(2, 2).unwrap();
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn row_access_skips_zeros() {
        let m = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]).unwrap();
        let mut seen = Vec::new();
        m.for_each_in_row(0, &mut |j, v| seen.push((j, v)));
        assert_eq!(seen, vec![(0, 1.0)]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn max_abs_and_scale() {
        let mut m = DenseMatrix::from_rows(&[&[1.0, -5.0], &[2.0, 0.0]]).unwrap();
        assert_eq!(m.max_abs(), 5.0);
        m.scale(2.0);
        assert_eq!(m.get(0, 1), -10.0);
    }
}

//! Host-driven calibration (the ISA's `init` instruction).
//!
//! Paper §III-B: "We use small DACs in each block to compensate for the
//! first two sources of error [offset bias and gain error] by shifting
//! signals and adjusting gains. … the digital processor uses binary search
//! to find the settings that give the most ideal behavior." The comparator
//! used for the search is the same analog comparator that drives overflow
//! detection, so the search resolves to one trim-DAC step rather than one
//! ADC code.
//!
//! Calibration settings "vary across different copies of the analog
//! accelerator chip, but remain constant during accelerator operation and
//! between solving different problems" — they live in the chip's
//! [`ProcessVariation`](crate::nonideal::ProcessVariation) trim fields.

use std::collections::BTreeMap;

use crate::chip::AnalogChip;
use crate::error::AnalogError;
use crate::nonideal::{trim_code_max, trim_code_min, BlockImperfection};
use crate::units::UnitId;

/// Per-unit calibration outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitCalibration {
    /// Offset before calibration (fraction of full scale).
    pub offset_before: f64,
    /// Residual offset after trimming.
    pub offset_after: f64,
    /// Relative gain error before calibration.
    pub gain_error_before: f64,
    /// Residual relative gain error after trimming.
    pub gain_error_after: f64,
    /// Chosen offset trim code.
    pub offset_trim: i32,
    /// Chosen gain trim code.
    pub gain_trim: i32,
}

/// The result of calibrating every unit on a chip.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CalibrationReport {
    /// Per-unit outcomes.
    pub units: BTreeMap<UnitId, UnitCalibration>,
}

impl CalibrationReport {
    /// The worst residual offset magnitude across all units.
    pub fn worst_offset(&self) -> f64 {
        self.units
            .values()
            .map(|u| u.offset_after.abs())
            .fold(0.0, f64::max)
    }

    /// The worst residual relative gain error across all units.
    pub fn worst_gain_error(&self) -> f64 {
        self.units
            .values()
            .map(|u| u.gain_error_after.abs())
            .fold(0.0, f64::max)
    }
}

/// Calibrates every analog unit on the chip by binary search on its trim
/// DACs, exactly once per unit (the `init` instruction).
///
/// # Errors
///
/// Returns [`AnalogError::CalibrationFailed`] if a unit's residual offset
/// exceeds two trim steps after the search (an imperfection beyond the trim
/// range — a "bad die").
pub fn calibrate(chip: &mut AnalogChip) -> Result<CalibrationReport, AnalogError> {
    let units: Vec<UnitId> = chip.config().inventory.iter().collect();
    let trim_step =
        crate::nonideal::OFFSET_TRIM_RANGE / f64::from(1u32 << (crate::nonideal::TRIM_BITS - 1));
    let gain_step =
        crate::nonideal::GAIN_TRIM_RANGE / f64::from(1u32 << (crate::nonideal::TRIM_BITS - 1));

    let mut report = CalibrationReport::default();
    for unit in units {
        let before = *chip.variation().of(unit);

        // --- Offset: drive input 0, binary search the code whose comparator
        // reading flips sign. The probe goes through the chip so any active
        // runtime fault (e.g. offset drift) is measured — and trimmed out —
        // exactly like a static imperfection. apply(0) is increasing in the
        // trim code.
        let offset_code = binary_search_code(|code| {
            let mut probe = before;
            probe.offset_trim = code;
            chip.probe_value(unit, &probe, 0.0) >= 0.0
        });

        // --- Gain: drive a half-scale reference, search for unity transfer.
        // Offset is compensated first so the comparison isolates gain.
        let half = 0.5 * chip.config().full_scale;
        let gain_code = binary_search_code(|code| {
            let mut probe = before;
            probe.offset_trim = offset_code;
            probe.gain_trim = code;
            chip.probe_value(unit, &probe, half) >= half
        });

        let entry = chip.variation_mut().of_mut(unit);
        entry.offset_trim = offset_code;
        entry.gain_trim = gain_code;
        let after = *entry;

        // Residuals are measured the same way the trims were chosen: through
        // the chip, so post-calibration accuracy reflects the live hardware.
        let offset_after = chip.probe_value(unit, &after, 0.0);
        let gain_after = (chip.probe_value(unit, &after, half) - offset_after) / half - 1.0;
        let cal = UnitCalibration {
            offset_before: before.offset,
            offset_after,
            gain_error_before: before.gain_error,
            gain_error_after: gain_after,
            offset_trim: offset_code,
            gain_trim: gain_code,
        };
        if cal.offset_after.abs() > 2.0 * trim_step || cal.gain_error_after.abs() > 2.0 * gain_step
        {
            return Err(AnalogError::CalibrationFailed {
                unit,
                residual: cal.offset_after.abs().max(cal.gain_error_after.abs()),
            });
        }
        report.units.insert(unit, cal);
    }
    chip.set_calibrated(true);
    Ok(report)
}

/// Classic comparator-driven binary search: `reads_high(code)` must be
/// monotone non-decreasing in `code`; returns the code at the threshold.
fn binary_search_code<F: Fn(i32) -> bool>(reads_high: F) -> i32 {
    let mut lo = trim_code_min();
    let mut hi = trim_code_max();
    // Invariant target: largest code for which reads_high is false, +/- 1.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if reads_high(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // lo is the first code that reads high; pick the closer neighbour by
    // probing one below (the comparator tells us only the sign).
    lo
}

/// Convenience: the paper's claim that calibration leaves sub-LSB residuals.
///
/// Returns the residual offset and gain error of `imp` if its trims were
/// chosen ideally (for documentation/tests).
pub fn ideal_residuals(imp: &BlockImperfection) -> (f64, f64) {
    let trim_step =
        crate::nonideal::OFFSET_TRIM_RANGE / f64::from(1u32 << (crate::nonideal::TRIM_BITS - 1));
    let gain_step =
        crate::nonideal::GAIN_TRIM_RANGE / f64::from(1u32 << (crate::nonideal::TRIM_BITS - 1));
    let offset_residual = (imp.offset / trim_step).fract().abs() * trim_step;
    let gain_residual = (imp.gain_error / gain_step).fract().abs() * gain_step;
    (offset_residual.min(trim_step), gain_residual.min(gain_step))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ChipConfig, NonIdealityConfig};
    use crate::engine::EngineOptions;
    use crate::netlist::{InputPort, OutputPort};

    #[test]
    fn calibration_reduces_offsets_below_a_trim_step() {
        let mut chip = AnalogChip::new(ChipConfig::prototype());
        let report = calibrate(&mut chip).unwrap();
        let trim_step = crate::nonideal::OFFSET_TRIM_RANGE / 512.0;
        assert!(chip.is_calibrated());
        assert!(
            report.worst_offset() <= 2.0 * trim_step,
            "worst residual offset {} > {}",
            report.worst_offset(),
            2.0 * trim_step
        );
        // Offsets genuinely improved.
        for cal in report.units.values() {
            assert!(cal.offset_after.abs() <= cal.offset_before.abs() + trim_step);
        }
    }

    #[test]
    fn calibration_reduces_gain_errors() {
        let mut chip = AnalogChip::new(ChipConfig::prototype());
        let report = calibrate(&mut chip).unwrap();
        let gain_step = crate::nonideal::GAIN_TRIM_RANGE / 512.0;
        assert!(report.worst_gain_error() <= 3.0 * gain_step);
    }

    #[test]
    fn different_chip_copies_get_different_codes() {
        let cfg_a = ChipConfig::prototype();
        let cfg_b =
            ChipConfig::prototype().with_nonideal(NonIdealityConfig::default().with_seed(1234));
        let mut chip_a = AnalogChip::new(cfg_a);
        let mut chip_b = AnalogChip::new(cfg_b);
        let rep_a = calibrate(&mut chip_a).unwrap();
        let rep_b = calibrate(&mut chip_b).unwrap();
        let unit = UnitId::Integrator(0);
        assert_ne!(
            rep_a.units[&unit].offset_trim,
            rep_b.units[&unit].offset_trim
        );
    }

    #[test]
    fn ideal_chip_calibrates_to_zero_trims() {
        let mut chip = AnalogChip::new(ChipConfig::ideal());
        let report = calibrate(&mut chip).unwrap();
        for cal in report.units.values() {
            // Comparator search lands within one code of zero.
            assert!(cal.offset_trim.abs() <= 1);
            assert!(cal.gain_trim.abs() <= 1);
        }
    }

    #[test]
    fn out_of_range_imperfection_fails_calibration() {
        let big_offsets = NonIdealityConfig {
            offset_std: 0.2, // far beyond the ±0.08 trim range
            gain_error_std: 0.0,
            readout_noise_std: 0.0,
            seed: 5,
        };
        let mut chip = AnalogChip::new(ChipConfig::prototype().with_nonideal(big_offsets));
        assert!(matches!(
            calibrate(&mut chip),
            Err(AnalogError::CalibrationFailed { .. })
        ));
    }

    #[test]
    fn calibrated_circuit_solves_more_accurately() {
        // The Figure 1 decay circuit on a noisy chip, before and after init.
        let build = |chip: &mut AnalogChip| {
            let int0 = UnitId::Integrator(0);
            let mul0 = UnitId::Multiplier(0);
            let dac0 = UnitId::Dac(0);
            chip.set_conn(OutputPort::of(int0), InputPort::of(mul0))
                .unwrap();
            chip.set_conn(OutputPort::of(mul0), InputPort::of(int0))
                .unwrap();
            chip.set_conn(OutputPort::of(dac0), InputPort::of(int0))
                .unwrap();
            chip.set_mul_gain(0, -1.0).unwrap();
            chip.set_dac_constant(0, 0.5).unwrap();
            chip.set_int_initial(0, 0.0).unwrap();
            chip.cfg_commit().unwrap();
        };
        let solve = |chip: &mut AnalogChip| {
            let report = chip.exec(&EngineOptions::default()).unwrap();
            (report.integrator_values[&0] - 0.5).abs()
        };

        let mut raw = AnalogChip::new(ChipConfig::prototype());
        build(&mut raw);
        let err_raw = solve(&mut raw);

        let mut cal = AnalogChip::new(ChipConfig::prototype());
        calibrate(&mut cal).unwrap();
        build(&mut cal);
        let err_cal = solve(&mut cal);

        assert!(
            err_cal < err_raw,
            "calibration should improve accuracy: {err_cal} !< {err_raw}"
        );
        assert!(err_cal < 5e-3, "calibrated error {err_cal} too large");
    }

    #[test]
    fn binary_search_finds_threshold() {
        // Threshold at code 100: reads_high for code >= 100.
        let code = binary_search_code(|c| c >= 100);
        assert_eq!(code, 100);
        let code = binary_search_code(|c| c >= trim_code_min());
        assert_eq!(code, trim_code_min());
    }
}

//! The typed plan IR and the optimized structure-of-arrays tape.
//!
//! [`IrGraph::lower`] turns the engine's reference circuit into a typed op
//! graph mirroring [`crate::plan::CompiledPlan`]'s tape, but with owned,
//! mutable input-slot lists so the passes in [`crate::passes`] can rewrite
//! it. After the pipeline runs, [`IrGraph::schedule`] regroups the
//! surviving ops by `(dependency level, op kind)` into per-kind
//! structure-of-arrays lanes: the RK4 inner loop then dispatches **once per
//! segment** instead of once per op, sweeping homogeneous runs of
//! multiplies, MACs, fanouts, LUTs, and sinks.
//!
//! Two executors consume the scheduled [`OptimizedPlan`]: [`OptRun`] (the
//! sequential [`Evaluator`]) and [`OptBatchRun`] (the K-lane
//! [`LaneEvaluator`]). Both are only reachable when no fault plan is armed,
//! so the per-op `distort` call and its branch are gone from the hot loop
//! entirely. The tolerance contract for the pass pipeline is documented in
//! [`crate::passes`]: `fold_constants`, `cse`, and `dce` preserve solution
//! values bit for bit (they only skip redundant stores), while
//! `fuse_gain_chains` reassociates the affine arithmetic and elides the
//! intermediate clip, so fused plans match the reference within a relative
//! error bound rather than exactly. Ops eliminated by any pass report zero
//! range usage and never latch exceptions.

use std::cell::Cell;
use std::collections::BTreeMap;

use crate::chip::InputSignal;
use crate::engine::{BatchTracker, Compiled, Evaluator, LaneEvaluator, Tracker};
use crate::lut::LookupTable;
use crate::netlist::{InputPort, OutputPort};
use crate::passes::{run_pipeline, PassConfig, PassStat};
use crate::plan::{
    dump_imp, dump_slots, dump_unit, DacSource, DriverRange, Imp, InputSource, IntSource,
};
use crate::units::UnitId;

/// One memoryless op's kind and kind-specific payload. Input/output slots
/// live on [`IrNode`] so the passes rewrite them uniformly.
pub(crate) enum IrKind {
    /// Multiplier in gain mode: `clip(imp(gain · Σin0))`.
    MulGain { unit: UnitId, gain: f64, imp: Imp },
    /// Fused multiply-accumulate: `clip(a · Σin0 + b)` — produced by
    /// `fuse_gain_chains`, never by lowering.
    Mac { unit: UnitId, a: f64, b: f64 },
    /// Multiplier in variable mode: `clip(imp(Σin0 · Σin1 / fs))`.
    MulVar { unit: UnitId, imp: Imp },
    /// Fanout: one imperfection application, one clipped store per branch.
    Fanout {
        unit: UnitId,
        imp: Imp,
        branches: u32,
    },
    /// Lookup table (owned contents, as in the unoptimized tape).
    Lut { unit: UnitId, lut: LookupTable },
    /// ADC / analog-output sink: clip the summed input into the sink slot.
    Sink,
}

/// One op graph node, in the netlist's topological order.
pub(crate) struct IrNode {
    pub(crate) kind: IrKind,
    /// Primary input's driver slots (every kind).
    pub(crate) in0: Vec<u32>,
    /// Secondary input's driver slots (`MulVar` only, empty otherwise).
    pub(crate) in1: Vec<u32>,
    /// Output slot (`Fanout`: first branch slot, branches contiguous).
    pub(crate) out: u32,
    /// Cleared instead of removing the node, so slot numbering and topo
    /// order stay stable across passes.
    pub(crate) live: bool,
}

/// The typed op graph the pass pipeline rewrites. Lowered per committed
/// netlist, consumed by [`IrGraph::schedule`] into an [`OptimizedPlan`].
pub(crate) struct IrGraph {
    full_scale: f64,
    omega: f64,
    /// Largest programmable multiplier gain magnitude
    /// ([`crate::ChipConfig::max_gain`]) — the limit `normalize_gains`
    /// rescales fused coefficients back inside.
    max_gain: f64,
    n_slots: usize,
    int_sources: Vec<IntSource>,
    /// DAC sources still fetched per run (before `fold_constants`).
    dac_sources: Vec<DacSource>,
    /// DAC sources folded to per-run constants: written once at bind, not
    /// once per RK4 stage.
    const_dacs: Vec<DacSource>,
    input_sources: Vec<InputSource>,
    nodes: Vec<IrNode>,
    derivs: Vec<Vec<u32>>,
}

impl IrGraph {
    /// Lowers the reference circuit into the typed op graph — the same
    /// structural walk as [`crate::plan::CompiledPlan::lower`], with owned
    /// slot lists per node instead of ranges into a shared CSR array.
    pub(crate) fn lower(c: &Compiled<'_>) -> Self {
        let slots_of = |port: InputPort| -> Vec<u32> {
            c.structure
                .drivers
                .get(&port)
                .map(|s| s.iter().map(|&x| x as u32).collect())
                .unwrap_or_default()
        };

        let int_sources: Vec<IntSource> = c
            .structure
            .integrator_of_state
            .iter()
            .map(|&i| {
                let unit = UnitId::Integrator(i);
                IntSource {
                    unit,
                    imp: Imp::lower(c.variation.of(unit)),
                    out: c.slot(OutputPort::of(unit)) as u32,
                }
            })
            .collect();

        let dac_sources: Vec<DacSource> = c
            .structure
            .dacs
            .iter()
            .map(|&i| {
                let unit = UnitId::Dac(i);
                DacSource {
                    unit,
                    dac: i,
                    imp: Imp::lower(c.variation.of(unit)),
                    out: c.slot(OutputPort::of(unit)) as u32,
                }
            })
            .collect();

        let input_sources: Vec<InputSource> = c
            .structure
            .analog_inputs
            .iter()
            .map(|&i| {
                let unit = UnitId::AnalogInput(i);
                InputSource {
                    unit,
                    channel: i,
                    out: c.slot(OutputPort::of(unit)) as u32,
                }
            })
            .collect();

        let mut nodes: Vec<IrNode> = Vec::with_capacity(c.structure.topo.len());
        for &unit in &c.structure.topo {
            match unit {
                UnitId::Multiplier(i) => {
                    let imp = Imp::lower(c.variation.of(unit));
                    let in0 = slots_of(InputPort { unit, port: 0 });
                    let out = c.slot(OutputPort::of(unit)) as u32;
                    match c.registers.mul_gains.get(&i) {
                        Some(&gain) => nodes.push(IrNode {
                            kind: IrKind::MulGain { unit, gain, imp },
                            in0,
                            in1: Vec::new(),
                            out,
                            live: true,
                        }),
                        None => nodes.push(IrNode {
                            kind: IrKind::MulVar { unit, imp },
                            in0,
                            in1: slots_of(InputPort { unit, port: 1 }),
                            out,
                            live: true,
                        }),
                    }
                }
                UnitId::Fanout(_) => nodes.push(IrNode {
                    kind: IrKind::Fanout {
                        unit,
                        imp: Imp::lower(c.variation.of(unit)),
                        branches: c.config.inventory.fanout_branches as u32,
                    },
                    in0: slots_of(InputPort::of(unit)),
                    in1: Vec::new(),
                    out: c.slot(OutputPort { unit, port: 0 }) as u32,
                    live: true,
                }),
                UnitId::Lut(i) => nodes.push(IrNode {
                    kind: IrKind::Lut {
                        unit,
                        lut: c
                            .registers
                            .luts
                            .get(&i)
                            .unwrap_or(&c.structure.default_lut)
                            .clone(),
                    },
                    in0: slots_of(InputPort::of(unit)),
                    in1: Vec::new(),
                    out: c.slot(OutputPort::of(unit)) as u32,
                    live: true,
                }),
                UnitId::Adc(_) | UnitId::AnalogOutput(_) => nodes.push(IrNode {
                    kind: IrKind::Sink,
                    in0: slots_of(InputPort::of(unit)),
                    in1: Vec::new(),
                    out: c.sink_slot(unit) as u32,
                    live: true,
                }),
                UnitId::Integrator(_) | UnitId::Dac(_) | UnitId::AnalogInput(_) => {
                    unreachable!("stateful/source units are not in the memoryless order")
                }
            }
        }

        let derivs: Vec<Vec<u32>> = c
            .structure
            .integrator_of_state
            .iter()
            .map(|&i| slots_of(InputPort::of(UnitId::Integrator(i))))
            .collect();

        IrGraph {
            full_scale: c.config.full_scale,
            omega: c.config.omega(),
            max_gain: c.config.max_gain,
            n_slots: c.structure.slot_index.len(),
            int_sources,
            dac_sources,
            const_dacs: Vec::new(),
            input_sources,
            nodes,
            derivs,
        }
    }

    /// The pass-statistics metric: output stores per circuit evaluation —
    /// one per (non-folded) source, one per live op output slot, a fanout
    /// counting once per branch. Folded DAC constants are excluded: they
    /// are written once per run, not once per eval.
    pub(crate) fn ops_per_eval(&self) -> u64 {
        let ops: u64 = self
            .nodes
            .iter()
            .filter(|n| n.live)
            .map(|n| match &n.kind {
                IrKind::Fanout { branches, .. } => *branches as u64,
                _ => 1,
            })
            .sum();
        (self.int_sources.len() + self.dac_sources.len() + self.input_sources.len()) as u64 + ops
    }

    /// `fold_constants`: DAC registers only change between runs (reprogram
    /// happens before `execStart`), so every DAC source becomes a per-run
    /// constant — its imperfection-applied value computed once at bind time.
    /// Bit-exact: the same `imp.apply(value)` arithmetic runs, just once.
    pub(crate) fn fold_constants(&mut self) {
        self.const_dacs.append(&mut self.dac_sources);
    }

    /// `cse`: value-numbers structurally identical multiplier ops into one,
    /// and collapses multi-branch fanouts (every branch carries the same
    /// clipped value) to a single branch, re-pointing consumers at the
    /// canonical slot. Bit-exact for solution values: deduped slots simply
    /// stop being written, and their owners report zero range usage.
    pub(crate) fn cse(&mut self) {
        let mut subst: Vec<u32> = (0..self.n_slots as u32).collect();
        let mut seen: BTreeMap<Vec<u64>, u32> = BTreeMap::new();
        for node in &mut self.nodes {
            if !node.live {
                continue;
            }
            // Producers precede consumers in topo order, so applying the
            // substitution at read time resolves every chain in one walk.
            for s in node.in0.iter_mut() {
                *s = subst[*s as usize];
            }
            for s in node.in1.iter_mut() {
                *s = subst[*s as usize];
            }
            let mut dead = false;
            match &mut node.kind {
                IrKind::Fanout { branches, .. } if *branches > 1 => {
                    for p in 1..*branches {
                        subst[(node.out + p) as usize] = node.out;
                    }
                    *branches = 1;
                }
                IrKind::MulGain { gain, imp, .. } => {
                    let mut key = vec![0u64, gain.to_bits()];
                    key.extend(imp.bits());
                    key.extend(node.in0.iter().map(|&s| s as u64));
                    match seen.get(&key) {
                        Some(&canon) => {
                            subst[node.out as usize] = canon;
                            dead = true;
                        }
                        None => {
                            seen.insert(key, node.out);
                        }
                    }
                }
                IrKind::MulVar { imp, .. } => {
                    let mut key = vec![1u64];
                    key.extend(imp.bits());
                    key.extend(node.in0.iter().map(|&s| s as u64));
                    key.push(u64::MAX);
                    key.extend(node.in1.iter().map(|&s| s as u64));
                    match seen.get(&key) {
                        Some(&canon) => {
                            subst[node.out as usize] = canon;
                            dead = true;
                        }
                        None => {
                            seen.insert(key, node.out);
                        }
                    }
                }
                _ => {}
            }
            if dead {
                node.live = false;
            }
        }
        for d in self.derivs.iter_mut() {
            for s in d.iter_mut() {
                *s = subst[*s as usize];
            }
        }
    }

    /// `fuse_gain_chains`: a gain multiplier whose single input is the sole
    /// consumption of another gain multiplier (or an already-fused MAC)
    /// fuses into one `Mac`, multiplying the affine coefficients through
    /// and eliding the intermediate clip. This is the one pass that
    /// reassociates floats — the source of the documented tolerance.
    pub(crate) fn fuse_gain_chains(&mut self) {
        // Static consumer counts are sound here: fusion only ever drops a
        // slot's count from one to zero, never from two to one.
        let mut consumers = vec![0u32; self.n_slots];
        for node in self.nodes.iter().filter(|n| n.live) {
            for &s in node.in0.iter().chain(&node.in1) {
                consumers[s as usize] += 1;
            }
        }
        for d in &self.derivs {
            for &s in d {
                consumers[s as usize] += 1;
            }
        }
        let mut producer: Vec<Option<usize>> = vec![None; self.n_slots];
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.live && matches!(node.kind, IrKind::MulGain { .. }) {
                producer[node.out as usize] = Some(idx);
            }
        }
        // Forward topo walk: once a consumer fuses and becomes a Mac, its
        // own producer-map entry stays valid, so chains of three or more
        // collapse link by link.
        for j in 0..self.nodes.len() {
            let (s, k_j, c_j, unit_j) = match &self.nodes[j] {
                IrNode {
                    live: true,
                    kind: IrKind::MulGain { unit, gain, imp },
                    in0,
                    ..
                } if in0.len() == 1 => (
                    in0[0] as usize,
                    gain * imp.coefficient(),
                    imp.constant(),
                    *unit,
                ),
                _ => continue,
            };
            if consumers[s] != 1 {
                continue;
            }
            let Some(i) = producer[s] else { continue };
            if !self.nodes[i].live {
                continue;
            }
            let (k_i, c_i) = match &self.nodes[i].kind {
                IrKind::MulGain { gain, imp, .. } => (gain * imp.coefficient(), imp.constant()),
                IrKind::Mac { a, b, .. } => (*a, *b),
                _ => continue,
            };
            // j(i(x)) = k_j·(k_i·x + c_i) + c_j, standalone gains stay exact.
            let a = k_j * k_i;
            let b = k_j * c_i + c_j;
            let inherited = std::mem::take(&mut self.nodes[i].in0);
            self.nodes[i].live = false;
            producer[s] = None;
            consumers[s] = 0;
            let node_j = &mut self.nodes[j];
            node_j.kind = IrKind::Mac { unit: unit_j, a, b };
            node_j.in0 = inherited;
        }
    }

    /// `normalize_gains`: peels any fused multiply-accumulate whose
    /// coefficient magnitude exceeds the hardware gain limit
    /// ([`crate::ChipConfig::max_gain`]) into a chain of stages each
    /// within the limit. Fusion multiplies affine coefficients through, so
    /// a chain of individually programmable multipliers can fuse into a
    /// coefficient no real multiplier could be set to; this pass restores
    /// hardware realizability at the cost of one store per extra stage
    /// (the only pass that can *raise* the op count). Each peeled prefix
    /// stage is a pure `±max_gain` multiply into a fresh scratch slot; the
    /// surviving node keeps the affine constant, so
    /// `residual·(g·…·(g·x)) + b` recomposes `a·x + b` exactly when
    /// `max_gain` is a power of two and within one rounding per stage
    /// otherwise — inside the documented pass tolerance. Stage gains all
    /// exceed unity (the residual lands in `(1, max_gain]`), so partial
    /// products grow monotonically and a peeled chain never saturates at
    /// an intermediate stage unless its fused output would have clipped
    /// too. Skipped when `max_gain ≤ 1`: no chain of within-limit stages
    /// can then reach a product above the limit.
    pub(crate) fn normalize_gains(&mut self) {
        let mg = self.max_gain;
        if mg <= 1.0 {
            return;
        }
        let mut rewritten: Vec<IrNode> = Vec::with_capacity(self.nodes.len());
        for mut node in std::mem::take(&mut self.nodes) {
            let split = match &node.kind {
                IrKind::Mac { a, .. } => node.live && a.is_finite() && a.abs() > mg,
                _ => false,
            };
            if !split {
                rewritten.push(node);
                continue;
            }
            let IrKind::Mac { unit, a, b } = node.kind else {
                unreachable!("matched above");
            };
            // Peel `max_gain` prefix stages until the residual coefficient
            // is programmable; each prefix writes a fresh slot the next
            // stage reads, so topo order holds by construction.
            let mut residual = a;
            let mut in0 = std::mem::take(&mut node.in0);
            while residual.abs() > mg {
                residual /= mg;
                let out = self.n_slots as u32;
                self.n_slots += 1;
                rewritten.push(IrNode {
                    kind: IrKind::Mac {
                        unit,
                        a: mg,
                        b: 0.0,
                    },
                    in0,
                    in1: Vec::new(),
                    out,
                    live: true,
                });
                in0 = vec![out];
            }
            node.kind = IrKind::Mac {
                unit,
                a: residual,
                b,
            };
            node.in0 = in0;
            rewritten.push(node);
        }
        self.nodes = rewritten;
    }

    /// `dce`: removes ops whose outputs reach neither an integrator input
    /// nor a sink (ADC / analog output). Sinks are the observables, so they
    /// always survive; sources always survive (integrator outputs carry the
    /// state, DACs/inputs are cheap and may feed eliminated consumers whose
    /// range records the report still omits either way).
    pub(crate) fn dce(&mut self) {
        let mut needed = vec![false; self.n_slots];
        for d in &self.derivs {
            for &s in d {
                needed[s as usize] = true;
            }
        }
        for idx in (0..self.nodes.len()).rev() {
            let keep = {
                let node = &self.nodes[idx];
                if !node.live {
                    continue;
                }
                match &node.kind {
                    IrKind::Sink => true,
                    IrKind::Fanout { branches, .. } => {
                        (0..*branches).any(|p| needed[(node.out + p) as usize])
                    }
                    _ => needed[node.out as usize],
                }
            };
            if keep {
                let node = &self.nodes[idx];
                for &s in node.in0.iter().chain(&node.in1) {
                    needed[s as usize] = true;
                }
            } else {
                self.nodes[idx].live = false;
            }
        }
    }

    /// Groups the surviving ops into the SoA op-kind tape: nodes are stably
    /// sorted by `(dependency level, kind rank)` — level ordering preserves
    /// every producer-before-consumer constraint, kind ranking within a
    /// level maximizes homogeneous run length — then packed into per-kind
    /// lane arrays with maximal same-kind segments.
    pub(crate) fn schedule(self, pass_log: Vec<PassStat>, ops_before: u64) -> OptimizedPlan {
        let ops_after = self.ops_per_eval();
        let mut level = vec![0u32; self.n_slots];
        let mut order: Vec<(u32, u8, usize)> = Vec::new();
        for (idx, node) in self.nodes.iter().enumerate() {
            if !node.live {
                continue;
            }
            let lv = 1 + node
                .in0
                .iter()
                .chain(&node.in1)
                .map(|&s| level[s as usize])
                .max()
                .unwrap_or(0);
            let (rank, outs) = match &node.kind {
                IrKind::MulGain { .. } => (0u8, 1),
                IrKind::Mac { .. } => (1, 1),
                IrKind::MulVar { .. } => (2, 1),
                IrKind::Fanout { branches, .. } => (3, *branches),
                IrKind::Lut { .. } => (4, 1),
                IrKind::Sink => (5, 1),
            };
            for p in 0..outs {
                level[(node.out + p) as usize] = lv;
            }
            order.push((lv, rank, idx));
        }
        order.sort_by_key(|&(lv, rank, _)| (lv, rank));

        fn push_range(driver_slots: &mut Vec<u32>, slots: &[u32]) -> DriverRange {
            let start = driver_slots.len() as u32;
            driver_slots.extend_from_slice(slots);
            DriverRange {
                start,
                end: driver_slots.len() as u32,
            }
        }

        let mut driver_slots: Vec<u32> = Vec::new();
        let mut segments: Vec<Segment> = Vec::new();
        let mut mulgain = MulGainLanes::default();
        let mut mac = MacLanes::default();
        let mut mulvar = MulVarLanes::default();
        let mut fanout = FanoutLanes::default();
        let mut lut_lanes = LutLanes::default();
        let mut sink = SinkLanes::default();

        for &(_, _, idx) in &order {
            let node = &self.nodes[idx];
            let in0 = push_range(&mut driver_slots, &node.in0);
            let (kind, pos) = match &node.kind {
                IrKind::MulGain { unit, gain, imp } => {
                    mulgain.unit.push(*unit);
                    mulgain.gain.push(*gain);
                    mulgain.imp.push(*imp);
                    mulgain.in0.push(in0);
                    mulgain.out.push(node.out);
                    (SegKind::MulGain, mulgain.out.len() as u32)
                }
                IrKind::Mac { unit, a, b } => {
                    mac.unit.push(*unit);
                    mac.a.push(*a);
                    mac.b.push(*b);
                    mac.in0.push(in0);
                    mac.out.push(node.out);
                    (SegKind::Mac, mac.out.len() as u32)
                }
                IrKind::MulVar { unit, imp } => {
                    mulvar.unit.push(*unit);
                    mulvar.imp.push(*imp);
                    mulvar.in0.push(in0);
                    mulvar.in1.push(push_range(&mut driver_slots, &node.in1));
                    mulvar.out.push(node.out);
                    (SegKind::MulVar, mulvar.out.len() as u32)
                }
                IrKind::Fanout {
                    unit,
                    imp,
                    branches,
                } => {
                    fanout.unit.push(*unit);
                    fanout.imp.push(*imp);
                    fanout.in0.push(in0);
                    fanout.out0.push(node.out);
                    fanout.branches.push(*branches);
                    (SegKind::Fanout, fanout.out0.len() as u32)
                }
                IrKind::Lut { unit, lut } => {
                    lut_lanes.unit.push(*unit);
                    lut_lanes.lut.push(lut.clone());
                    lut_lanes.in0.push(in0);
                    lut_lanes.out.push(node.out);
                    (SegKind::Lut, lut_lanes.out.len() as u32)
                }
                IrKind::Sink => {
                    sink.in0.push(in0);
                    sink.out.push(node.out);
                    (SegKind::Sink, sink.out.len() as u32)
                }
            };
            match segments.last_mut() {
                Some(seg) if seg.kind == kind => seg.end = pos,
                _ => segments.push(Segment {
                    kind,
                    start: pos - 1,
                    end: pos,
                }),
            }
        }

        let derivs: Vec<DriverRange> = self
            .derivs
            .iter()
            .map(|d| push_range(&mut driver_slots, d))
            .collect();

        OptimizedPlan {
            full_scale: self.full_scale,
            omega: self.omega,
            n_slots: self.n_slots,
            driver_slots,
            int_sources: self.int_sources,
            dac_sources: self.dac_sources,
            const_dacs: self.const_dacs,
            input_sources: self.input_sources,
            segments,
            mulgain,
            mac,
            mulvar,
            fanout,
            lut: lut_lanes,
            sink,
            derivs,
            pass_log,
            ops_before,
            ops_after,
        }
    }
}

/// Lowers the reference circuit through the IR and the pass pipeline into
/// the scheduled SoA tape. The compile-span counterpart of
/// [`crate::plan::CompiledPlan::lower`] for pass-enabled runs.
pub(crate) fn lower_optimized(c: &Compiled<'_>, cfg: &PassConfig) -> OptimizedPlan {
    let mut graph = IrGraph::lower(c);
    let ops_before = graph.ops_per_eval();
    let pass_log = run_pipeline(&mut graph, cfg);
    graph.schedule(pass_log, ops_before)
}

/// Which lane-array family a [`Segment`] indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SegKind {
    MulGain,
    Mac,
    MulVar,
    Fanout,
    Lut,
    Sink,
}

impl SegKind {
    fn name(self) -> &'static str {
        match self {
            SegKind::MulGain => "mul.gain",
            SegKind::Mac => "mac",
            SegKind::MulVar => "mul.var",
            SegKind::Fanout => "fanout",
            SegKind::Lut => "lut",
            SegKind::Sink => "sink",
        }
    }
}

/// A maximal run of same-kind ops: `start..end` indexes into that kind's
/// lane arrays.
pub(crate) struct Segment {
    kind: SegKind,
    start: u32,
    end: u32,
}

/// SoA lanes for gain-mode multipliers.
#[derive(Default)]
struct MulGainLanes {
    unit: Vec<UnitId>,
    gain: Vec<f64>,
    imp: Vec<Imp>,
    in0: Vec<DriverRange>,
    out: Vec<u32>,
}

/// SoA lanes for fused multiply-accumulates (unit label: the surviving
/// downstream multiplier of the fused chain).
#[derive(Default)]
struct MacLanes {
    unit: Vec<UnitId>,
    a: Vec<f64>,
    b: Vec<f64>,
    in0: Vec<DriverRange>,
    out: Vec<u32>,
}

/// SoA lanes for variable-mode multipliers.
#[derive(Default)]
struct MulVarLanes {
    unit: Vec<UnitId>,
    imp: Vec<Imp>,
    in0: Vec<DriverRange>,
    in1: Vec<DriverRange>,
    out: Vec<u32>,
}

/// SoA lanes for fanouts (contiguous branch slots from `out0`).
#[derive(Default)]
struct FanoutLanes {
    unit: Vec<UnitId>,
    imp: Vec<Imp>,
    in0: Vec<DriverRange>,
    out0: Vec<u32>,
    branches: Vec<u32>,
}

/// SoA lanes for lookup tables.
#[derive(Default)]
struct LutLanes {
    unit: Vec<UnitId>,
    lut: Vec<LookupTable>,
    in0: Vec<DriverRange>,
    out: Vec<u32>,
}

/// SoA lanes for ADC / analog-output sinks.
#[derive(Default)]
struct SinkLanes {
    in0: Vec<DriverRange>,
    out: Vec<u32>,
}

/// The pass-optimized, segment-scheduled execution tape for one committed
/// netlist under one [`PassConfig`]. Cached in the chip's
/// [`PlanCache`](crate::engine::PlanCache) keyed by `(plan epoch,
/// PassConfig)`; executed through [`OptRun`] / [`OptBatchRun`].
pub(crate) struct OptimizedPlan {
    full_scale: f64,
    omega: f64,
    /// Slot-buffer length the tape writes — the structure's slot count
    /// plus any scratch slots `normalize_gains` appended for peeled
    /// stages. The run loops size their trackers to at least this.
    pub(crate) n_slots: usize,
    driver_slots: Vec<u32>,
    int_sources: Vec<IntSource>,
    dac_sources: Vec<DacSource>,
    const_dacs: Vec<DacSource>,
    input_sources: Vec<InputSource>,
    segments: Vec<Segment>,
    mulgain: MulGainLanes,
    mac: MacLanes,
    mulvar: MulVarLanes,
    fanout: FanoutLanes,
    lut: LutLanes,
    sink: SinkLanes,
    derivs: Vec<DriverRange>,
    /// Per-pass before/after op counts, in pipeline order.
    pub(crate) pass_log: Vec<PassStat>,
    /// Stores per eval before any pass ran.
    pub(crate) ops_before: u64,
    /// Stores per eval after the pipeline.
    pub(crate) ops_after: u64,
}

impl OptimizedPlan {
    /// Renders the optimized tape in the same deterministic snapshot format
    /// as [`crate::plan::CompiledPlan::dump`], extended with `src dac.const`
    /// lines for folded constants, `op mac` lines for fused chains, `seg`
    /// markers delimiting the homogeneous dispatch runs, and trailing
    /// per-pass statistics lines.
    pub(crate) fn dump(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan fs={} states={} stores={}\n",
            self.full_scale,
            self.derivs.len(),
            self.ops_after
        ));
        for src in &self.int_sources {
            out.push_str(&format!(
                "src int u={}{} -> s{}\n",
                dump_unit(src.unit),
                dump_imp(&src.imp),
                src.out
            ));
        }
        for src in &self.dac_sources {
            out.push_str(&format!(
                "src dac u={}{} -> s{}\n",
                dump_unit(src.unit),
                dump_imp(&src.imp),
                src.out
            ));
        }
        for src in &self.const_dacs {
            out.push_str(&format!(
                "src dac.const u={}{} -> s{}\n",
                dump_unit(src.unit),
                dump_imp(&src.imp),
                src.out
            ));
        }
        for src in &self.input_sources {
            out.push_str(&format!(
                "src in u={} ch={} -> s{}\n",
                dump_unit(src.unit),
                src.channel,
                src.out
            ));
        }
        for seg in &self.segments {
            out.push_str(&format!(
                "seg {} ({})\n",
                seg.kind.name(),
                seg.end - seg.start
            ));
            for i in seg.start as usize..seg.end as usize {
                match seg.kind {
                    SegKind::MulGain => out.push_str(&format!(
                        "op mul.gain u={} g={}{} in={} -> s{}\n",
                        dump_unit(self.mulgain.unit[i]),
                        self.mulgain.gain[i],
                        dump_imp(&self.mulgain.imp[i]),
                        dump_slots(&self.driver_slots, self.mulgain.in0[i]),
                        self.mulgain.out[i]
                    )),
                    SegKind::Mac => out.push_str(&format!(
                        "op mac u={} a={} b={} in={} -> s{}\n",
                        dump_unit(self.mac.unit[i]),
                        self.mac.a[i],
                        self.mac.b[i],
                        dump_slots(&self.driver_slots, self.mac.in0[i]),
                        self.mac.out[i]
                    )),
                    SegKind::MulVar => out.push_str(&format!(
                        "op mul.var u={}{} in0={} in1={} -> s{}\n",
                        dump_unit(self.mulvar.unit[i]),
                        dump_imp(&self.mulvar.imp[i]),
                        dump_slots(&self.driver_slots, self.mulvar.in0[i]),
                        dump_slots(&self.driver_slots, self.mulvar.in1[i]),
                        self.mulvar.out[i]
                    )),
                    SegKind::Fanout => out.push_str(&format!(
                        "op fanout u={}{} in={} -> s{}..s{} ({})\n",
                        dump_unit(self.fanout.unit[i]),
                        dump_imp(&self.fanout.imp[i]),
                        dump_slots(&self.driver_slots, self.fanout.in0[i]),
                        self.fanout.out0[i],
                        self.fanout.out0[i] + self.fanout.branches[i] - 1,
                        self.fanout.branches[i]
                    )),
                    SegKind::Lut => out.push_str(&format!(
                        "op lut u={} in={} -> s{}\n",
                        dump_unit(self.lut.unit[i]),
                        dump_slots(&self.driver_slots, self.lut.in0[i]),
                        self.lut.out[i]
                    )),
                    SegKind::Sink => out.push_str(&format!(
                        "op sink in={} -> s{}\n",
                        dump_slots(&self.driver_slots, self.sink.in0[i]),
                        self.sink.out[i]
                    )),
                }
            }
        }
        for (state, range) in self.derivs.iter().enumerate() {
            out.push_str(&format!(
                "deriv state{} in={}\n",
                state,
                dump_slots(&self.driver_slots, *range)
            ));
        }
        for stat in &self.pass_log {
            out.push_str(&format!(
                "pass {}: {} -> {}\n",
                stat.pass, stat.ops_before, stat.ops_after
            ));
        }
        out
    }
}

/// One run's view of a cached [`OptimizedPlan`] — the optimized counterpart
/// of [`crate::plan::PlanRun`]. Only reachable when no fault plan is armed,
/// so there is no `distort` step anywhere in the eval.
pub(crate) struct OptRun<'a> {
    plan: &'a OptimizedPlan,
    /// Per-run constants for the non-folded DAC sources.
    dac_values: Vec<f64>,
    /// Folded DAC constants: `(slot, imp-applied value)` — written (and
    /// clipped) once into the tracker on the first eval, then left alone
    /// (nothing else writes those slots).
    const_values: Vec<(u32, f64)>,
    signals: Vec<Option<&'a InputSignal>>,
    /// Interior-mutable because [`Evaluator::eval_circuit`] takes `&self`.
    primed: Cell<bool>,
}

impl<'a> OptRun<'a> {
    /// Binds the optimized plan to one run's register/signal state.
    pub(crate) fn bind(plan: &'a OptimizedPlan, c: &Compiled<'a>) -> Self {
        let dac_values = plan
            .dac_sources
            .iter()
            .map(|src| c.registers.dac_values.get(&src.dac).copied().unwrap_or(0.0))
            .collect();
        let const_values = plan
            .const_dacs
            .iter()
            .map(|src| {
                let v = c.registers.dac_values.get(&src.dac).copied().unwrap_or(0.0);
                (src.out, src.imp.apply(v))
            })
            .collect();
        let signals = plan
            .input_sources
            .iter()
            .map(|src| {
                let enabled = c
                    .registers
                    .inputs_enabled
                    .get(&src.channel)
                    .copied()
                    .unwrap_or(false);
                if enabled {
                    c.signals.get(&src.channel)
                } else {
                    None
                }
            })
            .collect();
        OptRun {
            plan,
            dac_values,
            const_values,
            signals,
            primed: Cell::new(false),
        }
    }

    /// Sum of driver currents over a CSR range — same fold order as
    /// [`crate::plan::PlanRun`].
    #[inline]
    fn sum(&self, range: DriverRange, values: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &s in &self.plan.driver_slots[range.start as usize..range.end as usize] {
            acc += values[s as usize];
        }
        acc
    }

    /// Clips to full scale, recording range usage and clip events.
    #[inline]
    fn clip(
        &self,
        value: f64,
        slot: usize,
        max_abs: &mut [f64],
        clipped: &mut [bool],
        track: bool,
    ) -> f64 {
        let fs = self.plan.full_scale;
        if track {
            let mag = value.abs();
            if mag > max_abs[slot] {
                max_abs[slot] = mag;
            }
            if mag > fs {
                clipped[slot] = true;
            }
        }
        value.clamp(-fs, fs)
    }
}

impl Evaluator for OptRun<'_> {
    fn min_slots(&self) -> usize {
        self.plan.n_slots
    }

    fn eval_circuit(
        &self,
        t: f64,
        state: &[f64],
        du: &mut [f64],
        tracker: &mut Tracker,
        track: bool,
    ) {
        let plan = self.plan;
        let fs = plan.full_scale;
        let Tracker {
            values,
            max_abs,
            clipped,
        } = tracker;

        // Folded DAC constants: written once per run. The first eval is
        // always a k1 stage with `track` set, so range usage records
        // exactly what the unfolded per-eval writes would have recorded.
        if !self.primed.get() {
            for &(slot, v) in &self.const_values {
                let s = slot as usize;
                values[s] = self.clip(v, s, max_abs, clipped, track);
            }
            self.primed.set(true);
        }

        // Sources: integrator outputs (their state, through imperfection).
        for (slot_state, src) in plan.int_sources.iter().enumerate() {
            let out = src.imp.apply(state[slot_state]);
            let s = src.out as usize;
            values[s] = out.clamp(-fs, fs);
            if track {
                let mag = out.abs();
                if mag > max_abs[s] {
                    max_abs[s] = mag;
                }
                if mag > fs {
                    clipped[s] = true;
                }
            }
        }
        // Sources: non-folded DAC constants.
        for (src, &value) in plan.dac_sources.iter().zip(&self.dac_values) {
            let out = src.imp.apply(value);
            let s = src.out as usize;
            values[s] = self.clip(out, s, max_abs, clipped, track);
        }
        // Sources: external analog inputs.
        for (src, signal) in plan.input_sources.iter().zip(&self.signals) {
            let raw = signal.map(|f| f(t)).unwrap_or(0.0);
            let s = src.out as usize;
            values[s] = self.clip(raw, s, max_abs, clipped, track);
        }

        // The scheduled tape: one dispatch per homogeneous segment.
        for seg in &plan.segments {
            let r = seg.start as usize..seg.end as usize;
            match seg.kind {
                SegKind::MulGain => {
                    let l = &plan.mulgain;
                    for i in r {
                        let v = l.imp[i].apply(l.gain[i] * self.sum(l.in0[i], values));
                        let s = l.out[i] as usize;
                        values[s] = self.clip(v, s, max_abs, clipped, track);
                    }
                }
                SegKind::Mac => {
                    let l = &plan.mac;
                    for i in r {
                        let v = l.a[i].mul_add(self.sum(l.in0[i], values), l.b[i]);
                        let s = l.out[i] as usize;
                        values[s] = self.clip(v, s, max_abs, clipped, track);
                    }
                }
                SegKind::MulVar => {
                    let l = &plan.mulvar;
                    for i in r {
                        let ideal = self.sum(l.in0[i], values) * self.sum(l.in1[i], values) / fs;
                        let v = l.imp[i].apply(ideal);
                        let s = l.out[i] as usize;
                        values[s] = self.clip(v, s, max_abs, clipped, track);
                    }
                }
                SegKind::Fanout => {
                    let l = &plan.fanout;
                    for i in r {
                        let v = l.imp[i].apply(self.sum(l.in0[i], values));
                        for p in 0..l.branches[i] {
                            let s = (l.out0[i] + p) as usize;
                            values[s] = self.clip(v, s, max_abs, clipped, track);
                        }
                    }
                }
                SegKind::Lut => {
                    let l = &plan.lut;
                    for i in r {
                        let v = l.lut[i].evaluate(self.sum(l.in0[i], values));
                        let s = l.out[i] as usize;
                        values[s] = self.clip(v, s, max_abs, clipped, track);
                    }
                }
                SegKind::Sink => {
                    let l = &plan.sink;
                    for i in r {
                        let v = self.sum(l.in0[i], values);
                        let s = l.out[i] as usize;
                        values[s] = self.clip(v, s, max_abs, clipped, track);
                    }
                }
            }
        }

        // Integrator derivatives: ω_u times the summed input current.
        for (slot_state, &range) in plan.derivs.iter().enumerate() {
            du[slot_state] = plan.omega * self.sum(range, values);
        }
    }
}

/// Sums each lane's driver currents over a CSR range into `acc[..k]` — the
/// optimized-plan counterpart of the batched accumulator sweep in
/// [`crate::plan`].
#[inline]
fn sum_into(plan: &OptimizedPlan, k: usize, range: DriverRange, values: &[f64], acc: &mut [f64]) {
    let acc = &mut acc[..k];
    acc.fill(0.0);
    for &s in &plan.driver_slots[range.start as usize..range.end as usize] {
        let col = &values[s as usize * k..][..k];
        for (a, &v) in acc.iter_mut().zip(col) {
            *a += v;
        }
    }
}

/// The K-lane batched view of a cached [`OptimizedPlan`] — the optimized
/// counterpart of [`crate::plan::BatchRun`]. Lanes differ only in their DAC
/// constants (dynamic and folded alike), exactly as in the unoptimized
/// batch; fault plans never reach this path.
pub(crate) struct OptBatchRun<'a> {
    plan: &'a OptimizedPlan,
    k: usize,
    /// Per-lane non-folded DAC constants: `dac_values[src_idx * k + lane]`.
    dac_values: Vec<f64>,
    /// Folded DAC constants, per lane (lane bindings override DAC
    /// registers, so the folded value is lane-specific too).
    const_slots: Vec<u32>,
    const_vals: Vec<f64>,
    signals: Vec<Option<&'a InputSignal>>,
    scratch0: Vec<f64>,
    scratch1: Vec<f64>,
    primed: bool,
}

impl<'a> OptBatchRun<'a> {
    /// Binds the optimized plan to K lanes' DAC register maps plus the
    /// shared run state from `c`.
    pub(crate) fn bind(
        plan: &'a OptimizedPlan,
        c: &Compiled<'a>,
        lane_dacs: &[&BTreeMap<usize, f64>],
    ) -> Self {
        let k = lane_dacs.len();
        let mut dac_values = Vec::with_capacity(plan.dac_sources.len() * k);
        for src in &plan.dac_sources {
            for dacs in lane_dacs {
                dac_values.push(dacs.get(&src.dac).copied().unwrap_or(0.0));
            }
        }
        let mut const_slots = Vec::with_capacity(plan.const_dacs.len());
        let mut const_vals = Vec::with_capacity(plan.const_dacs.len() * k);
        for src in &plan.const_dacs {
            const_slots.push(src.out);
            for dacs in lane_dacs {
                const_vals.push(src.imp.apply(dacs.get(&src.dac).copied().unwrap_or(0.0)));
            }
        }
        let signals = plan
            .input_sources
            .iter()
            .map(|src| {
                let enabled = c
                    .registers
                    .inputs_enabled
                    .get(&src.channel)
                    .copied()
                    .unwrap_or(false);
                if enabled {
                    c.signals.get(&src.channel)
                } else {
                    None
                }
            })
            .collect();
        OptBatchRun {
            plan,
            k,
            dac_values,
            const_slots,
            const_vals,
            signals,
            scratch0: vec![0.0; k],
            scratch1: vec![0.0; k],
            primed: false,
        }
    }

    /// Lane `lane`'s sum of driver currents over a CSR range.
    #[inline]
    fn sum(&self, range: DriverRange, values: &[f64], lane: usize) -> f64 {
        let k = self.k;
        let mut acc = 0.0;
        for &s in &self.plan.driver_slots[range.start as usize..range.end as usize] {
            acc += values[s as usize * k + lane];
        }
        acc
    }

    /// Clips to full scale against the lane-expanded index.
    #[inline]
    fn clip(
        &self,
        value: f64,
        idx: usize,
        max_abs: &mut [f64],
        clipped: &mut [bool],
        track: bool,
    ) -> f64 {
        let fs = self.plan.full_scale;
        if track {
            let mag = value.abs();
            if mag > max_abs[idx] {
                max_abs[idx] = mag;
            }
            if mag > fs {
                clipped[idx] = true;
            }
        }
        value.clamp(-fs, fs)
    }

    /// The branch-free all-lanes-live evaluation over the scheduled tape.
    /// `KC` is the compile-time lane count for the monomorphized widths, or
    /// 0 for the runtime-width instantiation.
    fn eval_unmasked<const KC: usize>(
        &mut self,
        t: f64,
        state: &[f64],
        du: &mut [f64],
        tracker: &mut BatchTracker,
        track: bool,
    ) {
        let plan = self.plan;
        let k = if KC == 0 { self.k } else { KC };
        let fs = plan.full_scale;
        let mut acc0 = std::mem::take(&mut self.scratch0);
        let mut acc1 = std::mem::take(&mut self.scratch1);
        let dac_values: &[f64] = &self.dac_values;
        let signals = &self.signals;
        let BatchTracker {
            values,
            max_abs,
            clipped,
        } = tracker;

        // Same store/track shape as the unoptimized batched path: the
        // `track` branch hoisted out of the lane loop, exact-length
        // subslices so the untracked loop vectorizes.
        macro_rules! store_map {
            ($col:expr, $src:expr, |$x:ident| $v:expr) => {{
                let col = $col;
                let src = &$src[..k];
                let out = &mut values[col..col + k];
                if track {
                    let mab = &mut max_abs[col..col + k];
                    let clp = &mut clipped[col..col + k];
                    for lane in 0..k {
                        let $x = src[lane];
                        let v: f64 = $v;
                        let mag = v.abs();
                        if mag > mab[lane] {
                            mab[lane] = mag;
                        }
                        if mag > fs {
                            clp[lane] = true;
                        }
                        out[lane] = v.clamp(-fs, fs);
                    }
                } else {
                    for (o, &$x) in out.iter_mut().zip(src) {
                        let v: f64 = $v;
                        *o = v.clamp(-fs, fs);
                    }
                }
            }};
        }

        // Sources: integrator outputs (their state, through imperfection).
        for (slot_state, src) in plan.int_sources.iter().enumerate() {
            let imp = src.imp;
            store_map!(src.out as usize * k, state[slot_state * k..], |x| imp
                .apply(x));
        }
        // Sources: non-folded DAC constants.
        for (src_idx, src) in plan.dac_sources.iter().enumerate() {
            let imp = src.imp;
            store_map!(src.out as usize * k, dac_values[src_idx * k..], |x| imp
                .apply(x));
        }
        // Sources: external analog inputs, evaluated once and broadcast.
        for (src, signal) in plan.input_sources.iter().zip(signals) {
            let raw = signal.map(|f| f(t)).unwrap_or(0.0);
            acc0[..k].fill(raw);
            store_map!(src.out as usize * k, acc0, |x| x);
        }

        // The scheduled tape: one dispatch per segment, lane sweeps inside.
        for seg in &plan.segments {
            let r = seg.start as usize..seg.end as usize;
            match seg.kind {
                SegKind::MulGain => {
                    let l = &plan.mulgain;
                    for i in r {
                        sum_into(plan, k, l.in0[i], values, &mut acc0);
                        let (gain, imp) = (l.gain[i], l.imp[i]);
                        store_map!(l.out[i] as usize * k, acc0, |x| imp.apply(gain * x));
                    }
                }
                SegKind::Mac => {
                    let l = &plan.mac;
                    for i in r {
                        sum_into(plan, k, l.in0[i], values, &mut acc0);
                        let (a, b) = (l.a[i], l.b[i]);
                        store_map!(l.out[i] as usize * k, acc0, |x| a.mul_add(x, b));
                    }
                }
                SegKind::MulVar => {
                    let l = &plan.mulvar;
                    for i in r {
                        sum_into(plan, k, l.in0[i], values, &mut acc0);
                        sum_into(plan, k, l.in1[i], values, &mut acc1);
                        let imp = l.imp[i];
                        for (a, &b) in acc0[..k].iter_mut().zip(&acc1[..k]) {
                            *a = *a * b / fs;
                        }
                        store_map!(l.out[i] as usize * k, acc0, |x| imp.apply(x));
                    }
                }
                SegKind::Fanout => {
                    let l = &plan.fanout;
                    for i in r {
                        sum_into(plan, k, l.in0[i], values, &mut acc0);
                        let imp = l.imp[i];
                        for a in acc0[..k].iter_mut() {
                            *a = imp.apply(*a);
                        }
                        for port in 0..l.branches[i] {
                            store_map!((l.out0[i] + port) as usize * k, acc0, |x| x);
                        }
                    }
                }
                SegKind::Lut => {
                    let l = &plan.lut;
                    for i in r {
                        sum_into(plan, k, l.in0[i], values, &mut acc0);
                        let lut = &l.lut[i];
                        store_map!(l.out[i] as usize * k, acc0, |x| lut.evaluate(x));
                    }
                }
                SegKind::Sink => {
                    let l = &plan.sink;
                    for i in r {
                        sum_into(plan, k, l.in0[i], values, &mut acc0);
                        store_map!(l.out[i] as usize * k, acc0, |x| x);
                    }
                }
            }
        }

        // Integrator derivatives: ω_u times the summed input current.
        for (slot_state, &range) in plan.derivs.iter().enumerate() {
            sum_into(plan, k, range, values, &mut acc0);
            let out = &mut du[slot_state * k..][..k];
            for (o, &a) in out.iter_mut().zip(&acc0[..k]) {
                *o = plan.omega * a;
            }
        }

        self.scratch0 = acc0;
        self.scratch1 = acc1;
    }

    /// The general evaluation with per-lane `active` masking.
    // The lane loops index `active` plus several SoA columns in lockstep; a
    // range loop is the clear form, not a needless one.
    #[allow(clippy::needless_range_loop)]
    fn eval_masked(
        &self,
        t: f64,
        state: &[f64],
        du: &mut [f64],
        tracker: &mut BatchTracker,
        track: bool,
        active: &[bool],
    ) {
        let plan = self.plan;
        let k = self.k;
        let fs = plan.full_scale;
        let BatchTracker {
            values,
            max_abs,
            clipped,
        } = tracker;

        // Sources: integrator outputs (their state, through imperfection).
        for (slot_state, src) in plan.int_sources.iter().enumerate() {
            let s = src.out as usize;
            for lane in 0..k {
                if !active[lane] {
                    continue;
                }
                let out = src.imp.apply(state[slot_state * k + lane]);
                let idx = s * k + lane;
                values[idx] = out.clamp(-fs, fs);
                if track {
                    let mag = out.abs();
                    if mag > max_abs[idx] {
                        max_abs[idx] = mag;
                    }
                    if mag > fs {
                        clipped[idx] = true;
                    }
                }
            }
        }
        // Sources: non-folded DAC constants.
        for (src_idx, src) in plan.dac_sources.iter().enumerate() {
            let s = src.out as usize;
            for lane in 0..k {
                if !active[lane] {
                    continue;
                }
                let out = src.imp.apply(self.dac_values[src_idx * k + lane]);
                let idx = s * k + lane;
                values[idx] = self.clip(out, idx, max_abs, clipped, track);
            }
        }
        // Sources: external analog inputs (shared pure functions of time).
        for (src, signal) in plan.input_sources.iter().zip(&self.signals) {
            let raw = signal.map(|f| f(t)).unwrap_or(0.0);
            let s = src.out as usize;
            for lane in 0..k {
                if !active[lane] {
                    continue;
                }
                let idx = s * k + lane;
                values[idx] = self.clip(raw, idx, max_abs, clipped, track);
            }
        }

        // The scheduled tape.
        for seg in &plan.segments {
            let r = seg.start as usize..seg.end as usize;
            match seg.kind {
                SegKind::MulGain => {
                    let l = &plan.mulgain;
                    for i in r {
                        let s = l.out[i] as usize;
                        for lane in 0..k {
                            if !active[lane] {
                                continue;
                            }
                            let v = l.imp[i].apply(l.gain[i] * self.sum(l.in0[i], values, lane));
                            let idx = s * k + lane;
                            values[idx] = self.clip(v, idx, max_abs, clipped, track);
                        }
                    }
                }
                SegKind::Mac => {
                    let l = &plan.mac;
                    for i in r {
                        let s = l.out[i] as usize;
                        for lane in 0..k {
                            if !active[lane] {
                                continue;
                            }
                            let v = l.a[i].mul_add(self.sum(l.in0[i], values, lane), l.b[i]);
                            let idx = s * k + lane;
                            values[idx] = self.clip(v, idx, max_abs, clipped, track);
                        }
                    }
                }
                SegKind::MulVar => {
                    let l = &plan.mulvar;
                    for i in r {
                        let s = l.out[i] as usize;
                        for lane in 0..k {
                            if !active[lane] {
                                continue;
                            }
                            let ideal = self.sum(l.in0[i], values, lane)
                                * self.sum(l.in1[i], values, lane)
                                / fs;
                            let v = l.imp[i].apply(ideal);
                            let idx = s * k + lane;
                            values[idx] = self.clip(v, idx, max_abs, clipped, track);
                        }
                    }
                }
                SegKind::Fanout => {
                    let l = &plan.fanout;
                    for i in r {
                        for lane in 0..k {
                            if !active[lane] {
                                continue;
                            }
                            let v = l.imp[i].apply(self.sum(l.in0[i], values, lane));
                            for port in 0..l.branches[i] {
                                let idx = (l.out0[i] + port) as usize * k + lane;
                                values[idx] = self.clip(v, idx, max_abs, clipped, track);
                            }
                        }
                    }
                }
                SegKind::Lut => {
                    let l = &plan.lut;
                    for i in r {
                        let s = l.out[i] as usize;
                        for lane in 0..k {
                            if !active[lane] {
                                continue;
                            }
                            let v = l.lut[i].evaluate(self.sum(l.in0[i], values, lane));
                            let idx = s * k + lane;
                            values[idx] = self.clip(v, idx, max_abs, clipped, track);
                        }
                    }
                }
                SegKind::Sink => {
                    let l = &plan.sink;
                    for i in r {
                        let s = l.out[i] as usize;
                        for lane in 0..k {
                            if !active[lane] {
                                continue;
                            }
                            let v = self.sum(l.in0[i], values, lane);
                            let idx = s * k + lane;
                            values[idx] = self.clip(v, idx, max_abs, clipped, track);
                        }
                    }
                }
            }
        }

        // Integrator derivatives: ω_u times the summed input current.
        for (slot_state, &range) in plan.derivs.iter().enumerate() {
            for lane in 0..k {
                if !active[lane] {
                    continue;
                }
                du[slot_state * k + lane] = plan.omega * self.sum(range, values, lane);
            }
        }
    }
}

impl LaneEvaluator for OptBatchRun<'_> {
    fn lanes(&self) -> usize {
        self.k
    }

    fn min_slots(&self) -> usize {
        self.plan.n_slots
    }

    fn eval_lanes(
        &mut self,
        t: f64,
        state: &[f64],
        du: &mut [f64],
        tracker: &mut BatchTracker,
        track: bool,
        active: &[bool],
    ) {
        // Folded DAC constants: every lane's column written once per run
        // (first eval is a tracked k1 stage; retired lanes freeze on their
        // own afterwards because nothing else writes these slots).
        if !self.primed {
            self.primed = true;
            let k = self.k;
            let fs = self.plan.full_scale;
            for (cidx, &slot) in self.const_slots.iter().enumerate() {
                for lane in 0..k {
                    let v = self.const_vals[cidx * k + lane];
                    let idx = slot as usize * k + lane;
                    if track {
                        let mag = v.abs();
                        if mag > tracker.max_abs[idx] {
                            tracker.max_abs[idx] = mag;
                        }
                        if mag > fs {
                            tracker.clipped[idx] = true;
                        }
                    }
                    tracker.values[idx] = v.clamp(-fs, fs);
                }
            }
        }
        if active.iter().all(|&a| a) {
            match self.k {
                2 => self.eval_unmasked::<2>(t, state, du, tracker, track),
                4 => self.eval_unmasked::<4>(t, state, du, tracker, track),
                8 => self.eval_unmasked::<8>(t, state, du, tracker, track),
                16 => self.eval_unmasked::<16>(t, state, du, tracker, track),
                _ => self.eval_unmasked::<0>(t, state, du, tracker, track),
            }
        } else {
            self.eval_masked(t, state, du, tracker, track, active);
        }
    }
}

//! Overflow-exception latches.
//!
//! A key architectural contribution of the paper (§III-B "Exceptions"): every
//! analog design has a linear input range; exceeding it clips the output,
//! "similar to overflow of digital number representations". The integrators
//! and ADCs latch such events, and the host reads the latch vector after
//! computation with `readExp`, rescaling and re-running when it is non-empty.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::AnalogError;
use crate::units::{ResourceInventory, UnitId};

/// The set of units whose overflow latch is set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExceptionVector {
    latched: BTreeSet<UnitId>,
}

impl ExceptionVector {
    /// An empty (all-clear) vector.
    pub fn new() -> Self {
        ExceptionVector::default()
    }

    /// Latches an exception for `unit`.
    pub fn latch(&mut self, unit: UnitId) {
        self.latched.insert(unit);
    }

    /// Whether `unit`'s latch is set.
    pub fn is_latched(&self, unit: UnitId) -> bool {
        self.latched.contains(&unit)
    }

    /// Whether any latch is set.
    pub fn any(&self) -> bool {
        !self.latched.is_empty()
    }

    /// Number of latched units.
    pub fn len(&self) -> usize {
        self.latched.len()
    }

    /// Whether no latch is set.
    pub fn is_empty(&self) -> bool {
        self.latched.is_empty()
    }

    /// Clears every latch (done implicitly by `execStart`).
    pub fn clear(&mut self) {
        self.latched.clear();
    }

    /// Iterates over the latched units.
    pub fn iter(&self) -> impl Iterator<Item = UnitId> + '_ {
        self.latched.iter().copied()
    }

    /// Serializes the vector as the `readExp` character array: one bit per
    /// unit in `inventory` iteration order, packed little-endian into bytes.
    pub fn to_bytes(&self, inventory: &ResourceInventory) -> Vec<u8> {
        let mut bytes = vec![0u8; inventory.total().div_ceil(8)];
        for (bit, unit) in inventory.iter().enumerate() {
            if self.is_latched(unit) {
                bytes[bit / 8] |= 1 << (bit % 8);
            }
        }
        bytes
    }

    /// Parses a `readExp` byte array produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// [`AnalogError::ProtocolViolation`] if the array is shorter than the
    /// inventory requires (a truncated transfer) or if any bit beyond the
    /// inventory's last unit is set (a corrupted transfer) — a silently
    /// tolerated readout would hide exactly the interface faults the host
    /// supervisor must catch.
    pub fn from_bytes(inventory: &ResourceInventory, bytes: &[u8]) -> Result<Self, AnalogError> {
        let expected = inventory.total().div_ceil(8);
        if bytes.len() < expected {
            return Err(AnalogError::ProtocolViolation {
                message: format!(
                    "readExp vector truncated: got {} bytes, inventory needs {expected}",
                    bytes.len()
                ),
            });
        }
        let mut v = ExceptionVector::new();
        for (bit, unit) in inventory.iter().enumerate() {
            if bytes[bit / 8] & (1 << (bit % 8)) != 0 {
                v.latch(unit);
            }
        }
        let units = inventory.total();
        for bit in units..bytes.len() * 8 {
            if bytes[bit / 8] & (1 << (bit % 8)) != 0 {
                return Err(AnalogError::ProtocolViolation {
                    message: format!(
                        "readExp vector corrupt: bit {bit} set beyond the {units}-unit inventory"
                    ),
                });
            }
        }
        Ok(v)
    }
}

impl fmt::Display for ExceptionVector {
    /// Lists latched units, e.g. `"int0, adc1"`, or `"none"` when clear.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.latched.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for unit in &self.latched {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{unit}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv() -> ResourceInventory {
        ResourceInventory::from_macroblocks(4)
    }

    #[test]
    fn latch_and_query() {
        let mut v = ExceptionVector::new();
        assert!(v.is_empty() && !v.any());
        v.latch(UnitId::Integrator(2));
        v.latch(UnitId::Adc(0));
        assert!(v.any());
        assert_eq!(v.len(), 2);
        assert!(v.is_latched(UnitId::Integrator(2)));
        assert!(!v.is_latched(UnitId::Integrator(0)));
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn byte_round_trip() {
        let mut v = ExceptionVector::new();
        v.latch(UnitId::Integrator(0));
        v.latch(UnitId::Multiplier(7));
        v.latch(UnitId::Adc(1));
        let bytes = v.to_bytes(&inv());
        assert_eq!(bytes.len(), inv().total().div_ceil(8));
        let parsed = ExceptionVector::from_bytes(&inv(), &bytes).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn short_byte_array_is_protocol_violation() {
        let bytes = ExceptionVector::new().to_bytes(&inv());
        let err = ExceptionVector::from_bytes(&inv(), &bytes[..bytes.len() - 1]).unwrap_err();
        match err {
            AnalogError::ProtocolViolation { message } => {
                assert!(message.contains("truncated"), "{message}");
            }
            other => panic!("expected protocol violation, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_bit_is_protocol_violation() {
        let mut bytes = ExceptionVector::new().to_bytes(&inv());
        // The inventory does not fill the last byte completely; set its
        // topmost (out-of-inventory) bit.
        let units = inv().total();
        assert!(
            !units.is_multiple_of(8),
            "test needs a partially-filled final byte"
        );
        let last = bytes.len() - 1;
        bytes[last] |= 0x80;
        let err = ExceptionVector::from_bytes(&inv(), &bytes).unwrap_err();
        match err {
            AnalogError::ProtocolViolation { message } => {
                assert!(message.contains("beyond"), "{message}");
            }
            other => panic!("expected protocol violation, got {other:?}"),
        }
    }

    #[test]
    fn empty_vector_is_all_zero_bytes() {
        let bytes = ExceptionVector::new().to_bytes(&inv());
        assert!(bytes.iter().all(|b| *b == 0));
    }

    #[test]
    fn display_lists_units() {
        let mut v = ExceptionVector::new();
        assert_eq!(v.to_string(), "none");
        v.latch(UnitId::Integrator(1));
        v.latch(UnitId::Adc(0));
        assert_eq!(v.to_string(), "int1, adc0");
    }

    #[test]
    fn duplicate_latches_are_idempotent() {
        let mut v = ExceptionVector::new();
        v.latch(UnitId::Lut(0));
        v.latch(UnitId::Lut(0));
        assert_eq!(v.len(), 1);
    }
}

//! Deterministic, seeded transient-fault injection.
//!
//! The paper's architecture (§III-B) assumes the digital host can "react
//! when problems occur in the course of analog computation". The rest of
//! this crate models *static* imperfections drawn once per die; real
//! continuous-time hardware additionally drifts, glitches, and sticks at
//! runtime. A [`FaultPlan`] is a schedule of such events on the chip's
//! *lifetime* clock (cumulative analog seconds across every `exec`, plus
//! host [`idle`](crate::AnalogChip::idle) waits), applied by the engine
//! during integration and by the chip/SPI layers on the digital interface.
//!
//! Everything is reproducible from the plan: event windows are explicit,
//! and noise is *counter-based* — the sample at `(seed, unit, t)` is a pure
//! function of those values (via [`mix64`]), independent of evaluation
//! order. Every observed failure therefore doubles as a regression test.

use aa_linalg::rng::{mix64, unit_f64};

use crate::units::UnitId;

/// Which supply rail a stuck integrator is pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rail {
    /// Pinned at `+full_scale`.
    Positive,
    /// Pinned at `−full_scale`.
    Negative,
}

impl Rail {
    /// The sign of the rail value (`±1.0`).
    pub fn sign(self) -> f64 {
        match self {
            Rail::Positive => 1.0,
            Rail::Negative => -1.0,
        }
    }
}

/// One kind of injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The unit's output offset ramps from zero to `magnitude` (fraction of
    /// full scale) over `ramp_s` seconds after the event starts, then holds.
    OffsetDrift {
        /// Affected unit.
        unit: UnitId,
        /// Final additive offset, fraction of full scale.
        magnitude: f64,
        /// Seconds over which the offset ramps up (0 = immediate).
        ramp_s: f64,
    },
    /// The unit's gain drifts from unity to `1 + magnitude` over `ramp_s`
    /// seconds, then holds.
    GainDrift {
        /// Affected unit.
        unit: UnitId,
        /// Final relative gain error.
        magnitude: f64,
        /// Seconds over which the gain ramps (0 = immediate).
        ramp_s: f64,
    },
    /// Uniform noise in `±amplitude` added to the unit's output while the
    /// event is active (counter-based: deterministic in `(seed, unit, t)`).
    NoiseBurst {
        /// Affected unit.
        unit: UnitId,
        /// Peak noise amplitude, fraction of full scale.
        amplitude: f64,
    },
    /// The integrator's state is pinned at a rail while active (latching an
    /// overflow exception, exactly like a genuine saturation).
    StuckAtRail {
        /// Affected integrator index.
        integrator: usize,
        /// Which rail it sticks to.
        rail: Rail,
    },
    /// Every digital code read from this ADC has one bit flipped.
    AdcBitFlip {
        /// Affected ADC index.
        adc: usize,
        /// Bit position to flip (masked to the converter resolution).
        bit: u32,
    },
    /// One byte of any SPI transfer is XOR-corrupted while active.
    SpiBitFlip {
        /// Byte offset within the transfer (out-of-range offsets are inert).
        byte: usize,
        /// Bit position within the byte (0–7).
        bit: u32,
    },
    /// One lookup-table entry reads as `value` instead of its programmed
    /// contents (continuous-time SRAM upset).
    LutCorruption {
        /// Affected table index.
        lut: usize,
        /// Affected entry index.
        entry: usize,
        /// The corrupted analog value.
        value: f64,
    },
}

impl FaultKind {
    /// The unit whose analog output this fault distorts, if any.
    fn analog_unit(&self) -> Option<UnitId> {
        match self {
            FaultKind::OffsetDrift { unit, .. }
            | FaultKind::GainDrift { unit, .. }
            | FaultKind::NoiseBurst { unit, .. } => Some(*unit),
            _ => None,
        }
    }
}

/// A [`FaultKind`] with its activation window on the chip-lifetime clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Lifetime second at which the fault appears.
    pub start_s: f64,
    /// How long it lasts; `None` means persistent (a hard fault).
    pub duration_s: Option<f64>,
}

impl FaultEvent {
    /// A fault active for `duration_s` seconds from `start_s`.
    pub fn transient(kind: FaultKind, start_s: f64, duration_s: f64) -> Self {
        FaultEvent {
            kind,
            start_s,
            duration_s: Some(duration_s),
        }
    }

    /// A fault that never clears once it appears.
    pub fn persistent(kind: FaultKind, start_s: f64) -> Self {
        FaultEvent {
            kind,
            start_s,
            duration_s: None,
        }
    }

    /// Whether the event is active at lifetime second `t`.
    pub fn is_active(&self, t: f64) -> bool {
        t >= self.start_s && self.duration_s.is_none_or(|d| t < self.start_s + d)
    }

    /// When the event clears (`None` for persistent faults).
    pub fn ends_at(&self) -> Option<f64> {
        self.duration_s.map(|d| self.start_s + d)
    }

    /// The ramp factor in `[0, 1]` for drift events at time `t`.
    fn ramp(&self, ramp_s: f64, t: f64) -> f64 {
        if ramp_s <= 0.0 {
            1.0
        } else {
            ((t - self.start_s) / ramp_s).clamp(0.0, 1.0)
        }
    }
}

/// A seeded, deterministic schedule of fault events.
///
/// ```
/// use aa_analog::fault::{FaultEvent, FaultKind, FaultPlan};
/// use aa_analog::units::UnitId;
///
/// let plan = FaultPlan::new(42).with_event(FaultEvent::transient(
///     FaultKind::NoiseBurst { unit: UnitId::Integrator(0), amplitude: 0.05 },
///     0.0,
///     1e-3,
/// ));
/// // Counter-based noise: the same (seed, unit, t) always gives the same
/// // sample, so two identical plans distort identically.
/// let a = plan.analog_adjust(UnitId::Integrator(0), 5e-4, 0.25);
/// let b = plan.clone().analog_adjust(UnitId::Integrator(0), 5e-4, 0.25);
/// assert_eq!(a, b);
/// assert_ne!(a, 0.25);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given noise seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Builder-style event insertion.
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Adds an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The noise seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether any event is active at lifetime second `t`.
    pub fn any_active(&self, t: f64) -> bool {
        self.events.iter().any(|e| e.is_active(t))
    }

    /// Applies every active analog-path fault for `unit` to `value` at
    /// lifetime second `t`. Pure: identical arguments give identical output.
    pub fn analog_adjust(&self, unit: UnitId, t: f64, value: f64) -> f64 {
        let mut v = value;
        for e in self.events.iter().filter(|e| e.is_active(t)) {
            if e.kind.analog_unit() != Some(unit) {
                continue;
            }
            match e.kind {
                FaultKind::OffsetDrift {
                    magnitude, ramp_s, ..
                } => v += magnitude * e.ramp(ramp_s, t),
                FaultKind::GainDrift {
                    magnitude, ramp_s, ..
                } => v *= 1.0 + magnitude * e.ramp(ramp_s, t),
                FaultKind::NoiseBurst { amplitude, .. } => {
                    v += amplitude * self.noise_sample(unit, t);
                }
                _ => {}
            }
        }
        v
    }

    /// The rail an integrator is stuck at (if any) at lifetime second `t`.
    pub fn stuck_rail(&self, integrator: usize, t: f64) -> Option<Rail> {
        self.events.iter().find_map(|e| match e.kind {
            FaultKind::StuckAtRail {
                integrator: i,
                rail,
            } if i == integrator && e.is_active(t) => Some(rail),
            _ => None,
        })
    }

    /// Applies active ADC-code bit flips for `adc` to `code` at lifetime
    /// second `t`. Flipped bits are masked to the converter's `levels`.
    pub fn adc_code_adjust(&self, adc: usize, t: f64, code: u32, levels: u32) -> u32 {
        let mut c = code;
        for e in self.events.iter().filter(|e| e.is_active(t)) {
            if let FaultKind::AdcBitFlip { adc: a, bit } = e.kind {
                if a == adc {
                    c ^= 1u32 << (bit % levels.trailing_zeros().max(1));
                }
            }
        }
        c.min(levels - 1)
    }

    /// XOR-corrupts `bytes` in place per every active SPI fault at lifetime
    /// second `t`. Out-of-range byte offsets are inert.
    pub fn corrupt_spi(&self, t: f64, bytes: &mut [u8]) {
        for e in self.events.iter().filter(|e| e.is_active(t)) {
            if let FaultKind::SpiBitFlip { byte, bit } = e.kind {
                if let Some(b) = bytes.get_mut(byte) {
                    *b ^= 1u8 << (bit % 8);
                }
            }
        }
    }

    /// Lookup-table entry overrides active at lifetime second `t`.
    pub fn lut_overrides(&self, t: f64) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.events.iter().filter_map(move |e| match e.kind {
            FaultKind::LutCorruption { lut, entry, value } if e.is_active(t) => {
                Some((lut, entry, value))
            }
            _ => None,
        })
    }

    /// The plan re-based to a chip whose lifetime clock restarts at zero
    /// after `elapsed_s` seconds have already passed (used when the host
    /// remaps a problem onto a fresh accelerator instance mid-recovery).
    /// Events that have fully expired are dropped; in-progress events keep
    /// their remaining duration.
    pub fn shifted(&self, elapsed_s: f64) -> FaultPlan {
        let events = self
            .events
            .iter()
            .filter(|e| e.ends_at().is_none_or(|end| end > elapsed_s))
            .map(|e| {
                let started = e.start_s < elapsed_s;
                FaultEvent {
                    kind: e.kind.clone(),
                    start_s: (e.start_s - elapsed_s).max(0.0),
                    duration_s: e.duration_s.map(|d| {
                        if started {
                            d - (elapsed_s - e.start_s)
                        } else {
                            d
                        }
                    }),
                }
            })
            .collect();
        FaultPlan {
            seed: self.seed,
            events,
        }
    }

    /// The same event schedule under a different noise seed. A fleet hands
    /// each chip its own seed so independently-placed copies of one fault
    /// plan draw uncorrelated noise/bit-flip samples while keeping the
    /// event timing identical.
    pub fn reseeded(&self, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: self.events.clone(),
        }
    }

    /// One deterministic uniform sample in `[-1, 1)` for `(seed, unit, t)`.
    fn noise_sample(&self, unit: UnitId, t: f64) -> f64 {
        let bits = mix64(self.seed ^ unit_tag(unit)).wrapping_add(t.to_bits());
        2.0 * unit_f64(mix64(bits)) - 1.0
    }
}

/// A collision-free 64-bit tag for a unit (kind discriminant ‖ index).
fn unit_tag(unit: UnitId) -> u64 {
    let (kind, index) = match unit {
        UnitId::Integrator(i) => (1u64, i),
        UnitId::Multiplier(i) => (2, i),
        UnitId::Fanout(i) => (3, i),
        UnitId::Adc(i) => (4, i),
        UnitId::Dac(i) => (5, i),
        UnitId::Lut(i) => (6, i),
        UnitId::AnalogInput(i) => (7, i),
        UnitId::AnalogOutput(i) => (8, i),
    };
    (kind << 32) | index as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_open_and_close() {
        let e = FaultEvent::transient(
            FaultKind::NoiseBurst {
                unit: UnitId::Integrator(0),
                amplitude: 0.1,
            },
            1.0,
            0.5,
        );
        assert!(!e.is_active(0.99));
        assert!(e.is_active(1.0));
        assert!(e.is_active(1.49));
        assert!(!e.is_active(1.5));
        let p = FaultEvent::persistent(
            FaultKind::StuckAtRail {
                integrator: 0,
                rail: Rail::Positive,
            },
            2.0,
        );
        assert!(!p.is_active(1.9));
        assert!(p.is_active(1e9));
        assert_eq!(p.ends_at(), None);
    }

    #[test]
    fn drift_ramps_then_holds() {
        let unit = UnitId::Multiplier(1);
        let plan = FaultPlan::new(0).with_event(FaultEvent::persistent(
            FaultKind::OffsetDrift {
                unit,
                magnitude: 0.04,
                ramp_s: 2.0,
            },
            0.0,
        ));
        assert_eq!(plan.analog_adjust(unit, 1.0, 0.0), 0.02);
        assert_eq!(plan.analog_adjust(unit, 2.0, 0.0), 0.04);
        assert_eq!(plan.analog_adjust(unit, 50.0, 0.0), 0.04);
        // Other units untouched.
        assert_eq!(plan.analog_adjust(UnitId::Multiplier(0), 1.0, 0.3), 0.3);
    }

    #[test]
    fn noise_is_deterministic_and_seed_dependent() {
        let unit = UnitId::Integrator(2);
        let mk = |seed| {
            FaultPlan::new(seed).with_event(FaultEvent::persistent(
                FaultKind::NoiseBurst {
                    unit,
                    amplitude: 1.0,
                },
                0.0,
            ))
        };
        let a = mk(7).analog_adjust(unit, 0.125, 0.0);
        let b = mk(7).analog_adjust(unit, 0.125, 0.0);
        let c = mk(8).analog_adjust(unit, 0.125, 0.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.abs() <= 1.0);
        // Distinct times decorrelate.
        assert_ne!(a, mk(7).analog_adjust(unit, 0.25, 0.0));
    }

    #[test]
    fn adc_bit_flips_stay_in_range() {
        let plan = FaultPlan::new(0).with_event(FaultEvent::persistent(
            FaultKind::AdcBitFlip { adc: 0, bit: 7 },
            0.0,
        ));
        let levels = 256;
        for code in [0u32, 100, 255] {
            let flipped = plan.adc_code_adjust(0, 1.0, code, levels);
            assert!(flipped < levels);
            assert_eq!(flipped, (code ^ 0x80).min(levels - 1));
        }
        // Inactive before start, other ADC untouched.
        assert_eq!(plan.adc_code_adjust(1, 1.0, 9, levels), 9);
    }

    #[test]
    fn spi_corruption_flips_one_bit_in_window() {
        let plan = FaultPlan::new(0).with_event(FaultEvent::transient(
            FaultKind::SpiBitFlip { byte: 2, bit: 4 },
            1.0,
            1.0,
        ));
        let mut bytes = vec![0u8; 4];
        plan.corrupt_spi(0.5, &mut bytes);
        assert_eq!(bytes, vec![0, 0, 0, 0]);
        plan.corrupt_spi(1.5, &mut bytes);
        assert_eq!(bytes, vec![0, 0, 0x10, 0]);
        // Out-of-range byte offsets are inert.
        let mut short = vec![0u8; 2];
        plan.corrupt_spi(1.5, &mut short);
        assert_eq!(short, vec![0, 0]);
    }

    #[test]
    fn shifted_rebases_windows() {
        let kind = FaultKind::NoiseBurst {
            unit: UnitId::Integrator(0),
            amplitude: 0.1,
        };
        let plan = FaultPlan::new(3)
            .with_event(FaultEvent::transient(kind.clone(), 1.0, 2.0)) // [1, 3)
            .with_event(FaultEvent::transient(kind.clone(), 10.0, 1.0)) // [10, 11)
            .with_event(FaultEvent::persistent(kind.clone(), 0.0));

        let shifted = plan.shifted(2.0);
        assert_eq!(shifted.seed(), 3);
        assert_eq!(shifted.events().len(), 3);
        // In-progress event keeps its remaining 1 s.
        assert_eq!(shifted.events()[0].start_s, 0.0);
        assert_eq!(shifted.events()[0].duration_s, Some(1.0));
        // Future event moves earlier, duration intact.
        assert_eq!(shifted.events()[1].start_s, 8.0);
        assert_eq!(shifted.events()[1].duration_s, Some(1.0));
        // Persistent events survive any shift.
        assert_eq!(shifted.events()[2].duration_s, None);

        // Fully expired events are dropped.
        let late = plan.shifted(4.0);
        assert_eq!(late.events().len(), 2);
    }

    #[test]
    fn stuck_rail_reports_sign() {
        let plan = FaultPlan::new(0).with_event(FaultEvent::transient(
            FaultKind::StuckAtRail {
                integrator: 1,
                rail: Rail::Negative,
            },
            0.0,
            1.0,
        ));
        assert_eq!(plan.stuck_rail(1, 0.5), Some(Rail::Negative));
        assert_eq!(plan.stuck_rail(1, 0.5).unwrap().sign(), -1.0);
        assert_eq!(plan.stuck_rail(0, 0.5), None);
        assert_eq!(plan.stuck_rail(1, 2.0), None);
    }
}

//! Functional-unit identities and the chip's resource inventory.
//!
//! The prototype chip (paper Figures 2 and 3) organizes its analog blocks as
//! four macroblocks, each containing one analog input, two multipliers, one
//! integrator, two current-copying fanout blocks, and one analog output;
//! every two macroblocks share an 8-bit ADC, an 8-bit DAC, and a 256-deep
//! nonlinear lookup table.

use std::fmt;

/// Identifies one functional unit on a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnitId {
    /// Current-mode integrator holding one ODE variable.
    Integrator(usize),
    /// Variable-gain amplifier / four-quadrant multiplier.
    Multiplier(usize),
    /// Current-copying fanout block (current mirror).
    Fanout(usize),
    /// Analog-to-digital converter.
    Adc(usize),
    /// Digital-to-analog converter (constant bias generation).
    Dac(usize),
    /// Continuous-time SRAM lookup table for nonlinear functions.
    Lut(usize),
    /// Off-chip analog input channel.
    AnalogInput(usize),
    /// Off-chip analog output channel.
    AnalogOutput(usize),
}

impl UnitId {
    /// The index within the unit's kind.
    pub fn index(&self) -> usize {
        match *self {
            UnitId::Integrator(i)
            | UnitId::Multiplier(i)
            | UnitId::Fanout(i)
            | UnitId::Adc(i)
            | UnitId::Dac(i)
            | UnitId::Lut(i)
            | UnitId::AnalogInput(i)
            | UnitId::AnalogOutput(i) => i,
        }
    }

    /// Short name of the unit's kind ("int", "mul", ...).
    pub fn kind_name(&self) -> &'static str {
        match self {
            UnitId::Integrator(_) => "int",
            UnitId::Multiplier(_) => "mul",
            UnitId::Fanout(_) => "fan",
            UnitId::Adc(_) => "adc",
            UnitId::Dac(_) => "dac",
            UnitId::Lut(_) => "lut",
            UnitId::AnalogInput(_) => "ain",
            UnitId::AnalogOutput(_) => "aout",
        }
    }

    /// Whether the unit holds state in continuous time (only integrators do).
    pub fn is_stateful(&self) -> bool {
        matches!(self, UnitId::Integrator(_))
    }

    /// Whether the unit produces an analog output current.
    pub fn has_output(&self) -> bool {
        !matches!(self, UnitId::Adc(_) | UnitId::AnalogOutput(_))
    }

    /// Whether the unit consumes an analog input current.
    pub fn has_input(&self) -> bool {
        !matches!(self, UnitId::Dac(_) | UnitId::AnalogInput(_))
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.kind_name(), self.index())
    }
}

/// The number of functional units of each kind on a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceInventory {
    /// Integrators (one per simultaneously held variable).
    pub integrators: usize,
    /// Multipliers / variable-gain amplifiers.
    pub multipliers: usize,
    /// Fanout current mirrors.
    pub fanouts: usize,
    /// Output branches per fanout block (2 on the prototype).
    pub fanout_branches: usize,
    /// ADCs.
    pub adcs: usize,
    /// DACs.
    pub dacs: usize,
    /// Nonlinear lookup tables.
    pub luts: usize,
    /// Off-chip analog inputs.
    pub analog_inputs: usize,
    /// Off-chip analog outputs.
    pub analog_outputs: usize,
}

impl ResourceInventory {
    /// The inventory implied by a number of prototype-style macroblocks:
    /// per macroblock one integrator, two multipliers, two fanouts, one
    /// analog input, one analog output; per two macroblocks one ADC, one
    /// DAC, and one lookup table.
    ///
    /// # Panics
    ///
    /// Panics if `macroblocks == 0`.
    pub fn from_macroblocks(macroblocks: usize) -> Self {
        assert!(macroblocks > 0, "chip needs at least one macroblock");
        ResourceInventory {
            integrators: macroblocks,
            multipliers: 2 * macroblocks,
            fanouts: 2 * macroblocks,
            fanout_branches: 2,
            adcs: macroblocks.div_ceil(2),
            dacs: macroblocks.div_ceil(2),
            luts: macroblocks.div_ceil(2),
            analog_inputs: macroblocks,
            analog_outputs: macroblocks,
        }
    }

    /// Number of units of the same kind as `unit`.
    pub fn count_of(&self, unit: UnitId) -> usize {
        match unit {
            UnitId::Integrator(_) => self.integrators,
            UnitId::Multiplier(_) => self.multipliers,
            UnitId::Fanout(_) => self.fanouts,
            UnitId::Adc(_) => self.adcs,
            UnitId::Dac(_) => self.dacs,
            UnitId::Lut(_) => self.luts,
            UnitId::AnalogInput(_) => self.analog_inputs,
            UnitId::AnalogOutput(_) => self.analog_outputs,
        }
    }

    /// Whether `unit` exists on this inventory.
    pub fn contains(&self, unit: UnitId) -> bool {
        unit.index() < self.count_of(unit)
    }

    /// Iterates over every unit id in the inventory.
    pub fn iter(&self) -> impl Iterator<Item = UnitId> + '_ {
        let ints = (0..self.integrators).map(UnitId::Integrator);
        let muls = (0..self.multipliers).map(UnitId::Multiplier);
        let fans = (0..self.fanouts).map(UnitId::Fanout);
        let adcs = (0..self.adcs).map(UnitId::Adc);
        let dacs = (0..self.dacs).map(UnitId::Dac);
        let luts = (0..self.luts).map(UnitId::Lut);
        let ains = (0..self.analog_inputs).map(UnitId::AnalogInput);
        let aouts = (0..self.analog_outputs).map(UnitId::AnalogOutput);
        ints.chain(muls)
            .chain(fans)
            .chain(adcs)
            .chain(dacs)
            .chain(luts)
            .chain(ains)
            .chain(aouts)
    }

    /// Total unit count.
    pub fn total(&self) -> usize {
        self.integrators
            + self.multipliers
            + self.fanouts
            + self.adcs
            + self.dacs
            + self.luts
            + self.analog_inputs
            + self.analog_outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_inventory_matches_paper() {
        // §III-A: four macroblocks, each with one analog input, two
        // multipliers, one integrator, two fanouts, one analog output;
        // two macroblocks share an ADC, DAC, and lookup table.
        let inv = ResourceInventory::from_macroblocks(4);
        assert_eq!(inv.integrators, 4);
        assert_eq!(inv.multipliers, 8);
        assert_eq!(inv.fanouts, 8);
        assert_eq!(inv.adcs, 2);
        assert_eq!(inv.dacs, 2);
        assert_eq!(inv.luts, 2);
        assert_eq!(inv.analog_inputs, 4);
        assert_eq!(inv.analog_outputs, 4);
    }

    #[test]
    fn odd_macroblock_counts_round_shared_units_up() {
        let inv = ResourceInventory::from_macroblocks(3);
        assert_eq!(inv.adcs, 2);
        assert_eq!(inv.dacs, 2);
    }

    #[test]
    fn contains_and_count() {
        let inv = ResourceInventory::from_macroblocks(2);
        assert!(inv.contains(UnitId::Integrator(1)));
        assert!(!inv.contains(UnitId::Integrator(2)));
        assert!(inv.contains(UnitId::Adc(0)));
        assert!(!inv.contains(UnitId::Adc(1)));
        assert_eq!(inv.count_of(UnitId::Multiplier(0)), 4);
    }

    #[test]
    fn iter_covers_total() {
        let inv = ResourceInventory::from_macroblocks(4);
        assert_eq!(inv.iter().count(), inv.total());
        assert!(inv.iter().all(|u| inv.contains(u)));
    }

    #[test]
    fn unit_id_properties() {
        assert_eq!(UnitId::Integrator(3).to_string(), "int3");
        assert_eq!(UnitId::Multiplier(0).to_string(), "mul0");
        assert!(UnitId::Integrator(0).is_stateful());
        assert!(!UnitId::Multiplier(0).is_stateful());
        assert!(UnitId::Dac(0).has_output());
        assert!(!UnitId::Dac(0).has_input());
        assert!(UnitId::Adc(0).has_input());
        assert!(!UnitId::Adc(0).has_output());
    }
}

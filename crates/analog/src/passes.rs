//! The optimization pass pipeline over the plan IR.
//!
//! [`crate::ir`] lowers a committed netlist into a typed op graph; this
//! module decides **what** runs over that graph and in which order, and
//! reports per-pass op counts. The pipeline is fixed:
//!
//! 1. `fold_constants` — DAC outputs are constant within a run (registers
//!    only change behind a commit), so their imperfection-applied values are
//!    computed once at run bind instead of once per RK4 stage.
//! 2. `cse` — structurally identical multiplier ops are value-numbered into
//!    one, and fanout branches (which all carry the same value) collapse to
//!    a single store with consumers re-pointed at it.
//! 3. `fuse_gain_chains` — a gain multiplier whose only input is another
//!    gain multiplier's only consumer fuses into one multiply-accumulate,
//!    eliding the intermediate clip.
//! 4. `normalize_gains` — fusion multiplies coefficients through, so a
//!    chain of within-limit multipliers can fuse into a coefficient no
//!    real multiplier could be programmed with
//!    (`|a| > ChipConfig::max_gain`); this pass peels such MACs back into
//!    chained stages each inside the hardware gain limit.
//! 5. `dce` — ops whose outputs reach neither an integrator input nor a
//!    sink (ADC / analog output) are removed.
//!
//! **Tolerance contract.** `PassConfig::none()` plans are bit-identical to
//! the unoptimized tape (and hence to `EvalStrategy::Reference`). Any
//! enabled pass may reassociate floating-point arithmetic (folding bakes
//! `imp.apply` in a different association; fusion multiplies affine
//! coefficients through), so optimized results are only guaranteed to match
//! the reference within a small relative error, and only while the
//! reference run latches **no** overflow exceptions — fusion elides
//! intermediate clips, so saturating circuits may diverge beyond the bound.
//! Eliminated ops report zero range usage and never latch exceptions.
//! Optimized plans never run with an armed fault plan: the engine falls
//! back to the unoptimized tape so fault semantics stay bit-exact.

use crate::ir::IrGraph;

/// Which optimization passes run when lowering a committed netlist into an
/// optimized plan. The default ([`PassConfig::none`]) disables them all,
/// keeping every run on the bit-exact unoptimized tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassConfig {
    /// Fold fixed DAC inputs into constants computed once per run.
    pub fold_constants: bool,
    /// Dead-code-eliminate ops that reach no integrator or sink.
    pub dce: bool,
    /// Deduplicate common subexpressions (including fanout branches).
    pub cse: bool,
    /// Fuse gain-multiplier chains into single multiply-accumulate ops.
    pub fuse_gain_chains: bool,
    /// Rescale fused MAC coefficients back inside the hardware gain limit
    /// by splitting them into chained stages.
    pub normalize_gains: bool,
}

impl PassConfig {
    /// No passes: the optimized path is bypassed entirely and runs stay
    /// bit-identical to [`crate::engine::EvalStrategy::Reference`].
    pub fn none() -> Self {
        PassConfig::default()
    }

    /// Every pass enabled — the configuration the `engine_ir` perf gate
    /// measures.
    pub fn full() -> Self {
        PassConfig {
            fold_constants: true,
            dce: true,
            cse: true,
            fuse_gain_chains: true,
            normalize_gains: true,
        }
    }

    /// Whether any pass is enabled (i.e. whether an optimized plan would be
    /// lowered at all).
    pub fn any(&self) -> bool {
        self.fold_constants || self.dce || self.cse || self.fuse_gain_chains || self.normalize_gains
    }
}

/// One pass's effect on the plan, measured in output stores per circuit
/// evaluation (sources plus op outputs; a fanout counts once per branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStat {
    /// Pass name (`"fold_constants"`, `"cse"`, `"fuse_gain_chains"`,
    /// `"normalize_gains"`, `"dce"`).
    pub pass: &'static str,
    /// Stores per eval before the pass ran.
    pub ops_before: u64,
    /// Stores per eval after the pass ran.
    pub ops_after: u64,
}

/// The static aa-obs counter names for one pass's before/after op counts
/// (counters take `&'static str`, so the names are enumerated, not
/// formatted).
pub(crate) fn pass_counter_names(pass: &str) -> (&'static str, &'static str) {
    match pass {
        "fold_constants" => (
            "engine.pass.fold_constants.ops_before",
            "engine.pass.fold_constants.ops_after",
        ),
        "cse" => ("engine.pass.cse.ops_before", "engine.pass.cse.ops_after"),
        "fuse_gain_chains" => (
            "engine.pass.fuse_gain_chains.ops_before",
            "engine.pass.fuse_gain_chains.ops_after",
        ),
        "normalize_gains" => (
            "engine.pass.normalize_gains.ops_before",
            "engine.pass.normalize_gains.ops_after",
        ),
        "dce" => ("engine.pass.dce.ops_before", "engine.pass.dce.ops_after"),
        _ => ("engine.pass.ops_before", "engine.pass.ops_after"),
    }
}

/// Runs the enabled passes in the fixed pipeline order, returning one
/// [`PassStat`] per pass that ran.
pub(crate) fn run_pipeline(graph: &mut IrGraph, cfg: &PassConfig) -> Vec<PassStat> {
    let mut log = Vec::new();
    let mut run = |graph: &mut IrGraph, pass: &'static str, f: fn(&mut IrGraph)| {
        let ops_before = graph.ops_per_eval();
        f(graph);
        log.push(PassStat {
            pass,
            ops_before,
            ops_after: graph.ops_per_eval(),
        });
    };
    if cfg.fold_constants {
        run(graph, "fold_constants", IrGraph::fold_constants);
    }
    if cfg.cse {
        run(graph, "cse", IrGraph::cse);
    }
    if cfg.fuse_gain_chains {
        run(graph, "fuse_gain_chains", IrGraph::fuse_gain_chains);
    }
    if cfg.normalize_gains {
        run(graph, "normalize_gains", IrGraph::normalize_gains);
    }
    if cfg.dce {
        run(graph, "dce", IrGraph::dce);
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_config_predicates() {
        assert!(!PassConfig::none().any());
        assert!(PassConfig::full().any());
        assert_eq!(PassConfig::default(), PassConfig::none());
        assert!(PassConfig {
            cse: true,
            ..PassConfig::none()
        }
        .any());
    }

    #[test]
    fn counter_names_are_static_and_distinct() {
        let names: Vec<&str> = [
            "fold_constants",
            "cse",
            "fuse_gain_chains",
            "normalize_gains",
            "dce",
        ]
        .iter()
        .flat_map(|p| {
            let (b, a) = pass_counter_names(p);
            [b, a]
        })
        .collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "no counter-name collisions");
    }
}

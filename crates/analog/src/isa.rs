//! The accelerator instruction set — the paper's Table I, verbatim.
//!
//! Instructions fall into four types: control, configuration, data input,
//! and data output (plus exception reads). The host issues them over a
//! serial link (SPI on the prototype); here they are an enum executed
//! in-process by [`Host`](crate::Host).

use std::fmt;

use crate::engine::LaneBindings;
use crate::netlist::{InputPort, OutputPort};

/// Built-in nonlinear functions for `setFunction` (the paper names sine,
/// signum, and sigmoid as examples the SRAM tables hold).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum NonlinearFunction {
    /// Pass-through.
    Identity,
    /// `fs·sin(π·x/fs)`.
    Sine,
    /// Signum.
    Signum,
    /// Logistic sigmoid with the given steepness.
    Sigmoid {
        /// Slope parameter of the sigmoid.
        steepness: f64,
    },
    /// Absolute value.
    Abs,
    /// `x²/fs` (useful for building norms).
    Square,
}

impl NonlinearFunction {
    /// The function as a closure over normalized values with the given
    /// full scale.
    pub fn as_closure(&self, full_scale: f64) -> Box<dyn Fn(f64) -> f64 + Send + Sync> {
        match *self {
            NonlinearFunction::Identity => Box::new(|x| x),
            NonlinearFunction::Sine => {
                Box::new(move |x| full_scale * (std::f64::consts::PI * x / full_scale).sin())
            }
            NonlinearFunction::Signum => Box::new(move |x| {
                if x > 0.0 {
                    full_scale
                } else if x < 0.0 {
                    -full_scale
                } else {
                    0.0
                }
            }),
            NonlinearFunction::Sigmoid { steepness } => Box::new(move |x| {
                full_scale * (2.0 / (1.0 + (-steepness * x / full_scale).exp()) - 1.0)
            }),
            NonlinearFunction::Abs => Box::new(|x| x.abs()),
            NonlinearFunction::Square => Box::new(move |x| x * x / full_scale),
        }
    }
}

/// Instruction categories (the "Instruction type" column of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstructionKind {
    /// Calibration and execution control.
    Control,
    /// Static configuration writes.
    Config,
    /// Data written from host to chip.
    DataInput,
    /// Data read from chip to host.
    DataOutput,
    /// Exception-vector reads.
    Exception,
}

/// One instruction of the accelerator ISA (paper Table I).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Instruction {
    /// `init`: find calibration codes for all function units.
    Init,
    /// `setConn`: create an analog current connection between two units.
    SetConn {
        /// Source analog interface.
        from: OutputPort,
        /// Destination analog interface.
        to: InputPort,
    },
    /// `setIntInitial`: set an integrator's ODE initial condition.
    SetIntInitial {
        /// Integrator index.
        integrator: usize,
        /// Initial condition value.
        value: f64,
    },
    /// `setMulGain`: set a multiplier's constant gain.
    SetMulGain {
        /// Multiplier index.
        multiplier: usize,
        /// Gain value.
        gain: f64,
    },
    /// `setFunction`: program a lookup table with a nonlinear function.
    SetFunction {
        /// Lookup-table index.
        lut: usize,
        /// The function to program.
        function: NonlinearFunction,
    },
    /// `setDacConstant`: set a DAC's constant additive bias.
    SetDacConstant {
        /// DAC index.
        dac: usize,
        /// Bias value.
        value: f64,
    },
    /// `setTimeout`: stop computation after a predetermined time.
    SetTimeout {
        /// Timeout in control-clock cycles.
        cycles: u64,
    },
    /// `cfgCommit`: write configuration changes to chip registers.
    CfgCommit,
    /// `execStart`: release the integrators.
    ExecStart,
    /// `execStop`: hold the integrators at their present value.
    ExecStop,
    /// `execBatch`: run K lanes of the committed configuration in one
    /// lockstep sweep, each lane overlaying its own DAC constants and
    /// integrator initial conditions.
    ExecBatch {
        /// Per-lane register overrides, in lane order.
        lanes: Vec<LaneBindings>,
    },
    /// `selectLane`: stage one batch lane's outputs for readout.
    SelectLane {
        /// Lane index into the pending batch.
        lane: u16,
    },
    /// `finishBatch`: close the pending batch, restoring the post-batch
    /// lifetime clock.
    FinishBatch,
    /// `setAnaInputEn`: open an analog input channel.
    SetAnaInputEn {
        /// Analog input channel index.
        channel: usize,
        /// Whether the channel is open.
        enabled: bool,
    },
    /// `writeParallel`: write a byte to the chip's digital input
    /// (consumed by the DAC or lookup table selected as parallel target).
    WriteParallel {
        /// The byte written.
        data: u8,
    },
    /// `readSerial`: read the outputs of all ADCs as digital codes.
    ReadSerial,
    /// `analogAvg`: average several samples of one ADC.
    AnalogAvg {
        /// ADC index.
        adc: usize,
        /// Number of samples to average.
        samples: usize,
    },
    /// `readExp`: read the exception vector.
    ReadExp,
}

impl Instruction {
    /// The instruction's Table I category.
    pub fn kind(&self) -> InstructionKind {
        match self {
            Instruction::Init
            | Instruction::ExecStart
            | Instruction::ExecStop
            | Instruction::ExecBatch { .. }
            | Instruction::SelectLane { .. }
            | Instruction::FinishBatch => InstructionKind::Control,
            Instruction::SetConn { .. }
            | Instruction::SetIntInitial { .. }
            | Instruction::SetMulGain { .. }
            | Instruction::SetFunction { .. }
            | Instruction::SetDacConstant { .. }
            | Instruction::SetTimeout { .. }
            | Instruction::CfgCommit => InstructionKind::Config,
            Instruction::SetAnaInputEn { .. } | Instruction::WriteParallel { .. } => {
                InstructionKind::DataInput
            }
            Instruction::ReadSerial | Instruction::AnalogAvg { .. } => InstructionKind::DataOutput,
            Instruction::ReadExp => InstructionKind::Exception,
        }
    }

    /// The Table I mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::Init => "init",
            Instruction::SetConn { .. } => "setConn",
            Instruction::SetIntInitial { .. } => "setIntInitial",
            Instruction::SetMulGain { .. } => "setMulGain",
            Instruction::SetFunction { .. } => "setFunction",
            Instruction::SetDacConstant { .. } => "setDacConstant",
            Instruction::SetTimeout { .. } => "setTimeout",
            Instruction::CfgCommit => "cfgCommit",
            Instruction::ExecStart => "execStart",
            Instruction::ExecStop => "execStop",
            Instruction::ExecBatch { .. } => "execBatch",
            Instruction::SelectLane { .. } => "selectLane",
            Instruction::FinishBatch => "finishBatch",
            Instruction::SetAnaInputEn { .. } => "setAnaInputEn",
            Instruction::WriteParallel { .. } => "writeParallel",
            Instruction::ReadSerial => "readSerial",
            Instruction::AnalogAvg { .. } => "analogAvg",
            Instruction::ReadExp => "readExp",
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::SetConn { from, to } => write!(f, "setConn {from} -> {to}"),
            Instruction::SetIntInitial { integrator, value } => {
                write!(f, "setIntInitial int{integrator} = {value}")
            }
            Instruction::SetMulGain { multiplier, gain } => {
                write!(f, "setMulGain mul{multiplier} = {gain}")
            }
            Instruction::SetDacConstant { dac, value } => {
                write!(f, "setDacConstant dac{dac} = {value}")
            }
            Instruction::SetTimeout { cycles } => write!(f, "setTimeout {cycles}"),
            Instruction::SetAnaInputEn { channel, enabled } => {
                write!(f, "setAnaInputEn ain{channel} = {enabled}")
            }
            Instruction::AnalogAvg { adc, samples } => {
                write!(f, "analogAvg adc{adc} x{samples}")
            }
            Instruction::WriteParallel { data } => write!(f, "writeParallel 0x{data:02x}"),
            Instruction::SetFunction { lut, function } => {
                write!(f, "setFunction lut{lut} = {function:?}")
            }
            Instruction::ExecBatch { lanes } => write!(f, "execBatch x{}", lanes.len()),
            Instruction::SelectLane { lane } => write!(f, "selectLane {lane}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::UnitId;

    #[test]
    fn kinds_match_table1() {
        assert_eq!(Instruction::Init.kind(), InstructionKind::Control);
        assert_eq!(Instruction::CfgCommit.kind(), InstructionKind::Config);
        assert_eq!(Instruction::ExecStart.kind(), InstructionKind::Control);
        assert_eq!(
            Instruction::SetAnaInputEn {
                channel: 0,
                enabled: true
            }
            .kind(),
            InstructionKind::DataInput
        );
        assert_eq!(Instruction::ReadSerial.kind(), InstructionKind::DataOutput);
        assert_eq!(Instruction::ReadExp.kind(), InstructionKind::Exception);
        assert_eq!(
            Instruction::SetTimeout { cycles: 10 }.kind(),
            InstructionKind::Config
        );
    }

    #[test]
    fn mnemonics_and_display() {
        let i = Instruction::SetMulGain {
            multiplier: 3,
            gain: -0.5,
        };
        assert_eq!(i.mnemonic(), "setMulGain");
        assert_eq!(i.to_string(), "setMulGain mul3 = -0.5");
        assert_eq!(Instruction::ExecStart.to_string(), "execStart");
        let c = Instruction::SetConn {
            from: OutputPort::of(UnitId::Integrator(0)),
            to: InputPort::of(UnitId::Adc(0)),
        };
        assert_eq!(c.to_string(), "setConn int0.out0 -> adc0.in0");
    }

    #[test]
    fn batch_instructions_are_control_kind() {
        let batch = Instruction::ExecBatch {
            lanes: vec![LaneBindings::default(), LaneBindings::default()],
        };
        assert_eq!(batch.kind(), InstructionKind::Control);
        assert_eq!(batch.mnemonic(), "execBatch");
        assert_eq!(batch.to_string(), "execBatch x2");
        let select = Instruction::SelectLane { lane: 1 };
        assert_eq!(select.kind(), InstructionKind::Control);
        assert_eq!(select.to_string(), "selectLane 1");
        assert_eq!(Instruction::FinishBatch.kind(), InstructionKind::Control);
        assert_eq!(Instruction::FinishBatch.to_string(), "finishBatch");
    }

    #[test]
    fn nonlinear_closures_behave() {
        let f = NonlinearFunction::Sine.as_closure(1.0);
        assert!((f(0.5) - 1.0).abs() < 1e-12);
        let f = NonlinearFunction::Signum.as_closure(1.0);
        assert_eq!(f(-0.2), -1.0);
        assert_eq!(f(0.0), 0.0);
        let f = NonlinearFunction::Square.as_closure(2.0);
        assert_eq!(f(2.0), 2.0);
        let f = NonlinearFunction::Abs.as_closure(1.0);
        assert_eq!(f(-0.7), 0.7);
        let f = NonlinearFunction::Sigmoid { steepness: 4.0 }.as_closure(1.0);
        assert!(f(1.0) > 0.9);
        assert!(f(-1.0) < -0.9);
        assert!(f(0.0).abs() < 1e-12);
    }
}

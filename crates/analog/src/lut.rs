//! Continuous-time SRAM lookup tables for arbitrary nonlinear functions.
//!
//! The prototype uses 256-deep, 8-bit continuous-time SRAMs (paper §III-A,
//! citing Schell & Tsividis) to apply "arbitrary nonlinear functions, such as
//! sine, signum, and sigmoid" to analog variables. The model quantizes the
//! input into one of `depth` codes and outputs the stored (also quantized)
//! value — a piecewise-constant approximation of the programmed function.

/// A programmed nonlinear lookup table.
///
/// ```
/// use aa_analog::LookupTable;
///
/// let lut = LookupTable::from_function(256, 8, 1.0, |x| x * x);
/// // Quantized square function: exact at code centers, ±LSB elsewhere.
/// let y = lut.evaluate(0.5);
/// assert!((y - 0.25).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LookupTable {
    /// Stored output values, one per input code.
    entries: Vec<f64>,
    /// Full-scale range of input and output.
    full_scale: f64,
    /// Output resolution in bits.
    out_bits: u32,
}

impl LookupTable {
    /// Programs a table of `depth` entries over `[−full_scale, +full_scale]`
    /// by sampling `f` at each code's center and quantizing the result to
    /// `out_bits` bits (clipped to full scale).
    ///
    /// # Panics
    ///
    /// Panics if `depth < 2`, `out_bits == 0`, or `full_scale <= 0`.
    pub fn from_function<F: Fn(f64) -> f64>(
        depth: usize,
        out_bits: u32,
        full_scale: f64,
        f: F,
    ) -> Self {
        assert!(depth >= 2, "lookup table needs at least 2 entries");
        assert!(out_bits > 0, "output resolution must be positive");
        assert!(full_scale > 0.0, "full scale must be positive");
        let entries = (0..depth)
            .map(|code| {
                let x = code_center(code, depth, full_scale);
                quantize(f(x), out_bits, full_scale)
            })
            .collect();
        LookupTable {
            entries,
            full_scale,
            out_bits,
        }
    }

    /// The identity function (useful as a pass-through default).
    pub fn identity(depth: usize, out_bits: u32, full_scale: f64) -> Self {
        Self::from_function(depth, out_bits, full_scale, |x| x)
    }

    /// `sin(π·x/full_scale)` scaled into range — the "sine" of the paper.
    pub fn sine(depth: usize, out_bits: u32, full_scale: f64) -> Self {
        Self::from_function(depth, out_bits, full_scale, move |x| {
            full_scale * (std::f64::consts::PI * x / full_scale).sin()
        })
    }

    /// The signum function.
    pub fn signum(depth: usize, out_bits: u32, full_scale: f64) -> Self {
        Self::from_function(depth, out_bits, full_scale, move |x| {
            if x > 0.0 {
                full_scale
            } else if x < 0.0 {
                -full_scale
            } else {
                0.0
            }
        })
    }

    /// A logistic sigmoid centered at zero, saturating at `±full_scale`.
    pub fn sigmoid(depth: usize, out_bits: u32, full_scale: f64, steepness: f64) -> Self {
        Self::from_function(depth, out_bits, full_scale, move |x| {
            full_scale * (2.0 / (1.0 + (-steepness * x / full_scale).exp()) - 1.0)
        })
    }

    /// Number of entries.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Output resolution in bits.
    pub fn out_bits(&self) -> u32 {
        self.out_bits
    }

    /// Raw access to the stored entries.
    pub fn entries(&self) -> &[f64] {
        &self.entries
    }

    /// Overwrites one entry with a quantized value
    /// (the ISA's `writeParallel` data path into the SRAM).
    ///
    /// # Panics
    ///
    /// Panics if `code >= self.depth()`.
    pub fn write_entry(&mut self, code: usize, value: f64) {
        assert!(code < self.entries.len(), "lut code out of range");
        self.entries[code] = quantize(value, self.out_bits, self.full_scale);
    }

    /// Evaluates the table at analog input `x` (piecewise-constant).
    /// Inputs beyond full scale clip to the end entries.
    pub fn evaluate(&self, x: f64) -> f64 {
        let depth = self.entries.len();
        let code = input_code(x, depth, self.full_scale);
        self.entries[code]
    }
}

/// The input code an analog value falls into (clipped to the valid range).
fn input_code(x: f64, depth: usize, full_scale: f64) -> usize {
    let normalized = (x + full_scale) / (2.0 * full_scale);
    let code = (normalized * depth as f64).floor();
    (code.max(0.0) as usize).min(depth - 1)
}

/// Analog value at the center of an input code's bin.
fn code_center(code: usize, depth: usize, full_scale: f64) -> f64 {
    let width = 2.0 * full_scale / depth as f64;
    -full_scale + (code as f64 + 0.5) * width
}

/// Quantizes `v` to `bits` bits over `±full_scale`, clipping out-of-range
/// values.
pub(crate) fn quantize(v: f64, bits: u32, full_scale: f64) -> f64 {
    let levels = f64::from(2u32).powi(bits as i32);
    let lsb = 2.0 * full_scale / levels;
    let clipped = v.clamp(-full_scale, full_scale - lsb);
    (clipped / lsb).round() * lsb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trips_within_lsb() {
        let lut = LookupTable::identity(256, 8, 1.0);
        for &x in &[-0.9, -0.3, 0.0, 0.45, 0.8] {
            let y = lut.evaluate(x);
            assert!(
                (y - x).abs() <= 2.0 / 256.0 + 2.0 / 256.0,
                "x = {x}, y = {y}"
            );
        }
    }

    #[test]
    fn sine_has_expected_shape() {
        let lut = LookupTable::sine(256, 8, 1.0);
        assert!(lut.evaluate(0.0).abs() < 0.02);
        assert!((lut.evaluate(0.5) - 1.0).abs() < 0.02);
        assert!((lut.evaluate(-0.5) + 1.0).abs() < 0.02);
    }

    #[test]
    fn signum_switches_at_zero() {
        let lut = LookupTable::signum(256, 8, 1.0);
        assert!(lut.evaluate(0.3) > 0.9);
        assert!(lut.evaluate(-0.3) < -0.9);
    }

    #[test]
    fn sigmoid_is_monotone_and_saturating() {
        let lut = LookupTable::sigmoid(256, 8, 1.0, 8.0);
        assert!(lut.evaluate(-0.95) < -0.9);
        assert!(lut.evaluate(0.95) > 0.9);
        let lo = lut.evaluate(-0.2);
        let hi = lut.evaluate(0.2);
        assert!(lo < hi);
    }

    #[test]
    fn out_of_range_inputs_clip_to_end_entries() {
        let lut = LookupTable::identity(256, 8, 1.0);
        assert_eq!(lut.evaluate(5.0), lut.evaluate(0.999));
        assert_eq!(lut.evaluate(-5.0), lut.evaluate(-0.999));
    }

    #[test]
    fn write_entry_quantizes() {
        let mut lut = LookupTable::identity(16, 4, 1.0);
        lut.write_entry(3, 0.512341);
        let lsb = 2.0 / 16.0;
        let stored = lut.entries()[3];
        assert!((stored / lsb - (stored / lsb).round()).abs() < 1e-12);
        assert!((stored - 0.512341).abs() <= lsb);
    }

    #[test]
    fn output_is_quantized_to_out_bits() {
        let lut = LookupTable::sine(256, 4, 1.0);
        let lsb = 2.0 / 16.0;
        for code in 0..lut.depth() {
            let v = lut.entries()[code];
            assert!((v / lsb - (v / lsb).round()).abs() < 1e-12);
        }
    }

    #[test]
    fn quantize_clips_at_full_scale() {
        let q = quantize(2.0, 8, 1.0);
        assert!(q <= 1.0);
        let q = quantize(-2.0, 8, 1.0);
        assert_eq!(q, -1.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 entries")]
    fn tiny_depth_panics() {
        let _ = LookupTable::identity(1, 8, 1.0);
    }
}

//! The analog accelerator chip: registers, state machine, and data readout.
//!
//! Mirrors the paper's §III-B architecture: a digital host writes *static
//! configuration* (connections, gains, initial conditions, DAC constants,
//! lookup tables, a timeout) into registers, commits it, starts and stops
//! computation, and reads ADC outputs and the exception vector afterwards.

use std::collections::BTreeMap;

use aa_linalg::rng::Rng64;

use crate::config::ChipConfig;
use crate::engine::{
    run_committed, run_committed_batch, Compiled, EngineOptions, LaneBindings, PlanCache,
    PlanStats, RunReport, Structure,
};
use crate::error::AnalogError;
use crate::exceptions::ExceptionVector;
use crate::fault::FaultPlan;
use crate::lut::{quantize, LookupTable};
use crate::netlist::{InputPort, Netlist, OutputPort};
use crate::nonideal::ProcessVariation;
use crate::passes::{PassConfig, PassStat};
use crate::units::UnitId;

/// An external stimulus attached to an analog input channel.
pub type InputSignal = Box<dyn Fn(f64) -> f64 + Send + Sync>;

/// The draft configuration registers the host writes before `cfgCommit`.
#[derive(Debug, Clone)]
pub(crate) struct Registers {
    pub(crate) netlist: Netlist,
    /// Multiplier constant gains; absent means variable–variable mode
    /// (the multiplier computes `in0·in1/full_scale`).
    pub(crate) mul_gains: BTreeMap<usize, f64>,
    /// Integrator initial conditions.
    pub(crate) int_initial: BTreeMap<usize, f64>,
    /// DAC constant outputs (stored already quantized to DAC resolution).
    pub(crate) dac_values: BTreeMap<usize, f64>,
    /// Lookup-table contents.
    pub(crate) luts: BTreeMap<usize, LookupTable>,
    /// Computation timeout in control-clock cycles (`setTimeout`).
    pub(crate) timeout_cycles: Option<u64>,
    /// Which analog input channels are open (`setAnaInputEn`).
    pub(crate) inputs_enabled: BTreeMap<usize, bool>,
}

impl Registers {
    fn new(config: &ChipConfig) -> Self {
        Registers {
            netlist: Netlist::new(config.inventory),
            mul_gains: BTreeMap::new(),
            int_initial: BTreeMap::new(),
            dac_values: BTreeMap::new(),
            luts: BTreeMap::new(),
            timeout_cycles: None,
            inputs_enabled: BTreeMap::new(),
        }
    }
}

/// Control-clock frequency used to convert `setTimeout` cycles to seconds.
pub const CONTROL_CLOCK_HZ: f64 = 1.0e6;

/// The result of one batched execution ([`AnalogChip::exec_batch`]): K
/// per-lane run reports plus the batch's shared start instant on the chip's
/// lifetime clock. Pass it back to [`AnalogChip::select_lane`] to stage one
/// lane's outputs for readout, and to [`AnalogChip::finish_batch`] when all
/// lanes have been read.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchExec {
    /// Per-lane run reports, in lane order.
    pub reports: Vec<RunReport>,
    /// Chip lifetime at batch start — every lane's time axis begins here.
    pub start_lifetime_s: f64,
}

impl BatchExec {
    /// The batch's wall-clock (simulated) duration: the longest lane. The
    /// lanes ran in lockstep, so this is what the chip's lifetime advanced
    /// by — the throughput win over K sequential runs, whose durations
    /// would have added up.
    pub fn duration_s(&self) -> f64 {
        self.reports.iter().fold(0.0f64, |m, r| m.max(r.duration_s))
    }
}

/// A portable snapshot of one chip's **mutable runtime state** — everything
/// that diverges from a freshly constructed, freshly programmed chip as it
/// serves traffic. Captured by [`AnalogChip::export_state`] and replayed
/// into a deterministically rebuilt chip by [`AnalogChip::import_state`],
/// so a crashed host can resume with bit-identical noise streams, fault
/// clocks, and calibration trims.
///
/// The *static* configuration (netlist, gains, DAC constants, timeout) is
/// deliberately excluded: it is a pure function of the problem being
/// served, and the restore path re-programs it before importing.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipCheckpoint {
    /// Raw readout-noise RNG state ([`Rng64::state`]).
    pub noise_rng_state: u64,
    /// Cumulative powered seconds (the fault-event clock).
    pub lifetime_s: f64,
    /// Whether `init` (calibration) had run.
    pub calibrated: bool,
    /// Per-unit trim-DAC codes `(unit, offset_trim, gain_trim)` — chosen by
    /// calibration against lifetime-dependent faults, so they cannot be
    /// re-derived by recalibrating at a different lifetime instant.
    pub trims: Vec<(UnitId, i32, i32)>,
    /// The injected runtime-fault schedule, if any.
    pub fault_plan: Option<FaultPlan>,
    /// Cumulative plan-cache statistics at capture time.
    pub plan_stats: PlanStats,
    /// Whether the plan cache was warm (current for the chip's plan epoch)
    /// at capture time. Restore re-primes the cache only when this is set,
    /// so a chip that would have compiled fresh still compiles fresh.
    pub plan_cache_valid: bool,
    /// The pass configuration of the cached **optimized** plan at capture
    /// time, if one was cached. Restore re-lowers it silently alongside the
    /// unoptimized tape so the first post-restore optimized run is a cache
    /// hit, keeping [`PlanStats`] and the obs journal bit-identical to the
    /// uninterrupted run.
    pub optimized_passes: Option<PassConfig>,
}

impl ChipCheckpoint {
    /// Checkpoint format version; bump on any incompatible layout change.
    /// Version 2 added [`optimized_passes`](Self::optimized_passes).
    pub const FORMAT_VERSION: u32 = 2;
}

/// A behavioural model of one analog accelerator chip instance.
///
/// Construction draws this instance's process variation; the same
/// [`ChipConfig`] with a different non-ideality seed is "a different copy of
/// the chip" whose calibration codes will differ (paper §III-B).
///
/// ```
/// use aa_analog::{AnalogChip, ChipConfig};
/// use aa_analog::units::UnitId;
/// use aa_analog::netlist::{OutputPort, InputPort};
///
/// # fn main() -> Result<(), aa_analog::AnalogError> {
/// let mut chip = AnalogChip::new(ChipConfig::ideal());
/// // du/dt = -u via a feedback multiplier with gain -1.
/// chip.set_conn(OutputPort::of(UnitId::Integrator(0)), InputPort::of(UnitId::Multiplier(0)))?;
/// chip.set_conn(OutputPort::of(UnitId::Multiplier(0)), InputPort::of(UnitId::Integrator(0)))?;
/// chip.set_mul_gain(0, -1.0)?;
/// chip.set_int_initial(0, 0.5)?;
/// chip.cfg_commit()?;
/// let report = chip.exec(&Default::default())?;
/// assert!(report.reached_steady_state);
/// assert!(report.integrator_values[&0].abs() < 1e-3); // decayed to zero
/// # Ok(())
/// # }
/// ```
pub struct AnalogChip {
    config: ChipConfig,
    variation: ProcessVariation,
    draft: Registers,
    committed: Option<Registers>,
    exceptions: ExceptionVector,
    /// ADC input values captured at the end of the last run.
    adc_inputs: BTreeMap<usize, f64>,
    /// Attached external stimuli (test-bench side, not a register).
    input_signals: BTreeMap<usize, InputSignal>,
    /// RNG for readout noise.
    noise_rng: Rng64,
    calibrated: bool,
    /// Injected runtime-fault schedule (test-bench side, like `variation`).
    fault_plan: Option<FaultPlan>,
    /// Cumulative analog seconds this chip instance has been powered:
    /// every `exec` run plus explicit [`idle`](Self::idle) waits. Fault
    /// events are scheduled on this clock.
    lifetime_s: f64,
    /// Cached compilation products (netlist structure + lowered plan),
    /// reused by `exec` while `plan_epoch` is unchanged.
    plan_cache: PlanCache,
    /// Bumped by every mutation that changes what compilation would
    /// produce; see [`PlanCache`] for what does and does not count.
    plan_epoch: u64,
}

impl std::fmt::Debug for AnalogChip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalogChip")
            .field("config", &self.config)
            .field("committed", &self.committed.is_some())
            .field("calibrated", &self.calibrated)
            .field("exceptions", &self.exceptions)
            .finish()
    }
}

impl AnalogChip {
    /// Instantiates a chip, drawing its process variation from the config's
    /// non-ideality seed.
    pub fn new(config: ChipConfig) -> Self {
        let variation = ProcessVariation::draw(&config.inventory, &config.nonideal);
        let noise_rng = Rng64::seed_from_u64(config.nonideal.seed ^ 0x5eed);
        AnalogChip {
            draft: Registers::new(&config),
            variation,
            config,
            committed: None,
            exceptions: ExceptionVector::new(),
            adc_inputs: BTreeMap::new(),
            input_signals: BTreeMap::new(),
            noise_rng,
            calibrated: false,
            fault_plan: None,
            lifetime_s: 0.0,
            plan_cache: PlanCache::default(),
            plan_epoch: 0,
        }
    }

    /// The chip's static configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// This instance's process variation (visible for tests and ablations;
    /// a real host can only observe it through calibration measurements).
    pub fn variation(&self) -> &ProcessVariation {
        &self.variation
    }

    /// Mutable access for the calibration routine. Trim changes alter the
    /// imperfection factors baked into a lowered plan, so taking this
    /// reference invalidates the plan cache.
    pub(crate) fn variation_mut(&mut self) -> &mut ProcessVariation {
        self.plan_epoch += 1;
        &mut self.variation
    }

    /// Cumulative plan-cache activity: structures built, plans lowered,
    /// cache hits. A long solve loop against an unchanged netlist shows
    /// `plans_lowered == 1` with one `cache_hits` increment per subsequent
    /// run — the observable guarantee that repeated `exec` calls do not
    /// recompile.
    pub fn plan_stats(&self) -> PlanStats {
        self.plan_cache.stats()
    }

    /// Per-pass op-count statistics from the cached optimized plan: one
    /// [`PassStat`] per pass that ran when it was lowered. Empty when no
    /// optimized plan is cached (no optimized run yet, or the cache was
    /// invalidated since).
    pub fn pass_stats(&self) -> Vec<PassStat> {
        self.plan_cache.pass_log()
    }

    /// Renders the committed configuration's compiled plan as a
    /// deterministic text dump — the snapshot format the pass tests pin.
    /// `passes.any()` selects the optimized SoA plan (lowered through the
    /// requested pipeline); otherwise the unoptimized tape is dumped. The
    /// dump compiles fresh from the committed registers with no fault plan
    /// at lifetime zero, and touches neither the plan cache nor its
    /// statistics.
    ///
    /// # Errors
    ///
    /// * [`AnalogError::ProtocolViolation`] if no configuration is
    ///   committed.
    /// * Any compilation error from the committed netlist.
    pub fn dump_plan(&self, passes: &PassConfig) -> Result<String, AnalogError> {
        let registers = self
            .committed
            .as_ref()
            .ok_or_else(|| AnalogError::protocol("plan dump before cfgCommit"))?;
        let structure = Structure::build(registers, &self.config)?;
        let circuit = Compiled {
            config: &self.config,
            variation: &self.variation,
            registers,
            signals: &self.input_signals,
            faults: None,
            t_offset: 0.0,
            structure: &structure,
        };
        Ok(if passes.any() {
            crate::ir::lower_optimized(&circuit, passes).dump()
        } else {
            crate::plan::CompiledPlan::lower(&circuit).dump()
        })
    }

    /// Whether `init` (calibration) has run.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    pub(crate) fn set_calibrated(&mut self, calibrated: bool) {
        self.calibrated = calibrated;
    }

    // ----- Runtime-fault injection (test-bench side) -----

    /// Loads a runtime-fault schedule. Event windows are interpreted on the
    /// chip's [lifetime clock](Self::lifetime_s), so a plan injected now with
    /// an event at `start_s: 0.0` is already active.
    pub fn inject_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Removes any injected fault schedule.
    pub fn clear_fault_plan(&mut self) {
        self.fault_plan = None;
    }

    /// The injected fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Whether any injected fault event is active at the chip's current
    /// lifetime instant — the health signal a fleet scheduler polls when
    /// deciding to quarantine a chip.
    pub fn has_active_fault(&self) -> bool {
        self.fault_plan
            .as_ref()
            .is_some_and(|plan| plan.any_active(self.lifetime_s))
    }

    /// Cumulative analog seconds this instance has been powered (every
    /// `exec` run plus explicit [`idle`](Self::idle) waits).
    pub fn lifetime_s(&self) -> f64 {
        self.lifetime_s
    }

    /// Lets `seconds` of chip lifetime pass without computing — the host's
    /// cool-down move: a transient fault window can expire while the chip
    /// sits idle.
    pub fn idle(&mut self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            self.lifetime_s += seconds;
        }
    }

    /// One calibration probe through `imp` at `input`, including any active
    /// analog-path fault on `unit`: the calibration routine measures what
    /// the hardware *currently* does, so trims chosen by a recalibration
    /// pass cancel in-progress drift too.
    pub(crate) fn probe_value(
        &self,
        unit: UnitId,
        imp: &crate::nonideal::BlockImperfection,
        input: f64,
    ) -> f64 {
        let v = imp.apply(input);
        match &self.fault_plan {
            Some(plan) => plan.analog_adjust(unit, self.lifetime_s, v),
            None => v,
        }
    }

    // ----- Config instructions (Table I) -----

    /// `setConn`: creates an analog current connection between two units.
    ///
    /// # Errors
    ///
    /// See [`Netlist::connect`].
    pub fn set_conn(&mut self, from: OutputPort, to: InputPort) -> Result<(), AnalogError> {
        self.committed = None;
        self.plan_epoch += 1;
        self.draft.netlist.connect(from, to)
    }

    /// `setIntInitial`: sets an integrator's ODE initial condition.
    ///
    /// # Errors
    ///
    /// * [`AnalogError::NoSuchUnit`] for a bad index.
    /// * [`AnalogError::ValueOutOfRange`] if `|value|` exceeds full scale.
    pub fn set_int_initial(&mut self, index: usize, value: f64) -> Result<(), AnalogError> {
        let unit = UnitId::Integrator(index);
        if !self.config.inventory.contains(unit) {
            return Err(AnalogError::NoSuchUnit { unit });
        }
        if value.abs() > self.config.full_scale || !value.is_finite() {
            return Err(AnalogError::ValueOutOfRange {
                context: "integrator initial condition",
                value,
                limit: self.config.full_scale,
            });
        }
        self.committed = None;
        self.draft.int_initial.insert(index, value);
        Ok(())
    }

    /// `setMulGain`: puts a multiplier in constant-gain mode.
    ///
    /// # Errors
    ///
    /// * [`AnalogError::NoSuchUnit`] for a bad index.
    /// * [`AnalogError::ValueOutOfRange`] if `|gain|` exceeds the multiplier
    ///   range — the situation the paper's value-scaling procedure exists to
    ///   avoid.
    pub fn set_mul_gain(&mut self, index: usize, gain: f64) -> Result<(), AnalogError> {
        let unit = UnitId::Multiplier(index);
        if !self.config.inventory.contains(unit) {
            return Err(AnalogError::NoSuchUnit { unit });
        }
        if gain.abs() > self.config.max_gain || !gain.is_finite() {
            return Err(AnalogError::ValueOutOfRange {
                context: "multiplier gain",
                value: gain,
                limit: self.config.max_gain,
            });
        }
        self.committed = None;
        self.plan_epoch += 1;
        self.draft.mul_gains.insert(index, gain);
        Ok(())
    }

    /// Returns a multiplier to variable–variable mode (`out = in0·in1/fs`).
    ///
    /// # Errors
    ///
    /// [`AnalogError::NoSuchUnit`] for a bad index.
    pub fn set_mul_variable(&mut self, index: usize) -> Result<(), AnalogError> {
        let unit = UnitId::Multiplier(index);
        if !self.config.inventory.contains(unit) {
            return Err(AnalogError::NoSuchUnit { unit });
        }
        self.committed = None;
        self.plan_epoch += 1;
        self.draft.mul_gains.remove(&index);
        Ok(())
    }

    /// `setFunction`: programs a lookup table with a nonlinear function.
    ///
    /// # Errors
    ///
    /// [`AnalogError::NoSuchUnit`] for a bad index.
    pub fn set_function<F: Fn(f64) -> f64>(
        &mut self,
        index: usize,
        f: F,
    ) -> Result<(), AnalogError> {
        let unit = UnitId::Lut(index);
        if !self.config.inventory.contains(unit) {
            return Err(AnalogError::NoSuchUnit { unit });
        }
        self.committed = None;
        self.plan_epoch += 1;
        let lut = LookupTable::from_function(
            self.config.lut_depth,
            self.config.adc_bits,
            self.config.full_scale,
            f,
        );
        self.draft.luts.insert(index, lut);
        Ok(())
    }

    /// Writes one lookup-table entry directly (the `writeParallel` data path
    /// into the continuous-time SRAM). An unprogrammed table starts as the
    /// identity function.
    ///
    /// # Errors
    ///
    /// [`AnalogError::NoSuchUnit`] for a bad table index, or
    /// [`AnalogError::ValueOutOfRange`] for a bad entry index.
    pub fn write_lut_entry(
        &mut self,
        lut_index: usize,
        entry: usize,
        value: f64,
    ) -> Result<(), AnalogError> {
        let unit = UnitId::Lut(lut_index);
        if !self.config.inventory.contains(unit) {
            return Err(AnalogError::NoSuchUnit { unit });
        }
        if entry >= self.config.lut_depth {
            return Err(AnalogError::ValueOutOfRange {
                context: "lookup-table entry index",
                value: entry as f64,
                limit: self.config.lut_depth as f64 - 1.0,
            });
        }
        self.committed = None;
        self.plan_epoch += 1;
        let depth = self.config.lut_depth;
        let bits = self.config.adc_bits;
        let fs = self.config.full_scale;
        self.draft
            .luts
            .entry(lut_index)
            .or_insert_with(|| LookupTable::identity(depth, bits, fs))
            .write_entry(entry, value);
        Ok(())
    }

    /// `setDacConstant`: sets a DAC's constant bias output. The stored value
    /// is quantized to the DAC's resolution — an honest model of the paper's
    /// precision discussion.
    ///
    /// # Errors
    ///
    /// * [`AnalogError::NoSuchUnit`] for a bad index.
    /// * [`AnalogError::ValueOutOfRange`] if `|value|` exceeds full scale.
    pub fn set_dac_constant(&mut self, index: usize, value: f64) -> Result<(), AnalogError> {
        let unit = UnitId::Dac(index);
        if !self.config.inventory.contains(unit) {
            return Err(AnalogError::NoSuchUnit { unit });
        }
        if value.abs() > self.config.full_scale || !value.is_finite() {
            return Err(AnalogError::ValueOutOfRange {
                context: "dac constant",
                value,
                limit: self.config.full_scale,
            });
        }
        self.committed = None;
        let q = quantize(value, self.config.dac_bits, self.config.full_scale);
        self.draft.dac_values.insert(index, q);
        Ok(())
    }

    /// `setTimeout`: stops computation after `cycles` control-clock cycles.
    pub fn set_timeout(&mut self, cycles: u64) {
        self.committed = None;
        self.draft.timeout_cycles = Some(cycles);
    }

    /// `setAnaInputEn`: opens or closes an analog input channel.
    ///
    /// # Errors
    ///
    /// [`AnalogError::NoSuchUnit`] for a bad index.
    pub fn set_ana_input_en(&mut self, index: usize, enabled: bool) -> Result<(), AnalogError> {
        let unit = UnitId::AnalogInput(index);
        if !self.config.inventory.contains(unit) {
            return Err(AnalogError::NoSuchUnit { unit });
        }
        self.committed = None;
        self.draft.inputs_enabled.insert(index, enabled);
        Ok(())
    }

    /// Attaches an external stimulus waveform to an analog input channel
    /// (test-bench side; takes effect only while the channel is enabled).
    ///
    /// # Errors
    ///
    /// [`AnalogError::NoSuchUnit`] for a bad index.
    pub fn attach_input_signal(
        &mut self,
        index: usize,
        signal: InputSignal,
    ) -> Result<(), AnalogError> {
        let unit = UnitId::AnalogInput(index);
        if !self.config.inventory.contains(unit) {
            return Err(AnalogError::NoSuchUnit { unit });
        }
        self.input_signals.insert(index, signal);
        Ok(())
    }

    /// `cfgCommit`: validates and freezes the draft configuration.
    ///
    /// # Errors
    ///
    /// [`AnalogError::AlgebraicLoop`] if the netlist has a memoryless cycle.
    pub fn cfg_commit(&mut self) -> Result<(), AnalogError> {
        self.draft.netlist.validate()?;
        self.committed = Some(self.draft.clone());
        Ok(())
    }

    /// Whether a committed configuration exists.
    pub fn is_committed(&self) -> bool {
        self.committed.is_some()
    }

    /// Resets the draft configuration to empty (and invalidates the commit).
    pub fn reset_config(&mut self) {
        self.draft = Registers::new(&self.config);
        self.committed = None;
        self.plan_epoch += 1;
    }

    // ----- Control instructions -----

    /// `execStart` … `execStop`: runs the committed configuration.
    ///
    /// Integration starts from the programmed initial conditions and runs
    /// until the committed timeout (if any), the engine's steady-state
    /// detector (if enabled in `options`), or the safety cap — whichever
    /// comes first. Exception latches are cleared at start and captured at
    /// the end, along with every ADC's input value.
    ///
    /// # Errors
    ///
    /// * [`AnalogError::ProtocolViolation`] if no configuration is committed.
    /// * [`AnalogError::Engine`] if the integration fails.
    pub fn exec(&mut self, options: &EngineOptions) -> Result<RunReport, AnalogError> {
        let registers = self
            .committed
            .as_ref()
            .ok_or_else(|| AnalogError::protocol("execStart before cfgCommit"))?;
        self.exceptions.clear();
        let report = match &self.fault_plan {
            Some(plan) => {
                // LUT upsets corrupt what the SRAM *reads back*, not what was
                // programmed: apply them to a scratch copy of the register
                // file so a transient upset heals once its window closes.
                let overrides: Vec<_> = plan.lut_overrides(self.lifetime_s).collect();
                if overrides.is_empty() {
                    run_committed(
                        registers,
                        &self.config,
                        &self.variation,
                        &self.input_signals,
                        Some(plan),
                        self.lifetime_s,
                        Some((&mut self.plan_cache, self.plan_epoch)),
                        options,
                    )?
                } else {
                    let mut scratch = registers.clone();
                    let (depth, bits, fs) = (
                        self.config.lut_depth,
                        self.config.adc_bits,
                        self.config.full_scale,
                    );
                    for (lut, entry, value) in overrides {
                        if entry < depth {
                            scratch
                                .luts
                                .entry(lut)
                                .or_insert_with(|| LookupTable::identity(depth, bits, fs))
                                .write_entry(entry, value);
                        }
                    }
                    // The scratch register file (upset LUT contents) must
                    // not pollute the cache: compile fresh.
                    run_committed(
                        &scratch,
                        &self.config,
                        &self.variation,
                        &self.input_signals,
                        Some(plan),
                        self.lifetime_s,
                        None,
                        options,
                    )?
                }
            }
            None => run_committed(
                registers,
                &self.config,
                &self.variation,
                &self.input_signals,
                None,
                0.0,
                Some((&mut self.plan_cache, self.plan_epoch)),
                options,
            )?,
        };
        self.lifetime_s += report.duration_s;
        self.exceptions = report.exceptions.clone();
        self.adc_inputs = report.adc_inputs.clone();
        Ok(report)
    }

    /// Batched `execStart`: runs the committed configuration for K lanes in
    /// one lockstep RK4 sweep. Each lane overlays the committed registers
    /// with its own DAC constants and initial conditions — the per-run
    /// state that never invalidates the plan cache, so the whole batch
    /// shares one compiled plan.
    ///
    /// All lanes start at the chip's current lifetime instant and see the
    /// same fault/variation draws per `(unit, t)`; each lane's report is
    /// bit-identical to a sequential [`exec`](Self::exec) of that lane from
    /// this same instant. The lifetime clock advances by the **longest**
    /// lane (the lanes ran concurrently), and the readout latches hold the
    /// last lane's outputs until [`select_lane`](Self::select_lane) stages
    /// a specific one.
    ///
    /// # Errors
    ///
    /// * [`AnalogError::ProtocolViolation`] if no configuration is committed.
    /// * [`AnalogError::ValueOutOfRange`] for lane values beyond full scale.
    /// * [`AnalogError::Engine`] if the integration fails (any lane).
    pub fn exec_batch(
        &mut self,
        lanes: &[LaneBindings],
        options: &EngineOptions,
    ) -> Result<BatchExec, AnalogError> {
        let registers = self
            .committed
            .as_ref()
            .ok_or_else(|| AnalogError::protocol("execStart before cfgCommit"))?;
        for lane in lanes {
            for (&_, &v) in lane.dac_values.iter().flatten() {
                if v.abs() > self.config.full_scale || !v.is_finite() {
                    return Err(AnalogError::ValueOutOfRange {
                        context: "batch lane dac constant",
                        value: v,
                        limit: self.config.full_scale,
                    });
                }
            }
            for (&_, &v) in lane.int_initial.iter().flatten() {
                if v.abs() > self.config.full_scale || !v.is_finite() {
                    return Err(AnalogError::ValueOutOfRange {
                        context: "batch lane integrator initial condition",
                        value: v,
                        limit: self.config.full_scale,
                    });
                }
            }
        }
        let start_lifetime_s = self.lifetime_s;
        self.exceptions.clear();
        let reports = match &self.fault_plan {
            Some(plan) => {
                let overrides: Vec<_> = plan.lut_overrides(self.lifetime_s).collect();
                if overrides.is_empty() {
                    run_committed_batch(
                        registers,
                        &self.config,
                        &self.variation,
                        &self.input_signals,
                        Some(plan),
                        self.lifetime_s,
                        lanes,
                        Some((&mut self.plan_cache, self.plan_epoch)),
                        options,
                    )?
                } else {
                    // Active LUT upsets force the scratch-register path;
                    // run the lanes sequentially from the shared start
                    // instant (trivially identical to the batch semantics,
                    // since the lifetime clock only advances afterwards).
                    let (depth, bits, fs) = (
                        self.config.lut_depth,
                        self.config.adc_bits,
                        self.config.full_scale,
                    );
                    let mut scratch = registers.clone();
                    for (lut, entry, value) in overrides {
                        if entry < depth {
                            scratch
                                .luts
                                .entry(lut)
                                .or_insert_with(|| LookupTable::identity(depth, bits, fs))
                                .write_entry(entry, value);
                        }
                    }
                    lanes
                        .iter()
                        .map(|lane| {
                            let mut regs = scratch.clone();
                            if let Some(dacs) = &lane.dac_values {
                                regs.dac_values = dacs.clone();
                            }
                            if let Some(ints) = &lane.int_initial {
                                regs.int_initial = ints.clone();
                            }
                            run_committed(
                                &regs,
                                &self.config,
                                &self.variation,
                                &self.input_signals,
                                Some(plan),
                                start_lifetime_s,
                                None,
                                options,
                            )
                        })
                        .collect::<Result<Vec<_>, _>>()?
                }
            }
            None => run_committed_batch(
                registers,
                &self.config,
                &self.variation,
                &self.input_signals,
                None,
                0.0,
                lanes,
                Some((&mut self.plan_cache, self.plan_epoch)),
                options,
            )?,
        };
        let batch = BatchExec {
            reports,
            start_lifetime_s,
        };
        self.lifetime_s = start_lifetime_s + batch.duration_s();
        if let Some(last) = batch.reports.last() {
            self.exceptions = last.exceptions.clone();
            self.adc_inputs = last.adc_inputs.clone();
        }
        Ok(batch)
    }

    /// Stages one batch lane's end-of-run outputs for readout: loads its
    /// ADC input values and exception latches and rewinds the lifetime
    /// clock to that lane's own end instant, so `readSerial`/`analogAvg`/
    /// `readExp` behave exactly as they would after a sequential
    /// [`exec`](Self::exec) of that lane. Callers that also need the
    /// readout-noise stream to match save [`noise_rng_state`]
    /// (Self::noise_rng_state) before the first lane and restore it before
    /// each. Call [`finish_batch`](Self::finish_batch) when done.
    ///
    /// # Errors
    ///
    /// [`AnalogError::ProtocolViolation`] for a lane index out of range.
    pub fn select_lane(&mut self, batch: &BatchExec, lane: usize) -> Result<(), AnalogError> {
        let report = batch
            .reports
            .get(lane)
            .ok_or_else(|| AnalogError::protocol("batch lane index out of range"))?;
        self.exceptions = report.exceptions.clone();
        self.adc_inputs = report.adc_inputs.clone();
        self.lifetime_s = batch.start_lifetime_s + report.duration_s;
        Ok(())
    }

    /// Restores the post-batch lifetime clock (batch start plus the longest
    /// lane) after per-lane readout rewound it via
    /// [`select_lane`](Self::select_lane).
    pub fn finish_batch(&mut self, batch: &BatchExec) {
        self.lifetime_s = batch.start_lifetime_s + batch.duration_s();
    }

    /// Raw readout-noise RNG state. Batched readout saves this before the
    /// first lane and restores it per lane so every column sees the same
    /// noise stream its sequential counterpart would.
    pub fn noise_rng_state(&self) -> u64 {
        self.noise_rng.state()
    }

    /// Restores a readout-noise RNG state captured by
    /// [`noise_rng_state`](Self::noise_rng_state).
    pub fn set_noise_rng_state(&mut self, state: u64) {
        self.noise_rng = Rng64::from_state(state);
    }

    /// Quantizes `value` to the DAC resolution — exactly what
    /// [`set_dac_constant`](Self::set_dac_constant) would store. Batch lane
    /// bindings must carry quantized values so a batched lane matches the
    /// sequential programming path bit for bit.
    pub fn quantize_dac(&self, value: f64) -> f64 {
        quantize(value, self.config.dac_bits, self.config.full_scale)
    }

    // ----- Data output instructions -----

    /// `readSerial`: reads one ADC conversion of the value at the ADC's
    /// input, as a digital code.
    ///
    /// Each conversion sees one sample of readout noise and quantizes to the
    /// configured resolution.
    ///
    /// # Errors
    ///
    /// [`AnalogError::NoSuchUnit`] for a bad index.
    pub fn read_serial(&mut self, adc_index: usize) -> Result<u32, AnalogError> {
        let value = self.sample_adc(adc_index)?;
        Ok(self.faulted_code(adc_index, self.code_of(value)))
    }

    /// `analogAvg`: averages `samples` ADC conversions, returning the mean
    /// *analog* estimate. Averaging suppresses readout noise by `√samples`
    /// (each individual sample is still quantized).
    ///
    /// # Errors
    ///
    /// * [`AnalogError::NoSuchUnit`] for a bad index.
    /// * [`AnalogError::ProtocolViolation`] if `samples == 0`.
    pub fn analog_avg(&mut self, adc_index: usize, samples: usize) -> Result<f64, AnalogError> {
        if samples == 0 {
            return Err(AnalogError::protocol("analogAvg needs at least one sample"));
        }
        let mut acc = 0.0;
        for _ in 0..samples {
            let v = self.sample_adc(adc_index)?;
            let code = self.faulted_code(adc_index, self.code_of(v));
            acc += self.value_of(code);
        }
        Ok(acc / samples as f64)
    }

    /// `readExp`: the exception vector from the last run, as a byte array.
    pub fn read_exp(&self) -> Vec<u8> {
        self.exceptions.to_bytes(&self.config.inventory)
    }

    /// The exception vector from the last run, in structured form.
    pub fn exceptions(&self) -> &ExceptionVector {
        &self.exceptions
    }

    /// One noisy analog sample at an ADC input (pre-quantization).
    fn sample_adc(&mut self, adc_index: usize) -> Result<f64, AnalogError> {
        let unit = UnitId::Adc(adc_index);
        if !self.config.inventory.contains(unit) {
            return Err(AnalogError::NoSuchUnit { unit });
        }
        let value = self.adc_inputs.get(&adc_index).copied().unwrap_or(0.0);
        let noise_std = self.variation.readout_noise_std();
        let noise = if noise_std > 0.0 {
            self.noise_rng.gaussian() * noise_std
        } else {
            0.0
        };
        // The ADC's own gain/offset imperfection applies at conversion,
        // followed by any active analog-path fault on the converter.
        let imperfect = self.variation.of(unit).apply(value + noise);
        let faulted = match &self.fault_plan {
            Some(plan) => plan.analog_adjust(unit, self.lifetime_s, imperfect),
            None => imperfect,
        };
        Ok(faulted)
    }

    /// Applies active ADC-code bit-flip faults to a converted code.
    fn faulted_code(&self, adc_index: usize, code: u32) -> u32 {
        match &self.fault_plan {
            Some(plan) => {
                let levels = 1u32 << self.config.adc_bits;
                plan.adc_code_adjust(adc_index, self.lifetime_s, code, levels)
            }
            None => code,
        }
    }

    /// Converts an analog value to the ADC's digital code (mid-tread
    /// quantization: zero maps exactly to the mid code, so small residuals
    /// read back unbiased — essential for Algorithm 2 refinement).
    fn code_of(&self, value: f64) -> u32 {
        let levels = 1u32 << self.config.adc_bits;
        let lsb = self.config.adc_lsb();
        let code = (value / lsb).round() + f64::from(levels / 2);
        (code.max(0.0) as u32).min(levels - 1)
    }

    /// Converts a digital code back to its analog value.
    pub fn value_of(&self, code: u32) -> f64 {
        let levels = 1u32 << self.config.adc_bits;
        let lsb = self.config.adc_lsb();
        (f64::from(code) - f64::from(levels / 2)) * lsb
    }

    // ----- Checkpoint / restore -----

    /// Captures this chip's mutable runtime state (see [`ChipCheckpoint`]).
    pub fn export_state(&self) -> ChipCheckpoint {
        ChipCheckpoint {
            noise_rng_state: self.noise_rng.state(),
            lifetime_s: self.lifetime_s,
            calibrated: self.calibrated,
            trims: self
                .variation
                .iter()
                .map(|(unit, imp)| (unit, imp.offset_trim, imp.gain_trim))
                .collect(),
            fault_plan: self.fault_plan.clone(),
            plan_stats: self.plan_stats(),
            plan_cache_valid: self.plan_cache.is_current(self.plan_epoch),
            optimized_passes: self.plan_cache.optimized_config(),
        }
    }

    /// Restores a checkpointed runtime state onto a deterministically
    /// rebuilt chip (same config seed, same committed registers).
    ///
    /// Besides the obvious fields, this silently re-primes the plan cache
    /// from the committed configuration: the first post-restore `exec` is
    /// then a cache *hit*, so the obs journal and [`PlanStats`] continue
    /// exactly where the uninterrupted run would have been.
    ///
    /// # Errors
    ///
    /// * [`AnalogError::NoSuchUnit`] if a trim record names a unit outside
    ///   this chip's inventory (checkpoint/config mismatch).
    /// * Any compilation error while re-priming the plan cache.
    pub fn import_state(&mut self, state: &ChipCheckpoint) -> Result<(), AnalogError> {
        for (unit, _, _) in &state.trims {
            if !self.config.inventory.contains(*unit) {
                return Err(AnalogError::NoSuchUnit { unit: *unit });
            }
        }
        self.noise_rng = Rng64::from_state(state.noise_rng_state);
        self.lifetime_s = state.lifetime_s;
        self.calibrated = state.calibrated;
        self.fault_plan = state.fault_plan.clone();
        for (unit, offset_trim, gain_trim) in &state.trims {
            let imp = self.variation.of_mut(*unit);
            imp.offset_trim = *offset_trim;
            imp.gain_trim = *gain_trim;
        }
        // Trims change what lowering produces: invalidate, then re-prime
        // (only when the capture-time cache was warm — a chip that would
        // have compiled fresh must still compile fresh after restore).
        self.plan_epoch += 1;
        if state.plan_cache_valid {
            if self.committed.is_none() {
                // A rebuilt-but-never-run chip holds its wiring in the
                // draft; the capture-time chip was committed, so commit.
                self.draft.netlist.validate()?;
                self.committed = Some(self.draft.clone());
            }
            self.plan_cache.prime(
                self.committed.as_ref().expect("committed ensured above"),
                &self.config,
                &self.variation,
                &self.input_signals,
                self.fault_plan.as_ref(),
                self.lifetime_s,
                self.plan_epoch,
                state.plan_stats,
                state.optimized_passes,
            )?;
        } else {
            self.plan_cache.restore_stats(state.plan_stats);
        }
        Ok(())
    }

    /// The committed timeout converted to seconds, if set.
    pub fn timeout_seconds(&self) -> Option<f64> {
        self.committed
            .as_ref()
            .and_then(|r| r.timeout_cycles)
            .map(|c| c as f64 / CONTROL_CLOCK_HZ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_chip() -> AnalogChip {
        AnalogChip::new(ChipConfig::ideal())
    }

    #[test]
    fn exec_before_commit_is_protocol_violation() {
        let mut chip = ideal_chip();
        assert!(matches!(
            chip.exec(&EngineOptions::default()),
            Err(AnalogError::ProtocolViolation { .. })
        ));
    }

    #[test]
    fn config_edits_invalidate_commit() {
        let mut chip = ideal_chip();
        chip.cfg_commit().unwrap();
        assert!(chip.is_committed());
        chip.set_timeout(100);
        assert!(!chip.is_committed());
    }

    #[test]
    fn register_validation() {
        let mut chip = ideal_chip();
        assert!(chip.set_int_initial(4, 0.0).is_err());
        assert!(chip.set_int_initial(0, 1.5).is_err());
        assert!(chip.set_int_initial(0, f64::NAN).is_err());
        assert!(chip.set_mul_gain(8, 0.5).is_err());
        assert!(chip.set_mul_gain(0, 2.0).is_err());
        assert!(chip.set_dac_constant(2, 0.0).is_err());
        assert!(chip.set_dac_constant(0, -2.0).is_err());
        assert!(chip.set_ana_input_en(4, true).is_err());
        assert!(chip.set_int_initial(0, 0.5).is_ok());
        assert!(chip.set_mul_gain(0, -1.0).is_ok());
        assert!(chip.set_dac_constant(0, 0.25).is_ok());
    }

    #[test]
    fn dac_values_are_quantized() {
        let mut chip = ideal_chip();
        chip.set_dac_constant(0, 0.123456).unwrap();
        let stored = chip.draft.dac_values[&0];
        let lsb = chip.config.dac_lsb();
        assert!((stored / lsb - (stored / lsb).round()).abs() < 1e-12);
        assert!((stored - 0.123456).abs() <= lsb);
    }

    #[test]
    fn adc_code_round_trip() {
        let chip = ideal_chip();
        for code in [0u32, 1, 127, 128, 255] {
            let v = chip.value_of(code);
            assert_eq!(chip.code_of(v), code);
        }
    }

    #[test]
    fn timeout_conversion() {
        let mut chip = ideal_chip();
        chip.set_timeout(2_000_000);
        chip.cfg_commit().unwrap();
        assert!((chip.timeout_seconds().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_config_clears_draft() {
        let mut chip = ideal_chip();
        chip.set_mul_gain(0, 0.5).unwrap();
        chip.reset_config();
        assert!(chip.draft.mul_gains.is_empty());
        assert!(!chip.is_committed());
    }

    #[test]
    fn checkpoint_round_trip_resumes_noise_and_lifetime() {
        use crate::netlist::{InputPort, OutputPort};

        let decay = |chip: &mut AnalogChip| {
            chip.set_conn(
                OutputPort::of(UnitId::Integrator(0)),
                InputPort::of(UnitId::Multiplier(0)),
            )
            .unwrap();
            chip.set_conn(
                OutputPort::of(UnitId::Multiplier(0)),
                InputPort::of(UnitId::Integrator(0)),
            )
            .unwrap();
            chip.set_mul_gain(0, -1.0).unwrap();
            chip.set_int_initial(0, 0.5).unwrap();
            chip.cfg_commit().unwrap();
        };
        let config = ChipConfig {
            nonideal: crate::config::NonIdealityConfig {
                readout_noise_std: 1e-3,
                ..crate::config::NonIdealityConfig::default()
            },
            ..ChipConfig::ideal()
        };

        // Run a chip for a while, checkpoint it, keep running.
        let mut original = AnalogChip::new(config.clone());
        decay(&mut original);
        original.exec(&EngineOptions::default()).unwrap();
        original.read_serial(0).unwrap();
        original.idle(0.25);
        let snap = original.export_state();

        // Restore onto a freshly rebuilt twin (same config seed, same
        // committed registers) and compare futures sample for sample.
        let mut restored = AnalogChip::new(config);
        decay(&mut restored);
        restored.import_state(&snap).unwrap();
        assert_eq!(restored.lifetime_s(), original.lifetime_s());
        assert_eq!(restored.plan_stats(), original.plan_stats());
        let a = original.exec(&EngineOptions::default()).unwrap();
        let b = restored.exec(&EngineOptions::default()).unwrap();
        assert_eq!(a, b, "post-restore runs are bit-identical");
        // The primed cache made the post-restore run a hit, not a rebuild.
        assert_eq!(restored.plan_stats(), original.plan_stats());
        for _ in 0..16 {
            assert_eq!(original.read_serial(0), restored.read_serial(0));
        }
    }

    #[test]
    fn import_rejects_foreign_trim_units() {
        let mut chip = ideal_chip();
        let mut snap = chip.export_state();
        snap.trims.push((UnitId::Integrator(999), 1, 1));
        assert!(matches!(
            chip.import_state(&snap),
            Err(AnalogError::NoSuchUnit { .. })
        ));
    }

    #[test]
    fn read_exp_is_empty_before_any_run() {
        let chip = ideal_chip();
        assert!(chip.read_exp().iter().all(|b| *b == 0));
        assert!(chip.exceptions().is_empty());
    }
}

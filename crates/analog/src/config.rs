use crate::units::ResourceInventory;

/// The prototype chip's analog bandwidth (paper §V-B: 20 kHz).
pub const PROTOTYPE_BANDWIDTH_HZ: f64 = 20e3;

/// Static description of an analog accelerator chip.
///
/// [`ChipConfig::prototype`] reproduces the fabricated 65 nm chip; larger or
/// faster designs (the 80 kHz / 320 kHz / 1.3 MHz projections of §V-B) are
/// built with [`with_bandwidth`](ChipConfig::with_bandwidth) and
/// [`with_macroblocks`](ChipConfig::with_macroblocks).
///
/// ```
/// use aa_analog::ChipConfig;
///
/// let chip = ChipConfig::prototype();
/// assert_eq!(chip.inventory.integrators, 4);
/// let big = ChipConfig::prototype().with_macroblocks(650).with_bandwidth(80e3);
/// assert_eq!(big.inventory.integrators, 650);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// Functional-unit counts.
    pub inventory: ResourceInventory,
    /// Analog signal bandwidth in Hz. Sets the integration rate constant
    /// `ω_u = 2π·bandwidth`; all solution times scale as `1/bandwidth`.
    pub bandwidth_hz: f64,
    /// ADC resolution in bits (8 on the prototype; 12 in the paper's model
    /// accelerator).
    pub adc_bits: u32,
    /// DAC resolution in bits.
    pub dac_bits: u32,
    /// Lookup-table depth (256-deep continuous-time SRAM on the prototype).
    pub lut_depth: usize,
    /// Full-scale range of every analog variable, in normalized units.
    /// Values beyond `±full_scale` clip and raise overflow exceptions.
    pub full_scale: f64,
    /// Largest programmable multiplier gain magnitude.
    pub max_gain: f64,
    /// Non-ideal behaviour magnitudes.
    pub nonideal: NonIdealityConfig,
}

impl ChipConfig {
    /// The fabricated prototype: 4 macroblocks, 20 kHz bandwidth, 8-bit
    /// converters, 256-deep lookup tables.
    pub fn prototype() -> Self {
        ChipConfig {
            inventory: ResourceInventory::from_macroblocks(4),
            bandwidth_hz: PROTOTYPE_BANDWIDTH_HZ,
            adc_bits: 8,
            dac_bits: 8,
            lut_depth: 256,
            full_scale: 1.0,
            max_gain: 1.0,
            nonideal: NonIdealityConfig::default(),
        }
    }

    /// An idealized chip: no offsets, no gain errors, no noise. Useful for
    /// isolating algorithmic behaviour from circuit behaviour in tests and
    /// ablations.
    pub fn ideal() -> Self {
        ChipConfig {
            nonideal: NonIdealityConfig::none(),
            ..ChipConfig::prototype()
        }
    }

    /// Returns a copy with a different macroblock count (scaled accelerator).
    ///
    /// # Panics
    ///
    /// Panics if `macroblocks == 0`.
    pub fn with_macroblocks(mut self, macroblocks: usize) -> Self {
        self.inventory = ResourceInventory::from_macroblocks(macroblocks);
        self
    }

    /// Returns a copy with a different analog bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_hz` is not finite and positive.
    pub fn with_bandwidth(mut self, bandwidth_hz: f64) -> Self {
        assert!(
            bandwidth_hz.is_finite() && bandwidth_hz > 0.0,
            "bandwidth must be finite and positive"
        );
        self.bandwidth_hz = bandwidth_hz;
        self
    }

    /// Returns a copy with a different ADC resolution.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or above 24.
    pub fn with_adc_bits(mut self, bits: u32) -> Self {
        assert!(
            (1..=24).contains(&bits),
            "adc resolution must be 1..=24 bits"
        );
        self.adc_bits = bits;
        self
    }

    /// Returns a copy with different non-ideality magnitudes.
    pub fn with_nonideal(mut self, nonideal: NonIdealityConfig) -> Self {
        self.nonideal = nonideal;
        self
    }

    /// The integrator rate constant `ω_u = 2π·bandwidth` in 1/s.
    pub fn omega(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.bandwidth_hz
    }

    /// One ADC code step, `2·full_scale / 2^bits`.
    pub fn adc_lsb(&self) -> f64 {
        2.0 * self.full_scale / f64::from(2u32).powi(self.adc_bits as i32)
    }

    /// One DAC code step, `2·full_scale / 2^bits`.
    pub fn dac_lsb(&self) -> f64 {
        2.0 * self.full_scale / f64::from(2u32).powi(self.dac_bits as i32)
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig::prototype()
    }
}

/// Magnitudes of the three non-ideal behaviours the paper describes
/// (§III-B "Calibration"): offset bias, gain error, and nonlinearity, plus
/// readout noise.
///
/// Per-unit values are drawn once per chip instance (process variation)
/// from zero-mean Gaussians with these standard deviations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonIdealityConfig {
    /// Std-dev of the constant additive shift at each block output, as a
    /// fraction of full scale.
    pub offset_std: f64,
    /// Std-dev of the relative gain error of each block.
    pub gain_error_std: f64,
    /// Std-dev of readout noise per ADC sample, as a fraction of full scale.
    pub readout_noise_std: f64,
    /// RNG seed for drawing per-instance process variation.
    pub seed: u64,
}

impl NonIdealityConfig {
    /// No imperfections at all (ideal hardware).
    pub fn none() -> Self {
        NonIdealityConfig {
            offset_std: 0.0,
            gain_error_std: 0.0,
            readout_noise_std: 0.0,
            seed: 0,
        }
    }

    /// Returns a copy with a different process-variation seed (a different
    /// "copy of the chip", in the paper's words).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether every magnitude is zero.
    pub fn is_ideal(&self) -> bool {
        self.offset_std == 0.0 && self.gain_error_std == 0.0 && self.readout_noise_std == 0.0
    }
}

impl Default for NonIdealityConfig {
    /// Defaults sized so that uncalibrated error is clearly visible at 8-bit
    /// precision but calibration can trim it below one LSB: 1% offset,
    /// 2% gain error, 0.1% readout noise.
    fn default() -> Self {
        NonIdealityConfig {
            offset_std: 0.01,
            gain_error_std: 0.02,
            readout_noise_std: 0.001,
            seed: 0x414e414c4f47, // "ANALOG"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper_parameters() {
        let c = ChipConfig::prototype();
        assert_eq!(c.bandwidth_hz, 20e3);
        assert_eq!(c.adc_bits, 8);
        assert_eq!(c.dac_bits, 8);
        assert_eq!(c.lut_depth, 256);
        assert_eq!(c.inventory.integrators, 4);
        assert_eq!(c.inventory.multipliers, 8);
    }

    #[test]
    fn omega_is_two_pi_bandwidth() {
        let c = ChipConfig::prototype();
        assert!((c.omega() - 2.0 * std::f64::consts::PI * 20e3).abs() < 1e-9);
    }

    #[test]
    fn lsb_sizes() {
        let c = ChipConfig::prototype();
        assert!((c.adc_lsb() - 2.0 / 256.0).abs() < 1e-15);
        let c12 = c.with_adc_bits(12);
        assert!((c12.adc_lsb() - 2.0 / 4096.0).abs() < 1e-15);
    }

    #[test]
    fn builder_chains() {
        let c = ChipConfig::prototype()
            .with_macroblocks(10)
            .with_bandwidth(80e3)
            .with_adc_bits(12);
        assert_eq!(c.inventory.integrators, 10);
        assert_eq!(c.bandwidth_hz, 80e3);
        assert_eq!(c.adc_bits, 12);
    }

    #[test]
    fn ideal_config_has_no_imperfections() {
        assert!(ChipConfig::ideal().nonideal.is_ideal());
        assert!(!ChipConfig::prototype().nonideal.is_ideal());
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = ChipConfig::prototype().with_bandwidth(0.0);
    }
}

//! The continuous-time execution engine.
//!
//! A committed configuration is compiled into a dataflow circuit: integrator
//! states form the ODE state vector, memoryless units (multipliers, fanouts,
//! lookup tables) are evaluated in dependency order, and input branches sum
//! the currents of their drivers. The circuit is then integrated with RK4 at
//! a fine fraction of the integrator time constant `τ = 1/ω_u`, with
//! per-block clipping, overflow-exception latching, and dynamic-range
//! tracking — the behaviours the paper's architecture (§III-B) is built
//! around.

use std::collections::BTreeMap;

use crate::chip::{InputSignal, Registers, CONTROL_CLOCK_HZ};
use crate::config::ChipConfig;
use crate::error::AnalogError;
use crate::exceptions::ExceptionVector;
use crate::fault::FaultPlan;
use crate::lut::LookupTable;
use crate::netlist::{output_port_count, InputPort, OutputPort};
use crate::nonideal::ProcessVariation;
use crate::passes::{pass_counter_names, PassConfig};
use crate::units::UnitId;

/// Which circuit evaluator drives the RK4 inner loop.
///
/// Both strategies produce **bit-identical** results (asserted by the
/// differential property tests); they differ only in speed. The compiled
/// path lowers the netlist once per run into flat arrays
/// ([`crate::plan::CompiledPlan`]), removing every map lookup from the hot
/// loop; the reference path walks the original `BTreeMap`-based structures
/// and is kept as the behavioural oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Flat-array compiled plan — the fast default.
    #[default]
    Compiled,
    /// Tree-walking interpreter retained for differential testing.
    Reference,
}

/// Options controlling the engine's numerical integration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOptions {
    /// RK4 step as a fraction of the integrator time constant `1/ω_u`.
    pub dt_tau: f64,
    /// Stop when the largest normalized state derivative (per `τ`) falls
    /// below this value. `None` disables steady-state detection (the real
    /// chip only stops on `execStop`/timeout; steady detection is a
    /// convenience of the simulation test-bench).
    pub steady_tol: Option<f64>,
    /// Safety cap on simulated time, in units of `τ`.
    pub max_tau: f64,
    /// Number of waveform samples to retain per analog output channel.
    pub waveform_samples: usize,
    /// Abort the run as soon as any overflow exception latches. The paper's
    /// host is designed "to be able to react when problems occur in the
    /// course of analog computation"; a saturated integrator never settles,
    /// so waiting out the timeout is wasted time.
    pub stop_on_exception: bool,
    /// Which evaluator runs the circuit (identical results either way).
    pub eval_strategy: EvalStrategy,
    /// Optimization passes applied when lowering the committed netlist
    /// ([`crate::passes`]). The default, [`PassConfig::none`], keeps every
    /// run on the bit-exact unoptimized tape; any enabled pass routes
    /// fault-free [`EvalStrategy::Compiled`] runs through the optimized
    /// structure-of-arrays tape under the documented tolerance contract.
    /// Runs with an armed fault plan always fall back to the unoptimized
    /// tape, whatever this is set to.
    pub passes: PassConfig,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            dt_tau: 0.05,
            steady_tol: Some(1e-6),
            max_tau: 1e6,
            waveform_samples: 256,
            stop_on_exception: false,
            eval_strategy: EvalStrategy::default(),
            passes: PassConfig::none(),
        }
    }
}

/// What the engine observed during one `execStart`…stop window.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Wall-clock (simulated) duration of the analog computation, seconds.
    pub duration_s: f64,
    /// RK4 steps taken.
    pub steps: usize,
    /// Whether the steady-state detector fired (vs timeout / cap).
    pub reached_steady_state: bool,
    /// Whether the committed timeout expired.
    pub timed_out: bool,
    /// Whether the run was aborted early by `stop_on_exception`.
    pub aborted_on_exception: bool,
    /// Units that clipped at any point during the run.
    pub exceptions: ExceptionVector,
    /// Peak `|value|/full_scale` seen at each used unit's output (or input,
    /// for sinks). Values near 1.0 used the full dynamic range; values well
    /// below 0.5 indicate the underuse the paper warns costs precision.
    pub range_usage: BTreeMap<UnitId, f64>,
    /// Final integrator states by integrator index.
    pub integrator_values: BTreeMap<usize, f64>,
    /// Value present at each ADC's input at the end of the run.
    pub adc_inputs: BTreeMap<usize, f64>,
    /// Sampled waveforms at each analog output channel.
    pub output_waveforms: BTreeMap<usize, Vec<(f64, f64)>>,
    /// RK4 steps during which at least one injected fault event was active
    /// (always zero when no [`FaultPlan`] is loaded).
    pub faults_active_steps: usize,
}

impl RunReport {
    /// Units whose dynamic range usage fell below `threshold` (fraction of
    /// full scale) — candidates for scaling the problem *up* (paper §III-B:
    /// "the host also observes if the dynamic range is not fully used,
    /// which may result in low precision").
    pub fn underused_units(&self, threshold: f64) -> Vec<UnitId> {
        self.range_usage
            .iter()
            .filter(|(_, usage)| **usage < threshold)
            .map(|(u, _)| *u)
            .collect()
    }
}

/// One value slot: either a unit output port or a sink (ADC / analog output)
/// input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Slot {
    Out(OutputPort),
    SinkIn(UnitId),
}

/// The netlist-derived skeleton of a compiled circuit: topological order,
/// slot numbering, driver lists, and used-unit indices. Everything here is
/// a pure function of the committed netlist and the chip config — no
/// per-run data — so it is owned (no borrows) and cacheable across runs in
/// a [`PlanCache`].
pub(crate) struct Structure {
    /// State-vector slot → integrator index.
    pub(crate) integrator_of_state: Vec<usize>,
    /// Memoryless units in dependency order.
    pub(crate) topo: Vec<UnitId>,
    /// Slot numbering.
    pub(crate) slot_index: BTreeMap<Slot, usize>,
    /// For each input port: the slots of its drivers.
    pub(crate) drivers: BTreeMap<InputPort, Vec<usize>>,
    /// Used DAC indices.
    pub(crate) dacs: Vec<usize>,
    /// Used analog input indices.
    pub(crate) analog_inputs: Vec<usize>,
    /// Used ADC indices.
    pub(crate) adcs: Vec<usize>,
    /// Used analog output indices.
    pub(crate) analog_outputs: Vec<usize>,
    /// Identity fallback for unprogrammed lookup tables.
    pub(crate) default_lut: LookupTable,
    /// Slot → owning unit, for exception attribution.
    pub(crate) unit_of_slot: Vec<UnitId>,
}

/// The compiled dataflow program — the tree-walking **reference**
/// representation, binding per-run register/fault/signal state to a
/// (possibly cached) [`Structure`]. [`crate::plan::CompiledPlan::lower`]
/// flattens it into the map-free fast path.
pub(crate) struct Compiled<'a> {
    pub(crate) config: &'a ChipConfig,
    pub(crate) variation: &'a ProcessVariation,
    pub(crate) registers: &'a Registers,
    pub(crate) signals: &'a BTreeMap<usize, InputSignal>,
    /// Scheduled runtime faults, if any are injected.
    pub(crate) faults: Option<&'a FaultPlan>,
    /// Chip-lifetime second at which this run starts (fault-event windows
    /// are expressed on the lifetime clock, not the per-run clock).
    pub(crate) t_offset: f64,
    /// The netlist skeleton (owned by the caller or its plan cache).
    pub(crate) structure: &'a Structure,
}

/// Per-eval scratch and accumulated run observations.
pub(crate) struct Tracker {
    pub(crate) values: Vec<f64>,
    pub(crate) max_abs: Vec<f64>,
    pub(crate) clipped: Vec<bool>,
}

/// The K-lane variant of [`Tracker`]: the same three arrays, lane-expanded
/// column-major (`[slot * k + lane]`) so a batched eval sweeps the lanes of
/// one slot contiguously.
pub(crate) struct BatchTracker {
    pub(crate) values: Vec<f64>,
    pub(crate) max_abs: Vec<f64>,
    pub(crate) clipped: Vec<bool>,
}

/// Per-lane register overrides for one lane of a batched execution —
/// exactly the per-run state a [`crate::plan::PlanRun`] snapshots without
/// invalidating the plan cache: DAC constants (the RHS) and integrator
/// initial conditions. `None` means "use the committed registers".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneBindings {
    /// Full replacement DAC register map for this lane.
    pub dac_values: Option<BTreeMap<usize, f64>>,
    /// Full replacement integrator initial conditions for this lane.
    pub int_initial: Option<BTreeMap<usize, f64>>,
}

/// A circuit evaluator usable by the RK4 loop: writes state derivatives into
/// `du` and (when `track` is set) records range usage and clip events.
pub(crate) trait Evaluator {
    fn eval_circuit(
        &self,
        t: f64,
        state: &[f64],
        du: &mut [f64],
        tracker: &mut Tracker,
        track: bool,
    );

    /// Minimum slot-buffer length this evaluator writes. The run loop
    /// sizes its tracker to the larger of this and the circuit's slot
    /// count; only the pass-optimized tape ever needs more (scratch slots
    /// appended by `normalize_gains`).
    fn min_slots(&self) -> usize {
        0
    }
}

/// A K-lane circuit evaluator usable by the lockstep batched RK4 loop:
/// advances every **active** lane's derivatives at once over column-major
/// (`[index * k + lane]`) state/tracker arrays. Implemented by the
/// unoptimized [`crate::plan::BatchRun`] and the pass-optimized
/// [`crate::ir::OptBatchRun`].
pub(crate) trait LaneEvaluator {
    /// Number of lanes bound to the batch.
    fn lanes(&self) -> usize;

    /// Minimum slot-buffer length this evaluator writes per lane (see
    /// [`Evaluator::min_slots`]).
    fn min_slots(&self) -> usize {
        0
    }

    /// Evaluates the circuit at time `t` for all active lanes. Retired
    /// lanes are skipped entirely — their tracker entries, derivatives,
    /// and slot values stay frozen at their retirement step.
    #[allow(clippy::too_many_arguments)]
    fn eval_lanes(
        &mut self,
        t: f64,
        state: &[f64],
        du: &mut [f64],
        tracker: &mut BatchTracker,
        track: bool,
        active: &[bool],
    );
}

impl Evaluator for Compiled<'_> {
    fn eval_circuit(
        &self,
        t: f64,
        state: &[f64],
        du: &mut [f64],
        tracker: &mut Tracker,
        track: bool,
    ) {
        self.eval(t, state, du, tracker, track);
    }
}

impl Structure {
    pub(crate) fn build(registers: &Registers, config: &ChipConfig) -> Result<Self, AnalogError> {
        let topo = registers.netlist.memoryless_topo_order()?;
        let used = registers.netlist.used_units();

        let mut integrator_of_state = Vec::new();
        let mut dacs = Vec::new();
        let mut analog_inputs = Vec::new();
        let mut adcs = Vec::new();
        let mut analog_outputs = Vec::new();
        let mut slot_index = BTreeMap::new();
        let mut unit_of_slot = Vec::new();

        let add_slot = |slot: Slot,
                        unit: UnitId,
                        slot_index: &mut BTreeMap<Slot, usize>,
                        unit_of_slot: &mut Vec<UnitId>| {
            let next = slot_index.len();
            slot_index.entry(slot).or_insert_with(|| {
                unit_of_slot.push(unit);
                next
            });
        };

        for unit in &used {
            match *unit {
                UnitId::Integrator(i) => integrator_of_state.push(i),
                UnitId::Dac(i) => dacs.push(i),
                UnitId::AnalogInput(i) => analog_inputs.push(i),
                UnitId::Adc(i) => adcs.push(i),
                UnitId::AnalogOutput(i) => analog_outputs.push(i),
                _ => {}
            }
            // Every output port of the unit gets a slot; sinks get an input slot.
            let n_out = output_port_count(*unit, &config.inventory);
            for port in 0..n_out {
                add_slot(
                    Slot::Out(OutputPort { unit: *unit, port }),
                    *unit,
                    &mut slot_index,
                    &mut unit_of_slot,
                );
            }
            if n_out == 0 {
                add_slot(
                    Slot::SinkIn(*unit),
                    *unit,
                    &mut slot_index,
                    &mut unit_of_slot,
                );
            }
        }

        // Resolve each connection's driver into slot indices per input port.
        let mut drivers: BTreeMap<InputPort, Vec<usize>> = BTreeMap::new();
        for (from, to) in registers.netlist.iter() {
            let slot = slot_index[&Slot::Out(from)];
            drivers.entry(to).or_default().push(slot);
        }

        Ok(Structure {
            integrator_of_state,
            topo,
            slot_index,
            drivers,
            dacs,
            analog_inputs,
            adcs,
            analog_outputs,
            default_lut: LookupTable::identity(
                config.lut_depth,
                config.adc_bits,
                config.full_scale,
            ),
            unit_of_slot,
        })
    }
}

impl Compiled<'_> {
    fn n_states(&self) -> usize {
        self.structure.integrator_of_state.len()
    }

    pub(crate) fn slot(&self, port: OutputPort) -> usize {
        self.structure.slot_index[&Slot::Out(port)]
    }

    pub(crate) fn sink_slot(&self, unit: UnitId) -> usize {
        self.structure.slot_index[&Slot::SinkIn(unit)]
    }

    /// Sum of driver currents at an input port.
    fn input_sum(&self, port: InputPort, values: &[f64]) -> f64 {
        self.structure
            .drivers
            .get(&port)
            .map(|slots| slots.iter().map(|s| values[*s]).sum())
            .unwrap_or(0.0)
    }

    /// Applies any active analog-path faults to `unit`'s output at per-run
    /// time `t` (the fault plan lives on the chip-lifetime clock).
    fn distort(&self, unit: UnitId, t: f64, value: f64) -> f64 {
        match self.faults {
            Some(plan) => plan.analog_adjust(unit, self.t_offset + t, value),
            None => value,
        }
    }

    /// Clips `value` to full scale, recording the event against `slot`.
    fn clip(
        &self,
        value: f64,
        slot: usize,
        max_abs: &mut [f64],
        clipped: &mut [bool],
        track: bool,
    ) -> f64 {
        let fs = self.config.full_scale;
        if track {
            let mag = value.abs();
            if mag > max_abs[slot] {
                max_abs[slot] = mag;
            }
            if mag > fs {
                clipped[slot] = true;
            }
        }
        value.clamp(-fs, fs)
    }

    /// Evaluates the circuit at time `t` for integrator states `state`,
    /// writing state derivatives into `du`. When `track` is set, range usage
    /// and clip events are recorded (done once per step, on the k1 stage).
    fn eval(&self, t: f64, state: &[f64], du: &mut [f64], tracker: &mut Tracker, track: bool) {
        let fs = self.config.full_scale;
        let Tracker {
            values,
            max_abs,
            clipped,
        } = tracker;

        // Sources: integrator outputs (their state, through imperfection).
        for (slot_state, &int_idx) in self.structure.integrator_of_state.iter().enumerate() {
            let unit = UnitId::Integrator(int_idx);
            let out = self.distort(unit, t, self.variation.of(unit).apply(state[slot_state]));
            let s = self.structure.slot_index[&Slot::Out(OutputPort::of(unit))];
            values[s] = out.clamp(-fs, fs);
            if track {
                let mag = out.abs();
                if mag > max_abs[s] {
                    max_abs[s] = mag;
                }
                if mag > fs {
                    clipped[s] = true;
                }
            }
        }
        // Sources: DAC constants.
        for &i in &self.structure.dacs {
            let unit = UnitId::Dac(i);
            let programmed = self.registers.dac_values.get(&i).copied().unwrap_or(0.0);
            let out = self.distort(unit, t, self.variation.of(unit).apply(programmed));
            let s = self.slot(OutputPort::of(unit));
            values[s] = self.clip(out, s, max_abs, clipped, track);
        }
        // Sources: external analog inputs.
        for &i in &self.structure.analog_inputs {
            let unit = UnitId::AnalogInput(i);
            let enabled = self
                .registers
                .inputs_enabled
                .get(&i)
                .copied()
                .unwrap_or(false);
            let raw = if enabled {
                self.signals.get(&i).map(|f| f(t)).unwrap_or(0.0)
            } else {
                0.0
            };
            let out = self.distort(unit, t, raw);
            let s = self.slot(OutputPort::of(unit));
            values[s] = self.clip(out, s, max_abs, clipped, track);
        }

        // Memoryless units in dependency order.
        for &unit in &self.structure.topo {
            match unit {
                UnitId::Multiplier(i) => {
                    let in0 = self.input_sum(InputPort { unit, port: 0 }, values);
                    let ideal = match self.registers.mul_gains.get(&i) {
                        Some(gain) => gain * in0,
                        None => {
                            let in1 = self.input_sum(InputPort { unit, port: 1 }, values);
                            in0 * in1 / fs
                        }
                    };
                    let out = self.distort(unit, t, self.variation.of(unit).apply(ideal));
                    let s = self.slot(OutputPort::of(unit));
                    values[s] = self.clip(out, s, max_abs, clipped, track);
                }
                UnitId::Fanout(_) => {
                    let input = self.input_sum(InputPort::of(unit), values);
                    let imp = self.variation.of(unit);
                    let out = self.distort(unit, t, imp.apply(input));
                    let n_branches = self.config.inventory.fanout_branches;
                    for port in 0..n_branches {
                        let s = self.slot(OutputPort { unit, port });
                        values[s] = self.clip(out, s, max_abs, clipped, track);
                    }
                }
                UnitId::Lut(i) => {
                    let input = self.input_sum(InputPort::of(unit), values);
                    let lut = self
                        .registers
                        .luts
                        .get(&i)
                        .unwrap_or(&self.structure.default_lut);
                    // The CT SRAM output is digital-to-analog: no analog
                    // gain/offset imperfection, but inherently quantized.
                    let out = self.distort(unit, t, lut.evaluate(input));
                    let s = self.slot(OutputPort::of(unit));
                    values[s] = self.clip(out, s, max_abs, clipped, track);
                }
                UnitId::Adc(_) | UnitId::AnalogOutput(_) => {
                    let input = self.input_sum(InputPort::of(unit), values);
                    let s = self.sink_slot(unit);
                    values[s] = self.clip(input, s, max_abs, clipped, track);
                }
                UnitId::Integrator(_) | UnitId::Dac(_) | UnitId::AnalogInput(_) => {
                    unreachable!("stateful/source units are not in the memoryless order")
                }
            }
        }

        // Integrator derivatives: ω_u times the summed input current.
        let omega = self.config.omega();
        for (slot_state, &int_idx) in self.structure.integrator_of_state.iter().enumerate() {
            let unit = UnitId::Integrator(int_idx);
            let input = self.input_sum(InputPort::of(unit), values);
            du[slot_state] = omega * input;
        }
    }
}

/// Cumulative counts of compilation work done through a [`PlanCache`] —
/// the observable proof that repeated runs of an unchanged netlist reuse
/// one lowered plan instead of re-lowering per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Netlist skeletons built ([`Structure`] compilations).
    pub structures_built: u64,
    /// Compiled plans lowered (only on the [`EvalStrategy::Compiled`] path).
    pub plans_lowered: u64,
    /// Runs that reused a cached structure without recompiling.
    pub cache_hits: u64,
    /// Pass-optimized plans lowered (only when [`EngineOptions::passes`]
    /// enables at least one pass).
    pub optimized_lowered: u64,
    /// Stores per eval before the pass pipeline, from the most recent
    /// optimized lowering (zero while none has happened).
    pub ops_before: u64,
    /// Stores per eval after the pass pipeline, from the most recent
    /// optimized lowering.
    pub ops_after: u64,
}

/// Per-chip cache of the compilation products for one committed netlist.
///
/// Tagged with the chip's *plan epoch*: a counter the chip bumps on every
/// mutation that changes what compilation would produce (netlist edits,
/// multiplier mode/gain, LUT contents, calibration trims). Mutations that
/// only feed per-run state — DAC constants, initial conditions, timeout,
/// input signals, fault plans — leave the epoch alone, so the common
/// reprogram-and-rerun cycle (`program_rhs` → `cfg_commit` → `exec`) hits
/// the cache on every solve after the first.
#[derive(Default)]
pub(crate) struct PlanCache {
    epoch: u64,
    structure: Option<Structure>,
    plan: Option<crate::plan::CompiledPlan>,
    /// Pass-optimized plan, keyed by the [`PassConfig`] it was lowered
    /// under: a run requesting a different config re-lowers and replaces it.
    opt: Option<(PassConfig, crate::ir::OptimizedPlan)>,
    stats: PlanStats,
}

impl PlanCache {
    pub(crate) fn stats(&self) -> PlanStats {
        self.stats
    }

    /// The pass config of the cached optimized plan, if one is cached.
    /// Checkpoint capture records this so restore can rebuild the same
    /// cache contents without emitting lowering counters.
    pub(crate) fn optimized_config(&self) -> Option<PassConfig> {
        self.opt.as_ref().map(|(cfg, _)| *cfg)
    }

    /// Per-pass statistics from the cached optimized plan's lowering
    /// (empty when no optimized plan is cached).
    pub(crate) fn pass_log(&self) -> Vec<crate::passes::PassStat> {
        self.opt
            .as_ref()
            .map(|(_, plan)| plan.pass_log.clone())
            .unwrap_or_default()
    }

    /// Whether the cache holds compilation products for `epoch` — i.e. the
    /// next run through [`run_committed`] would be a cache hit.
    pub(crate) fn is_current(&self, epoch: u64) -> bool {
        self.structure.is_some() && self.epoch == epoch
    }

    /// Overwrites the cumulative statistics (checkpoint restore on a chip
    /// whose cache was cold at capture time).
    pub(crate) fn restore_stats(&mut self, stats: PlanStats) {
        self.stats = stats;
    }

    /// Rebuilds the cached compilation products for `registers` at `epoch`
    /// and overwrites `stats` with a checkpointed value, emitting no obs
    /// counters and counting none of the work. Used when restoring a chip
    /// from a checkpoint: the first post-restore `exec` must be a cache
    /// hit, exactly as it would have been in the uninterrupted run.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prime(
        &mut self,
        registers: &Registers,
        config: &ChipConfig,
        variation: &ProcessVariation,
        signals: &BTreeMap<usize, InputSignal>,
        faults: Option<&FaultPlan>,
        t_offset: f64,
        epoch: u64,
        stats: PlanStats,
        optimized_passes: Option<PassConfig>,
    ) -> Result<(), AnalogError> {
        let structure = Structure::build(registers, config)?;
        let (plan, opt) = {
            let circuit = Compiled {
                config,
                variation,
                registers,
                signals,
                faults,
                t_offset,
                structure: &structure,
            };
            let plan = crate::plan::CompiledPlan::lower(&circuit);
            // Rebuild the optimized plan the captured cache held, silently:
            // the first post-restore optimized exec must be a cache hit
            // emitting no lowering counters, exactly as the uninterrupted
            // run's would have been.
            let opt = optimized_passes
                .filter(|cfg| cfg.any())
                .map(|cfg| (cfg, crate::ir::lower_optimized(&circuit, &cfg)));
            (plan, opt)
        };
        self.structure = Some(structure);
        self.plan = Some(plan);
        self.opt = opt;
        self.epoch = epoch;
        self.stats = stats;
        Ok(())
    }
}

/// Ensures the cache's optimized-plan slot holds a plan lowered under
/// `passes`, re-lowering (and emitting the lowering counters inside the
/// caller's compile span) when the slot is empty or was lowered under a
/// different config — the pass config is part of the cache key.
fn ensure_optimized<'c>(
    slot: &'c mut Option<(PassConfig, crate::ir::OptimizedPlan)>,
    stats: &mut PlanStats,
    circuit: &Compiled<'_>,
    passes: &PassConfig,
) -> &'c crate::ir::OptimizedPlan {
    let stale = match slot {
        Some((cfg, _)) => cfg != passes,
        None => true,
    };
    if stale {
        let lowered = crate::ir::lower_optimized(circuit, passes);
        stats.optimized_lowered += 1;
        stats.ops_before = lowered.ops_before;
        stats.ops_after = lowered.ops_after;
        if aa_obs::is_active() {
            aa_obs::counter("engine.plans_optimized", 1);
            for stat in &lowered.pass_log {
                let (before, after) = pass_counter_names(stat.pass);
                aa_obs::counter(before, stat.ops_before);
                aa_obs::counter(after, stat.ops_after);
            }
        }
        *slot = Some((*passes, lowered));
    }
    &slot.as_ref().expect("ensured above").1
}

/// Whether this run takes the pass-optimized tape: at least one pass
/// enabled, no fault plan armed (fault semantics stay bit-exact on the
/// unoptimized tape), and the compiled strategy selected (Reference is the
/// oracle and never optimizes).
fn use_optimized(options: &EngineOptions, faults: Option<&FaultPlan>) -> bool {
    options.passes.any() && faults.is_none() && options.eval_strategy == EvalStrategy::Compiled
}

/// Runs a committed register file. Called by
/// [`AnalogChip::exec`](crate::AnalogChip::exec).
///
/// `cache` carries the chip's plan cache together with the chip's current
/// plan epoch; `None` (the LUT-upset scratch path) compiles fresh, since a
/// scratch register file must not pollute the cache.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_committed(
    registers: &Registers,
    config: &ChipConfig,
    variation: &ProcessVariation,
    signals: &BTreeMap<usize, InputSignal>,
    faults: Option<&FaultPlan>,
    t_offset: f64,
    cache: Option<(&mut PlanCache, u64)>,
    options: &EngineOptions,
) -> Result<RunReport, AnalogError> {
    if !(options.dt_tau > 0.0 && options.dt_tau.is_finite()) {
        return Err(AnalogError::protocol(format!(
            "engine dt_tau must be positive, got {}",
            options.dt_tau
        )));
    }
    let run_span = aa_obs::span("engine.run");

    // Plan lowering sits inside the compile span so the Compiled and
    // Reference strategies emit identical journals (the differential tests
    // compare traces across strategies). Cache hits keep the span too: a
    // hit and a miss differ only in counters, never in the journal.
    let compile_span = aa_obs::span("engine.compile");
    let use_opt = use_optimized(options, faults);
    let report = match cache {
        Some((cache, epoch)) => {
            if cache.structure.is_none() || cache.epoch != epoch {
                cache.structure = Some(Structure::build(registers, config)?);
                cache.plan = None;
                cache.opt = None;
                cache.epoch = epoch;
                cache.stats.structures_built += 1;
            } else {
                cache.stats.cache_hits += 1;
                if aa_obs::is_active() {
                    aa_obs::counter("engine.plan_cache_hits", 1);
                }
            }
            let PlanCache {
                structure,
                plan,
                opt,
                stats,
                ..
            } = cache;
            let circuit = Compiled {
                config,
                variation,
                registers,
                signals,
                faults,
                t_offset,
                structure: structure.as_ref().expect("structure ensured above"),
            };
            // Optimized runs never lower the baseline plan (and vice
            // versa): each tape is lowered on first demand for its config.
            let (plan, opt) = if use_opt {
                (
                    None,
                    Some(ensure_optimized(opt, stats, &circuit, &options.passes)),
                )
            } else {
                let plan = match options.eval_strategy {
                    EvalStrategy::Compiled => {
                        if plan.is_none() {
                            *plan = Some(crate::plan::CompiledPlan::lower(&circuit));
                            stats.plans_lowered += 1;
                            if aa_obs::is_active() {
                                aa_obs::counter("engine.plans_lowered", 1);
                            }
                        }
                        plan.as_ref()
                    }
                    EvalStrategy::Reference => None,
                };
                (plan, None)
            };
            drop(compile_span);
            execute(&circuit, plan, opt, options)?
        }
        None => {
            let structure = Structure::build(registers, config)?;
            let circuit = Compiled {
                config,
                variation,
                registers,
                signals,
                faults,
                t_offset,
                structure: &structure,
            };
            let opt = if use_opt {
                Some(crate::ir::lower_optimized(&circuit, &options.passes))
            } else {
                None
            };
            let plan = match options.eval_strategy {
                EvalStrategy::Compiled if !use_opt => {
                    Some(crate::plan::CompiledPlan::lower(&circuit))
                }
                _ => None,
            };
            drop(compile_span);
            execute(&circuit, plan.as_ref(), opt.as_ref(), options)?
        }
    };

    observe_run(&report);
    drop(run_span);
    Ok(report)
}

/// The per-run observability block shared by the single-lane and batched
/// entry points (a batched lane accounts exactly like a sequential run).
fn observe_run(report: &RunReport) {
    if aa_obs::is_active() {
        aa_obs::counter("engine.runs", 1);
        aa_obs::counter("engine.steps", report.steps as u64);
        aa_obs::histogram("engine.steps_per_run", report.steps as f64);
        aa_obs::event(
            aa_obs::Event::new("engine.run")
                .with("steps", report.steps)
                .with("steady", report.reached_steady_state)
                .with("timed_out", report.timed_out)
                .with("aborted", report.aborted_on_exception)
                .with("exceptions", report.exceptions.len())
                .with("fault_steps", report.faults_active_steps),
        );
        for unit in report.exceptions.iter() {
            aa_obs::counter("engine.overflows", 1);
            aa_obs::event(aa_obs::Event::new("engine.overflow").with("unit", unit.to_string()));
        }
        if report.faults_active_steps > 0 {
            aa_obs::event(
                aa_obs::Event::new("engine.faults_active")
                    .with("steps", report.faults_active_steps),
            );
        }
    }
}

/// Runs a committed register file across K lanes in one lockstep RK4 sweep.
/// Called by [`AnalogChip::exec_batch`](crate::AnalogChip::exec_batch).
///
/// Each lane overlays the committed registers with its own DAC constants
/// and initial conditions ([`LaneBindings`]) — the per-run state that never
/// invalidates the plan cache — so all lanes share one compilation. Under
/// [`EvalStrategy::Reference`] the lanes run as K sequential reference
/// integrations from the same start instant: the batched compiled path must
/// (and does, property-tested) match that column for column, bit for bit.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_committed_batch(
    registers: &Registers,
    config: &ChipConfig,
    variation: &ProcessVariation,
    signals: &BTreeMap<usize, InputSignal>,
    faults: Option<&FaultPlan>,
    t_offset: f64,
    lanes: &[LaneBindings],
    cache: Option<(&mut PlanCache, u64)>,
    options: &EngineOptions,
) -> Result<Vec<RunReport>, AnalogError> {
    if !(options.dt_tau > 0.0 && options.dt_tau.is_finite()) {
        return Err(AnalogError::protocol(format!(
            "engine dt_tau must be positive, got {}",
            options.dt_tau
        )));
    }
    if lanes.is_empty() {
        return Ok(Vec::new());
    }
    let run_span = aa_obs::span("engine.run_batch");

    // Per-lane effective register files: the committed base with the lane's
    // DAC/initial-condition overrides applied. Structure and plan are pure
    // functions of the *shared* fields, so one compilation serves them all.
    let overlays: Vec<Registers> = lanes
        .iter()
        .map(|lane| {
            let mut regs = registers.clone();
            if let Some(dacs) = &lane.dac_values {
                regs.dac_values = dacs.clone();
            }
            if let Some(ints) = &lane.int_initial {
                regs.int_initial = ints.clone();
            }
            regs
        })
        .collect();

    let compile_span = aa_obs::span("engine.compile");
    let use_opt = use_optimized(options, faults);
    let reports = match cache {
        Some((cache, epoch)) => {
            if cache.structure.is_none() || cache.epoch != epoch {
                cache.structure = Some(Structure::build(registers, config)?);
                cache.plan = None;
                cache.opt = None;
                cache.epoch = epoch;
                cache.stats.structures_built += 1;
            } else {
                cache.stats.cache_hits += 1;
                if aa_obs::is_active() {
                    aa_obs::counter("engine.plan_cache_hits", 1);
                }
            }
            let PlanCache {
                structure,
                plan,
                opt,
                stats,
                ..
            } = cache;
            let circuit = Compiled {
                config,
                variation,
                registers,
                signals,
                faults,
                t_offset,
                structure: structure.as_ref().expect("structure ensured above"),
            };
            let (plan, opt) = if use_opt {
                (
                    None,
                    Some(ensure_optimized(opt, stats, &circuit, &options.passes)),
                )
            } else {
                let plan = match options.eval_strategy {
                    EvalStrategy::Compiled => {
                        if plan.is_none() {
                            *plan = Some(crate::plan::CompiledPlan::lower(&circuit));
                            stats.plans_lowered += 1;
                            if aa_obs::is_active() {
                                aa_obs::counter("engine.plans_lowered", 1);
                            }
                        }
                        plan.as_ref()
                    }
                    EvalStrategy::Reference => None,
                };
                (plan, None)
            };
            drop(compile_span);
            execute_batch(&circuit, plan, opt, &overlays, options)?
        }
        None => {
            let structure = Structure::build(registers, config)?;
            let circuit = Compiled {
                config,
                variation,
                registers,
                signals,
                faults,
                t_offset,
                structure: &structure,
            };
            let opt = if use_opt {
                Some(crate::ir::lower_optimized(&circuit, &options.passes))
            } else {
                None
            };
            let plan = match options.eval_strategy {
                EvalStrategy::Compiled if !use_opt => {
                    Some(crate::plan::CompiledPlan::lower(&circuit))
                }
                _ => None,
            };
            drop(compile_span);
            execute_batch(&circuit, plan.as_ref(), opt.as_ref(), &overlays, options)?
        }
    };

    if aa_obs::is_active() {
        aa_obs::counter("engine.batch_runs", 1);
        aa_obs::counter("engine.batch_lanes", reports.len() as u64);
    }
    for report in &reports {
        observe_run(report);
    }
    drop(run_span);
    Ok(reports)
}

/// Dispatches a batch to the chosen evaluator inside the `engine.execute`
/// span: the compiled lockstep sweep, or K sequential reference
/// integrations (the batched path's behavioural oracle).
fn execute_batch(
    circuit: &Compiled<'_>,
    plan: Option<&crate::plan::CompiledPlan>,
    opt: Option<&crate::ir::OptimizedPlan>,
    overlays: &[Registers],
    options: &EngineOptions,
) -> Result<Vec<RunReport>, AnalogError> {
    let execute_span = aa_obs::span("engine.execute");
    let reports = match (opt, plan) {
        // A single-lane batch is exactly one sequential run (the batched
        // path's defining property), and the scalar evaluator has no
        // lane-sweep setup cost to amortize — route it there, optimized or
        // not.
        (Some(opt), _) if overlays.len() == 1 => {
            let lane_circuit = Compiled {
                config: circuit.config,
                variation: circuit.variation,
                registers: &overlays[0],
                signals: circuit.signals,
                faults: circuit.faults,
                t_offset: circuit.t_offset,
                structure: circuit.structure,
            };
            let run = crate::ir::OptRun::bind(opt, &lane_circuit);
            integrate(&lane_circuit, &run, options).map(|r| vec![r])
        }
        (Some(opt), _) => {
            let lane_dacs: Vec<&BTreeMap<usize, f64>> =
                overlays.iter().map(|r| &r.dac_values).collect();
            let mut batch = crate::ir::OptBatchRun::bind(opt, circuit, &lane_dacs);
            integrate_batch(circuit, &mut batch, overlays, options)
        }
        (None, Some(plan)) if overlays.len() == 1 => {
            let lane_circuit = Compiled {
                config: circuit.config,
                variation: circuit.variation,
                registers: &overlays[0],
                signals: circuit.signals,
                faults: circuit.faults,
                t_offset: circuit.t_offset,
                structure: circuit.structure,
            };
            let run = crate::plan::PlanRun::bind(plan, &lane_circuit);
            integrate(&lane_circuit, &run, options).map(|r| vec![r])
        }
        (None, Some(plan)) => {
            let lane_dacs: Vec<&BTreeMap<usize, f64>> =
                overlays.iter().map(|r| &r.dac_values).collect();
            let mut batch = crate::plan::BatchRun::bind(plan, circuit, &lane_dacs);
            integrate_batch(circuit, &mut batch, overlays, options)
        }
        (None, None) => overlays
            .iter()
            .map(|regs| {
                let lane_circuit = Compiled {
                    config: circuit.config,
                    variation: circuit.variation,
                    registers: regs,
                    signals: circuit.signals,
                    faults: circuit.faults,
                    t_offset: circuit.t_offset,
                    structure: circuit.structure,
                };
                integrate(&lane_circuit, &lane_circuit, options)
            })
            .collect(),
    }?;
    drop(execute_span);
    Ok(reports)
}

/// The lockstep K-lane RK4 loop. Structured exactly like [`integrate`] with
/// a lane sweep inside every phase: all lanes share the time axis (`dt` and
/// the end-of-run horizon are lane-independent), and a lane **retires**
/// individually the moment its own stop condition fires — its state column,
/// tracker entries, waveforms, and step count freeze at that instant, so
/// every column's [`RunReport`] is bit-identical to the sequential run that
/// would have broken out of the loop right there.
// The lane loops index `active` plus several SoA columns in lockstep; a
// range loop is the clear form, not a needless one.
#[allow(clippy::needless_range_loop)]
fn integrate_batch<B: LaneEvaluator>(
    circuit: &Compiled<'_>,
    batch: &mut B,
    overlays: &[Registers],
    options: &EngineOptions,
) -> Result<Vec<RunReport>, AnalogError> {
    let registers = circuit.registers;
    let config = circuit.config;
    let faults = circuit.faults;
    let t_offset = circuit.t_offset;
    let k = batch.lanes();
    debug_assert_eq!(k, overlays.len());
    let n = circuit.n_states();
    let n_slots = circuit.structure.slot_index.len().max(batch.min_slots());
    let fs = config.full_scale;
    let omega = config.omega();
    let dt = options.dt_tau / omega;
    let timeout_s = registers
        .timeout_cycles
        .map(|c| c as f64 / CONTROL_CLOCK_HZ);
    let cap_s = options.max_tau / omega;
    let end_s = timeout_s.map_or(cap_s, |t| t.min(cap_s));

    let mut tracker = BatchTracker {
        values: vec![0.0; n_slots * k],
        max_abs: vec![0.0; n_slots * k],
        clipped: vec![false; n_slots * k],
    };

    let int_out_slots: Vec<usize> = circuit
        .structure
        .integrator_of_state
        .iter()
        .map(|&i| circuit.slot(OutputPort::of(UnitId::Integrator(i))))
        .collect();
    let aout_sinks: Vec<usize> = circuit
        .structure
        .analog_outputs
        .iter()
        .map(|&i| circuit.sink_slot(UnitId::AnalogOutput(i)))
        .collect();

    // Initial conditions, column-major: `state[slot_state * k + lane]`.
    let mut state = vec![0.0; n * k];
    for (slot_state, i) in circuit.structure.integrator_of_state.iter().enumerate() {
        for (lane, regs) in overlays.iter().enumerate() {
            state[slot_state * k + lane] = regs.int_initial.get(i).copied().unwrap_or(0.0);
        }
    }

    let mut k1 = vec![0.0; n * k];
    let mut k2 = vec![0.0; n * k];
    let mut k3 = vec![0.0; n * k];
    let mut k4 = vec![0.0; n * k];
    let mut mid = vec![0.0; n * k];

    // Per-lane waveform decimation state and retirement bookkeeping.
    let mut stride = vec![1usize; k];
    let mut waves: Vec<Vec<Vec<(f64, f64)>>> = vec![vec![Vec::new(); aout_sinks.len()]; k];
    let mut active = vec![true; k];
    let mut reached_steady = vec![false; k];
    let mut timed_out = vec![false; k];
    let mut aborted_on_exception = vec![false; k];
    let mut faults_active_steps = vec![0usize; k];
    let mut lane_t = vec![0.0f64; k];
    let mut lane_steps = vec![0usize; k];

    let mut t = 0.0;
    let mut steps = 0usize;

    loop {
        // Stuck-at-rail faults pin the integrator state and latch an
        // overflow exception — the draw is per `(integrator, t)`, shared by
        // every still-active lane.
        if let Some(plan) = faults {
            if plan.any_active(t_offset + t) {
                for lane in 0..k {
                    if active[lane] {
                        faults_active_steps[lane] += 1;
                    }
                }
            }
            for (slot_state, &int_idx) in circuit.structure.integrator_of_state.iter().enumerate() {
                if let Some(rail) = plan.stuck_rail(int_idx, t_offset + t) {
                    let s = int_out_slots[slot_state];
                    for lane in 0..k {
                        if !active[lane] {
                            continue;
                        }
                        state[slot_state * k + lane] = rail.sign() * fs;
                        let idx = s * k + lane;
                        tracker.clipped[idx] = true;
                        tracker.max_abs[idx] = tracker.max_abs[idx].max(fs * 1.0000001);
                    }
                }
            }
        }

        // k1 also refreshes slot values at time t (used for sampling below).
        batch.eval_lanes(t, &state, &mut k1, &mut tracker, true, &active);

        // Record output waveforms, per lane (decimation state is per lane:
        // a retired lane's buffers must stop exactly where its sequential
        // run would have stopped).
        for lane in 0..k {
            if !active[lane] {
                continue;
            }
            if steps.is_multiple_of(stride[lane]) || t >= end_s {
                let mut overflow = false;
                for (wave, &slot) in waves[lane].iter_mut().zip(&aout_sinks) {
                    wave.push((t, tracker.values[slot * k + lane]));
                    overflow |=
                        options.waveform_samples > 0 && wave.len() >= 2 * options.waveform_samples;
                }
                if overflow {
                    for wave in waves[lane].iter_mut() {
                        let mut keep = 0;
                        wave.retain(|_| {
                            keep += 1;
                            keep % 2 == 1
                        });
                    }
                    stride[lane] = stride[lane].saturating_mul(2);
                }
            }
        }

        // Stop checks, per lane: a lane retires the moment its own steady /
        // timeout / exception condition fires.
        for lane in 0..k {
            if !active[lane] {
                continue;
            }
            if n > 0 {
                if let Some(tol) = options.steady_tol {
                    let dnorm = (0..n).fold(0.0f64, |m, i| m.max(k1[i * k + lane].abs())) / omega;
                    if dnorm <= tol {
                        reached_steady[lane] = true;
                    }
                }
            }
            if t >= end_s {
                timed_out[lane] = timeout_s.is_some_and(|ts| t >= ts);
            }
            if options.stop_on_exception && (0..n_slots).any(|s| tracker.clipped[s * k + lane]) {
                aborted_on_exception[lane] = true;
            }
            if reached_steady[lane] || aborted_on_exception[lane] || t >= end_s || n == 0 {
                active[lane] = false;
                lane_t[lane] = t;
                lane_steps[lane] = steps;
            }
        }
        if active.iter().all(|a| !a) {
            break;
        }

        // RK4 step (k1 already computed). Retired lanes are masked out of
        // every stage so their columns freeze; while every lane is still
        // live the stage combines run unmasked over the whole SoA block
        // (same arithmetic, branch-free and vectorizable).
        let h = dt.min(end_s - t);
        let all_active = active.iter().all(|&a| a);
        if all_active {
            for idx in 0..n * k {
                mid[idx] = state[idx] + 0.5 * h * k1[idx];
            }
        } else {
            for i in 0..n {
                for lane in 0..k {
                    if active[lane] {
                        mid[i * k + lane] = state[i * k + lane] + 0.5 * h * k1[i * k + lane];
                    }
                }
            }
        }
        batch.eval_lanes(t + 0.5 * h, &mid, &mut k2, &mut tracker, false, &active);
        if all_active {
            for idx in 0..n * k {
                mid[idx] = state[idx] + 0.5 * h * k2[idx];
            }
        } else {
            for i in 0..n {
                for lane in 0..k {
                    if active[lane] {
                        mid[i * k + lane] = state[i * k + lane] + 0.5 * h * k2[i * k + lane];
                    }
                }
            }
        }
        batch.eval_lanes(t + 0.5 * h, &mid, &mut k3, &mut tracker, false, &active);
        if all_active {
            for idx in 0..n * k {
                mid[idx] = state[idx] + h * k3[idx];
            }
        } else {
            for i in 0..n {
                for lane in 0..k {
                    if active[lane] {
                        mid[i * k + lane] = state[i * k + lane] + h * k3[i * k + lane];
                    }
                }
            }
        }
        batch.eval_lanes(t + h, &mid, &mut k4, &mut tracker, false, &active);
        if all_active {
            for idx in 0..n * k {
                state[idx] += h / 6.0 * (k1[idx] + 2.0 * k2[idx] + 2.0 * k3[idx] + k4[idx]);
            }
        } else {
            for i in 0..n {
                for lane in 0..k {
                    if active[lane] {
                        let idx = i * k + lane;
                        state[idx] += h / 6.0 * (k1[idx] + 2.0 * k2[idx] + 2.0 * k3[idx] + k4[idx]);
                    }
                }
            }
        }

        // Integrator saturation at the rails, per active lane.
        for (slot_state, s) in int_out_slots.iter().copied().enumerate() {
            for lane in 0..k {
                if !active[lane] {
                    continue;
                }
                let idx = slot_state * k + lane;
                if state[idx].abs() > fs {
                    state[idx] = state[idx].clamp(-fs, fs);
                    let tidx = s * k + lane;
                    tracker.clipped[tidx] = true;
                    tracker.max_abs[tidx] = tracker.max_abs[tidx].max(fs * 1.0000001);
                }
                if !state[idx].is_finite() {
                    return Err(AnalogError::Engine(aa_ode::OdeError::Diverged {
                        at_time: t,
                    }));
                }
            }
        }

        t += h;
        steps += 1;
    }

    // Harvest per-lane observations — the same walk as `integrate`, over
    // each lane's column of the tracker and state.
    let mut reports = Vec::with_capacity(k);
    for lane in 0..k {
        let mut exceptions = ExceptionVector::new();
        let mut range_usage = BTreeMap::new();
        for (slot, unit) in circuit.structure.unit_of_slot.iter().enumerate() {
            if tracker.clipped[slot * k + lane] {
                exceptions.latch(*unit);
            }
            let usage = tracker.max_abs[slot * k + lane] / fs;
            range_usage
                .entry(*unit)
                .and_modify(|u: &mut f64| *u = u.max(usage))
                .or_insert(usage);
        }
        let integrator_values: BTreeMap<usize, f64> = circuit
            .structure
            .integrator_of_state
            .iter()
            .enumerate()
            .map(|(s, &i)| (i, state[s * k + lane]))
            .collect();
        let adc_inputs: BTreeMap<usize, f64> = circuit
            .structure
            .adcs
            .iter()
            .map(|&i| {
                (
                    i,
                    tracker.values[circuit.sink_slot(UnitId::Adc(i)) * k + lane],
                )
            })
            .collect();
        let output_waveforms: BTreeMap<usize, Vec<(f64, f64)>> = circuit
            .structure
            .analog_outputs
            .iter()
            .copied()
            .zip(std::mem::take(&mut waves[lane]))
            .collect();

        reports.push(RunReport {
            duration_s: lane_t[lane],
            steps: lane_steps[lane],
            reached_steady_state: reached_steady[lane],
            timed_out: timed_out[lane],
            aborted_on_exception: aborted_on_exception[lane],
            exceptions,
            range_usage,
            integrator_values,
            adc_inputs,
            output_waveforms,
            faults_active_steps: faults_active_steps[lane],
        });
    }
    Ok(reports)
}

/// Binds per-run state to the chosen evaluator and runs the RK4 loop
/// inside the `engine.execute` span.
fn execute(
    circuit: &Compiled<'_>,
    plan: Option<&crate::plan::CompiledPlan>,
    opt: Option<&crate::ir::OptimizedPlan>,
    options: &EngineOptions,
) -> Result<RunReport, AnalogError> {
    let execute_span = aa_obs::span("engine.execute");
    let report = match (opt, plan) {
        (Some(opt), _) => {
            let run = crate::ir::OptRun::bind(opt, circuit);
            integrate(circuit, &run, options)
        }
        (None, Some(plan)) => {
            let run = crate::plan::PlanRun::bind(plan, circuit);
            integrate(circuit, &run, options)
        }
        (None, None) => integrate(circuit, circuit, options),
    }?;
    drop(execute_span);
    Ok(report)
}

/// The RK4 run loop, generic over the circuit evaluator. `circuit` supplies
/// the structural metadata (slot numbering, used-unit lists); `evaluator`
/// does the per-stage arithmetic.
fn integrate<E: Evaluator>(
    circuit: &Compiled<'_>,
    evaluator: &E,
    options: &EngineOptions,
) -> Result<RunReport, AnalogError> {
    let registers = circuit.registers;
    let config = circuit.config;
    let faults = circuit.faults;
    let t_offset = circuit.t_offset;
    let n = circuit.n_states();
    let n_slots = circuit
        .structure
        .slot_index
        .len()
        .max(evaluator.min_slots());
    let fs = config.full_scale;
    let omega = config.omega();
    let dt = options.dt_tau / omega;
    let timeout_s = registers
        .timeout_cycles
        .map(|c| c as f64 / CONTROL_CLOCK_HZ);
    let cap_s = options.max_tau / omega;
    let end_s = timeout_s.map_or(cap_s, |t| t.min(cap_s));

    let mut tracker = Tracker {
        values: vec![0.0; n_slots],
        max_abs: vec![0.0; n_slots],
        clipped: vec![false; n_slots],
    };

    // Slot lookups resolved once, outside the loop: integrator output slots
    // (stuck-rail and saturation tracking) and analog-output sink slots
    // (waveform sampling), which previously went through `slot_index` every
    // step and every sample respectively.
    let int_out_slots: Vec<usize> = circuit
        .structure
        .integrator_of_state
        .iter()
        .map(|&i| circuit.slot(OutputPort::of(UnitId::Integrator(i))))
        .collect();
    let aout_sinks: Vec<usize> = circuit
        .structure
        .analog_outputs
        .iter()
        .map(|&i| circuit.sink_slot(UnitId::AnalogOutput(i)))
        .collect();

    // Initial conditions.
    let mut state: Vec<f64> = circuit
        .structure
        .integrator_of_state
        .iter()
        .map(|i| registers.int_initial.get(i).copied().unwrap_or(0.0))
        .collect();

    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut mid = vec![0.0; n];

    // Waveform sampling starts dense and decimates by two whenever the
    // buffer doubles past the target, so the retained samples always span
    // the whole (unknown-in-advance) run at roughly uniform spacing.
    let mut stride = 1usize;
    let mut waves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); aout_sinks.len()];

    let mut t = 0.0;
    let mut steps = 0usize;
    let mut reached_steady = false;
    let mut timed_out = false;
    let mut aborted_on_exception = false;
    let mut faults_active_steps = 0usize;

    loop {
        // Stuck-at-rail faults pin the integrator state and latch an
        // overflow exception, exactly as a genuine saturation would.
        if let Some(plan) = faults {
            if plan.any_active(t_offset + t) {
                faults_active_steps += 1;
            }
            for (slot_state, &int_idx) in circuit.structure.integrator_of_state.iter().enumerate() {
                if let Some(rail) = plan.stuck_rail(int_idx, t_offset + t) {
                    state[slot_state] = rail.sign() * fs;
                    let s = int_out_slots[slot_state];
                    tracker.clipped[s] = true;
                    tracker.max_abs[s] = tracker.max_abs[s].max(fs * 1.0000001);
                }
            }
        }

        // k1 also refreshes slot values at time t (used for sampling below).
        evaluator.eval_circuit(t, &state, &mut k1, &mut tracker, true);

        // Record output waveforms.
        if steps.is_multiple_of(stride) || t >= end_s {
            let mut overflow = false;
            for (wave, &slot) in waves.iter_mut().zip(&aout_sinks) {
                wave.push((t, tracker.values[slot]));
                overflow |=
                    options.waveform_samples > 0 && wave.len() >= 2 * options.waveform_samples;
            }
            if overflow {
                for wave in waves.iter_mut() {
                    let mut keep = 0;
                    wave.retain(|_| {
                        keep += 1;
                        keep % 2 == 1
                    });
                }
                stride = stride.saturating_mul(2);
            }
        }

        // Stop checks. The dnorm reduction over k1 only runs when a steady
        // tolerance is actually configured.
        if n > 0 {
            if let Some(tol) = options.steady_tol {
                let dnorm = k1.iter().fold(0.0f64, |m, v| m.max(v.abs())) / omega;
                if dnorm <= tol {
                    reached_steady = true;
                }
            }
        }
        if t >= end_s {
            timed_out = timeout_s.is_some_and(|ts| t >= ts);
        }
        if options.stop_on_exception && tracker.clipped.iter().any(|c| *c) {
            aborted_on_exception = true;
        }
        if reached_steady || aborted_on_exception || t >= end_s || n == 0 {
            break;
        }

        // RK4 step (k1 already computed).
        let h = dt.min(end_s - t);
        for i in 0..n {
            mid[i] = state[i] + 0.5 * h * k1[i];
        }
        evaluator.eval_circuit(t + 0.5 * h, &mid, &mut k2, &mut tracker, false);
        for i in 0..n {
            mid[i] = state[i] + 0.5 * h * k2[i];
        }
        evaluator.eval_circuit(t + 0.5 * h, &mid, &mut k3, &mut tracker, false);
        for i in 0..n {
            mid[i] = state[i] + h * k3[i];
        }
        evaluator.eval_circuit(t + h, &mid, &mut k4, &mut tracker, false);
        for i in 0..n {
            state[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }

        // Integrator saturation at the rails.
        for (slot_state, s) in int_out_slots.iter().copied().enumerate() {
            if state[slot_state].abs() > fs {
                state[slot_state] = state[slot_state].clamp(-fs, fs);
                tracker.clipped[s] = true;
                tracker.max_abs[s] = tracker.max_abs[s].max(fs * 1.0000001);
            }
            if !state[slot_state].is_finite() {
                return Err(AnalogError::Engine(aa_ode::OdeError::Diverged {
                    at_time: t,
                }));
            }
        }

        t += h;
        steps += 1;
    }

    // Harvest observations.
    let mut exceptions = ExceptionVector::new();
    let mut range_usage = BTreeMap::new();
    for (slot, unit) in circuit.structure.unit_of_slot.iter().enumerate() {
        if tracker.clipped[slot] {
            exceptions.latch(*unit);
        }
        let usage = tracker.max_abs[slot] / fs;
        range_usage
            .entry(*unit)
            .and_modify(|u: &mut f64| *u = u.max(usage))
            .or_insert(usage);
    }
    let integrator_values: BTreeMap<usize, f64> = circuit
        .structure
        .integrator_of_state
        .iter()
        .enumerate()
        .map(|(s, &i)| (i, state[s]))
        .collect();
    let adc_inputs: BTreeMap<usize, f64> = circuit
        .structure
        .adcs
        .iter()
        .map(|&i| (i, tracker.values[circuit.sink_slot(UnitId::Adc(i))]))
        .collect();
    let output_waveforms: BTreeMap<usize, Vec<(f64, f64)>> = circuit
        .structure
        .analog_outputs
        .iter()
        .copied()
        .zip(waves)
        .collect();

    Ok(RunReport {
        duration_s: t,
        steps,
        reached_steady_state: reached_steady,
        timed_out,
        aborted_on_exception,
        exceptions,
        range_usage,
        integrator_values,
        adc_inputs,
        output_waveforms,
        faults_active_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::AnalogChip;
    use crate::config::ChipConfig;
    use crate::netlist::{InputPort, OutputPort};

    /// Builds the paper's Figure 1 circuit: du/dt = a·u + b.
    /// u → fanout → {ADC branch, multiplier·a branch}; DAC(b) joins the
    /// multiplier output at the integrator input.
    fn figure1_chip(a: f64, b: f64, u_init: f64, config: ChipConfig) -> AnalogChip {
        let mut chip = AnalogChip::new(config);
        let int0 = UnitId::Integrator(0);
        let fan0 = UnitId::Fanout(0);
        let mul0 = UnitId::Multiplier(0);
        let adc0 = UnitId::Adc(0);
        let dac0 = UnitId::Dac(0);
        chip.set_conn(OutputPort::of(int0), InputPort::of(fan0))
            .unwrap();
        chip.set_conn(
            OutputPort {
                unit: fan0,
                port: 0,
            },
            InputPort::of(adc0),
        )
        .unwrap();
        chip.set_conn(
            OutputPort {
                unit: fan0,
                port: 1,
            },
            InputPort::of(mul0),
        )
        .unwrap();
        chip.set_conn(OutputPort::of(mul0), InputPort::of(int0))
            .unwrap();
        chip.set_conn(OutputPort::of(dac0), InputPort::of(int0))
            .unwrap();
        chip.set_mul_gain(0, a).unwrap();
        chip.set_dac_constant(0, b).unwrap();
        chip.set_int_initial(0, u_init).unwrap();
        chip.cfg_commit().unwrap();
        chip
    }

    #[test]
    fn figure1_circuit_settles_at_equation_solution() {
        // du/dt = -u + 0.5 settles at u = 0.5.
        let mut chip = figure1_chip(-1.0, 0.5, 0.0, ChipConfig::ideal());
        let report = chip.exec(&EngineOptions::default()).unwrap();
        assert!(report.reached_steady_state);
        assert!((report.integrator_values[&0] - 0.5).abs() < 1e-4);
        // The ADC branch sees the same value.
        assert!((report.adc_inputs[&0] - 0.5).abs() < 1e-4);
        assert!(report.exceptions.is_empty());
    }

    #[test]
    fn settle_time_matches_time_constant() {
        // du/dt = ω·(-u + b): the settling transient is e^{-ω t}, so steady
        // state at tolerance ε arrives at ≈ ln(1/ε)/ω seconds.
        let mut chip = figure1_chip(-1.0, 0.5, 0.0, ChipConfig::ideal());
        let report = chip
            .exec(&EngineOptions {
                steady_tol: Some(1e-6),
                ..EngineOptions::default()
            })
            .unwrap();
        let omega = chip.config().omega();
        let expected = (0.5e6f64).ln() / omega; // |du|/ω = 0.5·e^{-ωt} = 1e-6
        assert!(
            (report.duration_s - expected).abs() / expected < 0.02,
            "settled in {} s, expected ≈ {} s",
            report.duration_s,
            expected
        );
    }

    #[test]
    fn twenty_khz_chip_is_slower_than_80khz_chip() {
        let run = |bw: f64| {
            let mut chip = figure1_chip(-1.0, 0.25, 0.0, ChipConfig::ideal().with_bandwidth(bw));
            chip.exec(&EngineOptions::default()).unwrap().duration_s
        };
        let slow = run(20e3);
        let fast = run(80e3);
        let ratio = slow / fast;
        assert!((ratio - 4.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn overflow_sets_exception_latch() {
        // du/dt = +u from 0.5: grows to the rail and saturates.
        let mut chip = figure1_chip(1.0, 0.0, 0.5, ChipConfig::ideal());
        let report = chip
            .exec(&EngineOptions {
                steady_tol: None,
                max_tau: 50.0,
                ..EngineOptions::default()
            })
            .unwrap();
        assert!(report.exceptions.is_latched(UnitId::Integrator(0)));
        assert!((report.integrator_values[&0].abs() - 1.0).abs() < 1e-9);
        // readExp sees it too.
        assert!(chip.exceptions().any());
    }

    #[test]
    fn timeout_stops_the_run() {
        let mut chip = figure1_chip(-1.0, 0.5, 0.0, ChipConfig::ideal());
        chip.set_timeout(10); // 10 µs at the 1 MHz control clock
        chip.cfg_commit().unwrap();
        let report = chip
            .exec(&EngineOptions {
                steady_tol: None,
                ..EngineOptions::default()
            })
            .unwrap();
        assert!(report.timed_out);
        assert!((report.duration_s - 10e-6).abs() < 1e-6);
        // 10 µs ≪ the 20 kHz time constant: far from steady.
        assert!((report.integrator_values[&0] - 0.5).abs() > 0.1);
    }

    #[test]
    fn range_usage_reports_underuse() {
        // Tiny problem values: b = 0.01 → steady state 0.01, far below fs.
        let mut chip = figure1_chip(-1.0, 0.01, 0.0, ChipConfig::ideal());
        let report = chip.exec(&EngineOptions::default()).unwrap();
        let underused = report.underused_units(0.5);
        assert!(underused.contains(&UnitId::Integrator(0)));
        // A full-range problem is not underused.
        let mut chip = figure1_chip(-1.0, 0.9, 0.0, ChipConfig::ideal());
        let report = chip.exec(&EngineOptions::default()).unwrap();
        assert!(!report.underused_units(0.5).contains(&UnitId::Integrator(0)));
    }

    #[test]
    fn offsets_shift_the_steady_state_until_calibrated() {
        let cfg = ChipConfig::prototype(); // has offsets/gain errors
        let mut chip = figure1_chip(-1.0, 0.5, 0.0, cfg);
        let report = chip.exec(&EngineOptions::default()).unwrap();
        let err = (report.integrator_values[&0] - 0.5).abs();
        assert!(
            err > 1e-4,
            "uncalibrated hardware should visibly miss the ideal solution, err = {err}"
        );
    }

    #[test]
    fn waveform_is_monotone_exponential_approach() {
        // Route the fanout's ADC branch to an analog output instead to watch
        // the waveform.
        let mut chip = AnalogChip::new(ChipConfig::ideal());
        let int0 = UnitId::Integrator(0);
        let fan0 = UnitId::Fanout(0);
        let mul0 = UnitId::Multiplier(0);
        let aout0 = UnitId::AnalogOutput(0);
        let dac0 = UnitId::Dac(0);
        chip.set_conn(OutputPort::of(int0), InputPort::of(fan0))
            .unwrap();
        chip.set_conn(
            OutputPort {
                unit: fan0,
                port: 0,
            },
            InputPort::of(aout0),
        )
        .unwrap();
        chip.set_conn(
            OutputPort {
                unit: fan0,
                port: 1,
            },
            InputPort::of(mul0),
        )
        .unwrap();
        chip.set_conn(OutputPort::of(mul0), InputPort::of(int0))
            .unwrap();
        chip.set_conn(OutputPort::of(dac0), InputPort::of(int0))
            .unwrap();
        chip.set_mul_gain(0, -1.0).unwrap();
        chip.set_dac_constant(0, 0.75).unwrap();
        chip.set_int_initial(0, 0.0).unwrap();
        chip.cfg_commit().unwrap();
        let report = chip.exec(&EngineOptions::default()).unwrap();
        let wave = &report.output_waveforms[&0];
        assert!(wave.len() > 10);
        // Monotone rise toward 0.75.
        for pair in wave.windows(2) {
            assert!(pair[1].1 >= pair[0].1 - 1e-9);
        }
        assert!((wave.last().unwrap().1 - 0.75).abs() < 1e-3);
    }

    #[test]
    fn variable_variable_multiplication() {
        // mul in variable mode computing u·u: du/dt = b − u² settles at √b.
        let mut chip = AnalogChip::new(ChipConfig::ideal());
        let int0 = UnitId::Integrator(0);
        let fan0 = UnitId::Fanout(0);
        let mul0 = UnitId::Multiplier(0);
        let mul1 = UnitId::Multiplier(1);
        let dac0 = UnitId::Dac(0);
        chip.set_conn(OutputPort::of(int0), InputPort::of(fan0))
            .unwrap();
        chip.set_conn(
            OutputPort {
                unit: fan0,
                port: 0,
            },
            InputPort {
                unit: mul0,
                port: 0,
            },
        )
        .unwrap();
        chip.set_conn(
            OutputPort {
                unit: fan0,
                port: 1,
            },
            InputPort {
                unit: mul0,
                port: 1,
            },
        )
        .unwrap();
        // Negate u² through a gain multiplier.
        chip.set_conn(OutputPort::of(mul0), InputPort::of(mul1))
            .unwrap();
        chip.set_mul_gain(1, -1.0).unwrap();
        chip.set_conn(OutputPort::of(mul1), InputPort::of(int0))
            .unwrap();
        chip.set_conn(OutputPort::of(dac0), InputPort::of(int0))
            .unwrap();
        chip.set_dac_constant(0, 0.25).unwrap();
        chip.set_int_initial(0, 0.9).unwrap();
        chip.cfg_commit().unwrap();
        let report = chip.exec(&EngineOptions::default()).unwrap();
        assert!(report.reached_steady_state);
        assert!((report.integrator_values[&0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn external_input_drives_the_circuit() {
        // Integrator integrates a constant external stimulus.
        let mut chip = AnalogChip::new(ChipConfig::ideal());
        let int0 = UnitId::Integrator(0);
        let ain0 = UnitId::AnalogInput(0);
        chip.set_conn(OutputPort::of(ain0), InputPort::of(int0))
            .unwrap();
        chip.set_ana_input_en(0, true).unwrap();
        chip.attach_input_signal(0, Box::new(|_t| 0.1)).unwrap();
        chip.set_int_initial(0, 0.0).unwrap();
        chip.set_timeout(50);
        chip.cfg_commit().unwrap();
        let report = chip
            .exec(&EngineOptions {
                steady_tol: None,
                ..EngineOptions::default()
            })
            .unwrap();
        // After 50 µs at ω·0.1 per second: u = 0.1·ω·5e-5 ≈ 0.63 (within
        // full scale, so no saturation).
        let expected = 0.1 * chip.config().omega() * 50e-6;
        assert!((report.integrator_values[&0] - expected).abs() < 1e-3);
    }

    #[test]
    fn noise_burst_prevents_settling_then_clears() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};

        // Clean chip settles quickly; under an active noise burst the steady
        // detector never fires and the run hits the cap.
        let opts = EngineOptions {
            max_tau: 200.0,
            ..EngineOptions::default()
        };
        let mut chip = figure1_chip(-1.0, 0.5, 0.0, ChipConfig::ideal());
        chip.inject_fault_plan(FaultPlan::new(11).with_event(FaultEvent::transient(
            FaultKind::NoiseBurst {
                unit: UnitId::Integrator(0),
                amplitude: 0.05,
            },
            0.0,
            2e-3,
        )));
        let noisy = chip.exec(&opts).unwrap();
        assert!(!noisy.reached_steady_state);
        assert!(noisy.faults_active_steps > 0);
        // Idle past the burst window: the chip settles again.
        chip.idle(2e-3);
        let clean = chip.exec(&opts).unwrap();
        assert!(clean.reached_steady_state);
        assert_eq!(clean.faults_active_steps, 0);
        assert!((clean.integrator_values[&0] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn stuck_at_rail_pins_state_and_latches_exception() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan, Rail};

        let mut chip = figure1_chip(-1.0, 0.5, 0.0, ChipConfig::ideal());
        chip.inject_fault_plan(FaultPlan::new(0).with_event(FaultEvent::persistent(
            FaultKind::StuckAtRail {
                integrator: 0,
                rail: Rail::Negative,
            },
            0.0,
        )));
        let report = chip
            .exec(&EngineOptions {
                stop_on_exception: true,
                max_tau: 200.0,
                ..EngineOptions::default()
            })
            .unwrap();
        assert!(report.aborted_on_exception);
        assert!(report.exceptions.is_latched(UnitId::Integrator(0)));
        assert_eq!(report.integrator_values[&0], -1.0);
    }

    #[test]
    fn offset_drift_shifts_the_settled_solution() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};

        let mut chip = figure1_chip(-1.0, 0.5, 0.0, ChipConfig::ideal());
        chip.inject_fault_plan(FaultPlan::new(0).with_event(FaultEvent::persistent(
            FaultKind::OffsetDrift {
                unit: UnitId::Integrator(0),
                magnitude: 0.05,
                ramp_s: 0.0,
            },
            0.0,
        )));
        let report = chip.exec(&EngineOptions::default()).unwrap();
        assert!(report.reached_steady_state);
        // The integrator *output* (state + offset) settles at 0.5, so the
        // internal state sits 0.05 low; the ADC branch sees ≈ 0.5.
        assert!((report.integrator_values[&0] - 0.45).abs() < 1e-3);
    }

    #[test]
    fn disabled_input_contributes_nothing() {
        let mut chip = AnalogChip::new(ChipConfig::ideal());
        let int0 = UnitId::Integrator(0);
        let ain0 = UnitId::AnalogInput(0);
        chip.set_conn(OutputPort::of(ain0), InputPort::of(int0))
            .unwrap();
        chip.attach_input_signal(0, Box::new(|_t| 0.5)).unwrap();
        // Not enabled: stimulus must be ignored.
        chip.set_int_initial(0, 0.25).unwrap();
        chip.set_timeout(1000);
        chip.cfg_commit().unwrap();
        let report = chip
            .exec(&EngineOptions {
                steady_tol: None,
                ..EngineOptions::default()
            })
            .unwrap();
        assert!((report.integrator_values[&0] - 0.25).abs() < 1e-12);
    }
}

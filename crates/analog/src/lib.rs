//! Behavioural model of the Columbia continuous-time analog accelerator.
//!
//! This crate reproduces, in software, the 65 nm prototype chip evaluated in
//! *Evaluation of an Analog Accelerator for Linear Algebra* (ISCA 2016):
//! four macroblocks of integrators, multipliers, and current-mirror fanouts
//! joined by a crossbar, with shared 8-bit ADCs/DACs and continuous-time
//! SRAM lookup tables for nonlinear functions. The model covers the paper's
//! full architecture story:
//!
//! * **Microarchitecture** (§III-A): [`units`], [`netlist`], [`LookupTable`] —
//!   current-mode signal representation with free summation (joined
//!   branches), explicit fanout blocks for copying, and crossbar routing.
//! * **Architecture / ISA** (§III-B, Table I): [`Instruction`], [`Host`] —
//!   calibration, configuration, computation control, data readout, and
//!   exception reads.
//! * **Non-ideal behaviour**: [`nonideal`] — per-instance offset bias, gain
//!   error, and clipping nonlinearity, with trim-DAC compensation found by
//!   host-driven binary search ([`calibrate`]).
//! * **Exceptions**: [`ExceptionVector`] — overflow latches that tell the
//!   host to rescale and re-run, plus dynamic-range-underuse reporting.
//! * **Continuous-time execution**: [`engine`] — the committed netlist is
//!   compiled into an ODE and integrated at a fine fraction of the
//!   integrator time constant; solution time scales as `1/bandwidth`,
//!   which is the pivotal trade-off the paper's evaluation explores.
//! * **Runtime faults**: [`fault`] — a seeded, fully reproducible schedule
//!   of transient and persistent fault events (drift ramps, noise bursts,
//!   stuck integrators, ADC/SPI bit flips, LUT upsets) that the engine and
//!   digital interface apply, so host-side recovery policies can be tested
//!   deterministically.
//!
//! # Example: the paper's Figure 1 circuit
//!
//! ```
//! use aa_analog::{AnalogChip, ChipConfig};
//! use aa_analog::units::UnitId;
//! use aa_analog::netlist::{OutputPort, InputPort};
//!
//! # fn main() -> Result<(), aa_analog::AnalogError> {
//! // du/dt = a·u + b with a = -1, b = 0.5: settles at u = 0.5.
//! let mut chip = AnalogChip::new(ChipConfig::ideal());
//! let (int0, fan0, mul0, adc0, dac0) = (
//!     UnitId::Integrator(0), UnitId::Fanout(0), UnitId::Multiplier(0),
//!     UnitId::Adc(0), UnitId::Dac(0),
//! );
//! chip.set_conn(OutputPort::of(int0), InputPort::of(fan0))?;
//! chip.set_conn(OutputPort { unit: fan0, port: 0 }, InputPort::of(adc0))?;
//! chip.set_conn(OutputPort { unit: fan0, port: 1 }, InputPort::of(mul0))?;
//! chip.set_conn(OutputPort::of(mul0), InputPort::of(int0))?;
//! chip.set_conn(OutputPort::of(dac0), InputPort::of(int0))?;
//! chip.set_mul_gain(0, -1.0)?;
//! chip.set_dac_constant(0, 0.5)?;
//! chip.set_int_initial(0, 0.0)?;
//! chip.cfg_commit()?;
//! let report = chip.exec(&Default::default())?;
//! assert!((report.integrator_values[&0] - 0.5).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chip;
mod error;
mod ir;

pub mod calibrate;
/// Chip configuration: bandwidth, resolution, and non-ideality magnitudes.
pub mod config;
pub mod engine;
pub mod exceptions;
pub mod fault;
pub mod host;
pub mod isa;
pub mod lut;
pub mod netlist;
pub mod nonideal;
pub mod passes;
pub mod plan;
pub mod spi;
pub mod units;

pub use calibrate::{calibrate, CalibrationReport};
pub use chip::{AnalogChip, BatchExec, ChipCheckpoint, InputSignal, CONTROL_CLOCK_HZ};
pub use config::{ChipConfig, NonIdealityConfig, PROTOTYPE_BANDWIDTH_HZ};
pub use engine::{EngineOptions, EvalStrategy, LaneBindings, PlanStats, RunReport};
pub use error::AnalogError;
pub use exceptions::ExceptionVector;
pub use fault::{FaultEvent, FaultKind, FaultPlan, Rail};
pub use host::{Host, ParallelTarget, Response};
pub use isa::{Instruction, InstructionKind, NonlinearFunction};
pub use lut::LookupTable;
pub use passes::{PassConfig, PassStat};
pub use spi::{
    decode_program, decode_program_checked, encode, encode_program, encode_program_checked,
};
